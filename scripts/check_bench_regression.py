#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_*.json trajectory files.

Compares a freshly generated bench JSON document (see
src/common/benchjson.hh for the shape) against a committed baseline
and fails when any gated counter regressed by more than the
tolerance. The default gated counters are the localization cost
headline numbers — probes and measurements — which are seeded and
deterministic, so drift means the search genuinely changed, not that
the runner was noisy. Wall-clock is deliberately NOT gated: CI
machines are too noisy for a 10% timing gate to stay green.

Alongside the per-benchmark counters, the gate can also compare the
document-level "metrics" object (the qsa::obs snapshot the bench
embeds from a deterministic replay of its fixtures): pass --metrics
with the metric names to gate. Gated metrics are costs — probe
totals, cache misses — so an increase beyond tolerance is a
regression exactly like a counter increase.

Wins can be gated too: --require-positive names metrics that must be
strictly positive in the current run. The first user is the static
pruning pre-pass (metrics.locate.pruned_boundaries) — probes saved by
qsa::analyze prefix-equivalence certification. A zero there means the
pre-pass silently stopped certifying anything, which the probe-count
tolerance alone would mask as long as the search still converged.

Usage:
  check_bench_regression.py BASELINE CURRENT
      [--tolerance 0.10] [--counters probes,measurements]
      [--metrics locate.probes,runtime.prefix_cache.misses]
      [--require-positive locate.pruned_boundaries]

Exit status: 0 when every gated counter is within tolerance, 1 on any
regression or missing benchmark, 2 on malformed input.
"""

import argparse
import json
import sys


def load_records(path):
    """Map (name, label) -> counters dict from one BENCH_*.json."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    records = {}
    for result in doc.get("results", []):
        key = (result.get("name", ""), result.get("label", ""))
        records[key] = result.get("counters", {})
    if not records:
        sys.exit(f"error: {path} contains no benchmark results")
    return records, doc.get("metrics", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly generated JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional increase per counter (default 0.10)",
    )
    parser.add_argument(
        "--counters",
        default="probes,measurements",
        help="comma-separated counters to gate "
        "(default: probes,measurements)",
    )
    parser.add_argument(
        "--metrics",
        default="",
        help="comma-separated document-level qsa::obs metrics to "
        "gate (default: none)",
    )
    parser.add_argument(
        "--require-positive",
        default="",
        help="comma-separated document-level metrics that must be "
        "strictly positive in the current run (default: none)",
    )
    args = parser.parse_args()

    gated = [c for c in args.counters.split(",") if c]
    gated_metrics = [m for m in args.metrics.split(",") if m]
    required_positive = [
        m for m in args.require_positive.split(",") if m
    ]
    baseline, base_metrics = load_records(args.baseline)
    current, cur_metrics = load_records(args.current)

    failures = []
    checked = 0
    for key, base_counters in sorted(baseline.items()):
        name = f"{key[0]} [{key[1]}]" if key[1] else key[0]
        if key not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        cur_counters = current[key]
        for counter in gated:
            if counter not in base_counters:
                continue
            base = float(base_counters[counter])
            if counter not in cur_counters:
                failures.append(f"{name}: counter '{counter}' "
                                "missing from the current run")
                continue
            cur = float(cur_counters[counter])
            checked += 1
            limit = base * (1.0 + args.tolerance)
            if cur > limit:
                pct = 100.0 * (cur - base) / base if base else 0.0
                failures.append(
                    f"{name}: {counter} regressed {base:g} -> {cur:g} "
                    f"(+{pct:.1f}%, tolerance "
                    f"{100.0 * args.tolerance:.0f}%)")
            elif base and cur < base / (1.0 + args.tolerance):
                pct = 100.0 * (base - cur) / base
                print(f"note: {name}: {counter} improved "
                      f"{base:g} -> {cur:g} (-{pct:.1f}%) — consider "
                      "refreshing the committed baseline")

    for key in sorted(set(current) - set(baseline)):
        name = f"{key[0]} [{key[1]}]" if key[1] else key[0]
        print(f"note: {name}: new benchmark without a baseline")

    for metric in gated_metrics:
        if metric not in base_metrics:
            print(f"note: metrics.{metric}: no baseline value yet")
            continue
        base = float(base_metrics[metric])
        if metric not in cur_metrics:
            failures.append(f"metrics.{metric}: missing from the "
                            "current run")
            continue
        cur = float(cur_metrics[metric])
        checked += 1
        if cur > base * (1.0 + args.tolerance):
            pct = 100.0 * (cur - base) / base if base else 0.0
            failures.append(
                f"metrics.{metric}: regressed {base:g} -> {cur:g} "
                f"(+{pct:.1f}%, tolerance "
                f"{100.0 * args.tolerance:.0f}%)")
        elif base and cur < base / (1.0 + args.tolerance):
            pct = 100.0 * (base - cur) / base
            print(f"note: metrics.{metric}: improved {base:g} -> "
                  f"{cur:g} (-{pct:.1f}%) — consider refreshing the "
                  "committed baseline")

    for metric in required_positive:
        checked += 1
        if metric not in cur_metrics:
            failures.append(f"metrics.{metric}: missing from the "
                            "current run (required positive)")
        elif float(cur_metrics[metric]) <= 0:
            failures.append(
                f"metrics.{metric}: expected a strictly positive "
                f"value, got {cur_metrics[metric]}")
        else:
            base = float(base_metrics.get(metric, 0.0))
            print(f"note: metrics.{metric} = "
                  f"{cur_metrics[metric]:g} (baseline {base:g})")

    if checked == 0:
        sys.exit("error: no gated counters matched — wrong baseline "
                 "file or counter names?")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) over "
              f"{checked} gated counter(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1

    print(f"OK: {checked} gated counter(s) within "
          f"{100.0 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
