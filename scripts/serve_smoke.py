#!/usr/bin/env python3
"""End-to-end smoke test for the qsa_serve daemon.

Drives the real binaries (not the in-process server the unit tests
use): starts qsa_serve on a Unix-domain socket with a persistent
oracle store and a QSA_TRACE destination, fires N concurrent
qsa_client processes, and checks the serve determinism contract from
the outside:

 - every response is ok (or the expected positioned QASM error),
 - identical requests produce byte-identical "result" members no
   matter how the concurrent batch interleaved,
 - a second (warm-store) round reproduces round one byte-for-byte,
 - an exact-mode locate whose reference overflows the measurement
   branch cap gets a structured error naming the instruction, and the
   SAME connection then serves a normal request and a sampled-mode
   retry of the same wide program (the daemon survives oracle
   derivation failures),
 - SIGTERM drains gracefully: exit status 0 and the atexit QSA_TRACE
   flush produced a well-formed trace file,
 - the store directory actually holds persisted artifacts.

Usage:
  serve_smoke.py --serve build/qsa_serve --client build/qsa_client
      [--clients 8] [--workdir DIR]

Exit status: 0 on success, 1 on any violation.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time


def fail(message):
    sys.exit(f"serve_smoke: FAIL: {message}")


def make_requests(clients):
    """One request per client: locates and checks at repeated seeds
    (so byte-identity across concurrent responses is checkable), one
    lint, and one deliberately malformed circuit."""
    bell = ("OPENQASM 2.0;\\nqreg a[1];\\nqreg b[1];\\n"
            "h a[0];\\ncx a[0],b[0];\\n// qsa.breakpoint done\\n")
    ref = ("OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n"
           "h q[1];\\ncx q[1],q[0];\\n")
    sus = ("OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];\\n"
           "t q[1];\\nh q[1];\\ncx q[1],q[0];\\n")
    check = (
        '{"id": %d, "command": "check", "circuit": "%s",'
        ' "plan": [{"at": "done", "expect": "entangled",'
        ' "register": "a", "register_b": "b"}],'
        ' "seed": %d, "ensemble_size": 128}')
    locate = (
        '{"id": %d, "command": "locate", "circuit": "%s",'
        ' "reference": "%s", "seed": %d, "ensemble_size": 128}')
    requests = []
    for i in range(clients):
        kind = i % 4
        if kind == 0:
            requests.append(check % (i, bell, 7))
        elif kind == 1:
            requests.append(locate % (i, sus, ref, 5))
        elif kind == 2:
            requests.append(check % (i, bell, 11))
        else:
            requests.append(locate % (i, sus, ref, 5))
    # Replace one slot with a positioned-error probe.
    requests[-1] = ('{"id": %d, "command": "lint", "circuit":'
                    ' "OPENQASM 2.0;\\nqreg q[1];\\nzz q[0];\\n"}'
                    % (clients - 1))
    return requests


def run_round(client, socket_path, requests):
    """Fire every request through its own concurrent qsa_client."""
    responses = [None] * len(requests)
    errors = [None] * len(requests)

    def one(i):
        try:
            proc = subprocess.run(
                [client, "--socket", socket_path],
                input=requests[i] + "\n", capture_output=True,
                text=True, timeout=120)
            if proc.returncode != 0:
                errors[i] = f"client exited {proc.returncode}: " \
                            f"{proc.stderr.strip()}"
                return
            responses[i] = proc.stdout.strip()
        except Exception as err:  # noqa: BLE001 - report, don't die
            errors[i] = str(err)

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(len(requests))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i, err in enumerate(errors):
        if err:
            fail(f"client {i}: {err}")
    return responses


def result_member(response_line, i):
    try:
        doc = json.loads(response_line)
    except ValueError as err:
        fail(f"response {i} is not JSON: {err}: {response_line!r}")
    return doc


def check_round(requests, responses):
    """Validate one round and map request text -> result JSON text."""
    by_request = {}
    for i, (request, response) in enumerate(zip(requests, responses)):
        doc = result_member(response, i)
        if '"command": "lint"' in request and "zz" in request:
            if doc.get("ok") is not False:
                fail(f"response {i}: malformed QASM was accepted")
            err = doc.get("error", {})
            if err.get("line") != 3 or err.get("token") != "zz":
                fail(f"response {i}: error not positioned: {err}")
            continue
        if doc.get("ok") is not True:
            fail(f"response {i} not ok: {response}")
        key = request
        result = json.dumps(doc.get("result"), sort_keys=True)
        if key in by_request and by_request[key] != result:
            fail(f"response {i}: identical request produced a "
                 "different result under concurrency")
        by_request[key] = result
    return by_request


def wide_measure_qasm(buggy):
    """Recycle one qubit through 13 measurement rounds (2^13 outcome
    histories — past the exact oracle's branch cap) with a persistent
    prep defect on a second qubit."""
    lines = ["OPENQASM 2.0;", "qreg q[2];"]
    lines += [f"creg m_r{r}[1];" for r in range(13)]
    lines += ["h q[0];", "measure q[0] -> m_r0[0];",
              ("x" if buggy else "h") + " q[1];"]
    for r in range(1, 13):
        lines += ["h q[0];", f"measure q[0] -> m_r{r}[0];"]
    return "\n".join(lines) + "\n"


def check_derive_error_survival(client, socket_path):
    """One client, one connection, three requests: the over-cap exact
    locate must come back as a structured error — and the daemon must
    keep answering on the same socket afterwards."""
    wide = {
        "command": "locate",
        "circuit": wide_measure_qasm(True),
        "reference": wide_measure_qasm(False),
        "mode": "resimulate",
        "ensemble_size": 64,
        "oracle_trials": 2048,
    }
    batch = [
        json.dumps({"id": "over-cap", "oracle_mode": "exact", **wide}),
        json.dumps({"id": "after", "command": "ping"}),
        json.dumps({"id": "retry", "oracle_mode": "sampled", **wide}),
    ]
    proc = subprocess.run(
        [client, "--socket", socket_path],
        input="\n".join(batch) + "\n", capture_output=True,
        text=True, timeout=120)
    if proc.returncode != 0:
        fail("connection died after the over-cap request: client "
             f"exited {proc.returncode}: {proc.stderr.strip()}")
    lines = proc.stdout.strip().splitlines()
    if len(lines) != 3:
        fail(f"expected 3 responses on one connection, got "
             f"{len(lines)}: {proc.stdout!r}")
    over_cap, after, retry = (result_member(line, i)
                              for i, line in enumerate(lines))
    if over_cap.get("ok") is not False:
        fail(f"over-cap exact locate was not an error: {lines[0]}")
    err = over_cap.get("error", {})
    if "exceeded its cap" not in err.get("message", ""):
        fail(f"over-cap error does not name the cap: {err}")
    if "measure" not in err.get("instruction", ""):
        fail(f"over-cap error does not name the instruction: {err}")
    if after.get("ok") is not True:
        fail(f"daemon stopped serving after a derive error: "
             f"{lines[1]}")
    if retry.get("ok") is not True:
        fail(f"sampled-mode retry failed: {lines[2]}")
    if retry.get("result", {}).get("bug_found") is not True:
        fail("sampled-mode retry missed the wide-measurement defect: "
             f"{lines[2]}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", required=True)
    parser.add_argument("--client", required=True)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="qsa_smoke_")
    os.makedirs(workdir, exist_ok=True)
    socket_path = os.path.join(workdir, "serve.sock")
    store_dir = os.path.join(workdir, "store")
    trace_path = os.path.join(workdir, "serve_trace.json")

    env = dict(os.environ, QSA_TRACE=trace_path)
    daemon = subprocess.Popen(
        [args.serve, "--socket", socket_path, "--store", store_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    try:
        line = daemon.stdout.readline()
        if "listening on" not in line:
            fail(f"daemon never came up: {line!r}")

        requests = make_requests(args.clients)
        cold = check_round(requests, run_round(
            args.client, socket_path, requests))

        # Round two replays the identical batch against the now-warm
        # store; every result must come back byte-identical.
        warm = check_round(requests, run_round(
            args.client, socket_path, requests))
        for key, result in cold.items():
            if warm.get(key) != result:
                fail("warm-store replay changed a result:\n"
                     f"  request: {key}\n  cold: {result}\n"
                     f"  warm: {warm.get(key)}")

        check_derive_error_survival(args.client, socket_path)

        if not any(files for _, _, files in os.walk(store_dir)):
            fail(f"oracle store {store_dir} persisted nothing")
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
    status = daemon.wait(timeout=60)
    if status != 0:
        fail(f"daemon exited {status} on SIGTERM "
             f"(output: {daemon.stdout.read()!r})")

    # Graceful exit ran atexit hooks: the trace file must be there
    # and well-formed.
    deadline = time.time() + 10
    while not os.path.exists(trace_path) and time.time() < deadline:
        time.sleep(0.1)
    try:
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as err:
        fail(f"QSA_TRACE flush missing or malformed: {err}")
    if "traceEvents" not in trace:
        fail("trace file has no traceEvents")
    if not any(e.get("name") == "serve.request"
               for e in trace["traceEvents"]):
        fail("trace has no serve.request spans")

    print(f"serve_smoke: OK ({args.clients} concurrent clients, "
          f"{len(trace['traceEvents'])} trace events)")


if __name__ == "__main__":
    main()
