/**
 * @file
 * Tensor-product swap-test tests: simulating the suspect and
 * embedded-reference halves of a swap probe separately and combining
 * only at the ancilla-controlled-SWAP comparator must reproduce the
 * monolithic execution — same seeded overlap Bernoulli histograms,
 * same BugLocator brackets — while cutting per-trial amplitude
 * traffic from 2^(2n+1) toward 2^n.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assertions/checker.hh"
#include "circuit/circuit.hh"
#include "locate/locate.hh"
#include "obs/obs.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;
using qsa::circuit::QubitRegister;
using qsa::locate::BugLocator;
using qsa::locate::LocateConfig;
using qsa::locate::LocalizationReport;
using qsa::locate::ProbeFamily;
using qsa::locate::Strategy;

// --- Engine-level identity on a hand-built swap probe ------------------------

/**
 * The swap-probe shape the SwapProber emits: a suspect-like block on
 * qubits [0, n), a reference-like block on [n, 2n), and the
 * ancilla-controlled-SWAP comparator on everything. The two halves
 * never touch across the split before the comparator, which is what
 * makes the program tensor-splittable at n.
 */
Circuit
probeShapedProgram(unsigned n, bool phase_defect)
{
    Circuit circ(0);
    const auto low = circ.addRegister("low", n);
    const auto high = circ.addRegister("high", n);
    const auto anc = circ.addRegister("anc", 1);

    // Each half carries a mid-circuit measurement, so Resimulate
    // cannot absorb it into a deterministic head: the gates after it
    // re-run per trial — on a 2^n half when staged, on the full
    // 2^(2n+1) space when monolithic.
    const auto half = [&](const QubitRegister &r, bool defect,
                          const std::string &label) {
        for (unsigned q = 0; q < n; ++q)
            circ.h(r.qubit(q));
        circ.measureQubits({r.qubit(0)}, label);
        for (unsigned layer = 0; layer < 2; ++layer) {
            for (unsigned q = 0; q + 1 < n; ++q)
                circ.cnot(r.qubit(q), r.qubit(q + 1));
            for (unsigned q = 0; q < n; ++q)
                circ.t(r.qubit(q));
            circ.h(r.qubit(1));
        }
        if (defect)
            circ.s(r.qubit(1));
        else
            circ.t(r.qubit(1));
    };
    half(low, false, "m_low");
    half(high, phase_defect, "m_high");

    const unsigned a = anc.qubit(0);
    circ.h(a);
    for (unsigned q = 0; q < n; ++q)
        circ.cswap(a, low.qubit(q), high.qubit(q));
    circ.h(a);
    circ.breakpoint("cmp");
    return circ;
}

assertions::CheckConfig
splitConfig(unsigned tensor_split, unsigned threads,
            assertions::EnsembleMode mode)
{
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 256;
    cfg.seed = 0x7e4501;
    cfg.numThreads = threads;
    cfg.mode = mode;
    cfg.tensorSplit = tensor_split;
    return cfg;
}

assertions::AssertionSpec
ancillaSpec(const Circuit &circ)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Superposition;
    spec.breakpoint = "cmp";
    spec.regA = circ.reg("anc");
    return spec;
}

/**
 * The staged halves round differently from the monolithic product
 * state, but the ancilla's Bernoulli parameter is far from every
 * seeded draw, so the overlap histograms must be exactly equal in
 * both modes — and bit-identical across thread counts regardless.
 */
void
expectSameAncillaHistograms(bool phase_defect)
{
    const unsigned n = 3;
    const Circuit circ = probeShapedProgram(n, phase_defect);
    const auto spec = ancillaSpec(circ);

    for (const auto mode :
         {assertions::EnsembleMode::SampleFinalState,
          assertions::EnsembleMode::Resimulate}) {
        std::map<std::uint64_t, std::uint64_t> reference;
        bool have_reference = false;
        for (const unsigned split : {0u, n}) {
            for (const unsigned threads : {1u, 4u, 0u}) {
                const assertions::AssertionChecker checker(
                    circ, splitConfig(split, threads, mode));
                const auto outcome = checker.check(spec);
                if (!have_reference) {
                    reference = outcome.countsA;
                    have_reference = true;
                    continue;
                }
                EXPECT_EQ(outcome.countsA, reference)
                    << "defect=" << phase_defect
                    << " split=" << split << " threads=" << threads;
            }
        }
        // The overlap deficit must actually register on the ancilla.
        // Without the defect only Resimulate can show it (the halves'
        // mid-circuit collapses differ across trials; SampleFinalState
        // follows a single trajectory whose collapses may coincide).
        const auto ones = reference.count(1) ? reference.at(1) : 0;
        if (phase_defect ||
            mode == assertions::EnsembleMode::Resimulate) {
            EXPECT_GT(ones, 0u) << "mode " << (int)mode;
        }
    }
}

TEST(TensorSplitEngine, IdenticalHalvesSameHistograms)
{
    expectSameAncillaHistograms(false);
}

TEST(TensorSplitEngine, PhaseDefectSameHistograms)
{
    expectSameAncillaHistograms(true);
}

#if QSA_OBS_ENABLED

TEST(TensorSplitEngine, StagedTrialsCutAmpTouches)
{
    const unsigned n = 4;
    const Circuit circ = probeShapedProgram(n, true);
    const auto spec = ancillaSpec(circ);

    const auto touches = [&](unsigned split) {
        obs::Registry::reset();
        const assertions::AssertionChecker checker(
            circ,
            splitConfig(split, 1,
                        assertions::EnsembleMode::Resimulate));
        (void)checker.check(spec);
        for (const auto &[name, value] : obs::Registry::snapshot())
            if (name == "sim.amp_touches")
                return value;
        return (std::int64_t)0;
    };

    const auto monolithic = touches(0);
    const auto staged = touches(n);
    ASSERT_GT(monolithic, 0);
    ASSERT_GT(staged, 0);
    // Pre-comparator gates run on 2^n-amplitude halves instead of the
    // full 2^(2n+1) space; the headline claim is >= 2x overall.
    EXPECT_LT(2 * staged, monolithic)
        << "staged=" << staged << " monolithic=" << monolithic;
}

#endif // QSA_OBS_ENABLED

// --- BugLocator bracket parity on a phase-blind fixture ----------------------

/** Suspect/reference pair whose only divergence is a relative phase. */
struct Pair
{
    Circuit suspect{0};
    Circuit reference{0};
};

/** Instruction index of the S-for-Z phase defect below. */
constexpr std::size_t kPhaseDefect = 7;

Pair
phaseDefectPair()
{
    Pair pair;
    for (Circuit *circ : {&pair.suspect, &pair.reference}) {
        const bool buggy = circ == &pair.suspect;
        const auto q = circ->addRegister("q", 3);
        circ->h(0);
        circ->h(1);
        circ->h(2);
        circ->cnot(0, 1);
        circ->t(0);
        circ->cnot(1, 2);
        circ->s(2);
        if (buggy)
            circ->s(1); // defect: S where the reference applies Z
        else
            circ->z(1);
        circ->cnot(0, 2);
        circ->h(1);
        circ->t(2);
        circ->h(0);
        (void)q;
    }
    return pair;
}

LocateConfig
swapConfig(bool tensor, Strategy strategy = Strategy::AdaptiveBinarySearch)
{
    LocateConfig cfg;
    cfg.family = ProbeFamily::SwapTest;
    cfg.strategy = strategy;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.tensorSwapProbes = tensor;
    return cfg;
}

void
expectSameBrackets(const LocalizationReport &a,
                   const LocalizationReport &b)
{
    EXPECT_EQ(a.lastPassing, b.lastPassing);
    EXPECT_EQ(a.firstFailing, b.firstFailing);
    ASSERT_EQ(a.probes.size(), b.probes.size());
    for (std::size_t i = 0; i < a.probes.size(); ++i) {
        EXPECT_EQ(a.probes[i].boundary, b.probes[i].boundary);
        EXPECT_EQ(a.probes[i].ensembleSize, b.probes[i].ensembleSize);
        EXPECT_EQ(a.probes[i].failed, b.probes[i].failed);
    }
}

TEST(TensorSplitLocate, SwapProbeBracketParity)
{
    const Pair pair = phaseDefectPair();
    const QubitRegister q = pair.suspect.reg("q");

    for (const auto strategy :
         {Strategy::AdaptiveBinarySearch, Strategy::LinearScan}) {
        const BugLocator staged(pair.suspect, pair.reference,
                                swapConfig(true, strategy));
        const BugLocator monolithic(pair.suspect, pair.reference,
                                    swapConfig(false, strategy));
        const auto a = staged.locateByPredicates(q);
        const auto b = monolithic.locateByPredicates(q);

        // The staged and monolithic probes draw the same trial
        // streams against the same overlap Bernoulli, so the whole
        // probe trajectory — boundaries, escalations, verdicts —
        // must match, and both must bracket the phase defect.
        expectSameBrackets(a, b);
        EXPECT_EQ(a.suspectBegin(), kPhaseDefect) << a.summary();
        EXPECT_EQ(b.suspectBegin(), kPhaseDefect) << b.summary();
    }
}

TEST(TensorSplitLocate, StagedProbesThreadCountInvariant)
{
    const Pair pair = phaseDefectPair();
    const QubitRegister q = pair.suspect.reg("q");

    std::vector<LocalizationReport> reports;
    for (const unsigned threads : {1u, 4u, 0u}) {
        LocateConfig cfg = swapConfig(true);
        cfg.numThreads = threads;
        const BugLocator locator(pair.suspect, pair.reference, cfg);
        reports.push_back(locator.locateByPredicates(q));
    }
    for (std::size_t r = 1; r < reports.size(); ++r) {
        expectSameBrackets(reports.front(), reports[r]);
        // Staged trials key their streams by trial index, never by
        // worker or shard, so even the p-values are bit-identical.
        for (std::size_t i = 0; i < reports[r].probes.size(); ++i)
            EXPECT_EQ(reports.front().probes[i].pValue,
                      reports[r].probes[i].pValue);
    }
}

} // anonymous namespace
