/**
 * @file
 * Tests for the Clifford abstract interpreter: stabilizer-tableau
 * unit semantics, instruction lowering, the soundness contract of
 * CliffordSimulation (exact predicates inside the decidable fragment,
 * Top past it — never a wrong answer), the boundary-for-boundary
 * agreement with the simulated locate::PredicateOracle on
 * Clifford-only programs, prefix-equivalence certification, and the
 * static discharge of expectClassical specs via Session::analyze().
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using analyze::CliffordOp;
using analyze::CliffordSimulation;
using analyze::CliffordUnitary;
using analyze::StabilizerTableau;
using assertions::AssertionKind;
using circuit::Circuit;
using circuit::QubitRegister;

// --- StabilizerTableau -----------------------------------------------------

TEST(Tableau, FreshStateIsDeterministicZero)
{
    StabilizerTableau tab(3);
    EXPECT_EQ(tab.numQubits(), 3u);
    for (std::size_t q = 0; q < 3; ++q) {
        EXPECT_TRUE(tab.measureIsDeterministic(q));
        EXPECT_FALSE(tab.deterministicValue(q));
        EXPECT_TRUE(tab.qubitIsUnentangled(q));
    }
}

TEST(Tableau, PauliGatesFlipDeterministicValues)
{
    StabilizerTableau tab(2);
    tab.x(0);
    EXPECT_TRUE(tab.measureIsDeterministic(0));
    EXPECT_TRUE(tab.deterministicValue(0));

    tab.y(1); // Y|0> = i|1>: Z-value 1
    EXPECT_TRUE(tab.deterministicValue(1));

    tab.z(0); // diagonal: no Z-value change
    EXPECT_TRUE(tab.deterministicValue(0));

    tab.swap(0, 1);
    EXPECT_TRUE(tab.deterministicValue(0));
    EXPECT_TRUE(tab.deterministicValue(1));
}

TEST(Tableau, HadamardRandomizesAndForceMeasureCollapses)
{
    StabilizerTableau tab(1);
    tab.h(0);
    EXPECT_FALSE(tab.measureIsDeterministic(0));

    const bool outcome = tab.forceMeasure(0, true);
    EXPECT_TRUE(outcome);
    EXPECT_TRUE(tab.measureIsDeterministic(0));
    EXPECT_TRUE(tab.deterministicValue(0));
}

TEST(Tableau, ForceMeasureReturnsDeterministicValueWhenFixed)
{
    StabilizerTableau tab(1);
    tab.x(0);
    // Forcing 0 on a qubit pinned to 1 reports the real outcome.
    EXPECT_TRUE(tab.forceMeasure(0, false));
}

TEST(Tableau, EntanglementTracking)
{
    StabilizerTableau tab(3);
    tab.h(0);
    EXPECT_TRUE(tab.qubitIsUnentangled(0)) << "|+> is a product state";

    tab.cnot(0, 1); // Bell pair
    EXPECT_FALSE(tab.qubitIsUnentangled(0));
    EXPECT_FALSE(tab.qubitIsUnentangled(1));
    EXPECT_TRUE(tab.qubitIsUnentangled(2));

    tab.cnot(0, 1); // uncompute
    EXPECT_TRUE(tab.qubitIsUnentangled(0));
    EXPECT_TRUE(tab.qubitIsUnentangled(1));

    tab.s(0);
    tab.sdg(0);
    EXPECT_TRUE(tab.qubitIsUnentangled(0));

    // CZ between |+> qubits entangles; on a |0> control it is inert.
    tab.h(1);
    tab.cz(0, 1);
    EXPECT_FALSE(tab.qubitIsUnentangled(0));
    EXPECT_FALSE(tab.qubitIsUnentangled(1));
}

// --- cliffordDecompose -----------------------------------------------------

/** The single instruction of a one-gate circuit builder. */
template <typename Build>
circuit::Instruction
oneGate(unsigned num_qubits, Build build)
{
    Circuit circ;
    const auto q = circ.addRegister("q", num_qubits);
    build(circ, q);
    return circ.instructions().back();
}

/** Unitary image of an op list on `n` qubits. */
CliffordUnitary
unitaryOf(std::size_t n, const std::vector<CliffordOp> &ops)
{
    CliffordUnitary u(n);
    u.apply(ops);
    return u;
}

TEST(CliffordDecompose, ElementaryGatesLower)
{
    const auto h = analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) { c.h(q[0]); }));
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->size(), 1u);

    const auto cnot = analyze::cliffordDecompose(oneGate(
        2, [](Circuit &c, const QubitRegister &q) { c.cnot(q[0], q[1]); }));
    ASSERT_TRUE(cnot.has_value());

    const auto brk = analyze::cliffordDecompose(oneGate(
        1, [](Circuit &c, const QubitRegister &) { c.breakpoint("x"); }));
    ASSERT_TRUE(brk.has_value());
    EXPECT_TRUE(brk->empty()) << "breakpoint is the identity";
}

TEST(CliffordDecompose, QuarterTurnAnglesSnap)
{
    const double half_pi = 1.5707963267948966;
    const auto rz = analyze::cliffordDecompose(
        oneGate(1, [&](Circuit &c, const QubitRegister &q) {
            c.rz(q[0], half_pi);
        }));
    ASSERT_TRUE(rz.has_value());
    const auto s_gate = analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) { c.s(q[0]); }));
    ASSERT_TRUE(s_gate.has_value());
    EXPECT_TRUE(unitaryOf(1, *rz) == unitaryOf(1, *s_gate))
        << "Rz(pi/2) acts as S up to global phase";

    const auto phase_pi = analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) {
            c.phase(q[0], 3.141592653589793);
        }));
    ASSERT_TRUE(phase_pi.has_value());
    const auto z_gate = analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) { c.z(q[0]); }));
    EXPECT_TRUE(unitaryOf(1, *phase_pi) == unitaryOf(1, *z_gate));
}

TEST(CliffordDecompose, NonCliffordRejected)
{
    EXPECT_FALSE(analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) { c.t(q[0]); })));
    EXPECT_FALSE(analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) {
            c.rz(q[0], 0.3);
        })));
    EXPECT_FALSE(analyze::cliffordDecompose(oneGate(
        3, [](Circuit &c, const QubitRegister &q) {
            c.ccnot(q[0], q[1], q[2]);
        })));
    EXPECT_FALSE(analyze::cliffordDecompose(oneGate(
        1, [](Circuit &c, const QubitRegister &q) { c.prepZ(q[0], 0); })));
    EXPECT_FALSE(analyze::cliffordDecompose(
        oneGate(1, [](Circuit &c, const QubitRegister &q) {
            c.measureQubits({q[0]}, "m");
        })));
}

// --- CliffordUnitary -------------------------------------------------------

TEST(CliffordUnitaryAlgebra, KnownIdentities)
{
    using K = CliffordOp::Kind;

    // HZH = X.
    CliffordUnitary hzh(1), x(1);
    hzh.apply({{K::H, 0, 0}, {K::Z, 0, 0}, {K::H, 0, 0}});
    x.apply({{K::X, 0, 0}});
    EXPECT_TRUE(hzh == x);

    // SS = Z.
    CliffordUnitary ss(1), z(1);
    ss.apply({{K::S, 0, 0}, {K::S, 0, 0}});
    z.apply({{K::Z, 0, 0}});
    EXPECT_TRUE(ss == z);

    // XZ = -ZX: equal once global phase is dropped.
    CliffordUnitary xz(1), zx(1);
    xz.apply({{K::X, 0, 0}, {K::Z, 0, 0}});
    zx.apply({{K::Z, 0, 0}, {K::X, 0, 0}});
    EXPECT_TRUE(xz == zx);

    CliffordUnitary h(1);
    h.apply({{K::H, 0, 0}});
    EXPECT_TRUE(h != x);
    EXPECT_TRUE(CliffordUnitary(1) != x);
}

// --- CliffordSimulation: oracle agreement ----------------------------------

/**
 * The tentpole soundness criterion: on a Clifford-only program the
 * statically derived predicate must match the simulated oracle's at
 * every boundary, for every probed register.
 */
void
expectOracleAgreement(const Circuit &circ, const QubitRegister &reg,
                      const std::string &where)
{
    const CliffordSimulation sim(circ);
    ASSERT_EQ(sim.decidableBoundary(), circ.size())
        << where << ": expected a fully decidable program ("
        << sim.topReason() << ")";

    const locate::PredicateOracle oracle(circ, reg);
    for (std::size_t b = 0; b <= circ.size(); ++b) {
        const locate::BoundaryPredicate got = sim.predicateAt(b, reg);
        const locate::BoundaryPredicate want = oracle.at(b);
        ASSERT_EQ(got.kind, want.kind)
            << where << " boundary " << b << ": static "
            << assertions::assertionKindName(got.kind) << " vs oracle "
            << assertions::assertionKindName(want.kind);
        if (want.kind == AssertionKind::Classical) {
            EXPECT_EQ(got.expectedValue, want.expectedValue)
                << where << " boundary " << b;
        } else if (want.kind == AssertionKind::Distribution) {
            ASSERT_EQ(got.expectedProbs.size(),
                      want.expectedProbs.size())
                << where << " boundary " << b;
            for (std::size_t v = 0; v < want.expectedProbs.size(); ++v) {
                EXPECT_NEAR(got.expectedProbs[v], want.expectedProbs[v],
                            1e-12)
                    << where << " boundary " << b << " value " << v;
            }
        }
    }
}

TEST(CliffordVsOracle, BellPairWithDressing)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.x(q[0]);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.s(q[1]);
    circ.z(q[0]);
    circ.cz(q[0], q[1]);
    circ.h(q[1]);
    expectOracleAgreement(circ, q, "bell-dressed");
}

TEST(CliffordVsOracle, GhzMarginalsPerRegister)
{
    Circuit circ;
    const auto a = circ.addRegister("a", 2);
    const auto b = circ.addRegister("b", 1);
    circ.h(a[0]);
    circ.cnot(a[0], a[1]);
    circ.cnot(a[1], b[0]);
    circ.x(b[0]);
    circ.swap(a[0], a[1]);

    // A GHZ sub-register marginal is a correlated two-point
    // distribution: the Distribution kind path on both sides.
    expectOracleAgreement(circ, a, "ghz[a]");
    expectOracleAgreement(circ, b, "ghz[b]");
}

TEST(CliffordVsOracle, DeterministicMeasurementAndCondition)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.x(q[0]);
    circ.measureQubits({q[0]}, "m");
    circ.x(q[1]);
    circ.conditionLast("m", 1); // statically fires
    circ.z(q[1]);
    circ.conditionLast("m", 0); // statically dead
    circ.h(q[1]);
    expectOracleAgreement(circ, q, "semiclassical");

    const CliffordSimulation sim(circ);
    ASSERT_EQ(sim.labels().count("m"), 1u);
    EXPECT_EQ(sim.labels().at("m"), 1u);
}

TEST(CliffordVsOracle, PrepZRecyclingAgrees)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.x(q[0]);
    circ.prepZ(q[0], 0); // reset of a deterministic qubit
    circ.h(q[1]);
    circ.prepZ(q[1], 1); // reset of a random product qubit
    expectOracleAgreement(circ, q, "prepz");
}

// --- CliffordSimulation: Top degradation -----------------------------------

TEST(CliffordTop, NonCliffordGateDegrades)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.t(q[0]);
    circ.h(q[0]);

    const CliffordSimulation sim(circ);
    EXPECT_EQ(sim.numBoundaries(), 4u);
    EXPECT_EQ(sim.decidableBoundary(), 1u);
    EXPECT_TRUE(sim.decidableAt(1));
    EXPECT_FALSE(sim.decidableAt(2));
    EXPECT_NE(sim.topReason().find("instruction 1"), std::string::npos)
        << sim.topReason();
    EXPECT_NE(sim.topReason().find("Clifford"), std::string::npos);
}

TEST(CliffordTop, NondeterministicMeasurementDegrades)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m");

    const CliffordSimulation sim(circ);
    EXPECT_EQ(sim.decidableBoundary(), 1u);
    EXPECT_NE(sim.topReason().find("nondeterministic"),
              std::string::npos)
        << sim.topReason();
    EXPECT_TRUE(sim.labels().empty());
}

TEST(CliffordTop, EntangledResetDegrades)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.prepZ(q[1], 0);

    const CliffordSimulation sim(circ);
    EXPECT_EQ(sim.decidableBoundary(), 2u);
    EXPECT_NE(sim.topReason().find("reset"), std::string::npos)
        << sim.topReason();
}

TEST(CliffordTop, UnknownConditionLabelDegrades)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.x(q[0]);
    circ.conditionLast("ghost", 1);

    const CliffordSimulation sim(circ);
    EXPECT_EQ(sim.decidableBoundary(), 0u);
    EXPECT_NE(sim.topReason().find("ghost"), std::string::npos)
        << sim.topReason();
}

// --- equivalentPrefixBoundary ----------------------------------------------

TEST(PrefixEquivalence, IdenticalProgramsCertifyFully)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.t(q[0]); // non-Clifford: structural equality carries it
    circ.cnot(q[0], q[1]);
    circ.measureQubits({q[0], q[1]}, "out");

    EXPECT_EQ(analyze::equivalentPrefixBoundary(circ, circ),
              circ.size());
}

TEST(PrefixEquivalence, QubitCountMismatchOrImmediateDivergence)
{
    Circuit a, b;
    const auto qa = a.addRegister("q", 2);
    const auto qb = b.addRegister("q", 3);
    a.h(qa[0]);
    b.h(qb[0]);
    EXPECT_EQ(analyze::equivalentPrefixBoundary(a, b), 0u);

    Circuit c, d;
    const auto qc = c.addRegister("q", 1);
    const auto qd = d.addRegister("q", 1);
    c.t(qc[0]); // non-Clifford: no run can absorb the mismatch
    d.x(qd[0]);
    EXPECT_EQ(analyze::equivalentPrefixBoundary(c, d), 0u);
}

TEST(PrefixEquivalence, CommutedPauliRunCertifiesPastReordering)
{
    // x;z vs z;x differ structurally but are the same unitary up to
    // global phase; the run barrier is the shared breakpoint.
    Circuit s, r;
    const auto qs = s.addRegister("q", 1);
    const auto qr = r.addRegister("q", 1);
    s.x(qs[0]);
    s.z(qs[0]);
    s.breakpoint("sync");
    s.h(qs[0]);
    r.z(qr[0]);
    r.x(qr[0]);
    r.breakpoint("sync");
    r.h(qr[0]);

    EXPECT_EQ(analyze::equivalentPrefixBoundary(s, r), 4u);
}

TEST(PrefixEquivalence, EndOfProgramActsAsRunBarrier)
{
    Circuit s, r;
    const auto qs = s.addRegister("q", 1);
    const auto qr = r.addRegister("q", 1);
    s.x(qs[0]);
    s.z(qs[0]);
    r.z(qr[0]);
    r.x(qr[0]);
    EXPECT_EQ(analyze::equivalentPrefixBoundary(s, r), 2u);
}

TEST(PrefixEquivalence, UnequalRunLengthsAreNotCertified)
{
    // h;z;h equals x as a unitary, but the runs end at different
    // indices, so certification soundly declines (boundary indices
    // would not correspond).
    Circuit s, r;
    const auto qs = s.addRegister("q", 1);
    const auto qr = r.addRegister("q", 1);
    s.h(qs[0]);
    s.z(qs[0]);
    s.h(qs[0]);
    s.breakpoint("sync");
    r.x(qr[0]);
    r.breakpoint("sync");
    EXPECT_EQ(analyze::equivalentPrefixBoundary(s, r), 0u);
}

TEST(PrefixEquivalence, DivergentRunStopsCertification)
{
    Circuit s, r;
    const auto qs = s.addRegister("q", 2);
    const auto qr = r.addRegister("q", 2);
    s.h(qs[0]);
    s.cnot(qs[0], qs[1]);
    s.h(qs[0]); // diverges: H on q0
    r.h(qr[0]);
    r.cnot(qr[0], qr[1]);
    r.h(qr[1]); // vs H on q1
    EXPECT_EQ(analyze::equivalentPrefixBoundary(s, r), 2u);
}

// --- Session::analyze ------------------------------------------------------

TEST(SessionAnalyze, StaticallyDischargesClassicalSpecs)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.x(q[0]);
    circ.cnot(q[0], q[1]);
    circ.t(q[0]);

    session::Session s(circ);
    s.after(2).expectClassical(q, 3).named("both-set");
    s.after(2).expectClassical(q, 1).named("wrong-value");
    s.after(3).expectClassical(q, 3).named("past-the-t");
    s.after(1).expectSuperposition(q); // not statically dischargeable

    session::AnalysisReport report = s.analyze();
    ASSERT_EQ(report.checks.size(), 3u)
        << "only expectClassical specs are adjudicated";

    EXPECT_EQ(report.checks[0].verdict,
              session::StaticVerdict::Verified);
    EXPECT_EQ(report.checks[0].name, "both-set");
    EXPECT_EQ(report.checks[1].verdict,
              session::StaticVerdict::Refuted);
    EXPECT_EQ(report.checks[2].verdict,
              session::StaticVerdict::Undecidable);
    EXPECT_FALSE(report.checks[2].detail.empty());

    EXPECT_EQ(report.count(session::StaticVerdict::Verified), 1u);
    EXPECT_EQ(report.count(session::StaticVerdict::Refuted), 1u);
    EXPECT_EQ(report.count(session::StaticVerdict::Undecidable), 1u);
    EXPECT_FALSE(report.clean()) << "a refuted check is not clean";

    const std::string text = report.render();
    EXPECT_NE(text.find("wrong-value"), std::string::npos);
    EXPECT_NE(text.find("refuted"), std::string::npos);
}

TEST(SessionAnalyze, StaticVerdictAgreesWithTheEnsemble)
{
    // Soundness end-to-end: the static verdicts and the statistical
    // verdicts agree on the same plan.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.x(q[0]);
    circ.cnot(q[0], q[1]);

    session::Session s(circ);
    s.ensembleSize(64).seed(7);
    auto &good = s.after(2).expectClassical(q, 3);
    auto &bad = s.after(2).expectClassical(q, 2);

    session::AnalysisReport report = s.analyze();
    ASSERT_EQ(report.checks.size(), 2u);
    EXPECT_EQ(report.checks[0].verdict,
              session::StaticVerdict::Verified);
    EXPECT_EQ(report.checks[1].verdict,
              session::StaticVerdict::Refuted);

    EXPECT_TRUE(good.passed());
    EXPECT_FALSE(bad.passed());
}

TEST(SessionAnalyze, LintHalfCoversTheOriginalProgram)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.h(q[0]); // adjacent-self-inverse
    circ.x(q[0]);

    session::Session s(circ);
    session::AnalysisReport report = s.analyze();
    EXPECT_TRUE(report.checks.empty());
    ASSERT_EQ(report.lint.diagnostics.size(), 1u);
    EXPECT_EQ(report.lint.diagnostics[0].rule, "adjacent-self-inverse");
    EXPECT_TRUE(report.clean())
        << "info findings do not dirty the analysis";
}

TEST(SessionAnalyze, VerdictNames)
{
    EXPECT_EQ(session::staticVerdictName(
                  session::StaticVerdict::Verified),
              "verified");
    EXPECT_EQ(session::staticVerdictName(
                  session::StaticVerdict::Refuted),
              "refuted");
    EXPECT_EQ(session::staticVerdictName(
                  session::StaticVerdict::Undecidable),
              "undecidable");
}

} // anonymous namespace
