/**
 * @file
 * Unit tests for the state-vector simulator: gate algebra, measurement
 * statistics, entanglement ground truth, dense-matrix cross checks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "sim/gates.hh"
#include "sim/matrix.hh"
#include "sim/statevector.hh"

namespace
{

using namespace qsa;
using namespace qsa::sim;

constexpr double tol = 1e-12;

TEST(Mat2, StandardGatesAreUnitary)
{
    EXPECT_TRUE(matIsUnitary(gates::h()));
    EXPECT_TRUE(matIsUnitary(gates::x()));
    EXPECT_TRUE(matIsUnitary(gates::y()));
    EXPECT_TRUE(matIsUnitary(gates::z()));
    EXPECT_TRUE(matIsUnitary(gates::s()));
    EXPECT_TRUE(matIsUnitary(gates::t()));
    EXPECT_TRUE(matIsUnitary(gates::rx(0.731)));
    EXPECT_TRUE(matIsUnitary(gates::ry(1.234)));
    EXPECT_TRUE(matIsUnitary(gates::rz(2.5)));
    EXPECT_TRUE(matIsUnitary(gates::phase(0.77)));
}

TEST(Mat2, GateIdentities)
{
    // H^2 = I, S^2 = Z, T^2 = S.
    EXPECT_LT(matDistance(matMul(gates::h(), gates::h()),
                          gates::identity()), tol);
    EXPECT_LT(matDistance(matMul(gates::s(), gates::s()), gates::z()),
              tol);
    EXPECT_LT(matDistance(matMul(gates::t(), gates::t()), gates::s()),
              tol);
    // HXH = Z.
    EXPECT_LT(matDistance(matMul(gates::h(),
                                 matMul(gates::x(), gates::h())),
                          gates::z()), tol);
}

TEST(Mat2, RzVersusPhaseGlobalPhase)
{
    // phase(t) = e^{it/2} rz(t): identical up to global phase, which
    // matters exactly when controlled (Section 4.2 of the paper).
    const double theta = 0.9;
    const Mat2 rz = gates::rz(theta);
    const Mat2 ph = gates::phase(theta);
    const Complex factor = std::exp(Complex(0, theta / 2.0));
    EXPECT_NEAR(std::abs(ph.a00 - factor * rz.a00), 0.0, tol);
    EXPECT_NEAR(std::abs(ph.a11 - factor * rz.a11), 0.0, tol);
}

TEST(StateVector, InitialState)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_NEAR(std::abs(sv.amp(0) - Complex(1.0)), 0.0, tol);
    EXPECT_NEAR(sv.norm(), 1.0, tol);
}

TEST(StateVector, XFlipsBit)
{
    StateVector sv(2);
    sv.applyGate(gates::x(), 1);
    EXPECT_NEAR(std::abs(sv.amp(2) - Complex(1.0)), 0.0, tol);
}

TEST(StateVector, HadamardSuperposition)
{
    StateVector sv(1);
    sv.applyGate(gates::h(), 0);
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0 / std::sqrt(2.0), tol);
    EXPECT_NEAR(std::abs(sv.amp(1)), 1.0 / std::sqrt(2.0), tol);
    EXPECT_NEAR(sv.probabilityOne(0), 0.5, tol);
}

TEST(StateVector, BellStateAmplitudes)
{
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    sv.applyControlled(gates::x(), {0}, 1);
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0 / std::sqrt(2.0), tol);
    EXPECT_NEAR(std::abs(sv.amp(3)), 1.0 / std::sqrt(2.0), tol);
    EXPECT_NEAR(std::abs(sv.amp(1)), 0.0, tol);
    EXPECT_NEAR(std::abs(sv.amp(2)), 0.0, tol);
}

TEST(StateVector, ControlledGateRespectsControls)
{
    StateVector sv(2);
    // Control is |0>: nothing happens.
    sv.applyControlled(gates::x(), {0}, 1);
    EXPECT_NEAR(std::abs(sv.amp(0) - Complex(1.0)), 0.0, tol);
    // Set control, now target flips.
    sv.applyGate(gates::x(), 0);
    sv.applyControlled(gates::x(), {0}, 1);
    EXPECT_NEAR(std::abs(sv.amp(3) - Complex(1.0)), 0.0, tol);
}

TEST(StateVector, ToffoliTruthTable)
{
    for (std::uint64_t input = 0; input < 8; ++input) {
        StateVector sv(3);
        sv.setBasisState(input);
        sv.applyControlled(gates::x(), {0, 1}, 2);
        const std::uint64_t expected =
            (input & 3) == 3 ? input ^ 4 : input;
        EXPECT_NEAR(std::abs(sv.amp(expected)), 1.0, tol)
            << "input " << input;
    }
}

TEST(StateVector, SwapExchangesQubits)
{
    StateVector sv(2);
    sv.applyGate(gates::x(), 0); // |01>
    sv.applySwap(0, 1);
    EXPECT_NEAR(std::abs(sv.amp(2)), 1.0, tol); // |10>
}

TEST(StateVector, FredkinTruthTable)
{
    for (std::uint64_t input = 0; input < 8; ++input) {
        StateVector sv(3);
        sv.setBasisState(input);
        sv.applyControlledSwap({2}, 0, 1);
        std::uint64_t expected = input;
        if (input & 4) {
            const std::uint64_t b0 = input & 1, b1 = (input >> 1) & 1;
            expected = (input & 4) | (b0 << 1) | b1;
        }
        EXPECT_NEAR(std::abs(sv.amp(expected)), 1.0, tol)
            << "input " << input;
    }
}

TEST(StateVector, DenseUnitaryMatchesGates)
{
    // Applying CNOT as a dense 2-qubit unitary must equal the native
    // controlled-X path (cross-validation of the two code paths).
    CMatrix cnot(4);
    cnot.at(0, 0) = 1;
    cnot.at(1, 3) = 1;
    cnot.at(2, 2) = 1;
    cnot.at(3, 1) = 1;

    for (std::uint64_t input = 0; input < 4; ++input) {
        StateVector a(2), b(2);
        a.setBasisState(input);
        b.setBasisState(input);
        a.applyControlled(gates::x(), {0}, 1);
        // qubits = {0, 1}: qubit 0 is the matrix LSB (the control).
        b.applyUnitary(cnot, {0, 1});
        EXPECT_NEAR(a.fidelity(b), 1.0, tol) << "input " << input;
    }
}

TEST(StateVector, ControlledUnitaryOnSubset)
{
    // Controlled-H via dense path equals native controlled-H.
    const CMatrix h2 = CMatrix::fromMat2(gates::h());
    StateVector a(3), b(3);
    a.setBasisState(0b101);
    b.setBasisState(0b101);
    a.applyControlled(gates::h(), {0}, 2);
    b.applyControlledUnitary(h2, {0}, {2});
    EXPECT_NEAR(a.fidelity(b), 1.0, tol);
}

TEST(StateVector, MeasurementCollapses)
{
    qsa::Rng rng(3);
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    sv.applyControlled(gates::x(), {0}, 1);

    const unsigned m0 = sv.measureQubit(0, rng);
    // After measuring one half of a Bell pair the other is determined.
    EXPECT_NEAR(sv.probabilityOne(1), (double)m0, tol);
    EXPECT_NEAR(sv.norm(), 1.0, tol);
}

TEST(StateVector, MeasurementStatistics)
{
    qsa::Rng rng(5);
    int ones = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        StateVector sv(1);
        sv.applyGate(gates::ry(2.0 * std::asin(std::sqrt(0.3))), 0);
        ones += sv.measureQubit(0, rng);
    }
    EXPECT_NEAR(ones / (double)n, 0.3, 0.035);
}

TEST(StateVector, MeasureQubitsPacksBits)
{
    qsa::Rng rng(7);
    StateVector sv(3);
    sv.setBasisState(0b110);
    EXPECT_EQ(sv.measureQubits({1, 2}, rng), 0b11u);
    EXPECT_EQ(sv.measureQubits({0}, rng), 0u);
}

TEST(StateVector, PrepZResets)
{
    qsa::Rng rng(11);
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    sv.prepZ(0, 1, rng);
    EXPECT_NEAR(sv.probabilityOne(0), 1.0, tol);
    sv.prepZ(0, 0, rng);
    EXPECT_NEAR(sv.probabilityOne(0), 0.0, tol);
}

TEST(StateVector, MarginalProbs)
{
    StateVector sv(3);
    sv.applyGate(gates::h(), 0);
    sv.applyControlled(gates::x(), {0}, 2);
    // Qubits 0 and 2 are perfectly correlated.
    const auto probs = sv.marginalProbs({0, 2});
    EXPECT_NEAR(probs[0b00], 0.5, tol);
    EXPECT_NEAR(probs[0b11], 0.5, tol);
    EXPECT_NEAR(probs[0b01], 0.0, tol);
    EXPECT_NEAR(probs[0b10], 0.0, tol);
}

TEST(StateVector, MarginalOrderMatters)
{
    StateVector sv(2);
    sv.applyGate(gates::x(), 1); // |10>
    const auto lsb_first = sv.marginalProbs({0, 1});
    const auto msb_first = sv.marginalProbs({1, 0});
    EXPECT_NEAR(lsb_first[0b10], 1.0, tol);
    EXPECT_NEAR(msb_first[0b01], 1.0, tol);
}

TEST(StateVector, PurityProductState)
{
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    EXPECT_NEAR(sv.subsystemPurity({0}), 1.0, tol);
    EXPECT_NEAR(sv.subsystemPurity({1}), 1.0, tol);
}

TEST(StateVector, PurityBellState)
{
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    sv.applyControlled(gates::x(), {0}, 1);
    // Maximally entangled: each half is maximally mixed, purity 1/2.
    EXPECT_NEAR(sv.subsystemPurity({0}), 0.5, tol);
    EXPECT_NEAR(sv.subsystemPurity({1}), 0.5, tol);
}

TEST(StateVector, ReducedDensityMatrixBell)
{
    StateVector sv(2);
    sv.applyGate(gates::h(), 0);
    sv.applyControlled(gates::x(), {0}, 1);
    const CMatrix rho = sv.reducedDensityMatrix({0});
    EXPECT_NEAR(std::abs(rho.at(0, 0) - Complex(0.5)), 0.0, tol);
    EXPECT_NEAR(std::abs(rho.at(1, 1) - Complex(0.5)), 0.0, tol);
    EXPECT_NEAR(std::abs(rho.at(0, 1)), 0.0, tol);
}

TEST(StateVector, InnerProductAndFidelity)
{
    StateVector a(1), b(1);
    a.applyGate(gates::h(), 0);
    EXPECT_NEAR(std::abs(a.innerProduct(b) -
                         Complex(1.0 / std::sqrt(2.0))), 0.0, tol);
    EXPECT_NEAR(a.fidelity(b), 0.5, tol);
    EXPECT_NEAR(a.fidelity(a), 1.0, tol);
}

TEST(StateVector, GlobalPhaseInvisibleUncontrolled)
{
    // rz and phase act identically on measurement statistics when not
    // controlled...
    StateVector a(1), b(1);
    a.applyGate(gates::h(), 0);
    b.applyGate(gates::h(), 0);
    a.applyGate(gates::rz(0.7), 0);
    b.applyGate(gates::phase(0.7), 0);
    EXPECT_NEAR(a.fidelity(b), 1.0, tol);
}

TEST(StateVector, GlobalPhaseVisibleControlled)
{
    // ...but diverge once controlled (the Table 1 lesson).
    StateVector a(2), b(2);
    a.applyGate(gates::h(), 0);
    b.applyGate(gates::h(), 0);
    a.applyControlled(gates::rz(0.7), {0}, 1);
    b.applyControlled(gates::phase(0.7), {0}, 1);
    EXPECT_LT(a.fidelity(b), 1.0 - 1e-3);
}

// --- CMatrix --------------------------------------------------------------

TEST(CMatrixTest, IdentityAndMul)
{
    const CMatrix id = CMatrix::identity(4);
    CMatrix m(4);
    m.at(0, 1) = Complex(2.0);
    EXPECT_LT(m.mul(id).distance(m), tol);
    EXPECT_LT(id.mul(m).distance(m), tol);
}

TEST(CMatrixTest, KronDimensions)
{
    const CMatrix a = CMatrix::identity(2);
    const CMatrix b = CMatrix::fromMat2(gates::x());
    const CMatrix k = a.kron(b);
    EXPECT_EQ(k.dim(), 4u);
    // I (x) X maps |00> -> |01>.
    EXPECT_NEAR(std::abs(k.at(1, 0) - Complex(1.0)), 0.0, tol);
}

TEST(CMatrixTest, ControlledExpansion)
{
    const CMatrix x = CMatrix::fromMat2(gates::x());
    const CMatrix cx = x.controlled();
    EXPECT_EQ(cx.dim(), 4u);
    // Control bit is the high-order (prepended) index bit.
    EXPECT_NEAR(std::abs(cx.at(0, 0) - Complex(1.0)), 0.0, tol);
    EXPECT_NEAR(std::abs(cx.at(1, 1) - Complex(1.0)), 0.0, tol);
    EXPECT_NEAR(std::abs(cx.at(2, 3) - Complex(1.0)), 0.0, tol);
    EXPECT_NEAR(std::abs(cx.at(3, 2) - Complex(1.0)), 0.0, tol);
    EXPECT_TRUE(cx.isUnitary());
}

TEST(CMatrixTest, AdjointUnitary)
{
    const CMatrix h = CMatrix::fromMat2(gates::h());
    EXPECT_LT(h.adjoint().mul(h).distance(CMatrix::identity(2)), tol);
}

TEST(CMatrixTest, DistanceUpToPhase)
{
    const CMatrix h = CMatrix::fromMat2(gates::h());
    const CMatrix h_phased = h.scale(std::exp(Complex(0, 1.234)));
    EXPECT_GT(h.distance(h_phased), 0.1);
    EXPECT_LT(h.distanceUpToPhase(h_phased), tol);
}

TEST(TensorProduct, ComposesAmplitudesLowQubitsFirst)
{
    // |psi> = ry-rotated single qubit, |phi> = H|0>: the product
    // state's amplitude at (hi, lo) must factor exactly.
    StateVector psi(1);
    psi.applyGate(gates::ry(0.8), 0);
    StateVector phi(1);
    phi.applyGate(gates::h(), 0);

    const StateVector product = psi.tensorWith(phi);
    ASSERT_EQ(product.numQubits(), 2u);
    for (std::uint64_t hi = 0; hi < 2; ++hi) {
        for (std::uint64_t lo = 0; lo < 2; ++lo) {
            const Complex want = phi.amp(hi) * psi.amp(lo);
            EXPECT_NEAR(std::abs(product.amp((hi << 1) | lo) - want),
                        0.0, tol);
        }
    }
    EXPECT_NEAR(product.norm(), 1.0, tol);
}

TEST(TensorProduct, SwapTestIdentity)
{
    // Ground truth for the swap-test probe family: on
    // |psi> (x) |phi> (x) |0>_anc, the H / cswap / H comparator
    // leaves P(anc = 0) = (1 + |<psi|phi>|^2) / 2.
    StateVector psi(1);
    psi.applyGate(gates::ry(1.1), 0);
    psi.applyGate(gates::rz(0.6), 0);
    StateVector phi(1);
    phi.applyGate(gates::ry(1.1), 0);
    phi.applyGate(gates::phase(M_PI / 2), 0); // S-frame divergence

    StateVector anc(1);
    StateVector probe = psi.tensorWith(phi).tensorWith(anc);
    probe.applyGate(gates::h(), 2);
    probe.applyControlledSwap({2}, 0, 1);
    probe.applyGate(gates::h(), 2);

    const double want = 0.5 * (1.0 + psi.fidelity(phi));
    EXPECT_NEAR(probe.marginalProbs({2})[0], want, tol);

    // Identical halves: the ancilla never reads 1 (the pure-null
    // point mass the swap probes assert classically).
    StateVector same = psi.tensorWith(psi).tensorWith(anc);
    same.applyGate(gates::h(), 2);
    same.applyControlledSwap({2}, 0, 1);
    same.applyGate(gates::h(), 2);
    EXPECT_NEAR(same.marginalProbs({2})[1], 0.0, tol);
}

TEST(CMatrixTest, ApplyMatchesStateVector)
{
    // Build H (x) I as dense and compare against the simulator.
    const CMatrix h = CMatrix::fromMat2(gates::h());
    const CMatrix id = CMatrix::identity(2);
    const CMatrix full = h.kron(id); // qubit 1 gets H (row-major kron)

    std::vector<Complex> state{1, 0, 0, 0};
    state = full.apply(state);

    StateVector sv(2);
    sv.applyGate(gates::h(), 1);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(std::abs(state[i] - sv.amp(i)), 0.0, tol);
}

} // anonymous namespace
