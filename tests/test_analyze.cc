/**
 * @file
 * Tests for the qsa::analyze lint layer: one positive and one
 * negative case per registered rule, registry invariants, report
 * rendering, and — the linter's core quality bar — zero findings on
 * every clean reference circuit the examples ship (a rule that cries
 * wolf on correct code is worse than no rule).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using analyze::Diagnostic;
using analyze::LintReport;
using analyze::Severity;
using circuit::Circuit;

/** Findings of one rule in a report. */
std::vector<Diagnostic>
byRule(const LintReport &report, const std::string &rule)
{
    std::vector<Diagnostic> found;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.rule == rule)
            found.push_back(d);
    }
    return found;
}

// --- registry --------------------------------------------------------------

TEST(LintRegistry, RulesHaveUniqueIdsAndSummaries)
{
    const auto &rules = analyze::lintRules();
    EXPECT_EQ(rules.size(), 7u);
    std::set<std::string> ids;
    for (const auto &rule : rules) {
        EXPECT_FALSE(rule.id.empty());
        EXPECT_FALSE(rule.summary.empty());
        EXPECT_NE(rule.run, nullptr);
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule id " << rule.id;
    }
    EXPECT_TRUE(ids.count("cond-unwritten-label"));
    EXPECT_TRUE(ids.count("reset-entangled"));
    EXPECT_TRUE(ids.count("adjacent-self-inverse"));
}

TEST(LintRegistry, DiagnosticsSortedByInstructionThenRule)
{
    // One circuit firing several rules at scattered positions.
    Circuit circ;
    const auto q = circ.addRegister("q", 3);
    circ.h(q[0]);
    circ.h(q[0]); // adjacent-self-inverse at 0
    circ.measureQubits({q[0]}, "m");
    circ.measureQubits({q[0]}, "m2"); // double-measurement at 3
    circ.x(q[1]);
    circ.conditionLast("typo", 1); // cond-unwritten-label at 4
    circ.measureQubits({q[1], q[2]}, "out");

    const LintReport report = analyze::lintCircuit(circ);
    ASSERT_GE(report.diagnostics.size(), 3u);
    for (std::size_t i = 1; i < report.diagnostics.size(); ++i) {
        const Diagnostic &a = report.diagnostics[i - 1];
        const Diagnostic &b = report.diagnostics[i];
        EXPECT_TRUE(a.instruction < b.instruction ||
                    (a.instruction == b.instruction && a.rule <= b.rule));
    }
}

// --- cond-unwritten-label --------------------------------------------------

TEST(LintRules, CondUnwrittenLabelFiresOnTypo)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m");
    circ.x(q[1]);
    circ.conditionLast("mm", 1); // nothing writes "mm"
    circ.measureQubits({q[1]}, "out");

    const auto found =
        byRule(analyze::lintCircuit(circ), "cond-unwritten-label");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Error);
    EXPECT_EQ(found[0].instruction, 2u);
    EXPECT_EQ(found[0].label, "mm");
    EXPECT_EQ(found[0].qubits, std::vector<unsigned>{q[1]});
    EXPECT_TRUE(analyze::lintCircuit(circ).hasErrors());
}

TEST(LintRules, CondWrittenLabelIsClean)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m");
    circ.x(q[1]);
    circ.conditionLast("m", 1);
    circ.measureQubits({q[1]}, "out");

    EXPECT_TRUE(
        byRule(analyze::lintCircuit(circ), "cond-unwritten-label")
            .empty());
}

// --- cond-unsatisfiable ----------------------------------------------------

TEST(LintRules, CondUnsatisfiableFiresOnOutOfRangeValue)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m"); // 1 bit wide
    circ.z(q[1]);
    circ.conditionLast("m", 2); // can never read 2
    circ.measureQubits({q[1]}, "out");

    const auto found =
        byRule(analyze::lintCircuit(circ), "cond-unsatisfiable");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].severity, Severity::Warning);
    EXPECT_EQ(found[0].instruction, 2u);
    EXPECT_EQ(found[0].label, "m");
}

TEST(LintRules, CondInRangeValueIsClean)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 3);
    circ.h(q[0]);
    circ.measureQubits({q[0], q[1]}, "m"); // 2 bits: values 0..3
    circ.z(q[2]);
    circ.conditionLast("m", 3);
    circ.measureQubits({q[2]}, "out");

    EXPECT_TRUE(byRule(analyze::lintCircuit(circ), "cond-unsatisfiable")
                    .empty());
}

// --- double-measurement ----------------------------------------------------

TEST(LintRules, DoubleMeasurementFiresWithNoGateBetween)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "a");
    circ.measureQubits({q[0]}, "b"); // deterministic repeat

    const auto found =
        byRule(analyze::lintCircuit(circ), "double-measurement");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].instruction, 2u);
    EXPECT_EQ(found[0].label, "b");
}

TEST(LintRules, RemeasureAfterGateIsClean)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "a");
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "b");

    EXPECT_TRUE(byRule(analyze::lintCircuit(circ), "double-measurement")
                    .empty());
}

// --- measure-without-reset -------------------------------------------------

TEST(LintRules, MeasureWithoutResetFiresOnRecycledQubit)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m");
    circ.h(q[0]); // reuse without reset
    circ.cnot(q[0], q[1]);
    circ.measureQubits({q[0], q[1]}, "out");

    const auto found =
        byRule(analyze::lintCircuit(circ), "measure-without-reset");
    ASSERT_EQ(found.size(), 1u) << "no cascade over later gates";
    EXPECT_EQ(found[0].instruction, 2u);
    EXPECT_EQ(found[0].qubits, std::vector<unsigned>{q[0]});
}

TEST(LintRules, ResetOrConditionedCorrectionIsClean)
{
    // PrepZ recycling.
    Circuit reset;
    const auto q = reset.addRegister("q", 1);
    reset.h(q[0]);
    reset.measureQubits({q[0]}, "m");
    reset.prepZ(q[0], 0);
    reset.h(q[0]);
    reset.measureQubits({q[0]}, "out");
    EXPECT_TRUE(
        byRule(analyze::lintCircuit(reset), "measure-without-reset")
            .empty());

    // The manual-reset idiom: a conditioned X on the measured qubit.
    Circuit cond;
    const auto p = cond.addRegister("q", 1);
    cond.h(p[0]);
    cond.measureQubits({p[0]}, "m");
    cond.x(p[0]);
    cond.conditionLast("m", 1);
    cond.measureQubits({p[0]}, "out");
    EXPECT_TRUE(
        byRule(analyze::lintCircuit(cond), "measure-without-reset")
            .empty());
}

// --- reset-entangled -------------------------------------------------------

TEST(LintRules, ResetEntangledFiresOnReleasedAncilla)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.prepZ(q[1], 0); // still entangled with q0

    const auto found =
        byRule(analyze::lintCircuit(circ), "reset-entangled");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].instruction, 2u);
    EXPECT_EQ(found[0].qubits, std::vector<unsigned>{q[1]});
}

TEST(LintRules, TableauSuppressesUnionFindOverApproximation)
{
    // Union-find sees one connected group, but the exact tableau
    // proves the uncomputed ancilla is back in a product state.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.cnot(q[0], q[1]); // uncompute
    circ.prepZ(q[1], 0);

    EXPECT_TRUE(byRule(analyze::lintCircuit(circ), "reset-entangled")
                    .empty());
}

TEST(LintRules, NonCliffordPrefixFallsBackToUnionFind)
{
    // The T gate puts the reset past the decidable prefix, so the
    // union-find over-approximation fires conservatively even though
    // the CNOT pair cancels.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.t(q[0]);
    circ.cnot(q[0], q[1]);
    circ.cnot(q[0], q[1]);
    circ.prepZ(q[1], 0);

    const auto found =
        byRule(analyze::lintCircuit(circ), "reset-entangled");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].instruction, 3u);
}

TEST(LintRules, MeasurementSeversEntanglementGroup)
{
    // Measuring the ancilla collapses it out of the group, so the
    // reset afterwards is a legitimate recycle.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.measureQubits({q[1]}, "m");
    circ.prepZ(q[1], 0);

    EXPECT_TRUE(byRule(analyze::lintCircuit(circ), "reset-entangled")
                    .empty());
}

// --- dead-qubit ------------------------------------------------------------

TEST(LintRules, DeadQubitFiresOnUnobservableComponent)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    const auto junk = circ.addRegister("junk", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.h(junk[0]);
    circ.cnot(junk[0], junk[1]); // component never measured
    circ.measureQubits({q[0], q[1]}, "out");

    const auto found = byRule(analyze::lintCircuit(circ), "dead-qubit");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].instruction, 3u) << "anchored at the last gate";
    EXPECT_EQ(found[0].qubits,
              (std::vector<unsigned>{junk[0], junk[1]}));
}

TEST(LintRules, MeasurementFreeProgramSkipsDeadQubit)
{
    // Assertion-style programs observe the final state directly.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);

    EXPECT_TRUE(
        byRule(analyze::lintCircuit(circ), "dead-qubit").empty());
}

// --- adjacent-self-inverse -------------------------------------------------

TEST(LintRules, AdjacentSelfInverseFiresOnCancellingPairs)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.h(q[0]); // involution pair
    circ.s(q[1]);
    circ.sdg(q[1]); // adjoint pair
    circ.phase(q[0], 0.25);
    circ.phase(q[0], -0.25); // opposite angles

    const auto found =
        byRule(analyze::lintCircuit(circ), "adjacent-self-inverse");
    ASSERT_EQ(found.size(), 3u);
    EXPECT_EQ(found[0].severity, Severity::Info);
    EXPECT_EQ(found[0].instruction, 0u);
    EXPECT_EQ(found[1].instruction, 2u);
    EXPECT_EQ(found[2].instruction, 4u);
}

TEST(LintRules, BreakpointOrInterveningGateDefeatsCancellation)
{
    // A breakpoint observes the state in between: not a no-op.
    Circuit observed;
    const auto q = observed.addRegister("q", 1);
    observed.h(q[0]);
    observed.breakpoint("between");
    observed.h(q[0]);
    EXPECT_TRUE(byRule(analyze::lintCircuit(observed),
                       "adjacent-self-inverse")
                    .empty());

    // A gate touching the operands in between breaks adjacency.
    Circuit touched;
    const auto p = touched.addRegister("q", 1);
    touched.h(p[0]);
    touched.x(p[0]);
    touched.h(p[0]);
    EXPECT_TRUE(byRule(analyze::lintCircuit(touched),
                       "adjacent-self-inverse")
                    .empty());
}

// --- report rendering ------------------------------------------------------

TEST(LintReport, CountsRenderAndJson)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.h(q[0]); // info
    circ.x(q[1]);
    circ.conditionLast("ghost", 1); // error
    circ.measureQubits({q[0], q[1]}, "out");

    const LintReport report = analyze::lintCircuit(circ);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.count(Severity::Info), 1u);
    EXPECT_EQ(report.count(Severity::Error), 1u);
    EXPECT_TRUE(report.hasErrors());

    const std::string text = report.render();
    EXPECT_NE(text.find("cond-unwritten-label"), std::string::npos);
    EXPECT_NE(text.find("adjacent-self-inverse"), std::string::npos);

    const std::string json = report.json();
    EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
    EXPECT_NE(json.find("\"cond-unwritten-label\""), std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
}

TEST(LintReport, CleanCircuitRendersClean)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    const LintReport report = analyze::lintCircuit(circ);
    EXPECT_TRUE(report.clean());
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(report.count(Severity::Warning), 0u);
}

// --- no false positives on the clean reference circuits --------------------

/** Every circuit the examples run as the *correct* variant. */
std::vector<std::pair<std::string, Circuit>>
cleanReferenceCircuits()
{
    std::vector<std::pair<std::string, Circuit>> refs;

    refs.emplace_back("bell", algo::buildBellProgram());
    refs.emplace_back("teleport",
                      algo::buildTeleportProgram(0.3, 1.1).circuit);
    refs.emplace_back("superdense",
                      algo::buildSuperdenseProgram(0b10).circuit);

    algo::GroverConfig grover;
    grover.degree = 3;
    grover.target = 0b101;
    refs.emplace_back("grover-gf2",
                      algo::buildGroverProgram(grover).circuit);
    refs.emplace_back(
        "grover-marked",
        algo::buildMarkedValueGrover(3, 0b110).circuit);

    refs.emplace_back("shor-15", algo::buildShorProgram().circuit);
    refs.emplace_back(
        "semiclassical-shor",
        algo::buildSemiclassicalShorProgram().circuit);

    // The QFT-adder unit-test harness of Listing 3.
    Circuit adder;
    const auto b = adder.addRegister("b", 3);
    adder.prepRegister(b, 2);
    algo::qft(adder, b);
    algo::phiAdd(adder, b, 3);
    algo::iqft(adder, b);
    adder.measure(b, "sum");
    refs.emplace_back("qft-adder", std::move(adder));

    return refs;
}

TEST(LintCleanReferences, NoFalsePositivesOnExampleCircuits)
{
    // The defect-class contract: no warning or error finding on any
    // correct program the examples run. Info findings are advisory
    // ("correct but wasteful") and exempt — the Shor builders really
    // do emit a cancelling h;h pair at each iqft;qft seam.
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        const LintReport report = analyze::lintCircuit(circ);
        EXPECT_EQ(report.count(Severity::Warning), 0u)
            << "defect-class findings on clean reference '" << name
            << "':\n"
            << report.render();
        EXPECT_EQ(report.count(Severity::Error), 0u) << name;
        for (const Diagnostic &d : report.diagnostics)
            EXPECT_EQ(d.rule, "adjacent-self-inverse") << name;
    }
}

TEST(LintCleanReferences, SmallCleanProgramsFullyClean)
{
    // The small references have no generator-inherent seams: fully
    // clean at every severity.
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        if (name == "shor-15" || name == "semiclassical-shor")
            continue;
        const LintReport report = analyze::lintCircuit(circ);
        EXPECT_TRUE(report.clean())
            << "lint findings on clean reference '" << name
            << "':\n"
            << report.render();
    }
}

} // anonymous namespace
