/**
 * @file
 * QASM round-trip fixed-point and Circuit::contentHash properties,
 * plus the positioned-error contract of circuit::tryFromQasm.
 *
 * The serving layer (qsa::serve) leans on all three: circuits travel
 * the wire as QASM (so emission∘parse must be a fixed point), the
 * oracle store is content-addressed by contentHash (so the hash must
 * be stable under re-emission and distinct across defect variants),
 * and a daemon fed malformed remote text must get a positioned error
 * back instead of dying in fatal().
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using circuit::Circuit;

/** Every circuit the examples run as the *correct* variant (the same
 *  catalogue tests/test_analyze.cc lints clean). */
std::vector<std::pair<std::string, Circuit>>
cleanReferenceCircuits()
{
    std::vector<std::pair<std::string, Circuit>> refs;

    refs.emplace_back("bell", algo::buildBellProgram());
    refs.emplace_back("teleport",
                      algo::buildTeleportProgram(0.3, 1.1).circuit);
    refs.emplace_back("superdense",
                      algo::buildSuperdenseProgram(0b10).circuit);

    algo::GroverConfig grover;
    grover.degree = 3;
    grover.target = 0b101;
    refs.emplace_back("grover-gf2",
                      algo::buildGroverProgram(grover).circuit);
    refs.emplace_back("grover-marked",
                      algo::buildMarkedValueGrover(3, 0b110).circuit);

    refs.emplace_back("shor-15", algo::buildShorProgram().circuit);
    refs.emplace_back("semiclassical-shor",
                      algo::buildSemiclassicalShorProgram().circuit);

    Circuit adder;
    const auto b = adder.addRegister("b", 3);
    adder.prepRegister(b, 2);
    algo::qft(adder, b);
    algo::phiAdd(adder, b, 3);
    algo::iqft(adder, b);
    adder.measure(b, "sum");
    refs.emplace_back("qft-adder", std::move(adder));

    return refs;
}

// --- round-trip fixed point ------------------------------------------------

TEST(QasmRoundTrip, EmissionIsAFixedPointOnEveryCleanReference)
{
    // toQasm∘fromQasm is idempotent on emitted text: one round trip
    // may normalise (measure grouping, register naming), further
    // trips must not change a byte.
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        const std::string once = circuit::toQasm(circ);
        const std::string twice =
            circuit::toQasm(circuit::fromQasm(once));
        const std::string thrice =
            circuit::toQasm(circuit::fromQasm(twice));
        EXPECT_EQ(once, twice) << name;
        EXPECT_EQ(twice, thrice) << name;
    }
}

TEST(QasmRoundTrip, TryFromQasmAgreesWithFromQasm)
{
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        const std::string text = circuit::toQasm(circ);
        circuit::QasmError error;
        const auto parsed = circuit::tryFromQasm(text, &error);
        ASSERT_TRUE(parsed.has_value())
            << name << ": " << error.render();
        EXPECT_EQ(circuit::toQasm(*parsed),
                  circuit::toQasm(circuit::fromQasm(text)))
            << name;
    }
}

// --- contentHash -----------------------------------------------------------

TEST(ContentHash, StableUnderReEmission)
{
    // The oracle store's invalidation rule: the hash is a property of
    // circuit *content*, so wire transport (emit, parse) must
    // preserve it.
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        const Circuit parsed =
            circuit::fromQasm(circuit::toQasm(circ));
        const Circuit reparsed =
            circuit::fromQasm(circuit::toQasm(parsed));
        EXPECT_EQ(parsed.contentHash(), reparsed.contentHash())
            << name;
        EXPECT_EQ(parsed.contentHash(), parsed.contentHash()) << name;
    }
}

TEST(ContentHash, DistinctAcrossReferenceCatalogue)
{
    std::set<std::uint64_t> hashes;
    for (const auto &[name, circ] : cleanReferenceCircuits()) {
        const auto [it, fresh] = hashes.insert(circ.contentHash());
        EXPECT_TRUE(fresh) << "hash collision at '" << name << "'";
    }
}

TEST(ContentHash, DistinguishesBuggyFromCleanVariants)
{
    // Every statically-visible taxonomy fixture: defect and fix must
    // content-address differently, or a warm store would serve a
    // certificate for the wrong program.
    for (const bugs::BugType type :
         {bugs::BugType::ConditionLabelTypo,
          bugs::BugType::MeasuredQubitReuse,
          bugs::BugType::EntangledReset}) {
        const bugs::StaticBugFixture fixture =
            bugs::staticBugFixture(type);
        EXPECT_NE(fixture.buggy.contentHash(),
                  fixture.clean.contentHash())
            << bugs::bugInfo(type).name;
    }
}

TEST(ContentHash, SensitiveToEveryEncodedField)
{
    Circuit base;
    const auto q = base.addRegister("q", 2);
    base.h(q[0]);
    base.rz(q[0], 0.25);
    base.cnot(q[0], q[1]);
    base.breakpoint("mid");
    const std::uint64_t h0 = base.contentHash();

    {
        Circuit c; // different angle
        const auto r = c.addRegister("q", 2);
        c.h(r[0]);
        c.rz(r[0], 0.75);
        c.cnot(r[0], r[1]);
        c.breakpoint("mid");
        EXPECT_NE(c.contentHash(), h0);
    }
    {
        Circuit c; // control/target swapped
        const auto r = c.addRegister("q", 2);
        c.h(r[0]);
        c.rz(r[0], 0.25);
        c.cnot(r[1], r[0]);
        c.breakpoint("mid");
        EXPECT_NE(c.contentHash(), h0);
    }
    {
        Circuit c; // different breakpoint label
        const auto r = c.addRegister("q", 2);
        c.h(r[0]);
        c.rz(r[0], 0.25);
        c.cnot(r[0], r[1]);
        c.breakpoint("midd");
        EXPECT_NE(c.contentHash(), h0);
    }
    {
        Circuit c; // different register name, same gates
        const auto r = c.addRegister("p", 2);
        c.h(r[0]);
        c.rz(r[0], 0.25);
        c.cnot(r[0], r[1]);
        c.breakpoint("mid");
        EXPECT_NE(c.contentHash(), h0);
    }
}

TEST(ContentHash, NegativeZeroAngleIsCanonical)
{
    // -0.0 and 0.0 are the same rotation; the hash must not split the
    // store on the sign of zero (emitters legitimately produce both).
    Circuit plus;
    const auto q1 = plus.addRegister("q", 1);
    plus.rz(q1[0], 0.0);
    Circuit minus;
    const auto q2 = minus.addRegister("q", 1);
    minus.rz(q2[0], -0.0);
    EXPECT_EQ(plus.contentHash(), minus.contentHash());
}

// --- positioned parse errors -----------------------------------------------

struct MalformedCase
{
    const char *label;
    const char *source;
    std::size_t line;
    const char *token;
    const char *messagePart;
};

TEST(QasmErrors, EveryMalformedInputIsPositioned)
{
    const std::vector<MalformedCase> cases = {
        {"unknown gate",
         "OPENQASM 2.0;\nqreg q[1];\nzz q[0];\n", 3, "zz",
         "unsupported QASM gate"},
        {"unknown register",
         "OPENQASM 2.0;\nqreg q[1];\nh r[0];\n", 3, "r",
         "unknown register"},
        {"index out of range",
         "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n", 3, "q[5]",
         "out of range"},
        {"duplicate operand",
         "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n", 3, "q[0]",
         "duplicate qubit operand"},
        {"swap arity",
         "OPENQASM 2.0;\nqreg q[3];\nswap q[0];\n", 3, "swap",
         "expects 2 operand(s), got 1"},
        {"bad angle",
         "OPENQASM 2.0;\nqreg q[1];\nrx(foo) q[0];\n", 3, "foo",
         "bad number in angle"},
        {"parameter on plain gate",
         "OPENQASM 2.0;\nqreg q[1];\nx(0.5) q[0];\n", 3, "x",
         "takes no parameter"},
        {"missing semicolon",
         "OPENQASM 2.0;\nqreg q[1];\nh q[0]\n", 3, "h q[0]",
         "statement missing ';'"},
        {"zero-width register",
         "OPENQASM 2.0;\nqreg q[0];\n", 2, "q",
         "width > 0"},
        {"duplicate register",
         "OPENQASM 2.0;\nqreg q[1];\nqreg q[2];\n", 3, "q",
         "duplicate register name"},
        {"unknown creg",
         "OPENQASM 2.0;\nqreg q[1];\nmeasure q[0] -> c[0];\n", 3,
         "c", "unknown creg"},
        {"condition before measurement",
         "OPENQASM 2.0;\nqreg q[1];\ncreg m_c[1];\n"
         "if(m_c==1) x q[0];\n",
         4, "m_c", "before any measurement"},
        {"malformed condition",
         "OPENQASM 2.0;\nqreg q[1];\nif(m_c) x q[0];\n", 3, "",
         "malformed if condition"},
        {"duplicate breakpoint",
         "OPENQASM 2.0;\nqreg q[1];\n// qsa.breakpoint a\n"
         "// qsa.breakpoint a\n",
         4, "a", "duplicate breakpoint label"},
        {"prepz out of range",
         "OPENQASM 2.0;\nqreg q[1];\n// qsa.prepz 7 0\n", 3, "7",
         "out of range"},
        {"bad prepz pragma",
         "OPENQASM 2.0;\nqreg q[1];\n// qsa.prepz\n", 3, "",
         "needs '<qubit> <bit>'"},
    };

    for (const auto &c : cases) {
        circuit::QasmError error;
        const auto parsed = circuit::tryFromQasm(c.source, &error);
        EXPECT_FALSE(parsed.has_value()) << c.label;
        if (parsed.has_value())
            continue;
        EXPECT_EQ(error.line, c.line) << c.label;
        EXPECT_GE(error.column, 1u) << c.label;
        if (*c.token != '\0') {
            EXPECT_EQ(error.token, c.token) << c.label;
        }
        EXPECT_NE(error.message.find(c.messagePart),
                  std::string::npos)
            << c.label << ": got '" << error.message << "'";
    }
}

TEST(QasmErrors, RenderIncludesPositionAndToken)
{
    circuit::QasmError error;
    const auto parsed = circuit::tryFromQasm(
        "OPENQASM 2.0;\nqreg q[1];\nzz q[0];\n", &error);
    ASSERT_FALSE(parsed.has_value());
    EXPECT_EQ(error.render(),
              "line 3, column 1: unsupported QASM gate 'zz'");
}

TEST(QasmErrorsDeathTest, FromQasmStaysFatalOnMalformedInput)
{
    // The trusted-input entry point keeps the classic behaviour —
    // and reports through the same positioned rendering.
    EXPECT_DEATH(
        circuit::fromQasm("OPENQASM 2.0;\nqreg q[1];\nzz q[0];\n"),
        "QASM parse error.*line 3.*unsupported QASM gate");
    EXPECT_DEATH(circuit::fromQasm("qreg q[2];\nh q[9];\n"),
                 "out of range");
}

} // namespace
