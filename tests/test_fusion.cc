/**
 * @file
 * Gate-fusion tests: the fused program must be observationally
 * equivalent to the unfused one — same final states to numerical
 * tolerance, bit-identical seeded measurement histograms through the
 * ensemble engine at every thread count — while actually eliminating
 * gates (FusionStats and the sim.fused_gates counter both positive).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "algo/arith.hh"
#include "algo/qft.hh"
#include "algo/teleport.hh"
#include "assertions/checker.hh"
#include "circuit/circuit.hh"
#include "circuit/executor.hh"
#include "circuit/fusion.hh"
#include "common/rng.hh"
#include "obs/obs.hh"
#include "sim/statevector.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;
using qsa::circuit::FusionStats;
using qsa::circuit::fuseGates;
using qsa::circuit::GateKind;
using qsa::circuit::QubitRegister;

/**
 * Fused execution reorders floating-point matrix products, so
 * amplitudes agree to rounding, not bit-for-bit.
 */
constexpr double kAmpTol = 1e-9;

void
expectSameState(const sim::StateVector &a, const sim::StateVector &b,
                const std::string &what)
{
    ASSERT_EQ(a.numQubits(), b.numQubits()) << what;
    for (std::uint64_t i = 0; i < a.dim(); ++i)
        EXPECT_LT(std::abs(a.amp(i) - b.amp(i)), kAmpTol)
            << what << ": amplitude " << i;
}

/** Run both circuits from |0...0> with the same seed and compare. */
void
expectEquivalent(const Circuit &original, const Circuit &fused,
                 const std::string &what, std::uint64_t seed = 7)
{
    Rng rng_a(seed);
    Rng rng_b(seed);
    const auto rec_a = circuit::runCircuit(original, rng_a);
    const auto rec_b = circuit::runCircuit(fused, rng_b);
    expectSameState(rec_a.state, rec_b.state, what);
    EXPECT_EQ(rec_a.measurements, rec_b.measurements) << what;
}

// --- Pass-level structure ----------------------------------------------------

TEST(FusionPass, MergesSingleQubitRun)
{
    Circuit circ(1);
    circ.h(0);
    circ.s(0);
    circ.t(0);
    circ.h(0);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);

    EXPECT_EQ(fused.size(), 1u);
    EXPECT_EQ(stats.fusedGates, 3u);
    EXPECT_EQ(stats.emitted, 1u);
    EXPECT_EQ(fused.instructions()[0].kind, GateKind::Unitary);
    expectEquivalent(circ, fused, "1q run");
}

TEST(FusionPass, MergesAcrossTwoQubitGate)
{
    // 1q gates sandwiching a 2q gate on its own qubits collapse into
    // one dense Mat4 apply.
    Circuit circ(2);
    circ.h(0);
    circ.h(1);
    circ.cnot(0, 1);
    circ.x(1);
    circ.t(0);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);

    EXPECT_EQ(fused.size(), 1u);
    EXPECT_EQ(stats.fusedGates, 4u);
    expectEquivalent(circ, fused, "2q sandwich");
}

TEST(FusionPass, DisjointRunsFuseIndependently)
{
    Circuit circ(4);
    circ.h(0);
    circ.h(2);
    circ.t(0);
    circ.s(2);
    circ.cnot(0, 1);
    circ.cnot(2, 3);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);

    // Two blocks: {0,1} and {2,3}, each fusing 3 gates into 1.
    EXPECT_EQ(fused.size(), 2u);
    EXPECT_EQ(stats.fusedGates, 4u);
    expectEquivalent(circ, fused, "disjoint blocks");
}

TEST(FusionPass, BarriersFlushPendingBlocks)
{
    Circuit circ(1);
    const auto r = circ.addRegister("r", 1);
    circ.h(0);
    circ.t(0);
    circ.measure(r, "m");
    circ.h(0);
    circ.s(0);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);

    // Unitary, Measure, Unitary — nothing merges across the barrier.
    ASSERT_EQ(fused.size(), 3u);
    EXPECT_EQ(fused.instructions()[1].kind, GateKind::Measure);
    EXPECT_EQ(stats.fusedGates, 2u);
}

TEST(FusionPass, BreakpointsAndConditionedGatesAreBarriers)
{
    Circuit circ(1);
    const auto r = circ.addRegister("r", 1);
    circ.h(0);
    circ.measure(r, "m");
    circ.z(0);
    circ.conditionLast("m", 1);
    circ.breakpoint("bp");
    circ.x(0);

    const Circuit fused = fuseGates(circ);

    // Every instruction survives verbatim: the lone H before the
    // measurement, the conditioned Z, the breakpoint, the trailing X.
    ASSERT_EQ(fused.size(), circ.size());
    for (std::size_t i = 0; i < circ.size(); ++i)
        EXPECT_EQ(fused.instructions()[i].kind,
                  circ.instructions()[i].kind)
            << "instruction " << i;
    EXPECT_EQ(fused.instructions()[2].condLabel, "m");
    EXPECT_EQ(fused.breakpointLabels(), circ.breakpointLabels());
}

TEST(FusionPass, ThreeQubitGatesFlushAndPassThrough)
{
    Circuit circ(3);
    circ.h(0);
    circ.h(1);
    circ.ccnot(0, 1, 2);
    circ.t(2);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);

    // H(0) and H(1) touch disjoint qubits, so they stay separate
    // single-member blocks and are emitted verbatim; ccnot spans
    // three qubits and flushes; the trailing T(2) stays single too.
    ASSERT_EQ(fused.size(), 4u);
    EXPECT_EQ(fused.instructions()[0].kind, GateKind::H);
    EXPECT_EQ(fused.instructions()[2].kind, GateKind::X);
    EXPECT_EQ(fused.instructions()[2].controls.size(), 2u);
    EXPECT_EQ(fused.instructions()[3].kind, GateKind::T);
    EXPECT_EQ(stats.fusedGates, 0u);
    expectEquivalent(circ, fused, "ccnot barrier");
}

TEST(FusionPass, SingleMemberBlocksEmitOriginalInstruction)
{
    Circuit circ(2);
    circ.h(0);
    circ.cnot(0, 1);

    const Circuit fused = fuseGates(circ);

    // H and CNot overlap on qubit 0, so they fuse; but a lone gate
    // that never merges must keep its original compact encoding.
    Circuit lone(2);
    lone.rz(1, 0.375);
    const Circuit lone_fused = fuseGates(lone);
    ASSERT_EQ(lone_fused.size(), 1u);
    EXPECT_EQ(lone_fused.instructions()[0].kind, GateKind::Rz);
    EXPECT_EQ(lone_fused.instructions()[0].angle, 0.375);
    EXPECT_EQ(fused.size(), 1u);
}

TEST(FusionPass, PreservesRegistersAndQubitCount)
{
    Circuit circ(3);
    const auto r = circ.addRegister("data", 2);
    circ.h(r.qubit(0));
    circ.cnot(r.qubit(0), r.qubit(1));

    const Circuit fused = fuseGates(circ);
    EXPECT_EQ(fused.numQubits(), circ.numQubits());
    EXPECT_EQ(fused.reg("data").width(), 2u);
}

// --- Randomized equivalence --------------------------------------------------

/** Random measure-free circuit over the fusible + barrier gate set. */
Circuit
randomCircuit(unsigned n, std::size_t gates, std::uint64_t seed)
{
    Circuit circ(n);
    Rng rng(seed);
    for (std::size_t g = 0; g < gates; ++g) {
        const unsigned q = (unsigned)rng.uniformInt(n);
        unsigned p = (unsigned)rng.uniformInt(n);
        if (p == q)
            p = (q + 1) % n;
        switch (rng.uniformInt(10)) {
        case 0: circ.h(q); break;
        case 1: circ.x(q); break;
        case 2: circ.s(q); break;
        case 3: circ.t(q); break;
        case 4: circ.rz(q, 0.1 + 0.2 * (double)g); break;
        case 5: circ.ry(q, 0.3 + 0.1 * (double)g); break;
        case 6: circ.cnot(q, p); break;
        case 7: circ.cphase(q, p, 0.25 + 0.05 * (double)g); break;
        case 8: circ.swap(q, p); break;
        default: {
            // Occasional 3-qubit barrier exercises the flush path.
            unsigned t = 0;
            while (t == q || t == p)
                ++t;
            circ.ccnot(q, p, t);
            break;
        }
        }
    }
    return circ;
}

TEST(FusionEquivalence, RandomizedCircuits)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Circuit circ = randomCircuit(5, 60, seed);
        FusionStats stats;
        const Circuit fused = fuseGates(circ, &stats);
        EXPECT_GT(stats.fusedGates, 0u) << "seed " << seed;
        EXPECT_LT(fused.size(), circ.size()) << "seed " << seed;
        expectEquivalent(circ, fused,
                         "random seed " + std::to_string(seed));
    }
}

TEST(FusionEquivalence, QftAdderCircuit)
{
    Circuit circ(5);
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(b, 12);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, 9);
    algo::iqft(circ, b);

    FusionStats stats;
    const Circuit fused = fuseGates(circ, &stats);
    EXPECT_GT(stats.fusedGates, 0u);
    expectEquivalent(circ, fused, "qft adder");
}

TEST(FusionEquivalence, FusionIsIdempotentOnFusedOutput)
{
    const Circuit circ = randomCircuit(4, 40, 42);
    FusionStats first;
    const Circuit fused = fuseGates(circ, &first);
    FusionStats second;
    const Circuit refused = fuseGates(fused, &second);
    // A second pass may still merge adjacent emitted blocks, but the
    // result must stay equivalent and never grow.
    EXPECT_LE(refused.size(), fused.size());
    expectEquivalent(circ, refused, "double fusion");
}

// --- Engine-level histogram identity -----------------------------------------

assertions::CheckConfig
engineConfig(bool fuse, unsigned threads,
             assertions::EnsembleMode mode)
{
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 192;
    cfg.seed = 0xfeedface;
    cfg.fuseGates = fuse;
    cfg.numThreads = threads;
    cfg.mode = mode;
    return cfg;
}

/**
 * The ensemble contract under fusion: measurement draws compare a
 * uniform variate against outcome probabilities, and the fixtures
 * below keep those probabilities far from any draw, so the seeded
 * histograms are exactly equal fused vs unfused — and bit-identical
 * across thread counts regardless.
 */
void
expectSameHistograms(const Circuit &program,
                     const assertions::AssertionSpec &spec,
                     assertions::EnsembleMode mode,
                     const std::string &what)
{
    std::map<std::uint64_t, std::uint64_t> reference;
    bool have_reference = false;
    for (const bool fuse : {false, true}) {
        for (const unsigned threads : {1u, 4u, 0u}) {
            const assertions::AssertionChecker checker(
                program, engineConfig(fuse, threads, mode));
            const auto outcome = checker.check(spec);
            if (!have_reference) {
                reference = outcome.countsA;
                have_reference = true;
                continue;
            }
            EXPECT_EQ(outcome.countsA, reference)
                << what << " fuse=" << fuse
                << " threads=" << threads;
        }
    }
}

assertions::AssertionSpec
superpositionSpec(const std::string &breakpoint,
                  const QubitRegister &reg)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Superposition;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    return spec;
}

TEST(FusionEnsemble, CliffordProgramHistograms)
{
    Circuit circ(3);
    const auto r = circ.addRegister("r", 3);
    circ.h(0);
    circ.s(0);
    circ.cnot(0, 1);
    circ.h(2);
    circ.cnot(2, 1);
    circ.h(0);
    circ.breakpoint("bp");

    for (const auto mode :
         {assertions::EnsembleMode::SampleFinalState,
          assertions::EnsembleMode::Resimulate})
        expectSameHistograms(circ, superpositionSpec("bp", r), mode,
                             "clifford");
}

TEST(FusionEnsemble, QftAdderHistograms)
{
    Circuit circ(4);
    const auto b = circ.addRegister("b", 4);
    circ.prepRegister(b, 5);
    circ.h(0);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, 3);
    algo::iqft(circ, b);
    circ.breakpoint("sum");

    for (const auto mode :
         {assertions::EnsembleMode::SampleFinalState,
          assertions::EnsembleMode::Resimulate})
        expectSameHistograms(circ, superpositionSpec("sum", b), mode,
                             "qft adder");
}

TEST(FusionEnsemble, TeleportHistogramsWithMidCircuitMeasurement)
{
    const auto prog = algo::buildTeleportProgram(0.7, 1.1);
    // Resimulate exercises fusion of the conditioned-correction tail
    // (the conditioned gates themselves are barriers and survive).
    for (const auto mode :
         {assertions::EnsembleMode::SampleFinalState,
          assertions::EnsembleMode::Resimulate})
        expectSameHistograms(
            prog.circuit,
            superpositionSpec("corrected", prog.receiver), mode,
            "teleport");
}

#if QSA_OBS_ENABLED

TEST(FusionEnsemble, FusedGateCounterDeterministicAcrossThreads)
{
    Circuit circ(4);
    const auto b = circ.addRegister("b", 4);
    circ.prepRegister(b, 5);
    algo::qft(circ, b);
    algo::iqft(circ, b);
    circ.breakpoint("bp");
    const auto spec = superpositionSpec("bp", b);

    const auto fusedTotal = [&](bool fuse, unsigned threads) {
        obs::Registry::reset();
        const assertions::AssertionChecker checker(
            circ, engineConfig(fuse, threads,
                               assertions::EnsembleMode::Resimulate));
        (void)checker.check(spec);
        for (const auto &[name, value] : obs::Registry::snapshot())
            if (name == "sim.fused_gates")
                return value;
        return (std::int64_t)0;
    };

    const auto serial = fusedTotal(true, 1);
    EXPECT_GT(serial, 0);
    // Counted once per winning prefix-cache insertion, so racing
    // rebuilds can never inflate the total.
    EXPECT_EQ(fusedTotal(true, 4), serial);
    EXPECT_EQ(fusedTotal(true, 0), serial);
    EXPECT_EQ(fusedTotal(false, 1), 0);
}

TEST(FusionEnsemble, FusionReducesAmpTouches)
{
    // A mid-circuit measurement ends the deterministic head, so the
    // whole QFT-adder tail re-executes per Resimulate trial and the
    // per-trial amplitude traffic dominates the totals.
    Circuit circ(0);
    const auto coin = circ.addRegister("coin", 1);
    const auto b = circ.addRegister("b", 4);
    circ.h(coin.qubit(0));
    circ.measure(coin, "coin");
    circ.prepRegister(b, 5);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, 3);
    algo::phiAdd(circ, b, 5);
    algo::phiAdd(circ, b, 1);
    algo::iqft(circ, b);
    circ.breakpoint("bp");
    const auto spec = superpositionSpec("bp", b);

    const auto touches = [&](bool fuse) {
        obs::Registry::reset();
        const assertions::AssertionChecker checker(
            circ, engineConfig(fuse, 1,
                               assertions::EnsembleMode::Resimulate));
        (void)checker.check(spec);
        for (const auto &[name, value] : obs::Registry::snapshot())
            if (name == "sim.amp_touches")
                return value;
        return (std::int64_t)0;
    };

    const auto unfused = touches(false);
    const auto fused = touches(true);
    ASSERT_GT(unfused, 0);
    ASSERT_GT(fused, 0);
    // The QFT-adder prefix is one long run of fusible 1q/2q gates;
    // the headline claim is a >= 2x per-trial amplitude-traffic win.
    EXPECT_LT(2 * fused, unfused)
        << "fused=" << fused << " unfused=" << unfused;
}

#endif // QSA_OBS_ENABLED

} // anonymous namespace
