/**
 * @file
 * Tests for qsa::obs: exact counter aggregation across threads (live
 * and retired slabs), the determinism contract for work-proportional
 * metrics under varying pool widths, timer/gauge semantics, the JSON
 * renderers (metrics object and Chrome trace-event document), and the
 * runtime on/off switches. The whole file also compiles against the
 * QSA_OBS=OFF stubs, where it checks the compiled-out behaviour
 * instead.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

// --- A minimal JSON well-formedness checker --------------------------------

/**
 * Strict recursive-descent validator for the subset of JSON our
 * renderers emit (no exponent-free corner cases are relied on; this
 * accepts standard JSON values). Returns true iff `text` is exactly
 * one valid JSON value plus trailing whitespace.
 */
class JsonValidator
{
  public:
    static bool
    valid(const std::string &text)
    {
        JsonValidator v(text);
        if (!v.value())
            return false;
        v.ws();
        return v.pos == text.size();
    }

  private:
    explicit JsonValidator(const std::string &t) : text(t) {}

    const std::string &text;
    std::size_t pos = 0;

    void
    ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\r' || text[pos] == '\t'))
            ++pos;
    }

    bool
    eat(char c)
    {
        ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= text.size() || text[pos] != *p)
                return false;
        return true;
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;
                if (pos >= text.size())
                    return false;
                if (text[pos] == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(
                                (unsigned char)text[pos]))
                            return false;
                    }
                }
            }
            ++pos;
        }
        return eat('"');
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit((unsigned char)text[pos]) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        return pos > start;
    }

    bool
    value()
    {
        ws();
        if (pos >= text.size())
            return false;
        switch (text[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        if (!eat('{'))
            return false;
        if (eat('}'))
            return true;
        do {
            ws();
            if (!string() || !eat(':') || !value())
                return false;
        } while (eat(','));
        return eat('}');
    }

    bool
    array()
    {
        if (!eat('['))
            return false;
        if (eat(']'))
            return true;
        do {
            if (!value())
                return false;
        } while (eat(','));
        return eat(']');
    }
};

/** Value of `name` in a snapshot, or -1 when absent. */
std::int64_t
valueOf(const obs::Snapshot &snap, const std::string &name)
{
    for (const auto &[key, value] : snap)
        if (key == name)
            return value;
    return -1;
}

#if QSA_OBS_ENABLED

// --- Instrumented-build tests ----------------------------------------------

/**
 * The work-proportional subset of the snapshot the determinism
 * contract covers: everything except pool scheduling metrics,
 * wall-clock ".ns" totals, and this file's own "test.*" scratch
 * metrics (which vary with gtest filtering and ordering).
 */
obs::Snapshot
deterministicPart()
{
    obs::Snapshot out;
    for (const auto &kv : obs::Registry::snapshot()) {
        const std::string &key = kv.first;
        if (key.rfind("runtime.pool.", 0) == 0)
            continue;
        if (key.size() >= 3 &&
            key.compare(key.size() - 3, 3, ".ns") == 0)
            continue;
        if (key.rfind("test.", 0) == 0)
            continue;
        out.push_back(kv);
    }
    return out;
}

/** Bell-pair entanglement check: a small fully-instrumented stack. */
void
runWorkload(unsigned threads)
{
    circuit::Circuit circ;
    const auto a = circ.addRegister("a", 1);
    const auto b = circ.addRegister("b", 1);
    circ.h(a[0]);
    circ.cnot(a[0], b[0]);
    circ.breakpoint("pair");
    circ.measure(a, "ma");
    circ.measure(b, "mb");

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 256;
    cfg.seed = 0x51c0ffee;
    cfg.numThreads = threads;
    assertions::AssertionChecker checker(circ, cfg);
    checker.assertEntangled("pair", circ.reg("a"), circ.reg("b"));
    const auto outcome = checker.check(checker.assertions()[0]);
    ASSERT_TRUE(outcome.passed);
}

TEST(ObsCounter, ExactAcrossLiveAndRetiredSlabs)
{
    obs::Registry::reset();
    obs::Counter &counter = obs::Registry::counter("test.obs.inc");
    constexpr int n_threads = 4;
    constexpr std::uint64_t per_thread = 10000;

    // Half the increments from threads that exit before the scrape
    // (their slabs fold into the retired accumulator)...
    std::vector<std::thread> workers;
    for (int t = 0; t < n_threads; ++t)
        workers.emplace_back([&] {
            for (std::uint64_t i = 0; i < per_thread; ++i)
                counter.add();
        });
    for (auto &w : workers)
        w.join();

    // ...and the rest from this still-live thread's slab.
    counter.add(per_thread);

    const auto snap = obs::Registry::snapshot();
    EXPECT_EQ(valueOf(snap, "test.obs.inc"),
              (std::int64_t)((n_threads + 1) * per_thread));
}

TEST(ObsCounter, AddTwoAndResetSemantics)
{
    obs::Registry::reset();
    obs::Counter &a = obs::Registry::counter("test.obs.a");
    obs::Counter &b = obs::Registry::counter("test.obs.b");
    obs::Counter::addTwo(a, 3, b, 7);
    auto snap = obs::Registry::snapshot();
    EXPECT_EQ(valueOf(snap, "test.obs.a"), 3);
    EXPECT_EQ(valueOf(snap, "test.obs.b"), 7);

    obs::Registry::reset();
    snap = obs::Registry::snapshot();
    // Identities survive a reset; values return to zero.
    EXPECT_EQ(valueOf(snap, "test.obs.a"), 0);
    EXPECT_EQ(valueOf(snap, "test.obs.b"), 0);
    a.add();
    EXPECT_EQ(valueOf(obs::Registry::snapshot(), "test.obs.a"), 1);
}

TEST(ObsContract, WorkMetricsInvariantAcrossThreadCounts)
{
    std::vector<obs::Snapshot> per_width;
    for (unsigned threads : {1u, 4u, 0u}) {
        obs::Registry::reset();
        runWorkload(threads);
        per_width.push_back(deterministicPart());
    }
    // The filtered snapshots must be *identical* — same keys, same
    // totals — whichever pool width did the work.
    EXPECT_EQ(per_width[0], per_width[1]);
    EXPECT_EQ(per_width[0], per_width[2]);
    // And they must actually have counted the work.
    EXPECT_GT(valueOf(per_width[0], "sim.gate_applies"), 0);
    EXPECT_GT(valueOf(per_width[0], "runtime.ensemble.trials"), 0);
    EXPECT_EQ(valueOf(per_width[0], "assertions.checks"), 1);
}

TEST(ObsContract, SameSeedRunsIdentical)
{
    obs::Registry::reset();
    runWorkload(0);
    const auto first = deterministicPart();
    obs::Registry::reset();
    runWorkload(0);
    const auto second = deterministicPart();
    EXPECT_EQ(first, second);
}

TEST(ObsTimer, CountsIntervalsAndAccumulatesNs)
{
    obs::Registry::reset();
    obs::Timer &timer = obs::Registry::timer("test.obs.t");
    {
        obs::Timer::Scope scope(timer);
    }
    {
        obs::Timer::Scope scope(timer);
    }
    auto snap = obs::Registry::snapshot();
    EXPECT_EQ(valueOf(snap, "test.obs.t.count"), 2);
    const std::int64_t ns_after_two = valueOf(snap, "test.obs.t.ns");
    EXPECT_GE(ns_after_two, 0);

    // Explicit record(): .ns grows monotonically, .count by one.
    timer.record(12345);
    snap = obs::Registry::snapshot();
    EXPECT_EQ(valueOf(snap, "test.obs.t.count"), 3);
    EXPECT_EQ(valueOf(snap, "test.obs.t.ns"), ns_after_two + 12345);
}

TEST(ObsGauge, SetAddGetAndReset)
{
    obs::Registry::reset();
    obs::Gauge &gauge = obs::Registry::gauge("test.obs.g");
    gauge.set(41);
    gauge.add(1);
    EXPECT_EQ(gauge.get(), 42);
    EXPECT_EQ(valueOf(obs::Registry::snapshot(), "test.obs.g"), 42);
    obs::Registry::reset();
    EXPECT_EQ(gauge.get(), 0);
}

TEST(ObsSwitch, DisabledMeansNoRecording)
{
    obs::Registry::reset();
    obs::Counter &counter = obs::Registry::counter("test.obs.off");
    EXPECT_TRUE(obs::enabled());
    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    counter.add(100);
    obs::setEnabled(true);
    counter.add(1);
    EXPECT_EQ(valueOf(obs::Registry::snapshot(), "test.obs.off"), 1);
}

TEST(ObsJson, MetricsDocumentIsValidAndSorted)
{
    obs::Registry::reset();
    obs::Registry::counter("test.obs.json").add(5);
    const std::string doc = obs::metricsJson();
    EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
    EXPECT_NE(doc.find("\"test.obs.json\": 5"), std::string::npos)
        << doc;
    // Snapshot (and therefore the document) is name-sorted.
    const auto snap = obs::Registry::snapshot();
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].first, snap[i].first);
}

TEST(ObsTrace, ChromeEventDocumentIsValid)
{
    obs::Registry::reset(); // also drops buffered trace events
    EXPECT_FALSE(obs::tracing());
    obs::setTracing(true);
    {
        QSA_OBS_SPAN(span, "test.span");
        span.arg("family", "swap-test").arg("boundary", 7);
        obs::instant("test.instant");
    }
    obs::setTracing(false);

    const std::string doc = obs::traceJson();
    EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
    // Perfetto essentials: the event array, a complete ("X") event
    // with µs timestamps and duration, our args, and the scoped
    // instant event.
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"test.span\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\": "), std::string::npos);
    EXPECT_NE(doc.find("\"family\": \"swap-test\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"boundary\": \"7\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"test.instant\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"i\""), std::string::npos);

    obs::clearTrace();
    const std::string empty = obs::traceJson();
    EXPECT_TRUE(JsonValidator::valid(empty)) << empty;
    EXPECT_EQ(empty.find("\"ph\""), std::string::npos);
}

TEST(ObsTrace, SpansAreFreeWhenTracingOff)
{
    obs::Registry::reset();
    ASSERT_FALSE(obs::tracing());
    {
        QSA_OBS_SPAN(span, "test.ghost");
        span.arg("key", "value");
    }
    EXPECT_EQ(obs::traceJson().find("test.ghost"), std::string::npos);
}

#else // !QSA_OBS_ENABLED

// --- Compiled-out stub tests -----------------------------------------------

TEST(ObsStub, EverythingCompilesToNothing)
{
    obs::Counter &counter = obs::Registry::counter("test.stub.c");
    counter.add(3);
    obs::Counter::addTwo(counter, 1, counter, 2);
    obs::Gauge &gauge = obs::Registry::gauge("test.stub.g");
    gauge.set(7);
    gauge.add(1);
    EXPECT_EQ(gauge.get(), 0);
    obs::Timer &timer = obs::Registry::timer("test.stub.t");
    timer.record(99);
    {
        obs::Timer::Scope scope(timer);
        QSA_OBS_COUNTER("test.stub.macro", 1);
        QSA_OBS_GAUGE_ADD("test.stub.macro_g", 1);
        QSA_OBS_TIMER(t, "test.stub.macro_t");
        QSA_OBS_SPAN(span, "test.stub.span");
        span.arg("key", 1);
    }
    EXPECT_TRUE(obs::Registry::snapshot().empty());
    EXPECT_FALSE(obs::enabled());
    obs::setEnabled(true);
    EXPECT_FALSE(obs::enabled());
    EXPECT_FALSE(obs::tracing());
    obs::setTracing(true);
    EXPECT_FALSE(obs::tracing());
}

TEST(ObsStub, DocumentsAreEmptyButValid)
{
    EXPECT_TRUE(JsonValidator::valid(obs::metricsJson()));
    EXPECT_EQ(obs::metricsJson(), "{}");
    EXPECT_TRUE(JsonValidator::valid(obs::traceJson()));
    obs::clearTrace();
}

#endif // QSA_OBS_ENABLED

TEST(ObsSnapshotHelper, ValueOfAbsentKeyIsMinusOne)
{
    EXPECT_EQ(valueOf({}, "nope"), -1);
}

} // anonymous namespace
