/**
 * @file
 * The bugs:: taxonomy mapped through the qsa::analyze linter: every
 * catalogue entry is pinned as either statically visible (its
 * BugInfo::lintRule fires at the defect instruction of the injected
 * fixture, and the corrected variant lints clean) or dynamic-only
 * (no lint rule claims it — the statistical assertions are the only
 * detector, which is the paper's core thesis for those six).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using analyze::Diagnostic;
using analyze::LintReport;
using bugs::BugInfo;
using bugs::BugType;

/** The pin table: which catalogue entries are statically visible. */
const std::map<std::string, std::string> kExpectedLintRules = {
    // The paper's six types: dynamic-only by design — the defect is
    // semantic (a wrong angle, a wrong constant, a misrouted control)
    // and indistinguishable from correct code without a reference.
    {"wrong-initial-value", ""},
    {"flipped-rotation", ""},
    {"iteration-bug", ""},
    {"misrouted-control", ""},
    {"broken-mirror", ""},
    {"wrong-classical-input", ""},
    // The three statically-visible extension types.
    {"condition-label-typo", "cond-unwritten-label"},
    {"measured-qubit-reuse", "measure-without-reset"},
    {"entangled-reset", "reset-entangled"},
};

TEST(BugTaxonomy, EveryCatalogEntryIsClassified)
{
    const auto catalog = bugs::bugCatalog();
    ASSERT_EQ(catalog.size(), kExpectedLintRules.size());
    for (const BugInfo &info : catalog) {
        const auto it = kExpectedLintRules.find(info.name);
        ASSERT_NE(it, kExpectedLintRules.end())
            << "catalogue entry '" << info.name
            << "' missing from the pin table";
        EXPECT_EQ(info.lintRule, it->second) << info.name;
    }
}

TEST(BugTaxonomy, StaticRulesExistInTheRegistry)
{
    std::set<std::string> registered;
    for (const auto &rule : analyze::lintRules())
        registered.insert(rule.id);
    for (const BugInfo &info : bugs::bugCatalog()) {
        if (!info.lintRule.empty()) {
            EXPECT_TRUE(registered.count(info.lintRule))
                << "catalogue references unknown rule '"
                << info.lintRule << "'";
        }
    }
}

TEST(BugTaxonomy, StaticFixturesFireTheirRuleAtTheDefect)
{
    for (const BugInfo &info : bugs::bugCatalog()) {
        if (info.lintRule.empty())
            continue;
        const bugs::StaticBugFixture fx =
            bugs::staticBugFixture(info.type);
        EXPECT_EQ(fx.lintRule, info.lintRule) << info.name;

        const LintReport buggy = analyze::lintCircuit(fx.buggy);
        bool fired_at_defect = false;
        for (const Diagnostic &d : buggy.diagnostics) {
            if (d.rule == fx.lintRule &&
                d.instruction == fx.defectInstruction)
                fired_at_defect = true;
        }
        EXPECT_TRUE(fired_at_defect)
            << info.name << ": expected rule '" << fx.lintRule
            << "' at instruction " << fx.defectInstruction << "\n"
            << buggy.render();

        // The finding is precise, not part of a noise burst.
        EXPECT_EQ(buggy.diagnostics.size(), 1u)
            << info.name << ":\n"
            << buggy.render();
    }
}

TEST(BugTaxonomy, CorrectedVariantsLintClean)
{
    for (const BugInfo &info : bugs::bugCatalog()) {
        if (info.lintRule.empty())
            continue;
        const bugs::StaticBugFixture fx =
            bugs::staticBugFixture(info.type);
        const LintReport clean = analyze::lintCircuit(fx.clean);
        EXPECT_TRUE(clean.clean())
            << info.name << " corrected variant:\n"
            << clean.render();
    }
}

TEST(BugTaxonomy, RuleSeverityMatchesTheRegistry)
{
    std::map<std::string, analyze::Severity> severity;
    for (const auto &rule : analyze::lintRules())
        severity[rule.id] = rule.severity;

    for (const BugInfo &info : bugs::bugCatalog()) {
        if (info.lintRule.empty())
            continue;
        const bugs::StaticBugFixture fx =
            bugs::staticBugFixture(info.type);
        for (const Diagnostic &d :
             analyze::lintCircuit(fx.buggy).diagnostics) {
            EXPECT_EQ(d.severity, severity.at(d.rule)) << info.name;
        }
    }
}

TEST(BugTaxonomy, DynamicOnlyTypesHaveNoStaticFixture)
{
    // The six paper types are pinned dynamic-only: asking for a
    // static fixture is a designed fatal, not a silent empty result.
    EXPECT_DEATH(bugs::staticBugFixture(BugType::FlippedRotation),
                 "dynamic-only");
    EXPECT_DEATH(bugs::staticBugFixture(BugType::WrongClassicalInput),
                 "dynamic-only");
}

TEST(BugTaxonomy, DynamicOnlyDefectEvadesTheLinter)
{
    // The paper's motivating point, checked from the linter's side:
    // a flipped-rotation adder is statically indistinguishable from
    // the correct one — both lint identically — so only the
    // statistical assertions can separate them.
    const auto build = [](bugs::Table1Variant variant) {
        circuit::Circuit circ;
        const auto b = circ.addRegister("b", 3);
        circ.prepRegister(b, 1);
        algo::qft(circ, b);
        const auto ctrl = circ.addRegister("ctrl", 1);
        circ.x(ctrl[0]);
        bugs::phiAddDecomposed(circ, b, 3, ctrl[0], variant);
        algo::iqft(circ, b);
        circ.measure(b, "sum");
        return circ;
    };

    const LintReport correct =
        analyze::lintCircuit(build(bugs::Table1Variant::CorrectDropA));
    const LintReport flipped = analyze::lintCircuit(
        build(bugs::Table1Variant::IncorrectFlipped));
    EXPECT_EQ(correct.count(analyze::Severity::Warning), 0u);
    EXPECT_EQ(correct.count(analyze::Severity::Error), 0u);
    EXPECT_EQ(flipped.count(analyze::Severity::Warning), 0u);
    EXPECT_EQ(flipped.count(analyze::Severity::Error), 0u);
    EXPECT_EQ(correct.diagnostics.size(), flipped.diagnostics.size());
}

} // anonymous namespace
