/**
 * @file
 * Tests for the extension features: distribution / uniform-subset
 * assertions, teleportation (entangled preconditions), textbook QPE,
 * circuit depth, and QASM file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "algo/qft.hh"
#include "algo/qpe.hh"
#include "algo/shor.hh"
#include "algo/teleport.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"
#include "circuit/executor.hh"
#include "circuit/qasm.hh"
#include "common/rng.hh"
#include "sim/gates.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;

// --- Distribution assertions -------------------------------------------------

TEST(Distribution, ShorLowerRegisterOrderCycle)
{
    // After modular exponentiation the lower register is uniform over
    // the order cycle {1, 7, 4, 13} — assertUniformSubset checks it.
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::AssertionChecker checker(prog.circuit);
    checker.assertUniformSubset("final", prog.lower, {1, 7, 4, 13});
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_GT(o.pValue, 0.05);
}

TEST(Distribution, WrongSupportRejected)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::AssertionChecker checker(prog.circuit);
    // Claim the cycle contains 2 instead of 13: impossible outcomes
    // (13 appears but has zero expected probability) force p = 0.
    checker.assertUniformSubset("final", prog.lower, {1, 7, 4, 2});
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_TRUE(o.impossibleOutcome);
}

TEST(Distribution, NonUniformExpectedDistribution)
{
    // Ry rotation gives a known Bernoulli distribution; assert it.
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    const double p1 = 0.3;
    circ.ry(q[0], 2.0 * std::asin(std::sqrt(p1)));
    circ.breakpoint("bp");

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 512;
    assertions::AssertionChecker checker(circ, cfg);
    checker.assertDistribution("bp", q, {1.0 - p1, p1});
    EXPECT_TRUE(checker.check(checker.assertions()[0]).passed);

    // And reject a clearly wrong claim.
    assertions::AssertionChecker wrong(circ, cfg);
    wrong.assertDistribution("bp", q, {0.05, 0.95});
    EXPECT_FALSE(wrong.check(wrong.assertions()[0]).passed);
}

TEST(Distribution, ValidationRejectsBadVectors)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.breakpoint("bp");
    assertions::AssertionChecker checker(circ);
    EXPECT_EXIT(checker.assertDistribution("bp", q, {0.5, 0.5}),
                ::testing::ExitedWithCode(1), "2\\^width");
    EXPECT_EXIT(checker.assertDistribution("bp", q,
                                           {0.5, 0.5, 0.5, 0.5}),
                ::testing::ExitedWithCode(1), "sum to 1");
}

// --- Teleportation --------------------------------------------------------------

class TeleportAngles
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(TeleportAngles, PayloadArrivesIntact)
{
    const auto [theta, phi] = GetParam();
    const auto prog = algo::buildTeleportProgram(theta, phi);

    // The verification stage returns the receiver to |0>.
    const auto probs = assertions::exactMarginal(
        prog.circuit, "verified", prog.receiver);
    EXPECT_NEAR(probs[0], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Angles, TeleportAngles,
    ::testing::Values(std::make_pair(0.0, 0.0),
                      std::make_pair(1.0, 0.5),
                      std::make_pair(M_PI / 2, M_PI / 3),
                      std::make_pair(2.7, -1.2)));

TEST(Teleport, EntangledPreconditionHolds)
{
    const auto prog = algo::buildTeleportProgram(1.1, 0.4);
    assertions::AssertionChecker checker(prog.circuit);
    checker.assertEntangled("pair_ready", prog.senderHalf,
                            prog.receiver);
    checker.assertClassical("verified", prog.receiver, 0);
    EXPECT_TRUE(assertions::allPassed(checker.checkAll()));
}

TEST(Teleport, BrokenPairCaughtByPrecondition)
{
    // Forget the CNOT when making the Bell pair: the precondition
    // assertion fires and the payload is corrupted.
    circuit::Circuit circ;
    const auto msg = circ.addRegister("msg", 1);
    const auto alice = circ.addRegister("alice", 1);
    const auto bob = circ.addRegister("bob", 1);
    const double theta = 1.1, phi = 0.4;
    circ.prepZ(msg[0], 0);
    circ.ry(msg[0], theta);
    circ.rz(msg[0], phi);
    circ.prepZ(alice[0], 0);
    circ.prepZ(bob[0], 0);
    circ.h(alice[0]); // BUG: no cnot(alice, bob)
    circ.breakpoint("pair_ready");
    circ.cnot(msg[0], alice[0]);
    circ.h(msg[0]);
    circ.cnot(alice[0], bob[0]);
    circ.cz(msg[0], bob[0]);
    circ.rz(bob[0], -phi);
    circ.ry(bob[0], -theta);
    circ.breakpoint("verified");

    assertions::AssertionChecker checker(circ);
    checker.assertEntangled("pair_ready", alice, bob);
    checker.assertClassical("verified", bob, 0);
    const auto outcomes = checker.checkAll();
    EXPECT_FALSE(outcomes[0].passed); // precondition violated
    EXPECT_FALSE(outcomes[1].passed); // and the payload is corrupted
}

// --- QPE -------------------------------------------------------------------------

TEST(Qpe, ExactPhaseReadout)
{
    // Phase 5/16 on |1>: with 4 counting qubits the measurement is
    // deterministic.
    const double phi = 5.0 / 16.0;
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    const auto prog = algo::buildQpeProgram(u, 1, 4, 1);

    const auto probs = assertions::exactMarginal(
        prog.circuit, "final", prog.counting);
    EXPECT_NEAR(probs[5], 1.0, 1e-9);
    EXPECT_NEAR(algo::qpeMeasurementToPhase(5, 4), phi, 1e-12);
}

TEST(Qpe, MatchesIpeaOnH2Phase)
{
    // QPE and IPEA agree on a non-trivial eigenphase.
    const double phi = 0.34375; // 11/32, 5 bits
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    const auto prog = algo::buildQpeProgram(u, 1, 5, 1);

    Rng rng(42);
    const auto rec = circuit::runCircuit(prog.circuit, rng);
    EXPECT_NEAR(algo::qpeMeasurementToPhase(
                    rec.measurements.at("phase"), 5),
                phi, 1e-12);
}

TEST(Qpe, BreakpointAssertionsFollowShorStructure)
{
    const double phi = 3.0 / 8.0;
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    const auto prog = algo::buildQpeProgram(u, 1, 3, 1);

    assertions::AssertionChecker checker(prog.circuit);
    checker.assertClassical("prepared", prog.counting, 0);
    checker.assertClassical("prepared", prog.system, 1);
    checker.assertSuperposition("superposed", prog.counting);
    checker.assertClassical("final", prog.counting, 3); // 0.011b
    EXPECT_TRUE(assertions::allPassed(checker.checkAll()));
}

TEST(Qpe, NonEigenstateSuperposition)
{
    // System in |+> under a controlled phase: counting register ends
    // in a mixture of phase 0 and phi estimates.
    const double phi = 0.25;
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    auto prog = algo::buildQpeProgram(u, 1, 3, 0);
    // Hack the prepared state: apply H on the system qubit right
    // after preparation by rebuilding with an extra instruction.
    circuit::Circuit circ;
    const auto counting = circ.addRegister("counting", 3);
    const auto system = circ.addRegister("system", 1);
    circ.prepRegister(counting, 0);
    circ.prepRegister(system, 0);
    circ.h(system[0]);
    for (unsigned k = 0; k < 3; ++k)
        circ.h(counting[k]);
    sim::CMatrix power = u;
    for (unsigned k = 0; k < 3; ++k) {
        circ.unitary(power, system.qubits(), {counting[k]});
        power = power.mul(power);
    }
    algo::iqft(circ, counting, true);
    circ.breakpoint("final");

    const auto probs =
        assertions::exactMarginal(circ, "final", counting);
    EXPECT_NEAR(probs[0], 0.5, 1e-9); // phase 0 branch
    EXPECT_NEAR(probs[2], 0.5, 1e-9); // phase 1/4 branch
}

// --- Depth and QASM file I/O -------------------------------------------------------

TEST(Depth, CountsCriticalPath)
{
    Circuit circ(3);
    EXPECT_EQ(circ.depth(), 0u);
    circ.h(0);
    circ.h(1); // parallel with the first H
    EXPECT_EQ(circ.depth(), 1u);
    circ.cnot(0, 1); // depends on both
    EXPECT_EQ(circ.depth(), 2u);
    circ.h(2); // parallel lane
    EXPECT_EQ(circ.depth(), 2u);
    circ.breakpoint("bp"); // markers do not add depth
    EXPECT_EQ(circ.depth(), 2u);
    circ.ccnot(0, 1, 2);
    EXPECT_EQ(circ.depth(), 3u);
}

TEST(Depth, ShorCircuitStats)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    EXPECT_GT(prog.circuit.depth(), 100u);
    EXPECT_LE(prog.circuit.depth(), prog.circuit.size());
}

TEST(QasmFile, SaveLoadRoundTrip)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.prepZ(q[0], 1);
    circ.h(q[1]);
    circ.cphase(q[0], q[1], 0.625);
    circ.breakpoint("bp");
    circ.measure(q, "m");

    const std::string path = "/tmp/qsa_roundtrip_test.qasm";
    circuit::saveQasmFile(circ, path);
    const Circuit loaded = circuit::loadQasmFile(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.numQubits(), circ.numQubits());
    EXPECT_EQ(circuit::toQasm(loaded), circuit::toQasm(circ));
}

TEST(QasmFile, MissingFileIsFatal)
{
    EXPECT_EXIT(circuit::loadQasmFile("/nonexistent/nope.qasm"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
