/**
 * @file
 * Grover search tests: diffusion correctness, oracle reversibility,
 * success amplification, the GF(2^k) square-root case study, and the
 * Table 4 assertion placement.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/grover.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "sim/gates.hh"

namespace
{

using namespace qsa;
using namespace qsa::algo;
using namespace qsa::assertions;

TEST(Grover, OptimalIterationCounts)
{
    EXPECT_EQ(optimalGroverIterations(4), 1u);   // 2 qubits: exact
    EXPECT_EQ(optimalGroverIterations(16), 3u);  // 4 qubits
    EXPECT_EQ(optimalGroverIterations(64), 6u);  // 6 qubits
    EXPECT_EQ(optimalGroverIterations(16, 4), 1u);
}

TEST(Grover, TwoQubitSearchIsExact)
{
    // N = 4 with one iteration succeeds with probability 1.
    for (std::uint64_t marked = 0; marked < 4; ++marked) {
        const auto prog = buildMarkedValueGrover(2, marked);
        const auto probs =
            exactMarginal(prog.circuit, "iter_1", prog.q);
        EXPECT_NEAR(probs[marked], 1.0, 1e-9) << "marked " << marked;
    }
}

class GroverWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GroverWidths, AmplifiesMarkedValue)
{
    const unsigned n = GetParam();
    const std::uint64_t marked = (0xb ^ n) & lowMask(n);
    const auto prog = buildMarkedValueGrover(n, marked);

    const std::string last_bp =
        "iter_" + std::to_string(prog.iterations);
    const auto probs = exactMarginal(prog.circuit, last_bp, prog.q);
    // Theoretical optimum exceeds 1 - 1/N; allow slack.
    EXPECT_GT(probs[marked], 0.8) << "n=" << n;
}

TEST_P(GroverWidths, SuccessProbabilityGrowsThenPeaks)
{
    const unsigned n = GetParam();
    if (n < 3)
        GTEST_SKIP() << "needs at least 2 iterations";
    const auto prog = buildMarkedValueGrover(n, 1);

    double prev = 1.0 / pow2(n);
    for (unsigned i = 1; i <= prog.iterations; ++i) {
        const auto probs = exactMarginal(
            prog.circuit, "iter_" + std::to_string(i), prog.q);
        EXPECT_GT(probs[1], prev) << "iteration " << i;
        prev = probs[1];
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, GroverWidths,
                         ::testing::Values(2u, 3u, 4u, 5u));

TEST(Grover, Gf16SquareRootSearch)
{
    // The paper's oracle: find sqrt(c) in GF(16).
    GroverConfig config;
    config.degree = 4;
    config.target = 0b1011;
    const auto prog = buildGroverProgram(config);

    const gf2::Field field(4);
    EXPECT_EQ(field.square(prog.expectedAnswer), config.target);

    const std::string last_bp =
        "iter_" + std::to_string(prog.iterations);
    const auto probs = exactMarginal(prog.circuit, last_bp, prog.q);
    EXPECT_GT(probs[prog.expectedAnswer], 0.9);

    // Every other outcome is strongly damped.
    for (std::uint64_t v = 0; v < 16; ++v) {
        if (v != prog.expectedAnswer) {
            EXPECT_LT(probs[v], 0.02) << "value " << v;
        }
    }
}

class Gf2Targets : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(Gf2Targets, FindsEverySquareRoot)
{
    GroverConfig config;
    config.degree = 3;
    config.target = GetParam();
    const auto prog = buildGroverProgram(config);

    const std::string last_bp =
        "iter_" + std::to_string(prog.iterations);
    const auto probs = exactMarginal(prog.circuit, last_bp, prog.q);
    EXPECT_GT(probs[prog.expectedAnswer], 0.8)
        << "target " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllTargets, Gf2Targets,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u,
                                           7u));

TEST(Grover, OracleUncomputesWorkRegister)
{
    // After uncompute, the work register must be |0...0> again and in
    // a product state with the search register (Section 5.1.3).
    GroverConfig config;
    const auto prog = buildGroverProgram(config);

    const auto work_probs =
        exactMarginal(prog.circuit, "oracle_uncomputed", prog.work);
    EXPECT_NEAR(work_probs[0], 1.0, 1e-9);
    EXPECT_NEAR(exactPurity(prog.circuit, "oracle_uncomputed",
                            prog.work),
                1.0, 1e-9);
}

TEST(Grover, OracleComputeEntanglesQAndWork)
{
    GroverConfig config;
    const auto prog = buildGroverProgram(config);
    // Mid-oracle the work register carries x^2: maximally correlated
    // with x.
    EXPECT_LT(exactPurity(prog.circuit, "oracle_computed", prog.work),
              0.2);
}

TEST(Grover, Table4AssertionPlacement)
{
    // The assertions the language structure dictates (Section 5.1):
    // superposition precondition, entanglement while computed,
    // product after uncompute.
    GroverConfig config;
    const auto prog = buildGroverProgram(config);

    CheckConfig cfg;
    cfg.ensembleSize = 256;
    AssertionChecker checker(prog.circuit, cfg);
    checker.assertClassical("init", prog.q, 0);
    checker.assertSuperposition("superposed", prog.q);
    checker.assertEntangled("oracle_computed", prog.q, prog.work);
    checker.assertProduct("oracle_uncomputed", prog.q, prog.work);

    const auto outcomes = checker.checkAll();
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.passed) << o.spec.name;
}

TEST(Grover, MeasurementReturnsAnswer)
{
    GroverConfig config;
    config.degree = 3;
    config.target = 5;
    const auto prog = buildGroverProgram(config);

    Rng rng(77);
    int hits = 0;
    const int runs = 50;
    for (int i = 0; i < runs; ++i) {
        const auto rec = circuit::runCircuit(prog.circuit, rng);
        hits += rec.measurements.at("result") == prog.expectedAnswer;
    }
    EXPECT_GT(hits, runs * 3 / 5);
}

TEST(Grover, MultipleMarkedValues)
{
    // Two marked items among 16: optimal iterations = 2, and the
    // final distribution concentrates on the marked set.
    const std::vector<std::uint64_t> marked{3, 12};
    const auto prog = buildMarkedSetGrover(4, marked);
    EXPECT_EQ(prog.iterations, 2u);

    const std::string last_bp =
        "iter_" + std::to_string(prog.iterations);
    const auto probs = exactMarginal(prog.circuit, last_bp, prog.q);
    double mass = 0.0;
    for (std::uint64_t v : marked)
        mass += probs[v];
    EXPECT_GT(mass, 0.9);
    // Equal amplitude on both marked values.
    EXPECT_NEAR(probs[3], probs[12], 1e-9);
}

TEST(Grover, MarkedSetValidation)
{
    EXPECT_EXIT(buildMarkedSetGrover(3, {}),
                ::testing::ExitedWithCode(1), "at least one");
    EXPECT_EXIT(buildMarkedSetGrover(3, {9}),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Grover, DiffusionIsInversionAboutMean)
{
    // Apply diffusion to a hand-crafted state and compare against the
    // closed-form reflection 2|s><s| - I.
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", 3);
    const auto chain = circ.addRegister("chain", 2);
    // Prepare amplitudes proportional to basis weights via rotations:
    // use a simple state |000> rotated a bit on each qubit.
    circ.ry(q[0], 0.4);
    circ.ry(q[1], 0.9);
    circ.ry(q[2], 1.3);
    appendDiffusion(circ, q, chain);

    Rng rng(5);
    const auto state = circuit::runCircuit(circ, rng).state;

    // Reference: build the same pre-diffusion state, reflect.
    sim::StateVector ref(5);
    ref.applyGate(sim::gates::ry(0.4), 0);
    ref.applyGate(sim::gates::ry(0.9), 1);
    ref.applyGate(sim::gates::ry(1.3), 2);

    // Mean over the 8 q-basis amplitudes (chain is |00>). Table 4's
    // construction realises I - 2|s><s| (the global-phase negative of
    // the textbook 2|s><s| - I), i.e. amp -> amp - 2 * mean.
    sim::Complex mean(0.0);
    for (std::uint64_t b = 0; b < 8; ++b)
        mean += ref.amp(b);
    mean /= 8.0;

    for (std::uint64_t b = 0; b < 8; ++b) {
        const sim::Complex want = ref.amp(b) - 2.0 * mean;
        EXPECT_NEAR(std::abs(state.amp(b) - want), 0.0, 1e-9)
            << "basis " << b;
    }
}

} // anonymous namespace
