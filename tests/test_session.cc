/**
 * @file
 * Tests for the qsa::session facade: bit-identical equivalence with
 * the direct AssertionChecker path (across thread counts and ensemble
 * modes — the facade's core contract), boundary addressing with
 * on-demand instrumentation, fluent handles, composable escalation /
 * Holm-Bonferroni policies, the locate() handoff, and
 * registration-time validation.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using assertions::AssertionOutcome;
using assertions::CheckConfig;
using assertions::EnsembleMode;
using circuit::Circuit;
using circuit::QubitRegister;

/** Field-for-field equality of two outcomes (bit-identical). */
void
expectIdentical(const AssertionOutcome &got,
                const AssertionOutcome &want, const std::string &where)
{
    EXPECT_EQ(got.pValue, want.pValue) << where;
    EXPECT_EQ(got.statistic, want.statistic) << where;
    EXPECT_EQ(got.df, want.df) << where;
    EXPECT_EQ(got.passed, want.passed) << where;
    EXPECT_EQ(got.ensembleSize, want.ensembleSize) << where;
    EXPECT_EQ(got.effectiveAlpha, want.effectiveAlpha) << where;
    EXPECT_EQ(got.countsA, want.countsA) << where;
    EXPECT_EQ(got.jointCounts, want.jointCounts) << where;
    EXPECT_EQ(got.cramersV, want.cramersV) << where;
    EXPECT_EQ(got.impossibleOutcome, want.impossibleOutcome) << where;
    EXPECT_EQ(got.spec.name, want.spec.name) << where;
}

/** Bell program plus the sliced halves. */
struct BellFixture
{
    Circuit circ = algo::buildBellProgram();
    QubitRegister q = circ.reg("q");
    QubitRegister q0 = circ.reg("q").slice(0, 1, "q0");
    QubitRegister q1 = circ.reg("q").slice(1, 1, "q1");
};

/**
 * The acceptance contract: every quickstart assertion registered
 * through Session yields the identical AssertionOutcome as the direct
 * AssertionChecker path, for both ensemble modes and thread counts
 * 1 / 4 / 0 (shared pool).
 */
TEST(SessionEquivalence, QuickstartPlanMatchesCheckerBitIdentically)
{
    BellFixture f;
    for (auto mode : {EnsembleMode::Resimulate,
                      EnsembleMode::SampleFinalState}) {
        for (unsigned threads : {1u, 4u, 0u}) {
            CheckConfig cfg;
            cfg.ensembleSize = 256;
            cfg.mode = mode;
            cfg.numThreads = threads;

            session::Session s(f.circ, cfg);
            s.at("classical").expectClassical(f.q, 0);
            s.at("superposition").expectSuperposition(f.q0);
            s.at("superposition").expectProduct(f.q0, f.q1);
            s.at("entangled").expectEntangled(f.q0, f.q1);
            const auto &got = s.run();

            assertions::AssertionChecker checker(f.circ, cfg);
            checker.assertClassical("classical", f.q, 0);
            checker.assertSuperposition("superposition", f.q0);
            checker.assertProduct("superposition", f.q0, f.q1);
            checker.assertEntangled("entangled", f.q0, f.q1);
            const auto want = checker.checkAll();

            ASSERT_EQ(got.size(), want.size());
            for (std::size_t i = 0; i < want.size(); ++i) {
                expectIdentical(
                    got[i], want[i],
                    "spec " + std::to_string(i) + " mode " +
                        std::to_string((int)mode) + " threads " +
                        std::to_string(threads));
            }
            EXPECT_TRUE(s.allPassed());
        }
    }
}

TEST(SessionEquivalence, BoundarySitesMatchManualInstrumentation)
{
    // A raw circuit with no breakpoints at all: the facade
    // instruments on demand; the manual path instruments by hand with
    // the same labels. Outcomes must be bit-identical.
    Circuit raw;
    const auto q = raw.addRegister("q", 2);
    raw.prepZ(q[0], 0);
    raw.prepZ(q[1], 0);
    raw.h(q[0]);
    raw.cnot(q[0], q[1]);
    const auto q0 = q.slice(0, 1, "q0");
    const auto q1 = q.slice(1, 1, "q1");

    CheckConfig cfg;
    cfg.ensembleSize = 128;

    session::Session s(raw, cfg);
    s.after(2).expectClassical(q, 0);
    s.after(3).expectSuperposition(q0);
    s.after(4).expectEntangled(q0, q1);
    const auto &got = s.run();

    const Circuit instrumented =
        raw.withBoundaryBreakpoints("qsa_session_b");
    assertions::AssertionChecker checker(instrumented, cfg);
    checker.assertClassical(session::Session::boundaryLabel(2), q, 0);
    checker.assertSuperposition(session::Session::boundaryLabel(3),
                                q0);
    checker.assertEntangled(session::Session::boundaryLabel(4), q0,
                            q1);
    const auto want = checker.checkAll();

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectIdentical(got[i], want[i], "spec " + std::to_string(i));

    // Labelled and boundary addressing may be mixed once
    // instrumented: the original labels survive instrumentation.
    session::Session mixed(algo::buildBellProgram(), cfg);
    mixed.after(2).expectClassical(q, 0);
    mixed.at("entangled").expectEntangled(q0, q1);
    EXPECT_TRUE(mixed.allPassed());
}

TEST(SessionEquivalence, EscalationPolicyMatchesCheckEscalated)
{
    // An Entangled assertion at M = 8 under a strict alpha is
    // underpowered (it cannot reject independence yet), so the policy
    // escalates — the facade must land on exactly the checkEscalated
    // verdict.
    BellFixture f;
    const assertions::EscalationPolicy policy{8, 512, 0.30};

    CheckConfig cfg;
    session::Session s(f.circ, cfg);
    s.use(policy);
    s.at("entangled").expectEntangled(f.q0, f.q1).alpha(0.001);
    s.at("superposition").expectSuperposition(f.q0);
    const auto &got = s.run();

    assertions::AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1, 0.001);
    checker.assertSuperposition("superposition", f.q0);
    ASSERT_EQ(got.size(), 2u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        expectIdentical(
            got[i],
            checker.checkEscalated(checker.assertions()[i], policy),
            "escalated spec " + std::to_string(i));
    }
    EXPECT_GT(got[0].ensembleSize, policy.initialSize);
}

TEST(SessionEquivalence, HolmBonferroniPolicyMatchesCheckerFlag)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 256;

    session::Session s(f.circ, cfg);
    s.use(session::HolmBonferroni{});
    s.at("classical").expectClassical(f.q, 0);
    s.at("superposition").expectSuperposition(f.q0);
    s.at("superposition").expectProduct(f.q0, f.q1);
    s.at("entangled").expectEntangled(f.q0, f.q1);
    const auto &got = s.run();

    CheckConfig flag_cfg = cfg;
    flag_cfg.holmBonferroni = true;
    assertions::AssertionChecker checker(f.circ, flag_cfg);
    checker.assertClassical("classical", f.q, 0);
    checker.assertSuperposition("superposition", f.q0);
    checker.assertProduct("superposition", f.q0, f.q1);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto want = checker.checkAll();

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectIdentical(got[i], want[i], "hb spec " + std::to_string(i));

    // The policy is composable: switching it off restores
    // per-assertion adjudication.
    s.use(session::HolmBonferroni{false});
    for (const auto &out : s.run())
        EXPECT_EQ(out.effectiveAlpha, out.spec.alpha);
}

// --- Fluent surface ---------------------------------------------------------

TEST(SessionFluent, HandlesRefineSpecsAndReadOutcomes)
{
    BellFixture f;
    session::Session s(f.circ);
    auto &e = s.at("entangled")
                  .expectEntangled(f.q0, f.q1)
                  .alpha(0.01)
                  .named("bell-pair entangled");
    EXPECT_EQ(e.spec().alpha, 0.01);
    EXPECT_EQ(e.spec().name, "bell-pair entangled");

    // Reading the handle runs the plan on demand.
    EXPECT_TRUE(e.passed());
    EXPECT_LE(e.pValue(), 0.01);
    EXPECT_EQ(e.outcome().effectiveAlpha, 0.01);

    const std::string report = s.report();
    EXPECT_NE(report.find("bell-pair entangled"), std::string::npos);

    // Renaming after the run patches the report without invalidating
    // (and thus recomputing) the plan's ensembles.
    const double p = e.pValue();
    e.named("renamed");
    EXPECT_NE(s.report().find("renamed"), std::string::npos);
    EXPECT_EQ(e.pValue(), p);
}

TEST(SessionFluent, LateRegistrationsMakeResultsStale)
{
    BellFixture f;
    session::Session s(f.circ);
    s.at("classical").expectClassical(f.q, 0);
    EXPECT_EQ(s.outcomes().size(), 1u);

    // A second registration after the first run: reading any result
    // re-runs the grown plan.
    auto &e = s.at("entangled").expectEntangled(f.q0, f.q1);
    EXPECT_TRUE(e.passed());
    EXPECT_EQ(s.outcomes().size(), 2u);

    // Default display names match the checker's convention.
    EXPECT_EQ(s.outcomes()[1].spec.name, "entangled@entangled");
}

TEST(SessionFluent, ConfigSettersRebuildTheEngine)
{
    BellFixture f;
    session::Session s(f.circ);
    s.at("superposition").expectSuperposition(f.q0);
    const auto first = s.outcomes()[0];

    s.ensembleSize(512).seed(0xfeedbeef);
    const auto second = s.outcomes()[0];
    EXPECT_EQ(second.ensembleSize, 512u);
    EXPECT_NE(first.countsA, second.countsA);

    // Returning to the original configuration reproduces the first
    // outcome exactly (the determinism contract through the facade).
    s.ensembleSize(256).seed(CheckConfig().seed);
    expectIdentical(s.outcomes()[0], first, "restored config");
}

TEST(SessionFluent, PerExpectationEnsembleSizeMatchesHandBuiltConfig)
{
    // The facade follow-up: one expectation runs at its own ensemble
    // size while the rest keep the session default, bit-identical to
    // a hand-built CheckConfig at that size.
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 128;

    session::Session s(f.circ, cfg);
    s.at("classical").expectClassical(f.q, 0);
    auto &big = s.at("entangled")
                    .expectEntangled(f.q0, f.q1)
                    .ensembleSize(512);
    const auto &got = s.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].ensembleSize, 128u);
    EXPECT_EQ(big.outcome().ensembleSize, 512u);

    CheckConfig big_cfg = cfg;
    big_cfg.ensembleSize = 512;
    assertions::AssertionChecker direct(f.circ, big_cfg);
    direct.assertEntangled("entangled", f.q0, f.q1);
    expectIdentical(got[1], direct.check(direct.assertions()[0]),
                    "overridden expectation");

    // The default-sized sibling is untouched by the override.
    assertions::AssertionChecker small(f.circ, cfg);
    small.assertClassical("classical", f.q, 0);
    expectIdentical(got[0], small.check(small.assertions()[0]),
                    "default-size expectation");

    // Clearing the override restores the session default.
    big.ensembleSize(0);
    EXPECT_EQ(big.outcome().ensembleSize, 128u);
}

TEST(SessionFluent, EnsembleSizeOverrideComposesWithEscalation)
{
    // With a policy in use, the override replaces the policy's
    // initial size for that one assertion — exactly checkEscalated
    // under the adjusted policy.
    BellFixture f;
    const assertions::EscalationPolicy policy{8, 512, 0.30};

    session::Session s(f.circ);
    s.use(policy);
    s.at("entangled")
        .expectEntangled(f.q0, f.q1)
        .alpha(0.001)
        .ensembleSize(256);
    const auto &got = s.run();

    assertions::AssertionChecker checker(f.circ, CheckConfig());
    checker.assertEntangled("entangled", f.q0, f.q1, 0.001);
    const assertions::EscalationPolicy adjusted{256, 512, 0.30};
    expectIdentical(
        got[0],
        checker.checkEscalated(checker.assertions()[0], adjusted),
        "override + escalation");
}

// --- Structured export ------------------------------------------------------

TEST(SessionExport, JsonCarriesTheOutcomeTable)
{
    BellFixture f;
    session::Session s(f.circ);
    s.ensembleSize(64);
    s.at("classical").expectClassical(f.q, 0).named("prep-cleared");
    s.at("entangled").expectEntangled(f.q0, f.q1);

    const std::string doc = s.exportJson();

    // Session block and one record per assertion.
    EXPECT_NE(doc.find("\"session\""), std::string::npos);
    EXPECT_NE(doc.find("\"ensemble_size\": 64"), std::string::npos);
    EXPECT_NE(doc.find("\"mode\": \"sample_final_state\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"prep-cleared\""), std::string::npos);
    EXPECT_NE(doc.find("\"entangled@entangled\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"entangled\""), std::string::npos);
    EXPECT_NE(doc.find("\"p_value\": "), std::string::npos);
    EXPECT_NE(doc.find("\"counts\": {"), std::string::npos);
    EXPECT_NE(doc.find("\"all_passed\": true"), std::string::npos);

    // The file-writing overload round-trips the same document.
    const std::string path =
        ::testing::TempDir() + "qsa_session_export.json";
    s.exportJson(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), doc);
}

// --- Localization handoff ---------------------------------------------------

/** Misrouted-control fixture pair (bench_locate's mid-size shape). */
std::pair<Circuit, Circuit>
misroutedPair()
{
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 5);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        if (buggy)
            bugs::cModMulMisrouted(*circ, ctrl[0], x, b, 3, 7, anc[0]);
        else
            algo::cModMul(*circ, ctrl[0], x, b, 3, 7, anc[0]);
    }
    return pair;
}

TEST(SessionLocate, HandsOffToBugLocatorWithSessionPolicies)
{
    const auto [buggy, reference] = misroutedPair();

    session::Session s(buggy);
    s.seed(0x5e5510caull); // any session seed carries over
    s.use(assertions::EscalationPolicy{64, 1024, 0.30});
    const auto report = s.locate(reference);
    EXPECT_TRUE(report.bugFound);
    EXPECT_LT(report.probes.size(), buggy.size());

    // The handoff is a pure derivation: BugLocator under the derived
    // config reproduces the same localization.
    const locate::BugLocator locator(
        buggy, reference,
        s.locateConfig(locate::Strategy::AdaptiveBinarySearch));
    const auto direct = locator.locate();
    EXPECT_EQ(report.bugFound, direct.bugFound);
    EXPECT_EQ(report.firstFailing, direct.firstFailing);
    EXPECT_EQ(report.lastPassing, direct.lastPassing);
    EXPECT_EQ(report.probes.size(), direct.probes.size());

    // The derived config carries the session's knobs.
    const auto lc =
        s.locateConfig(locate::Strategy::AdaptiveBinarySearch);
    EXPECT_EQ(lc.seed, s.config().seed);
    EXPECT_EQ(lc.ensembleSize, 64u);
    EXPECT_EQ(lc.maxEnsembleSize, 1024u);
}

TEST(SessionLocate, ResimulateSessionLocalizesPastMeasurement)
{
    // A session switched to Resimulate mode hands that mode to the
    // locator: the defect behind the mid-circuit measurement (a
    // flipped rotation after a classically-conditioned correction)
    // is bracketed — the default mode would clamp the probeable
    // range before it.
    const auto build = [](bool buggy) {
        Circuit c;
        const auto q = c.addRegister("q", 2);
        c.prepZ(q[0], 0);
        c.prepZ(q[1], 0);
        c.h(q[0]);
        c.measureQubits({q[0]}, "m");
        c.x(q[1]);
        c.conditionLast("m", 1);
        c.ry(q[1], buggy ? 0.9 : -0.9); // the post-measure defect
        return c;
    };
    const Circuit buggy = build(true);
    const Circuit reference = build(false);

    session::Session s(buggy);
    s.mode(EnsembleMode::Resimulate);
    s.use(assertions::EscalationPolicy{64, 1024, 0.30});
    const auto report = s.locate(reference);
    ASSERT_TRUE(report.bugFound) << report.summary();
    EXPECT_EQ(report.suspectBegin(), buggy.size() - 1)
        << report.summary();

    // The derived config carries the session's mode.
    const auto lc =
        s.locateConfig(locate::Strategy::AdaptiveBinarySearch);
    EXPECT_EQ(lc.mode, EnsembleMode::Resimulate);
}

TEST(SessionLocate, ProbeFamilyCarriesIntoTheLocator)
{
    // A conditioned frame defect: the correction applies S where the
    // reference applies Z, so the divergence is a relative phase
    // invisible to every computational-basis probe until the verify
    // rotation. The session's swap-test family brackets the defect
    // itself; the default family brackets the verify step.
    // One-bit teleportation: measuring q0 leaves q1 in Z^m |psi>,
    // and the conditioned Z restores |psi> in both branches.
    const auto build = [](bool buggy) {
        Circuit c;
        const auto q = c.addRegister("q", 2);
        c.prepZ(q[0], 0);
        c.prepZ(q[1], 0);
        c.ry(q[0], 1.1); // the payload
        c.cnot(q[0], q[1]);
        c.h(q[0]);
        c.measureQubits({q[0]}, "m");
        if (buggy)
            c.phase(q[1], M_PI / 2); // [6] S frame instead of Z
        else
            c.z(q[1]);
        c.conditionLast("m", 1);
        c.ry(q[1], -1.1); // verify: rotates the error into view
        return c;
    };
    const Circuit buggy = build(true);
    const Circuit reference = build(false);
    const QubitRegister target = buggy.reg("q").slice(1, 1, "q1");

    session::Session s(buggy);
    s.mode(EnsembleMode::Resimulate);
    s.use(assertions::EscalationPolicy{64, 1024, 0.30});

    const auto marginal = s.locate(reference, target);
    ASSERT_TRUE(marginal.bugFound) << marginal.summary();
    EXPECT_EQ(marginal.suspectBegin(), buggy.size() - 1)
        << marginal.summary();

    s.probes(locate::ProbeFamily::SwapTest);
    const auto lc =
        s.locateConfig(locate::Strategy::AdaptiveBinarySearch);
    EXPECT_EQ(lc.family, locate::ProbeFamily::SwapTest);

    const auto swap = s.locate(reference, target);
    ASSERT_TRUE(swap.bugFound) << swap.summary();
    EXPECT_EQ(swap.suspectBegin(), 6u) << swap.summary();
    EXPECT_EQ(swap.decidedBy, locate::ProbeFamily::SwapTest);
}

// --- Registration-time validation -------------------------------------------

TEST(SessionValidation, UnknownLabelRejectedAtAddressTime)
{
    BellFixture f;
    session::Session s(f.circ);
    EXPECT_EXIT(s.at("nonexistent"), ::testing::ExitedWithCode(1),
                "no breakpoint labelled");
}

TEST(SessionValidation, BoundaryBeyondProgramRejected)
{
    BellFixture f;
    session::Session s(f.circ);
    EXPECT_EXIT(s.after(f.circ.size() + 1),
                ::testing::ExitedWithCode(1), "beyond the program");
    // The end boundary itself is valid.
    s.after(f.circ.size());
}

TEST(SessionValidation, MalformedSpecsRejectedAtRegistration)
{
    BellFixture f;
    session::Session s(f.circ);
    auto site = s.at("classical");
    EXPECT_EXIT(site.expectClassical(f.q, 4),
                ::testing::ExitedWithCode(1),
                "outside the register domain");
    EXPECT_EXIT(site.expectDistribution(f.q0, {0.5, 0.25, 0.25}),
                ::testing::ExitedWithCode(1), "2\\^width entries");
    EXPECT_EXIT(site.expectDistribution(f.q0, {0.7, 0.7}),
                ::testing::ExitedWithCode(1), "must sum to 1");
    EXPECT_EXIT(site.expectSuperposition(f.q0).alpha(1.5),
                ::testing::ExitedWithCode(1), "strictly between");
    EXPECT_EXIT(s.ensembleSize(0), ::testing::ExitedWithCode(1),
                "positive");
}

} // anonymous namespace
