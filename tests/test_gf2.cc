/**
 * @file
 * Unit and property tests for GF(2^k) arithmetic.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "gf2/gf2.hh"

namespace
{

using namespace qsa;
using qsa::gf2::Field;

TEST(Gf2, IrreducibilityKnownPolynomials)
{
    EXPECT_TRUE(Field::isIrreducible(0b111, 2));   // x^2+x+1
    EXPECT_TRUE(Field::isIrreducible(0b1011, 3));  // x^3+x+1
    EXPECT_TRUE(Field::isIrreducible(0b10011, 4)); // x^4+x+1
    EXPECT_FALSE(Field::isIrreducible(0b1001, 3)); // x^3+1=(x+1)(..)
    EXPECT_FALSE(Field::isIrreducible(0b101, 2));  // x^2+1=(x+1)^2
    EXPECT_FALSE(Field::isIrreducible(0b110, 2));  // no constant term
}

TEST(Gf2, Gf4MultiplicationTable)
{
    // GF(4) with x^2+x+1: elements 0,1,w=2,w+1=3; w*w = w+1,
    // w*(w+1) = 1.
    const Field f(2);
    EXPECT_EQ(f.mul(2, 2), 3u);
    EXPECT_EQ(f.mul(2, 3), 1u);
    EXPECT_EQ(f.mul(3, 3), 2u);
}

TEST(Gf2, Gf16KnownProducts)
{
    // GF(16) with x^4+x+1: x^3 * x = x^4 = x + 1.
    const Field f(4);
    EXPECT_EQ(f.modulus(), 0b10011u);
    EXPECT_EQ(f.mul(0b1000, 0b0010), 0b0011u);
}

class FieldDegrees : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FieldDegrees, FieldAxiomsHold)
{
    const Field f(GetParam());
    const std::uint32_t n = f.order();

    for (std::uint32_t a = 0; a < n; ++a) {
        // Identity and zero.
        EXPECT_EQ(f.mul(a, 1), a);
        EXPECT_EQ(f.mul(a, 0), 0u);
        EXPECT_EQ(f.add(a, a), 0u); // characteristic 2
        // Inverses.
        if (a != 0) {
            const std::uint32_t inv = f.inverse(a);
            EXPECT_EQ(f.mul(a, inv), 1u) << "a=" << a;
        }
    }
}

TEST_P(FieldDegrees, MultiplicationCommutesAndAssociates)
{
    const Field f(GetParam());
    const std::uint32_t n = f.order();
    // Sample systematically (full loops get big at k = 8).
    const std::uint32_t step = n > 16 ? n / 13 + 1 : 1;
    for (std::uint32_t a = 0; a < n; a += step) {
        for (std::uint32_t b = 0; b < n; b += step) {
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));
            for (std::uint32_t c = 0; c < n; c += step) {
                EXPECT_EQ(f.mul(a, f.mul(b, c)),
                          f.mul(f.mul(a, b), c));
                // Distributivity.
                EXPECT_EQ(f.mul(a, f.add(b, c)),
                          f.add(f.mul(a, b), f.mul(a, c)));
            }
        }
    }
}

TEST_P(FieldDegrees, SquaringIsBijectiveAndSqrtInverts)
{
    const Field f(GetParam());
    std::vector<bool> seen(f.order(), false);
    for (std::uint32_t a = 0; a < f.order(); ++a) {
        const std::uint32_t sq = f.square(a);
        EXPECT_FALSE(seen[sq]) << "square collision at " << a;
        seen[sq] = true;
        EXPECT_EQ(f.sqrt(sq), a);
        EXPECT_EQ(f.square(f.sqrt(a)), a);
    }
}

TEST_P(FieldDegrees, FrobeniusIsLinear)
{
    const Field f(GetParam());
    const std::uint32_t n = f.order();
    const std::uint32_t step = n > 64 ? 7 : 1;
    for (std::uint32_t a = 0; a < n; a += step)
        for (std::uint32_t b = 0; b < n; b += step)
            EXPECT_EQ(f.square(f.add(a, b)),
                      f.add(f.square(a), f.square(b)));
}

TEST_P(FieldDegrees, SquaringMatrixMatchesSquare)
{
    const Field f(GetParam());
    const auto rows = f.squaringMatrixRows();
    ASSERT_EQ(rows.size(), f.degree());

    for (std::uint32_t a = 0; a < f.order(); ++a) {
        std::uint32_t via_matrix = 0;
        for (unsigned i = 0; i < f.degree(); ++i) {
            const unsigned parity = popcount64(rows[i] & a) & 1;
            via_matrix |= parity << i;
        }
        EXPECT_EQ(via_matrix, f.square(a)) << "a=" << a;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, FieldDegrees,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u));

TEST(Gf2, DefaultModuliAreIrreducibleUpTo16)
{
    for (unsigned k = 1; k <= 16; ++k) {
        const Field f(k);
        EXPECT_TRUE(Field::isIrreducible(f.modulus(), k)) << "k=" << k;
    }
}

TEST(Gf2, PowMatchesRepeatedMultiplication)
{
    const Field f(5);
    for (std::uint32_t a = 1; a < f.order(); a += 3) {
        std::uint32_t acc = 1;
        for (unsigned e = 0; e < 10; ++e) {
            EXPECT_EQ(f.pow(a, e), acc);
            acc = f.mul(acc, a);
        }
    }
}

TEST(Gf2, FermatLittleTheorem)
{
    // a^(2^k - 1) = 1 for a != 0.
    const Field f(6);
    for (std::uint32_t a = 1; a < f.order(); ++a)
        EXPECT_EQ(f.pow(a, f.order() - 1), 1u);
}

} // anonymous namespace
