/**
 * @file
 * Tests for the QFT and the Fourier-space arithmetic (Listings 1-3):
 * round trips, exhaustive adder checks, modular adder/multiplier
 * behaviour on classical inputs, and the Listing 3 harness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace qsa;
using namespace qsa::algo;
using qsa::circuit::Circuit;
using qsa::circuit::QubitRegister;
using qsa::circuit::runCircuit;

constexpr double tol = 1e-9;

/** Run a circuit and return the measured value of a register. */
std::uint64_t
runAndMeasure(Circuit &circ, const QubitRegister &r,
              std::uint64_t seed = 42)
{
    circ.measure(r, "result");
    Rng rng(seed);
    return runCircuit(circ, rng).measurements.at("result");
}

// --- Listing 1: QFT test harness -------------------------------------------

TEST(Qft, RoundTripRestoresClassicalValue)
{
    // The exact program of Listing 1: prepare 5, QFT, iQFT, expect 5.
    Circuit circ;
    const auto reg = circ.addRegister("reg", 4);
    for (unsigned i = 0; i < 4; ++i)
        circ.prepZ(reg[i], (i + 1) % 2); // 0b0101
    qft(circ, reg);
    iqft(circ, reg);
    EXPECT_EQ(runAndMeasure(circ, reg), 5u);
}

class QftValues
    : public ::testing::TestWithParam<std::tuple<unsigned,
                                                 std::uint64_t>>
{
};

TEST_P(QftValues, RoundTripIsIdentityForAllValues)
{
    const auto [width, value] = GetParam();
    Circuit circ;
    const auto reg = circ.addRegister("reg", width);
    circ.prepRegister(reg, value);
    qft(circ, reg);
    iqft(circ, reg);
    EXPECT_EQ(runAndMeasure(circ, reg), value & lowMask(width));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QftValues,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0ull, 1ull, 5ull, 12ull,
                                         31ull)),
    [](const auto &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "_v" +
               std::to_string(std::get<1>(info.param)) + "_i" +
               std::to_string(info.index);
    });

TEST(Qft, ProducesUniformMagnitudes)
{
    // Superposition postcondition of Listing 1: after QFT of a basis
    // state every outcome is equally likely.
    Circuit circ;
    const auto reg = circ.addRegister("reg", 4);
    circ.prepRegister(reg, 5);
    qft(circ, reg);

    Rng rng(1);
    const auto rec = runCircuit(circ, rng);
    const auto probs = rec.state.marginalProbs(reg.qubits());
    for (double p : probs)
        EXPECT_NEAR(p, 1.0 / 16.0, tol);
}

TEST(Qft, BitReversalMatchesDftConvention)
{
    // With bit reversal the QFT of |b> has amplitudes
    // exp(2 pi i b k / 2^n) / sqrt(2^n) at position k.
    const unsigned n = 3;
    const std::uint64_t b = 5;
    Circuit circ;
    const auto reg = circ.addRegister("reg", n);
    circ.prepRegister(reg, b);
    qft(circ, reg, /*bit_reversal=*/true);

    Rng rng(1);
    const auto rec = runCircuit(circ, rng);
    const double inv = 1.0 / std::sqrt(8.0);
    for (std::uint64_t k = 0; k < 8; ++k) {
        const double phase = 2.0 * M_PI * b * k / 8.0;
        const sim::Complex expected =
            inv * std::exp(sim::Complex(0.0, phase));
        EXPECT_NEAR(std::abs(rec.state.amp(k) - expected), 0.0, tol)
            << "k=" << k;
    }
}

TEST(Qft, ApproximateQftCloseToExact)
{
    // Dropping the smallest rotations barely moves the state.
    const unsigned n = 5;
    Circuit exact_c, approx_c;
    const auto r1 = exact_c.addRegister("r", n);
    const auto r2 = approx_c.addRegister("r", n);
    exact_c.prepRegister(r1, 19);
    approx_c.prepRegister(r2, 19);
    qft(exact_c, r1);
    approximateQft(approx_c, r2, 3);

    Rng rng1(1), rng2(1);
    const auto s1 = runCircuit(exact_c, rng1).state;
    const auto s2 = runCircuit(approx_c, rng2).state;
    EXPECT_GT(s1.fidelity(s2), 0.98);
}

// --- Listing 2/3: the controlled adder --------------------------------------

TEST(PhiAdd, Listing3Harness)
{
    // The paper's unit test verbatim: b = 12, a = 13, expect 25
    // (width 5 so nothing overflows).
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 2);
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(ctrl, 0);
    circ.prepRegister(b, 12);

    qft(circ, b);
    phiAdd(circ, b, 13);
    iqft(circ, b);

    EXPECT_EQ(runAndMeasure(circ, b), 25u);
}

class AdderExhaustive
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(AdderExhaustive, AddsModulo16)
{
    const auto [a, b_val] = GetParam();
    Circuit circ;
    const auto b = circ.addRegister("b", 4);
    circ.prepRegister(b, b_val);
    qft(circ, b);
    phiAdd(circ, b, a);
    iqft(circ, b);
    EXPECT_EQ(runAndMeasure(circ, b), (a + b_val) % 16);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdderExhaustive,
    ::testing::Combine(::testing::Values(0ull, 1ull, 7ull, 11ull,
                                         15ull),
                       ::testing::Values(0ull, 1ull, 6ull, 15ull)));

TEST(PhiAdd, SubtractionMirrorsAddition)
{
    Circuit circ;
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(b, 25);
    qft(circ, b);
    phiAdd(circ, b, 13, {}, -1);
    iqft(circ, b);
    EXPECT_EQ(runAndMeasure(circ, b), 12u);
}

TEST(PhiAdd, SingleControlGates)
{
    for (unsigned ctrl_val : {0u, 1u}) {
        Circuit circ;
        const auto c = circ.addRegister("c", 1);
        const auto b = circ.addRegister("b", 4);
        circ.prepRegister(c, ctrl_val);
        circ.prepRegister(b, 3);
        qft(circ, b);
        phiAdd(circ, b, 5, {c[0]});
        iqft(circ, b);
        EXPECT_EQ(runAndMeasure(circ, b), ctrl_val ? 8u : 3u);
    }
}

TEST(PhiAdd, DoubleControlRequiresBoth)
{
    for (unsigned cv = 0; cv < 4; ++cv) {
        Circuit circ;
        const auto c = circ.addRegister("c", 2);
        const auto b = circ.addRegister("b", 4);
        circ.prepRegister(c, cv);
        circ.prepRegister(b, 6);
        qft(circ, b);
        phiAdd(circ, b, 7, {c[0], c[1]});
        iqft(circ, b);
        EXPECT_EQ(runAndMeasure(circ, b), cv == 3 ? 13u : 6u)
            << "controls " << cv;
    }
}

TEST(PhiAdd, ControlInSuperpositionEntangles)
{
    // Superposed control -> the sum register becomes correlated with
    // the control (the recursion pattern's entanglement signature).
    Circuit circ;
    const auto c = circ.addRegister("c", 1);
    const auto b = circ.addRegister("b", 3);
    circ.prepRegister(c, 0);
    circ.h(c[0]);
    circ.prepRegister(b, 1);
    qft(circ, b);
    phiAdd(circ, b, 2, {c[0]});
    iqft(circ, b);

    Rng rng(3);
    const auto rec = runCircuit(circ, rng);
    const auto joint = rec.state.marginalProbs({c[0], b[0], b[1], b[2]});
    // (c=0, b=1) and (c=1, b=3), each with probability 1/2.
    EXPECT_NEAR(joint[0b0010], 0.5, tol);
    EXPECT_NEAR(joint[0b0111], 0.5, tol);
}

// --- Modular adder -----------------------------------------------------------

class ModAdder
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(ModAdder, AddsModuloN)
{
    const std::uint64_t n_mod = 15;
    const auto [a, b_val] = GetParam();

    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 2);
    const auto b = circ.addRegister("b", 5); // 4 bits + overflow
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 3); // both controls on
    circ.prepRegister(b, b_val);
    circ.prepRegister(anc, 0);

    qft(circ, b);
    phiAddModN(circ, b, a, n_mod, anc[0], {ctrl[0], ctrl[1]});
    iqft(circ, b);

    circ.measure(b, "b");
    circ.measure(anc, "anc");
    Rng rng(9);
    const auto rec = runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("b"), (a + b_val) % n_mod);
    EXPECT_EQ(rec.measurements.at("anc"), 0u)
        << "comparison ancilla must be restored";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModAdder,
    ::testing::Combine(::testing::Values(0ull, 1ull, 7ull, 8ull, 14ull),
                       ::testing::Values(0ull, 1ull, 7ull, 14ull)));

TEST(ModAdder, ControlOffLeavesRegister)
{
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 2);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1); // only one of two controls
    circ.prepRegister(b, 9);
    circ.prepRegister(anc, 0);

    qft(circ, b);
    phiAddModN(circ, b, 7, 15, anc[0], {ctrl[0], ctrl[1]});
    iqft(circ, b);
    EXPECT_EQ(runAndMeasure(circ, b), 9u);
}

// --- Modular multiplier (Listing 4 semantics) -------------------------------

class ModMul : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ModMul, ComputesAXPlusB)
{
    const std::uint64_t n_mod = 15;
    const std::uint64_t a = GetParam();
    const std::uint64_t x_val = 6, b_val = 7;

    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1);
    circ.prepRegister(x, x_val);
    circ.prepRegister(b, b_val);
    circ.prepRegister(anc, 0);

    cModMul(circ, ctrl[0], x, b, a, n_mod, anc[0]);

    circ.measure(x, "x");
    circ.measure(b, "b");
    Rng rng(11);
    const auto rec = runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("x"), x_val);
    EXPECT_EQ(rec.measurements.at("b"), (a * x_val + b_val) % n_mod);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModMul,
                         ::testing::Values(1ull, 2ull, 7ull, 13ull));

TEST(ModMul, InverseClearsHelper)
{
    // Listing 4's mirror check: multiply then inverse-multiply by the
    // modular inverse returns b to zero.
    const std::uint64_t n_mod = 15, a = 7, x_val = 6;

    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1);
    circ.prepRegister(x, x_val);
    circ.prepRegister(b, 0);
    circ.prepRegister(anc, 0);

    cModMul(circ, ctrl[0], x, b, a, n_mod, anc[0]); // b = ax
    // x and b entangled-free here for classical inputs; swap halves.
    for (unsigned i = 0; i < 4; ++i)
        circ.cswap(ctrl[0], x[i], b[i]);
    cModMulInverse(circ, ctrl[0], x, b, *modInverse(a, n_mod), n_mod,
                   anc[0]);

    circ.measure(x, "x");
    circ.measure(b, "b");
    Rng rng(13);
    const auto rec = runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("x"), a * x_val % n_mod);
    EXPECT_EQ(rec.measurements.at("b"), 0u);
}

class CUaExhaustive : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CUaExhaustive, InPlaceModularMultiply)
{
    const std::uint64_t n_mod = 15, a = 7;
    const std::uint64_t x_val = GetParam();

    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1);
    circ.prepRegister(x, x_val);
    circ.prepRegister(b, 0);
    circ.prepRegister(anc, 0);

    cUa(circ, ctrl[0], x, b, a, *modInverse(a, n_mod), n_mod, anc[0]);

    circ.measure(x, "x");
    circ.measure(b, "b");
    circ.measure(anc, "anc");
    Rng rng(17);
    const auto rec = runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("x"), a * x_val % n_mod);
    EXPECT_EQ(rec.measurements.at("b"), 0u);
    EXPECT_EQ(rec.measurements.at("anc"), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllResidues, CUaExhaustive,
                         ::testing::Values(1ull, 2ull, 4ull, 7ull, 8ull,
                                           11ull, 13ull, 14ull));

TEST(CUa, ControlOffIsIdentity)
{
    const std::uint64_t n_mod = 15, a = 7;
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 0);
    circ.prepRegister(x, 6);
    circ.prepRegister(b, 0);
    circ.prepRegister(anc, 0);

    cUa(circ, ctrl[0], x, b, a, 13, n_mod, anc[0]);

    circ.measure(x, "x");
    circ.measure(b, "b");
    Rng rng(19);
    const auto rec = runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("x"), 6u);
    EXPECT_EQ(rec.measurements.at("b"), 0u);
}

// --- Classical number theory -------------------------------------------------

TEST(NumTheory, GcdAndInverse)
{
    EXPECT_EQ(gcd(12, 18), 6u);
    EXPECT_EQ(gcd(7, 15), 1u);
    EXPECT_EQ(*modInverse(7, 15), 13u);
    EXPECT_EQ(*modInverse(4, 15), 4u);
    EXPECT_FALSE(modInverse(6, 15).has_value());
}

TEST(NumTheory, PowMod)
{
    EXPECT_EQ(powMod(7, 0, 15), 1u);
    EXPECT_EQ(powMod(7, 2, 15), 4u);
    EXPECT_EQ(powMod(7, 4, 15), 1u);
    EXPECT_EQ(powMod(2, 10, 1000), 24u);
}

TEST(NumTheory, MultiplicativeOrder)
{
    EXPECT_EQ(multiplicativeOrder(7, 15), 4u);
    EXPECT_EQ(multiplicativeOrder(4, 15), 2u);
    EXPECT_EQ(multiplicativeOrder(2, 15), 4u);
}

TEST(NumTheory, Table2ClassicalInputs)
{
    // Table 2 of the paper, verbatim.
    const auto pairs = shorClassicalInputs(7, 15, 4);
    ASSERT_EQ(pairs.size(), 4u);
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>
        expected{{7, 13}, {4, 4}, {1, 1}, {1, 1}};
    EXPECT_EQ(pairs, expected);
}

TEST(NumTheory, ContinuedFractions)
{
    // 6/8 = 3/4: convergents 0/1, 1/1, 3/4.
    const auto conv = continuedFractionConvergents(6, 8);
    ASSERT_GE(conv.size(), 2u);
    EXPECT_EQ(conv.back().first, 3u);
    EXPECT_EQ(conv.back().second, 4u);
}

TEST(NumTheory, ShorPostprocess)
{
    // Measurement 2 with t = 3: phase 1/4 -> order 4 -> factors 3, 5.
    const auto f2 = shorPostprocess(2, 3, 7, 15);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(f2->first * f2->second, 15u);

    const auto f6 = shorPostprocess(6, 3, 7, 15);
    ASSERT_TRUE(f6.has_value());
    EXPECT_EQ(f6->first * f6->second, 15u);

    EXPECT_FALSE(shorPostprocess(0, 3, 7, 15).has_value());
}

} // anonymous namespace
