/**
 * @file
 * Unit tests for src/stats: special functions against known values,
 * chi-square tests against textbook results, contingency tables
 * against the paper's quoted p-values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/chi2.hh"
#include "stats/contingency.hh"
#include "stats/histogram.hh"
#include "stats/specfun.hh"

namespace
{

using namespace qsa::stats;

// --- Special functions ---------------------------------------------------

TEST(SpecFun, LnGammaKnownValues)
{
    // Gamma(1) = Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
    EXPECT_NEAR(lnGamma(1.0), 0.0, 1e-9);
    EXPECT_NEAR(lnGamma(2.0), 0.0, 1e-9);
    EXPECT_NEAR(lnGamma(5.0), std::log(24.0), 1e-9);
    EXPECT_NEAR(lnGamma(0.5), 0.5 * std::log(M_PI), 1e-9);
}

TEST(SpecFun, LnGammaRecurrence)
{
    // Gamma(x + 1) = x Gamma(x).
    for (double x = 0.3; x < 12.0; x += 0.7) {
        EXPECT_NEAR(lnGamma(x + 1.0), std::log(x) + lnGamma(x), 1e-8)
            << "x = " << x;
    }
}

TEST(SpecFun, GammaPQComplementary)
{
    for (double a : {0.5, 1.0, 2.5, 10.0}) {
        for (double x : {0.1, 1.0, 5.0, 20.0}) {
            EXPECT_NEAR(gammaP(a, x) + gammaQ(a, x), 1.0, 1e-10)
                << "a = " << a << " x = " << x;
        }
    }
}

TEST(SpecFun, GammaPExponentialSpecialCase)
{
    // P(1, x) = 1 - exp(-x).
    for (double x : {0.0, 0.5, 1.0, 3.0, 10.0})
        EXPECT_NEAR(gammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
}

TEST(SpecFun, ErrorFunctionKnownValues)
{
    EXPECT_NEAR(errorFunction(0.0), 0.0, 1e-12);
    EXPECT_NEAR(errorFunction(1.0), 0.8427007929497149, 1e-9);
    EXPECT_NEAR(errorFunction(-1.0), -0.8427007929497149, 1e-9);
    EXPECT_NEAR(errorFunctionC(1.0), 1.0 - 0.8427007929497149, 1e-9);
}

// --- Chi-square distribution ---------------------------------------------

TEST(Chi2Dist, KnownSurvivalValues)
{
    // df = 1: SF(3.841) ~ 0.05; df = 2: SF(5.991) ~ 0.05.
    EXPECT_NEAR(chiSquareSf(3.841, 1), 0.05, 5e-4);
    EXPECT_NEAR(chiSquareSf(5.991, 2), 0.05, 5e-4);
    // df = 2 has closed form SF(x) = exp(-x/2).
    for (double x : {0.5, 2.0, 7.0})
        EXPECT_NEAR(chiSquareSf(x, 2), std::exp(-x / 2.0), 1e-10);
}

TEST(Chi2Dist, CdfSfComplementary)
{
    for (double df : {1.0, 3.0, 7.0}) {
        for (double x : {0.5, 2.0, 10.0}) {
            EXPECT_NEAR(chiSquareCdf(x, df) + chiSquareSf(x, df), 1.0,
                        1e-10);
        }
    }
}

TEST(Chi2Dist, QuantileInvertsCdf)
{
    for (double df : {1.0, 4.0, 9.0}) {
        for (double p : {0.05, 0.5, 0.95}) {
            const double x = chiSquareQuantile(p, df);
            EXPECT_NEAR(chiSquareCdf(x, df), p, 1e-8);
        }
    }
}

TEST(Chi2Dist, EdgeCases)
{
    EXPECT_DOUBLE_EQ(chiSquareSf(0.0, 3), 1.0);
    EXPECT_DOUBLE_EQ(chiSquareCdf(-1.0, 3), 0.0);
    EXPECT_DOUBLE_EQ(
        chiSquareSf(std::numeric_limits<double>::infinity(), 3), 0.0);
    EXPECT_DOUBLE_EQ(chiSquareQuantile(0.0, 5), 0.0);
}

// --- Goodness-of-fit -----------------------------------------------------

TEST(Chi2Gof, PerfectFitGivesPValueOne)
{
    const std::vector<double> obs{25, 25, 25, 25};
    const auto res = chiSquareGof(obs, uniformExpected(4, 100));
    EXPECT_NEAR(res.statistic, 0.0, 1e-12);
    EXPECT_NEAR(res.pValue, 1.0, 1e-12);
    EXPECT_EQ(res.df, 3.0);
}

TEST(Chi2Gof, TextbookFairDie)
{
    // Classic fair-die data: observed vs 10 expected per face.
    const std::vector<double> obs{5, 8, 9, 8, 10, 20};
    const auto res = chiSquareGof(obs, uniformExpected(6, 60));
    EXPECT_NEAR(res.statistic, 13.4, 1e-9);
    EXPECT_EQ(res.df, 5.0);
    EXPECT_NEAR(res.pValue, 0.0199, 3e-3);
}

TEST(Chi2Gof, ImpossibleOutcomeRejectsOutright)
{
    // Classical assertion semantics: any observation off the expected
    // point mass is a zero-probability event -> p = 0.
    const std::vector<double> obs{15, 1, 0, 0};
    const auto res =
        chiSquareGof(obs, pointMassExpected(4, 0, 16));
    EXPECT_TRUE(res.impossibleOutcome);
    EXPECT_EQ(res.pValue, 0.0);
    EXPECT_TRUE(std::isinf(res.statistic));
}

TEST(Chi2Gof, PointMassAllOnValuePasses)
{
    const std::vector<double> obs{0, 16, 0, 0};
    const auto res = chiSquareGof(obs, pointMassExpected(4, 1, 16));
    EXPECT_FALSE(res.impossibleOutcome);
    EXPECT_EQ(res.pValue, 1.0); // degenerate df, zero statistic
}

TEST(Chi2Gof, SkipsEmptyBins)
{
    const std::vector<double> obs{10, 0, 10};
    const std::vector<double> exp{10, 0, 10};
    const auto res = chiSquareGof(obs, exp);
    EXPECT_EQ(res.usedBins, 2u);
    EXPECT_EQ(res.df, 1.0);
}

TEST(Chi2Gof, DetectsConcentration)
{
    // Superposition assertion failure mode: all mass on one value when
    // uniform was expected.
    std::vector<double> obs(8, 0.0);
    obs[3] = 64;
    const auto res = chiSquareGof(obs, uniformExpected(8, 64));
    EXPECT_LT(res.pValue, 1e-6);
}

TEST(Chi2Gof, GTestAgreesOnLargeSamples)
{
    const std::vector<double> obs{48, 52, 55, 45};
    const auto chi = chiSquareGof(obs, uniformExpected(4, 200));
    const auto g = gTestGof(obs, uniformExpected(4, 200));
    EXPECT_NEAR(chi.statistic, g.statistic, 0.1);
    EXPECT_NEAR(chi.pValue, g.pValue, 0.02);
}

TEST(Chi2Gof, TwoSampleIdenticalPasses)
{
    const std::vector<double> s1{10, 20, 30};
    const auto res = chiSquareTwoSample(s1, s1);
    EXPECT_NEAR(res.statistic, 0.0, 1e-12);
    EXPECT_NEAR(res.pValue, 1.0, 1e-12);
}

TEST(Chi2Gof, TwoSampleDifferentRejects)
{
    const std::vector<double> s1{100, 0, 0};
    const std::vector<double> s2{0, 0, 100};
    const auto res = chiSquareTwoSample(s1, s2);
    EXPECT_LT(res.pValue, 1e-10);
}

TEST(Chi2Gof, TwoSampleUnequalTotalsKnownValues)
{
    // NR §14.3 unequal-N scaling, references precomputed externally.
    // r = {10, 20, 30} (R = 60) vs s = {30, 30, 60} (S = 120): bin
    // terms (sqrt(2)·r - s/sqrt(2))^2 / (r+s) = 50/40, 50/50, 0, so
    // the statistic is exactly 2.25. Independently-sized samples (NR
    // knstrn = 0) keep df = 3 bins:
    // p = erfc(sqrt(x/2)) + sqrt(2x/pi) exp(-x/2) = 0.5221671895.
    const auto res =
        chiSquareTwoSample({10, 20, 30}, {30, 30, 60}, 0);
    EXPECT_NEAR(res.statistic, 2.25, 1e-12);
    EXPECT_EQ(res.df, 3.0);
    EXPECT_NEAR(res.pValue, 0.5221671895353913, 1e-9);

    // The default constraints = 1 (totals constrained equal by
    // construction) on the same bins: df = 2,
    // p = exp(-2.25/2) = 0.32465246735834974.
    const auto con = chiSquareTwoSample({10, 20, 30}, {30, 30, 60});
    EXPECT_EQ(con.df, 2.0);
    EXPECT_NEAR(con.pValue, 0.32465246735834974, 1e-9);

    // Two bins, r = {25, 35} (R = 60) vs s = {60, 40} (S = 100):
    // statistic 5.061437908496732; with knstrn = 0, df = 2 and
    // p = exp(-stat/2) = 0.07960176967759289.
    const auto res2 = chiSquareTwoSample({25, 35}, {60, 40}, 0);
    EXPECT_NEAR(res2.statistic, 5.061437908496732, 1e-9);
    EXPECT_NEAR(res2.pValue, 0.07960176967759289, 1e-9);
}

TEST(Chi2Gof, TwoSampleProportionalSamplesPass)
{
    // The equal-N formula would reject identical *shapes* of unequal
    // size; the scaled statistic is exactly zero for s = 3r.
    const auto res =
        chiSquareTwoSample({5, 10, 15}, {15, 30, 45});
    EXPECT_NEAR(res.statistic, 0.0, 1e-12);
    EXPECT_NEAR(res.pValue, 1.0, 1e-12);
}

TEST(Chi2Gof, TwoSampleEqualTotalsBitIdentical)
{
    // R == S must reproduce the unscaled formula bit for bit.
    const auto res =
        chiSquareTwoSample({10, 20, 30}, {12, 18, 30});
    EXPECT_EQ(res.statistic, 4.0 / 22.0 + 4.0 / 38.0);
}

// --- Contingency tables --------------------------------------------------

TEST(Contingency, PaperBellTablePValue)
{
    // Figure 1 / Section 4.4: perfectly correlated 2x2 table at
    // ensemble size 16. With the Yates continuity correction the
    // statistic is (|8-4|-0.5)^2/4 * 4 = 12.25 and the p-value is
    // 0.000466 — the paper rounds this to 0.0005.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    for (int i = 0; i < 8; ++i) {
        pairs.emplace_back(0, 0);
        pairs.emplace_back(1, 1);
    }
    const auto table = ContingencyTable::fromPairs(pairs);
    const auto res = independenceTest(table);
    EXPECT_TRUE(res.yatesApplied);
    EXPECT_NEAR(res.statistic, 12.25, 1e-9);
    EXPECT_NEAR(res.pValue, 0.000466, 5e-5);
}

TEST(Contingency, WithoutYatesMatchesRawChi2)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    for (int i = 0; i < 8; ++i) {
        pairs.emplace_back(0, 0);
        pairs.emplace_back(1, 1);
    }
    const auto table = ContingencyTable::fromPairs(pairs);
    const auto res = independenceTest(table, /*yates_for_2x2=*/false);
    EXPECT_FALSE(res.yatesApplied);
    EXPECT_NEAR(res.statistic, 16.0, 1e-9); // N for a perfect table
}

TEST(Contingency, IndependentTableAccepts)
{
    // Perfectly independent counts: chi2 = 0, p = 1.
    const auto table = ContingencyTable::fromCounts(
        {0, 1}, {0, 1}, {{10, 10}, {10, 10}});
    const auto res = independenceTest(table);
    EXPECT_NEAR(res.statistic, 0.0, 1e-12);
    EXPECT_NEAR(res.pValue, 1.0, 1e-12);
    EXPECT_NEAR(res.cramersV, 0.0, 1e-9);
}

TEST(Contingency, DegenerateSingleColumn)
{
    // A constant variable carries no dependence information.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    for (int i = 0; i < 16; ++i)
        pairs.emplace_back(i % 4, 0);
    const auto res =
        independenceTest(ContingencyTable::fromPairs(pairs));
    EXPECT_TRUE(res.degenerate);
    EXPECT_EQ(res.pValue, 1.0);
}

TEST(Contingency, LargerTableDf)
{
    // 3x4 table: df = 6.
    const auto table = ContingencyTable::fromCounts(
        {0, 1, 2}, {0, 1, 2, 3},
        {{5, 5, 5, 5}, {5, 5, 5, 5}, {5, 5, 5, 5}});
    const auto res = independenceTest(table);
    EXPECT_EQ(res.df, 6.0);
}

TEST(Contingency, CramersVPerfectAssociation)
{
    const auto table = ContingencyTable::fromCounts(
        {0, 1}, {0, 1}, {{50, 0}, {0, 50}});
    const auto res = independenceTest(table, false);
    EXPECT_NEAR(res.cramersV, 1.0, 1e-9);
    EXPECT_NEAR(res.contingencyC, std::sqrt(0.5), 1e-9);
}

TEST(Contingency, GTestRejectsCorrelation)
{
    const auto table = ContingencyTable::fromCounts(
        {0, 1}, {0, 1}, {{40, 2}, {3, 45}});
    const auto res = independenceGTest(table);
    EXPECT_LT(res.pValue, 1e-10);
}

TEST(Contingency, FromPairsCompactsLabels)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs{
        {7, 100}, {7, 100}, {9, 100}, {9, 200}};
    const auto table = ContingencyTable::fromPairs(pairs);
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.numCols(), 2u);
    EXPECT_EQ(table.rows()[0], 7u);
    EXPECT_EQ(table.cols()[1], 200u);
    EXPECT_DOUBLE_EQ(table.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(table.at(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(table.total(), 4.0);
}

// --- Histograms -----------------------------------------------------------

TEST(Histogram, CountsOutcomes)
{
    const std::vector<std::uint64_t> outcomes{1, 1, 2, 5, 5, 5};
    const auto counts = countOutcomes(outcomes);
    EXPECT_EQ(counts.at(1), 2u);
    EXPECT_EQ(counts.at(2), 1u);
    EXPECT_EQ(counts.at(5), 3u);
    EXPECT_EQ(counts.size(), 3u);
}

TEST(Histogram, DenseCounts)
{
    const std::vector<std::uint64_t> outcomes{0, 3, 3};
    const auto counts = denseCounts(outcomes, 4);
    EXPECT_EQ(counts.size(), 4u);
    EXPECT_DOUBLE_EQ(counts[0], 1.0);
    EXPECT_DOUBLE_EQ(counts[1], 0.0);
    EXPECT_DOUBLE_EQ(counts[3], 2.0);
}

TEST(Histogram, Frequencies)
{
    const auto freq = toFrequencies({1.0, 3.0});
    EXPECT_DOUBLE_EQ(freq[0], 0.25);
    EXPECT_DOUBLE_EQ(freq[1], 0.75);
    const auto empty = toFrequencies({0.0, 0.0});
    EXPECT_DOUBLE_EQ(empty[0], 0.0);
}

} // anonymous namespace
