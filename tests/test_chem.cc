/**
 * @file
 * Chemistry-stack tests: Gaussian integrals against published STO-3G
 * values, Pauli algebra identities, Jordan-Wigner operator algebra,
 * the H2 Hamiltonian against Whitfield et al.'s integrals, FCI
 * energies, and Trotterised evolution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/eigen.hh"
#include "chem/fermion.hh"
#include "chem/gaussian.hh"
#include "chem/h2.hh"
#include "chem/pauli.hh"
#include "chem/trotter.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "sim/gates.hh"
#include "sim/statevector.hh"

namespace
{

using namespace qsa;
using namespace qsa::chem;

// --- Gaussian integrals -----------------------------------------------------

TEST(Gaussian, BoysFunctionLimits)
{
    EXPECT_NEAR(boysF0(0.0), 1.0, 1e-12);
    EXPECT_NEAR(boysF0(1e-14), 1.0, 1e-9);
    // Large-t asymptote: F0(t) ~ (1/2) sqrt(pi/t).
    EXPECT_NEAR(boysF0(100.0), 0.5 * std::sqrt(M_PI / 100.0), 1e-10);
    // Reference value F0(1) = 0.746824...
    EXPECT_NEAR(boysF0(1.0), 0.7468241328, 1e-9);
}

TEST(Gaussian, Sto3gSelfOverlapIsOne)
{
    const auto g = sto3gHydrogen({0, 0, 0});
    EXPECT_NEAR(overlap(g, g), 1.0, 1e-12);
}

TEST(Gaussian, SzaboOstlundReferenceValues)
{
    // H2 at R = 1.4 bohr, STO-3G (zeta = 1.24): the classic textbook
    // numbers (Szabo & Ostlund table 3.5 region): S12 = 0.6593,
    // T11 = 0.7600, T12 = 0.2365.
    const auto a = sto3gHydrogen({0, 0, 0});
    const auto b = sto3gHydrogen({0, 0, 1.4});
    EXPECT_NEAR(overlap(a, b), 0.6593, 2e-4);
    EXPECT_NEAR(kinetic(a, a), 0.7600, 2e-4);
    EXPECT_NEAR(kinetic(a, b), 0.2365, 2e-4);
    // V11 (attraction to own nucleus) = -1.2266, to the other
    // nucleus = -0.6538 (signs per our convention).
    EXPECT_NEAR(nuclearAttraction(a, a, {0, 0, 0}, 1.0), -1.2266,
                2e-4);
    EXPECT_NEAR(nuclearAttraction(a, a, {0, 0, 1.4}, 1.0), -0.6538,
                2e-4);
    // ERIs: (11|11) = 0.7746, (11|22) = 0.5697, (12|12) = 0.2970,
    // (11|12) = 0.4441 (S&O table 3.6).
    EXPECT_NEAR(electronRepulsion(a, a, a, a), 0.7746, 2e-4);
    EXPECT_NEAR(electronRepulsion(a, a, b, b), 0.5697, 2e-4);
    EXPECT_NEAR(electronRepulsion(a, b, a, b), 0.2970, 2e-4);
    EXPECT_NEAR(electronRepulsion(a, a, a, b), 0.4441, 2e-4);
}

// --- Pauli algebra ------------------------------------------------------------

TEST(Pauli, MultiplicationPhases)
{
    // X Z = -Z X on the same qubit.
    const auto x = PauliOperator::term(1, 1, 0, 1.0);
    const auto z = PauliOperator::term(1, 0, 1, 1.0);
    const auto xz = x.mul(z);
    const auto zx = z.mul(x);
    ASSERT_EQ(xz.size(), 1u);
    const auto cx = xz.terms().begin()->second;
    const auto cz = zx.terms().begin()->second;
    EXPECT_NEAR(std::abs(cx + cz), 0.0, 1e-12);
}

TEST(Pauli, SquaresToIdentity)
{
    for (std::uint32_t x = 0; x < 4; ++x) {
        for (std::uint32_t z = 0; z < 4; ++z) {
            const auto p = PauliOperator::term(2, x, z, 1.0);
            const auto sq = p.mul(p);
            ASSERT_EQ(sq.size(), 1u);
            const auto &[mask, coeff] = *sq.terms().begin();
            EXPECT_EQ(mask.x, 0u);
            EXPECT_EQ(mask.z, 0u);
            // (X^x Z^z)^2 = +/- I; a valid sign either way, but the
            // magnitude must be 1.
            EXPECT_NEAR(std::abs(coeff), 1.0, 1e-12);
        }
    }
}

TEST(Pauli, ToMatrixMatchesKnownGates)
{
    // Y = i X Z: term (x=1, z=1, c=i) should be the Y matrix.
    const auto y = PauliOperator::term(1, 1, 1, sim::Complex(0, 1));
    const auto m = y.toMatrix();
    EXPECT_NEAR(std::abs(m.at(0, 1) - sim::Complex(0, -1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(m.at(1, 0) - sim::Complex(0, 1)), 0.0, 1e-12);
}

TEST(Pauli, ToWordsRoundTripsCoefficients)
{
    // 0.5 Z0 + 0.25 X1 - 0.125 Y0 Y1 built in mask form.
    auto op = PauliOperator::term(2, 0, 1, 0.5);
    op = op.add(PauliOperator::term(2, 2, 0, 0.25));
    // Y0 Y1 = (i X0 Z0)(i X1 Z1) = - (X both, Z both).
    op = op.add(PauliOperator::term(2, 3, 3, 0.125));

    const auto words = op.toWords();
    ASSERT_EQ(words.size(), 3u);
    for (const auto &w : words) {
        if (w.letters == "ZI")
            EXPECT_NEAR(w.coefficient, 0.5, 1e-12);
        else if (w.letters == "IX")
            EXPECT_NEAR(w.coefficient, 0.25, 1e-12);
        else if (w.letters == "YY")
            EXPECT_NEAR(w.coefficient, -0.125, 1e-12);
        else
            FAIL() << "unexpected word " << w.letters;
    }
}

TEST(Pauli, AdjointOfHermitianIsItself)
{
    auto op = PauliOperator::term(2, 1, 1, sim::Complex(0, 1)); // Y
    op = op.add(PauliOperator::term(2, 0, 2, 0.7));             // Z1
    const auto adj = op.adjoint();
    const auto diff = op.add(adj.scale(-1.0)).pruned();
    EXPECT_EQ(diff.size(), 0u);
}

// --- Jordan-Wigner ------------------------------------------------------------

TEST(JordanWigner, NumberOperator)
{
    // n_p = (I - Z_p) / 2.
    const auto n0 = jwNumber(2, 0);
    const auto m = n0.toMatrix();
    for (std::uint64_t b = 0; b < 4; ++b) {
        EXPECT_NEAR(m.at(b, b).real(), (double)(b & 1), 1e-12)
            << "basis " << b;
    }
}

TEST(JordanWigner, AnticommutationRelations)
{
    // {a_p, a+_q} = delta_pq, {a_p, a_q} = 0.
    const unsigned n = 3;
    for (unsigned p = 0; p < n; ++p) {
        for (unsigned q = 0; q < n; ++q) {
            const auto ap = jwAnnihilation(n, p);
            const auto acq = jwCreation(n, q);
            const auto anti =
                ap.mul(acq).add(acq.mul(ap)).pruned();
            if (p == q) {
                ASSERT_EQ(anti.size(), 1u);
                const auto &[mask, c] = *anti.terms().begin();
                EXPECT_EQ(mask.x, 0u);
                EXPECT_EQ(mask.z, 0u);
                EXPECT_NEAR(std::abs(c - sim::Complex(1.0)), 0.0,
                            1e-12);
            } else {
                EXPECT_EQ(anti.size(), 0u) << p << "," << q;
            }

            const auto aq = jwAnnihilation(n, q);
            EXPECT_EQ(ap.mul(aq).add(aq.mul(ap)).pruned().size(), 0u);
        }
    }
}

TEST(JordanWigner, CreationPopulatesBasisState)
{
    // a+_1 a+_0 |0000> = |0011> (up to sign).
    const auto op = jwCreation(4, 1).mul(jwCreation(4, 0));
    const auto m = op.toMatrix();
    EXPECT_NEAR(std::abs(m.at(0b0011, 0)), 1.0, 1e-12);
}

// --- H2 model -------------------------------------------------------------------

TEST(H2, WhitfieldIntegralsAtEquilibrium)
{
    // Whitfield et al. [54] report for H2/STO-3G at R = 1.401 bohr:
    // h11 = -1.252477, h22 = -0.475934 (MO core), (11|11) = 0.674493,
    // (22|22) = 0.697397, (11|22) = 0.663472, (12|12) = 0.181287.
    const auto model = buildH2Model(1.401 * bohr_in_pm);
    const auto &ints = model.integrals;
    EXPECT_NEAR(ints.core[0][0], -1.252477, 2e-3);
    EXPECT_NEAR(ints.core[1][1], -0.475934, 2e-3);
    EXPECT_NEAR(ints.eri[0][0][0][0], 0.674493, 2e-3);
    EXPECT_NEAR(ints.eri[1][1][1][1], 0.697397, 2e-3);
    EXPECT_NEAR(ints.eri[0][0][1][1], 0.663472, 2e-3);
    EXPECT_NEAR(ints.eri[0][1][0][1], 0.181287, 2e-3);
    EXPECT_NEAR(ints.nuclearRepulsion, 1.0 / 1.401, 1e-9);
}

TEST(H2, HartreeFockEnergyAtEquilibrium)
{
    // E_HF(total) = -1.1167 hartree at R = 1.401 bohr (textbook).
    const auto model = buildH2Model(1.401 * bohr_in_pm);
    EXPECT_NEAR(model.hartreeFockEnergy, -1.1167, 2e-3);
}

TEST(H2, FciGroundStateBelowHartreeFock)
{
    const auto model = buildH2Model();
    const double fci = groundStateEnergy(model.hamiltonian);
    EXPECT_LT(fci, model.hartreeFockEnergy);
    // Correlation energy for H2/STO-3G is ~0.02 hartree.
    EXPECT_NEAR(model.hartreeFockEnergy - fci, 0.020, 0.01);
}

TEST(H2, HamiltonianPreservesParticleNumber)
{
    // [H, N] = 0 where N = sum_p n_p.
    const auto model = buildH2Model();
    auto number_op = PauliOperator(4);
    for (unsigned p = 0; p < 4; ++p)
        number_op = number_op.add(jwNumber(4, p));
    const auto hn = model.hamiltonian.mul(number_op);
    const auto nh = number_op.mul(model.hamiltonian);
    EXPECT_EQ(hn.add(nh.scale(-1.0)).pruned(1e-9).size(), 0u);
}

TEST(H2, DeterminantEnergiesMatchDiagonal)
{
    // <det|H|det> from Slater-Condon must equal the matching diagonal
    // element of the dense Hamiltonian matrix.
    const auto model = buildH2Model();
    const auto m = model.hamiltonian.toMatrix();
    for (std::uint32_t occ : table5Assignments()) {
        EXPECT_NEAR(determinantEnergy(model, occ),
                    m.at(occ, occ).real(), 1e-9)
            << "occupation " << occ;
    }
}

TEST(H2, Table5DegeneracyPattern)
{
    // Exactly four distinct determinant energies, with (0110, 1001)
    // degenerate, (0101, 1010) degenerate, ordered G < E1 < E2 < E3.
    const auto model = buildH2Model();
    const double g = determinantEnergy(model, 0b0011);
    const double e1a = determinantEnergy(model, 0b0101);
    const double e1b = determinantEnergy(model, 0b1010);
    const double e2a = determinantEnergy(model, 0b0110);
    const double e2b = determinantEnergy(model, 0b1001);
    const double e3 = determinantEnergy(model, 0b1100);

    EXPECT_NEAR(e1a, e1b, 1e-10);
    EXPECT_NEAR(e2a, e2b, 1e-10);
    EXPECT_LT(g, e1a);
    EXPECT_LT(e1a, e2a);
    EXPECT_LT(e2a, e3);
}

TEST(H2, GroundStateDominatedByHartreeFock)
{
    const auto model = buildH2Model();
    const auto sys = diagonalize(model.hamiltonian);
    // The lowest eigenvector should be mostly |0011> (both bonding).
    const auto &v = sys.vectors.front();
    EXPECT_GT(std::fabs(v[0b0011]), 0.99);
}

// --- Eigensolver ---------------------------------------------------------------

TEST(Eigen, KnownTwoByTwo)
{
    // [[2, 1], [1, 2]]: eigenvalues 1 and 3.
    const auto sys = jacobiEigenSolve({2, 1, 1, 2}, 2);
    EXPECT_NEAR(sys.values[0], 1.0, 1e-10);
    EXPECT_NEAR(sys.values[1], 3.0, 1e-10);
}

TEST(Eigen, ReconstructsMatrix)
{
    const std::vector<double> m{4, 1, 0.5, 1, 3, -1, 0.5, -1, 2};
    const auto sys = jacobiEigenSolve(m, 3);
    // Sum_k lambda_k v_k v_k^T must reproduce the input.
    for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) {
            double acc = 0.0;
            for (int k = 0; k < 3; ++k)
                acc += sys.values[k] * sys.vectors[k][r] *
                       sys.vectors[k][c];
            EXPECT_NEAR(acc, m[r * 3 + c], 1e-9);
        }
    }
}

TEST(Eigen, EvolutionOperatorIsUnitaryAndCorrect)
{
    const auto model = buildH2Model();
    const double t = 0.8, e_ref = 1.5;
    const auto u = evolutionOperator(model.hamiltonian, t, e_ref);
    EXPECT_TRUE(u.isUnitary(1e-8));

    // Acting on an eigenvector must give the eigenphase.
    const auto sys = diagonalize(model.hamiltonian);
    std::vector<sim::Complex> v(16);
    for (int i = 0; i < 16; ++i)
        v[i] = sys.vectors[0][i];
    const auto uv = u.apply(v);
    const sim::Complex expected_phase =
        std::exp(sim::Complex(0, -(sys.values[0] - e_ref) * t));
    for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(std::abs(uv[i] - expected_phase * v[i]), 0.0, 1e-8);
}

// --- Trotter ---------------------------------------------------------------------

TEST(Trotter, SinglePauliExponentialExact)
{
    // exp(-i theta Z0 Z1) on |++>: compare against the dense matrix.
    const double theta = 0.37;
    const auto zz = PauliOperator::term(2, 0, 3, 1.0);

    circuit::Circuit circ(2);
    circ.h(0);
    circ.h(1);
    chem::appendPauliExponential(circ, "ZZ", theta, {0, 1});

    Rng rng(1);
    const auto state = circuit::runCircuit(circ, rng).state;

    sim::StateVector ref(2);
    ref.applyGate(sim::gates::h(), 0);
    ref.applyGate(sim::gates::h(), 1);
    const auto u = evolutionOperator(zz, theta);
    ref.applyUnitary(u, {0, 1});

    EXPECT_NEAR(state.fidelity(ref), 1.0, 1e-10);
}

TEST(Trotter, XAndYBasisChanges)
{
    for (const std::string word : {"XI", "IY", "XY", "YX", "YY"}) {
        const double theta = 0.21;
        // Build mask operator matching the word.
        std::uint32_t x = 0, z = 0;
        sim::Complex coeff = 1.0;
        for (unsigned q = 0; q < 2; ++q) {
            if (word[q] == 'X') {
                x |= 1u << q;
            } else if (word[q] == 'Y') {
                x |= 1u << q;
                z |= 1u << q;
                coeff *= sim::Complex(0, 1); // Y = i XZ
            }
        }
        const auto op = PauliOperator::term(2, x, z, coeff);

        circuit::Circuit circ(2);
        circ.h(0);
        circ.t(1);
        circ.h(1);
        chem::appendPauliExponential(circ, word, theta, {0, 1});

        Rng rng(2);
        const auto state = circuit::runCircuit(circ, rng).state;

        // P^2 = I for a Pauli word, so
        // exp(-i theta P) = cos(theta) I - i sin(theta) P.
        const auto u =
            sim::CMatrix::identity(4).scale(std::cos(theta)).add(
                op.toMatrix().scale(
                    sim::Complex(0, -std::sin(theta))));

        sim::StateVector ref(2);
        ref.applyGate(sim::gates::h(), 0);
        ref.applyGate(sim::gates::t(), 1);
        ref.applyGate(sim::gates::h(), 1);
        ref.applyUnitary(u, {0, 1});

        EXPECT_NEAR(state.fidelity(ref), 1.0, 1e-10) << word;
    }
}

TEST(Trotter, ConvergesToExactEvolution)
{
    const auto model = buildH2Model();
    const double t = 0.4;
    const auto exact_u = evolutionOperator(model.hamiltonian, t);

    double prev_err = 1e9;
    for (unsigned steps : {1u, 2u, 4u, 8u}) {
        circuit::Circuit circ(4);
        // Start from the HF determinant.
        circ.x(0);
        circ.x(1);
        chem::appendTrotterEvolution(circ, model.hamiltonian, t, steps,
                                     {0, 1, 2, 3});
        Rng rng(3);
        const auto state = circuit::runCircuit(circ, rng).state;

        sim::StateVector ref(4);
        ref.setBasisState(0b0011);
        ref.applyUnitary(exact_u, {0, 1, 2, 3});

        const double err = 1.0 - state.fidelity(ref);
        EXPECT_LT(err, prev_err + 1e-12) << steps;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 1e-4);
}

TEST(Trotter, ControlledIdentityPhaseMatters)
{
    // The identity term must become a controlled phase; dropping it
    // shifts every estimated eigenvalue. Verify the controlled
    // evolution of a pure identity operator phases the control.
    const auto id_op = PauliOperator::identity(1, 0.9);
    circuit::Circuit circ(2);
    circ.h(1); // control in superposition
    chem::appendTrotterStep(circ, id_op, 1.0, {0}, {1});

    Rng rng(4);
    const auto state = circuit::runCircuit(circ, rng).state;
    // |0> branch amplitude unchanged; |1> branch picked up e^{-i 0.9}.
    const double inv = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(state.amp(0b00) - sim::Complex(inv)), 0.0,
                1e-12);
    EXPECT_NEAR(std::abs(state.amp(0b10) -
                         inv * std::exp(sim::Complex(0, -0.9))),
                0.0, 1e-12);
}

} // anonymous namespace
