/**
 * @file
 * Integration tests for the full Shor program: output distribution,
 * helper-register cleanliness, assertion roadmap, and the Table 3 bug.
 */

#include <gtest/gtest.h>

#include "algo/numtheory.hh"
#include "algo/shor.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "circuit/executor.hh"
#include "common/rng.hh"

namespace
{

using namespace qsa;
using namespace qsa::algo;
using namespace qsa::assertions;

constexpr double tol = 1e-9;

TEST(Shor, OutputDistributionIsMultiplesOfTwo)
{
    // N&C p. 235: factoring 15 with a = 7 and 3 upper qubits returns
    // 0, 2, 4, 6 with probability 1/4 each.
    const ShorProgram prog = buildShorProgram();
    const auto probs =
        exactMarginal(prog.circuit, "final", prog.upper);
    ASSERT_EQ(probs.size(), 8u);
    for (std::uint64_t v = 0; v < 8; ++v) {
        const double expected = v % 2 == 0 ? 0.25 : 0.0;
        EXPECT_NEAR(probs[v], expected, tol) << "output " << v;
    }
}

TEST(Shor, HelperRegisterEndsClean)
{
    const ShorProgram prog = buildShorProgram();
    const auto probs =
        exactMarginal(prog.circuit, "final", prog.helper);
    EXPECT_NEAR(probs[0], 1.0, tol);
    const auto flag =
        exactMarginal(prog.circuit, "final", prog.flag);
    EXPECT_NEAR(flag[0], 1.0, tol);
}

TEST(Shor, LowerRegisterHoldsPowersOfA)
{
    // The lower register ends in a uniform mixture of the order cycle
    // {1, 7, 4, 13} (7^j mod 15).
    const ShorProgram prog = buildShorProgram();
    const auto probs =
        exactMarginal(prog.circuit, "final", prog.lower);
    for (std::uint64_t v : {1ull, 7ull, 4ull, 13ull})
        EXPECT_NEAR(probs[v], 0.25, tol) << "value " << v;
    for (std::uint64_t v : {0ull, 2ull, 3ull, 5ull, 6ull})
        EXPECT_NEAR(probs[v], 0.0, tol) << "value " << v;
}

TEST(Shor, RoadmapAssertionsAllPass)
{
    // Figure 2's assertion sites on a correct program.
    const ShorProgram prog = buildShorProgram();
    CheckConfig cfg;
    cfg.ensembleSize = 128;
    AssertionChecker checker(prog.circuit, cfg);

    checker.assertClassical("init", prog.upper, 0);
    checker.assertClassical("init", prog.lower, 1);
    checker.assertClassical("init", prog.helper, 0);
    checker.assertSuperposition("superposed", prog.upper);
    checker.assertClassical("superposed", prog.lower, 1);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    checker.assertProduct("entangled", prog.upper, prog.helper);
    checker.assertClassical("final", prog.helper, 0);

    const auto outcomes = checker.checkAll();
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.passed) << o.spec.name;
}

TEST(Shor, FactorsFifteen)
{
    Rng rng(2024);
    const auto result = runShorFactoring(ShorConfig(), rng);
    ASSERT_TRUE(result.factors.has_value());
    const auto [f1, f2] = *result.factors;
    EXPECT_EQ(f1 * f2, 15u);
    EXPECT_TRUE((f1 == 3 && f2 == 5) || (f1 == 5 && f2 == 3));
}

TEST(Shor, Bug1WrongLowerInitBreaksPreconditions)
{
    // Bug type 1: lower register initialised to 0 instead of 1.
    ShorConfig config;
    config.lowerInit = 0;
    const ShorProgram prog = buildShorProgram(config);

    AssertionChecker checker(prog.circuit);
    checker.assertClassical("init", prog.lower, 1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

TEST(Shor, Bug6WrongInverseDirtiesHelper)
{
    // Table 3's bug: a^-1 = 12 instead of 13 on the first iteration.
    ShorConfig config;
    config.pairs = shorClassicalInputs(7, 15, 3);
    config.pairs[0].second = 12;
    const ShorProgram prog = buildShorProgram(config);

    // The helper register no longer returns to 0...
    const auto probs =
        exactMarginal(prog.circuit, "final", prog.helper);
    EXPECT_LT(probs[0], 0.9);

    // ...and the classical postcondition assertion catches it.
    AssertionChecker checker(prog.circuit);
    checker.assertClassical("final", prog.helper, 0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

TEST(Shor, Bug6KeepsHalfTheProbabilityOnZero)
{
    // Table 3 structure: P(helper = 0) = 1/2, and conditioned on a
    // clean helper the output distribution is still the correct one.
    ShorConfig config;
    config.pairs = shorClassicalInputs(7, 15, 3);
    config.pairs[0].second = 12;
    const ShorProgram prog = buildShorProgram(config);

    const auto joint = exactJoint(prog.circuit, "final", prog.helper,
                                  prog.upper);
    double p_zero = 0.0;
    for (double p : joint[0])
        p_zero += p;
    EXPECT_NEAR(p_zero, 0.5, 0.05);
}

TEST(Shor, WrongBaseRejectedClassically)
{
    ShorConfig config;
    config.a = 6; // shares factor 3 with 15
    EXPECT_EXIT(buildShorProgram(config),
                ::testing::ExitedWithCode(1), "shares a factor");
}

} // anonymous namespace
