/**
 * @file
 * Graceful-shutdown regression tests (ISSUE 8 satellite): destroying
 * a runtime::ThreadPool while posters are blocked and jobs are in
 * flight must neither deadlock nor drop work, and the QSA_TRACE
 * atexit flush must survive heavy pool churn during process exit.
 *
 * The deadlock these tests pin: the old destructor only notified the
 * worker wake-up condition, so a poster parked in the idle wait (its
 * predicate blind to `stopping`) was stranded forever — ~ThreadPool
 * then hung joining workers that were themselves fine. The fix makes
 * the destructor wake posters, drain the in-flight job, and wait for
 * every poster to fall back to inline execution.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

TEST(PoolShutdown, TrivialConstructDestroy)
{
    for (int i = 0; i < 8; ++i) {
        runtime::ThreadPool pool(4);
    }
}

TEST(PoolShutdown, DestructorDrainsPostersBlockedUnderLoad)
{
    // Regression for the poster-stranding deadlock: several threads
    // contend for the single job slot (so all but one block in the
    // idle wait), then the pool is destroyed mid-flight. Every
    // parallelFor must still complete — in-flight work drains on the
    // pool, stranded posters fall back to running inline.
    constexpr int kPosters = 4;
    constexpr std::size_t kIndices = 64;

    for (int round = 0; round < 8; ++round) {
        auto owner = std::make_unique<runtime::ThreadPool>(4);
        std::atomic<int> entered{0};
        std::vector<std::atomic<int>> ran(kPosters * kIndices);
        for (auto &r : ran)
            r.store(0);

        std::vector<std::thread> posters;
        for (int t = 0; t < kPosters; ++t) {
            // Capture the raw pool pointer by value: the owner
            // unique_ptr is reset below while posters run, and they
            // must not touch its storage.
            runtime::ThreadPool *pool = owner.get();
            posters.emplace_back([&, pool, t] {
                entered.fetch_add(1);
                pool->parallelFor(kIndices, [&, t](std::size_t i) {
                    ran[static_cast<std::size_t>(t) * kIndices + i]
                        .fetch_add(1);
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(300));
                });
            });
        }

        // Wait until every poster has announced itself, then give
        // the stragglers ample time to move the one step from the
        // announcement into parallelFor before the pool dies under
        // them. The first job alone runs long enough (64 × 300µs /
        // 5 runners) that destruction lands mid-flight.
        while (entered.load() < kPosters)
            std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

        owner.reset(); // must not deadlock
        for (auto &p : posters)
            p.join();

        for (std::size_t i = 0; i < ran.size(); ++i)
            ASSERT_EQ(ran[i].load(), 1)
                << "round " << round << " index " << i;
    }
}

TEST(PoolShutdown, EngineTeardownUnderLoadLeavesNoThreadsBehind)
{
    // Session owns an EnsembleEngine owns (at numThreads > 1) a
    // dedicated pool; rapid construct-run-destroy cycles exercise the
    // whole teardown chain right after a fan-out.
    const circuit::Circuit bell = algo::buildBellProgram();
    const auto q = bell.registers().at(0);
    for (int round = 0; round < 5; ++round) {
        session::Session s(bell);
        s.ensembleSize(64).threads(4).seed(7 + round);
        s.at("entangled")
            .expectEntangled(q.slice(0, 1, "q0"), q.slice(1, 1, "q1"));
        const auto &outcomes = s.run();
        ASSERT_EQ(outcomes.size(), 1u);
        EXPECT_TRUE(outcomes[0].passed);
    } // ~Session at loop bottom: engine + pool teardown under churn
}

/**
 * Child half of the trace-flush test: churn pools, do real traced
 * work, and return normally. Run only when re-exec'd by the parent
 * with QSA_SHUTDOWN_CHILD=1 — the parent sets QSA_TRACE and checks
 * the flushed file afterwards.
 */
TEST(TraceFlush, ChildWorkload)
{
    if (std::getenv("QSA_SHUTDOWN_CHILD") == nullptr)
        GTEST_SKIP() << "parent-driven child workload";

    {
        runtime::ThreadPool pool(4);
        std::atomic<int> n{0};
        pool.parallelFor(128, [&](std::size_t) { n.fetch_add(1); });
        ASSERT_EQ(n.load(), 128);
    }
    // Emit real spans, then tear another loaded engine down.
    const circuit::Circuit bell = algo::buildBellProgram();
    analyze::lintCircuit(bell);
    session::Session s(bell);
    s.ensembleSize(64).threads(4);
    const auto q = bell.registers().at(0);
    s.at("superposition").expectSuperposition(q.slice(0, 1, "q0"));
    s.run();
}

TEST(TraceFlush, AtexitFlushSurvivesPoolTeardown)
{
    if (std::getenv("QSA_SHUTDOWN_CHILD") != nullptr)
        GTEST_SKIP() << "child process runs ChildWorkload only";

    const std::string trace_path =
        ::testing::TempDir() + "qsa_shutdown_trace_" +
        std::to_string(::getpid()) + ".json";
    std::remove(trace_path.c_str());

    // Resolve our own binary up front: /proc/self/exe inside the
    // std::system() shell would name the shell, not this test.
    char self[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    ASSERT_GT(len, 0);
    self[len] = '\0';

    std::ostringstream cmd;
    cmd << "QSA_SHUTDOWN_CHILD=1 QSA_TRACE=" << trace_path << " "
        << self
        << " --gtest_filter=TraceFlush.ChildWorkload"
           " >/dev/null 2>&1";
    const int status = std::system(cmd.str().c_str());
    ASSERT_EQ(status, 0) << "child test run failed";

    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good())
        << "QSA_TRACE file was not flushed at exit: " << trace_path;
    std::ostringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("traceEvents"), std::string::npos);
    EXPECT_NE(content.str().find("]"), std::string::npos)
        << "trace file is truncated (flush raced teardown)";
    std::remove(trace_path.c_str());
}

} // namespace
