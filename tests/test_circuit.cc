/**
 * @file
 * Unit tests for the circuit IR: registers, builders, composition
 * patterns (inverse/controlled), breakpoints, executor, QASM round
 * trips.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hh"
#include "circuit/executor.hh"
#include "circuit/qasm.hh"
#include "common/rng.hh"
#include "sim/gates.hh"

namespace
{

using namespace qsa;
using namespace qsa::circuit;

constexpr double tol = 1e-12;

TEST(Register, IndexingAndSlices)
{
    QubitRegister r("b", {4, 5, 6, 7});
    EXPECT_EQ(r.width(), 4u);
    EXPECT_EQ(r[0], 4u);
    EXPECT_EQ(r[3], 7u);

    const auto s = r.slice(1, 2, "mid");
    EXPECT_EQ(s.width(), 2u);
    EXPECT_EQ(s[0], 5u);
    EXPECT_EQ(s.name(), "mid");

    const auto rev = r.reversed();
    EXPECT_EQ(rev[0], 7u);
    EXPECT_EQ(rev[3], 4u);
}

TEST(CircuitIR, RegisterAllocationIsSequential)
{
    Circuit c;
    const auto a = c.addRegister("a", 3);
    const auto b = c.addRegister("b", 2);
    EXPECT_EQ(c.numQubits(), 5u);
    EXPECT_EQ(a[0], 0u);
    EXPECT_EQ(b[0], 3u);
    EXPECT_EQ(c.reg("b").width(), 2u);
}

TEST(CircuitIR, GateCountsFoldControls)
{
    Circuit c(3);
    c.h(0);
    c.cnot(0, 1);
    c.ccnot(0, 1, 2);
    c.cphase(0, 1, 0.5);
    const auto counts = c.gateCounts();
    EXPECT_EQ(counts.at("h"), 1u);
    EXPECT_EQ(counts.at("cx"), 1u);
    EXPECT_EQ(counts.at("ccx"), 1u);
    EXPECT_EQ(counts.at("cu1"), 1u);
}

TEST(CircuitIR, PrepRegisterLoadsValue)
{
    Circuit c;
    const auto r = c.addRegister("r", 4);
    c.prepRegister(r, 0b0101);
    c.measure(r, "m");

    Rng rng(1);
    const auto rec = runCircuit(c, rng);
    EXPECT_EQ(rec.measurements.at("m"), 0b0101u);
}

TEST(CircuitIR, ExecutorBellCorrelations)
{
    Circuit c;
    const auto q = c.addRegister("q", 2);
    c.h(q[0]);
    c.cnot(q[0], q[1]);
    c.measure(q, "m");

    Rng rng(2);
    int ones = 0;
    for (int i = 0; i < 200; ++i) {
        const auto rec = runCircuit(c, rng);
        const auto m = rec.measurements.at("m");
        ASSERT_TRUE(m == 0b00 || m == 0b11) << m;
        ones += m == 0b11;
    }
    EXPECT_GT(ones, 50);
    EXPECT_LT(ones, 150);
}

TEST(CircuitIR, InverseUndoesCircuit)
{
    Circuit c(3);
    c.h(0);
    c.t(1);
    c.cnot(0, 1);
    c.rz(2, 0.3);
    c.cphase(1, 2, 1.1);
    c.swap(0, 2);
    c.s(0);

    Circuit round_trip(3);
    round_trip.appendCircuit(c);
    round_trip.appendCircuit(c.inverse());

    Rng rng(3);
    const auto rec = runCircuit(round_trip, rng);
    EXPECT_NEAR(std::abs(rec.state.amp(0)), 1.0, tol);
}

TEST(CircuitIR, InverseRejectsMeasurement)
{
    Circuit c(1);
    c.measureQubits({0}, "m");
    EXPECT_EXIT(
        { auto inv = c.inverse(); (void)inv; },
        ::testing::ExitedWithCode(1), "cannot invert");
}

TEST(CircuitIR, AppendControlledImplementsRecursion)
{
    // Controlled-X circuit wrapped with one more control == Toffoli.
    Circuit base(3);
    base.cnot(1, 2);

    Circuit wrapped(3);
    wrapped.appendControlled(base, {0});

    for (std::uint64_t input = 0; input < 8; ++input) {
        sim::StateVector direct(3), via(3);
        direct.setBasisState(input);
        via.setBasisState(input);
        direct.applyControlled(sim::gates::x(), {0, 1}, 2);

        std::map<std::string, std::uint64_t> meas;
        Rng rng(4);
        runCircuitOn(wrapped, via, meas, rng);
        EXPECT_NEAR(direct.fidelity(via), 1.0, tol) << input;
    }
}

TEST(CircuitIR, BreakpointSlicing)
{
    Circuit c(2);
    c.h(0);
    c.breakpoint("after_h");
    c.cnot(0, 1);
    c.breakpoint("after_cnot");
    c.measureQubits({0, 1}, "m");

    const auto labels = c.breakpointLabels();
    ASSERT_EQ(labels.size(), 2u);
    EXPECT_EQ(labels[0], "after_h");

    const Circuit prefix = c.prefixUpTo("after_h");
    EXPECT_EQ(prefix.size(), 1u); // just the H

    const Circuit prefix2 = c.prefixUpTo("after_cnot");
    EXPECT_EQ(prefix2.size(), 3u); // h, breakpoint marker, cnot
}

TEST(CircuitIR, DuplicateBreakpointRejected)
{
    Circuit c(1);
    c.breakpoint("b");
    EXPECT_EXIT(c.breakpoint("b"), ::testing::ExitedWithCode(1),
                "duplicate breakpoint");
}

TEST(CircuitIR, ValidationCatchesBadQubits)
{
    Circuit c(2);
    EXPECT_EXIT(c.h(5), ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(c.cnot(0, 0), ::testing::ExitedWithCode(1), "collides");
}

TEST(CircuitIR, UnitaryInstructionExecutes)
{
    Circuit c(2);
    c.unitary(sim::CMatrix::fromMat2(sim::gates::x()), {1});
    Rng rng(5);
    const auto rec = runCircuit(c, rng);
    EXPECT_NEAR(std::abs(rec.state.amp(2)), 1.0, tol);
}

TEST(CircuitIR, InverseOfUnitaryInstruction)
{
    sim::CMatrix m = sim::CMatrix::fromMat2(sim::gates::t());
    Circuit c(1);
    c.unitary(m, {0});
    Circuit round(1);
    round.h(0); // make phases observable
    round.appendCircuit(c);
    round.appendCircuit(c.inverse());
    round.h(0);

    Rng rng(6);
    const auto rec = runCircuit(round, rng);
    EXPECT_NEAR(std::abs(rec.state.amp(0)), 1.0, tol);
}

// --- QASM -----------------------------------------------------------------

TEST(Qasm, EmitContainsExpectedLines)
{
    Circuit c;
    const auto q = c.addRegister("q", 2);
    c.prepZ(q[0], 1);
    c.h(q[0]);
    c.cnot(q[0], q[1]);
    c.cphase(q[0], q[1], M_PI / 4.0);
    c.breakpoint("bp");
    c.measure(q, "out");

    const std::string text = toQasm(c);
    EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(text.find("// qsa.prepz 0 1"), std::string::npos);
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
    EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(text.find("cu1("), std::string::npos);
    EXPECT_NE(text.find("// qsa.breakpoint bp"), std::string::npos);
    EXPECT_NE(text.find("measure q[0] -> m_out[0];"),
              std::string::npos);
}

TEST(Qasm, RoundTripPreservesBehaviour)
{
    Circuit c;
    const auto a = c.addRegister("a", 2);
    const auto b = c.addRegister("b", 2);
    c.prepZ(a[0], 1);
    c.h(a[1]);
    c.t(b[0]);
    c.cnot(a[1], b[0]);
    c.ccphase(a[0], a[1], b[1], 0.375);
    c.crz(a[0], b[1], -0.5);
    c.cswap(a[0], b[0], b[1]);
    c.breakpoint("bp");
    c.measure(b, "m");

    const Circuit parsed = fromQasm(toQasm(c));
    EXPECT_EQ(parsed.numQubits(), c.numQubits());
    EXPECT_EQ(parsed.breakpointLabels(), c.breakpointLabels());

    // Behavioural equivalence: identical final states and outcomes
    // under the same random stream.
    Rng rng_a(7), rng_b(7);
    const auto rec_a = runCircuit(c, rng_a);
    const auto rec_b = runCircuit(parsed, rng_b);
    EXPECT_NEAR(rec_a.state.fidelity(rec_b.state), 1.0, 1e-9);
    EXPECT_EQ(rec_a.measurements.at("m"), rec_b.measurements.at("m"));
}

TEST(Qasm, ParsesAngleExpressions)
{
    const std::string text =
        "OPENQASM 2.0;\n"
        "qreg q[1];\n"
        "u1(pi/2) q[0];\n"
        "u1(-pi/4) q[0];\n"
        "u1(3*pi/4 - pi) q[0];\n";
    const Circuit c = fromQasm(text);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c.instructions()[0].angle, M_PI / 2.0, tol);
    EXPECT_NEAR(c.instructions()[1].angle, -M_PI / 4.0, tol);
    EXPECT_NEAR(c.instructions()[2].angle, -M_PI / 4.0, tol);
}

TEST(Qasm, MultiControlledMnemonics)
{
    Circuit c(4);
    c.controlledGate(GateKind::Phase, {0, 1, 2}, 3, 0.25);
    const std::string text = toQasm(c);
    EXPECT_NE(text.find("cccu1(0.25) q[0],q[1],q[2],q[3];"),
              std::string::npos);

    const Circuit parsed = fromQasm(text);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed.instructions()[0].controls.size(), 3u);
    EXPECT_EQ(parsed.instructions()[0].kind, GateKind::Phase);
}

} // anonymous namespace
