/**
 * @file
 * Tests for the additional algorithm substrates: Bernstein-Vazirani,
 * Deutsch-Jozsa, W states, and superdense coding — each paired with
 * the assertion type that validates it.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/bell.hh"
#include "algo/oracles.hh"
#include "algo/teleport.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace
{

using namespace qsa;

// --- Bernstein-Vazirani --------------------------------------------------------

class BvSecrets : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BvSecrets, RecoversSecretDeterministically)
{
    const std::uint64_t secret = GetParam();
    const auto prog = algo::buildBernsteinVazirani(5, secret);

    const auto probs =
        assertions::exactMarginal(prog.circuit, "final", prog.q);
    EXPECT_NEAR(probs[secret], 1.0, 1e-9);
}

TEST_P(BvSecrets, ClassicalAssertionValidatesOutput)
{
    const std::uint64_t secret = GetParam();
    const auto prog = algo::buildBernsteinVazirani(5, secret);

    assertions::AssertionChecker checker(prog.circuit);
    checker.assertSuperposition("superposed", prog.q);
    checker.assertClassical("final", prog.q, secret);
    EXPECT_TRUE(assertions::allPassed(checker.checkAll()));
}

INSTANTIATE_TEST_SUITE_P(Secrets, BvSecrets,
                         ::testing::Values(0ull, 1ull, 0b10110ull,
                                           0b11111ull, 0b01010ull));

TEST(BernsteinVazirani, WrongSecretAssertionFails)
{
    const auto prog = algo::buildBernsteinVazirani(4, 0b1011);
    assertions::AssertionChecker checker(prog.circuit);
    checker.assertClassical("final", prog.q, 0b1010);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

// --- Deutsch-Jozsa --------------------------------------------------------------

TEST(DeutschJozsa, ConstantOraclesReadZero)
{
    for (unsigned bit : {0u, 1u}) {
        const auto prog = algo::buildDeutschJozsaConstant(4, bit);
        assertions::AssertionChecker checker(prog.circuit);
        checker.assertClassical("final", prog.q, 0);
        EXPECT_TRUE(checker.check(checker.assertions()[0]).passed)
            << "constant bit " << bit;
    }
}

TEST(DeutschJozsa, BalancedOraclesNeverReadZero)
{
    for (std::uint64_t mask : {0b0001ull, 0b1010ull, 0b1111ull}) {
        const auto prog = algo::buildDeutschJozsaBalanced(4, mask);
        const auto probs =
            assertions::exactMarginal(prog.circuit, "final", prog.q);
        EXPECT_NEAR(probs[0], 0.0, 1e-12) << "mask " << mask;

        // The "is it constant?" assertion correctly rejects.
        assertions::AssertionChecker checker(prog.circuit);
        checker.assertClassical("final", prog.q, 0);
        EXPECT_FALSE(checker.check(checker.assertions()[0]).passed);
    }
}

// --- W states ---------------------------------------------------------------------

class WWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WWidths, UniformOverOneHotValues)
{
    const unsigned n = GetParam();
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", n);
    algo::appendWState(circ, q);
    circ.breakpoint("done");

    const auto probs = assertions::exactMarginal(circ, "done", q);
    for (std::uint64_t v = 0; v < pow2(n); ++v) {
        const double expected =
            popcount64(v) == 1 ? 1.0 / n : 0.0;
        EXPECT_NEAR(probs[v], expected, 1e-9) << "value " << v;
    }
}

TEST_P(WWidths, DistributionAssertionValidatesWState)
{
    const unsigned n = GetParam();
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", n);
    algo::appendWState(circ, q);
    circ.breakpoint("done");

    std::vector<std::uint64_t> one_hot;
    for (unsigned i = 0; i < n; ++i)
        one_hot.push_back(1ull << i);

    assertions::AssertionChecker checker(circ);
    checker.assertUniformSubset("done", q, one_hot);
    EXPECT_TRUE(checker.check(checker.assertions()[0]).passed);
}

TEST_P(WWidths, EveryQubitIsEntangled)
{
    const unsigned n = GetParam();
    if (n < 2)
        GTEST_SKIP();
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", n);
    algo::appendWState(circ, q);
    circ.breakpoint("done");

    for (unsigned i = 0; i < n; ++i) {
        EXPECT_LT(assertions::exactPurity(circ, "done",
                                          q.slice(i, 1)),
                  1.0 - 1e-6)
            << "qubit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WWidths,
                         ::testing::Values(2u, 3u, 4u, 5u));

// --- Superdense coding ---------------------------------------------------------------

class SuperdenseMessages : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SuperdenseMessages, TwoBitsArriveExactly)
{
    const unsigned message = GetParam();
    const auto prog = algo::buildSuperdenseProgram(message);

    Rng rng(31 + message);
    for (int trial = 0; trial < 10; ++trial) {
        const auto rec = circuit::runCircuit(prog.circuit, rng);
        EXPECT_EQ(rec.measurements.at("received"), message);
    }
}

TEST_P(SuperdenseMessages, AssertionsValidateProtocol)
{
    const unsigned message = GetParam();
    const auto prog = algo::buildSuperdenseProgram(message);

    assertions::AssertionChecker checker(prog.circuit);
    checker.assertEntangled("pair_ready", prog.sender, prog.receiver);
    // After decoding both qubits are classical: the pair disentangled.
    checker.assertProduct("decoded", prog.sender, prog.receiver);
    EXPECT_TRUE(assertions::allPassed(checker.checkAll()))
        << "message " << message;
}

INSTANTIATE_TEST_SUITE_P(Messages, SuperdenseMessages,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(Superdense, BrokenPairCorruptsMessage)
{
    // Without the CNOT in pair creation the channel degrades: the
    // received value is no longer deterministic.
    circuit::Circuit circ;
    const auto alice = circ.addRegister("alice", 1);
    const auto bob = circ.addRegister("bob", 1);
    circ.prepZ(alice[0], 0);
    circ.prepZ(bob[0], 0);
    circ.h(alice[0]); // BUG: missing cnot(alice, bob)
    circ.breakpoint("pair_ready");
    circ.x(alice[0]); // encode message 1
    circ.cnot(alice[0], bob[0]);
    circ.h(alice[0]);
    circ.breakpoint("decoded");
    circ.measureQubits({bob[0], alice[0]}, "received");

    // The precondition assertion catches the broken pair.
    assertions::AssertionChecker checker(circ);
    checker.assertEntangled("pair_ready", alice, bob);
    EXPECT_FALSE(checker.check(checker.assertions()[0]).passed);

    // And the message is indeed garbled half the time.
    Rng rng(77);
    int wrong = 0;
    for (int trial = 0; trial < 100; ++trial) {
        const auto rec = circuit::runCircuit(circ, rng);
        wrong += rec.measurements.at("received") != 1u;
    }
    EXPECT_GT(wrong, 20);
}

} // anonymous namespace
