/**
 * @file
 * Unit tests for src/common: bit utilities, RNG, tables, and the
 * bench JSON renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/benchjson.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "common/table.hh"

namespace
{

using namespace qsa;

TEST(Bits, GetSetFlip)
{
    EXPECT_EQ(getBit(0b1010, 1), 1u);
    EXPECT_EQ(getBit(0b1010, 0), 0u);
    EXPECT_EQ(setBit(0b1010, 0, 1), 0b1011u);
    EXPECT_EQ(setBit(0b1010, 1, 0), 0b1000u);
    EXPECT_EQ(setBit(0b1010, 1, 1), 0b1010u);
    EXPECT_EQ(flipBit(0b1010, 3), 0b0010u);
    EXPECT_EQ(flipBit(0b1010, 2), 0b1110u);
}

TEST(Bits, Pow2AndMasks)
{
    EXPECT_EQ(pow2(0), 1ull);
    EXPECT_EQ(pow2(13), 8192ull);
    EXPECT_EQ(lowMask(0), 0ull);
    EXPECT_EQ(lowMask(4), 0xfull);
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(Bits, Popcount)
{
    EXPECT_EQ(popcount64(0), 0u);
    EXPECT_EQ(popcount64(0b1011), 3u);
    EXPECT_EQ(popcount64(~0ull), 64u);
}

TEST(Bits, BitWidth)
{
    EXPECT_EQ(bitWidth(0), 1u);
    EXPECT_EQ(bitWidth(1), 1u);
    EXPECT_EQ(bitWidth(2), 2u);
    EXPECT_EQ(bitWidth(15), 4u);
    EXPECT_EQ(bitWidth(16), 5u);
}

TEST(Bits, ExtractDepositRoundTrip)
{
    const std::vector<unsigned> bits{1, 3, 5};
    for (std::uint64_t v = 0; v < 8; ++v) {
        const std::uint64_t basis = depositBits(0, bits, v);
        EXPECT_EQ(extractBits(basis, bits), v);
    }
}

TEST(Bits, DepositPreservesOtherBits)
{
    const std::vector<unsigned> bits{0, 2};
    const std::uint64_t basis = depositBits(0b1010, bits, 0b11);
    EXPECT_EQ(basis, 0b1111ull);
}

TEST(Bits, ExtractOrderMatters)
{
    const std::vector<unsigned> lsb_first{0, 1};
    const std::vector<unsigned> msb_first{1, 0};
    EXPECT_EQ(extractBits(0b01, lsb_first), 0b01ull);
    EXPECT_EQ(extractBits(0b01, msb_first), 0b10ull);
}

TEST(Bits, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b001, 3), 0b100ull);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011ull);
    EXPECT_EQ(reverseBits(0b1011, 4), 0b1101ull);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        heads += rng.bernoulli(0.3);
    EXPECT_NEAR(heads / (double)n, 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(23);
    const std::vector<double> w{1.0, 0.0, 3.0};
    std::map<std::size_t, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / (double)n, 0.25, 0.02);
    EXPECT_NEAR(counts[2] / (double)n, 0.75, 0.02);
}

TEST(Rng, DiscreteSingleton)
{
    Rng rng(29);
    const std::vector<double> w{0.0, 5.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.discrete(w), 1u);
}

TEST(Rng, SplitStreamsIndependent)
{
    const Rng parent(99);
    Rng c0 = parent.split(0);
    Rng c1 = parent.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c0.next() == c1.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitDeterministic)
{
    const Rng parent(99);
    Rng a = parent.split(5);
    Rng b = parent.split(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Table, RendersHeaderAndRows)
{
    AsciiTable t;
    t.setHeader({"k", "value"});
    t.addRow({"0", "7"});
    t.addRow({"1", "49"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| k "), std::string::npos);
    EXPECT_NE(out.find("| 49"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, PadsRaggedRows)
{
    AsciiTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(Table, FormatsDoubles)
{
    EXPECT_EQ(AsciiTable::fmt(0.125, 3), "0.125");
    EXPECT_EQ(AsciiTable::fmt(1.0, 0), "1");
    EXPECT_EQ(AsciiTable::fmtP(1.5), "1.0000");
    EXPECT_EQ(AsciiTable::fmtP(-0.2), "0.0000");
}

// --- benchjson --------------------------------------------------------------

TEST(BenchJson, ExtractJsonPathStripsTheFlag)
{
    char a0[] = "bench", a1[] = "--benchmark_filter=Locate";
    char a2[] = "--json", a3[] = "/tmp/out.json", a4[] = "--v=1";
    char *argv[] = {a0, a1, a2, a3, a4};
    int argc = 5;
    EXPECT_EQ(benchjson::extractJsonPath(&argc, argv),
              "/tmp/out.json");
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "bench");
    EXPECT_STREQ(argv[1], "--benchmark_filter=Locate");
    EXPECT_STREQ(argv[2], "--v=1");

    char b0[] = "bench", b1[] = "--json=trajectory.json";
    char *bargv[] = {b0, b1};
    int bargc = 2;
    EXPECT_EQ(benchjson::extractJsonPath(&bargc, bargv),
              "trajectory.json");
    EXPECT_EQ(bargc, 1);

    char c0[] = "bench";
    char *cargv[] = {c0};
    int cargc = 1;
    EXPECT_EQ(benchjson::extractJsonPath(&cargc, cargv), "");
    EXPECT_EQ(cargc, 1);
}

TEST(BenchJson, EscapeAndNumber)
{
    EXPECT_EQ(benchjson::escape("plain"), "plain");
    EXPECT_EQ(benchjson::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(benchjson::escape(std::string(1, '\x01')), "\\u0001");

    EXPECT_EQ(benchjson::number(0.25), "0.25");
    EXPECT_EQ(benchjson::number(15.0), "15");
    EXPECT_EQ(benchjson::number(std::nan("")), "null");
    EXPECT_EQ(benchjson::number(HUGE_VAL), "null");
    // Shortest form must still round-trip exactly.
    const double v = 10.430104999613832;
    EXPECT_EQ(std::strtod(benchjson::number(v).c_str(), nullptr), v);
}

TEST(BenchJson, RenderShape)
{
    benchjson::Record rec;
    rec.name = "BM_Locate/1";
    rec.label = "misrouted-control";
    rec.iterations = 3;
    rec.realTime = 10.5;
    rec.cpuTime = 10.25;
    rec.timeUnit = "ms";
    rec.counters = {{"probes", 11.0}, {"boundaries", 270.0}};

    const std::string doc = benchjson::render("bench_locate", {rec});
    EXPECT_NE(doc.find("\"bench\": \"bench_locate\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"BM_Locate/1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"label\": \"misrouted-control\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"iterations\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"real_time\": 10.5"), std::string::npos);
    EXPECT_NE(doc.find("\"time_unit\": \"ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"probes\": 11"), std::string::npos);
    EXPECT_NE(doc.find("\"boundaries\": 270"), std::string::npos);

    // No label / no counters → the optional fields vanish; an empty
    // record list still renders a valid document.
    benchjson::Record bare;
    bare.name = "BM_X";
    const std::string slim = benchjson::render("b", {bare});
    EXPECT_EQ(slim.find("\"label\""), std::string::npos);
    EXPECT_EQ(slim.find("\"counters\""), std::string::npos);
    EXPECT_NE(benchjson::render("b", {}).find("\"results\": []"),
              std::string::npos);
}

} // anonymous namespace
