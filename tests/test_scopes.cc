/**
 * @file
 * Tests for the ProjectQ-style structural scopes (Section 5.1,
 * Table 4) and the automatic assertion placement they enable.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/grover.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"
#include "circuit/executor.hh"
#include "circuit/scopes.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "gf2/gf2.hh"
#include "sim/gates.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;
using qsa::circuit::ComputeScope;
using qsa::circuit::ControlScope;

TEST(ComputeScopeTest, UncomputesScratchAutomatically)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    const auto work = circ.addRegister("work", 1);
    circ.h(q[0]);
    circ.h(q[1]);
    {
        ComputeScope scope(circ, "and");
        circ.ccnot(q[0], q[1], work[0]); // compute AND into scratch
        scope.endCompute();
        circ.z(work[0]); // action: phase flip on the AND
    } // scratch uncomputed here
    circ.breakpoint("done");

    // The work qubit must be |0> and unentangled afterwards.
    const auto probs = assertions::exactMarginal(circ, "done", work);
    EXPECT_NEAR(probs[0], 1.0, 1e-12);
    EXPECT_NEAR(assertions::exactPurity(circ, "done", work), 1.0,
                1e-12);

    // And the breakpoints exist for assertion placement.
    const auto labels = circ.breakpointLabels();
    EXPECT_NE(std::find(labels.begin(), labels.end(), "and_computed"),
              labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(),
                        "and_uncomputed"),
              labels.end());
}

TEST(ComputeScopeTest, MatchesManualMirror)
{
    // Scope-built circuit equals hand-mirrored circuit exactly.
    auto build_scoped = [] {
        Circuit circ(3);
        {
            ComputeScope scope(circ);
            circ.h(0);
            circ.cnot(0, 1);
            circ.t(1);
            scope.endCompute();
            circ.cz(1, 2);
        }
        return circ;
    };
    auto build_manual = [] {
        Circuit circ(3);
        circ.h(0);
        circ.cnot(0, 1);
        circ.t(1);
        circ.cz(1, 2);
        circ.tdg(1);
        circ.cnot(0, 1);
        circ.h(0);
        return circ;
    };

    Rng ra(1), rb(1);
    const auto sa = circuit::runCircuit(build_scoped(), ra).state;
    const auto sb = circuit::runCircuit(build_manual(), rb).state;
    EXPECT_NEAR(sa.fidelity(sb), 1.0, 1e-12);
}

TEST(ComputeScopeTest, ExplicitUncomputeIsIdempotent)
{
    Circuit circ(2);
    ComputeScope scope(circ);
    circ.x(0);
    scope.endCompute();
    circ.z(0);
    scope.uncompute();
    const std::size_t size_after = circ.size();
    scope.uncompute(); // no-op
    EXPECT_EQ(circ.size(), size_after);
}

TEST(ControlScopeTest, WrapsBodyWithControls)
{
    // X inside a control scope == CNOT.
    Circuit scoped(2);
    {
        ControlScope ctrl(scoped, {0});
        scoped.x(1);
    }
    ASSERT_EQ(scoped.size(), 1u);
    EXPECT_EQ(scoped.instructions()[0].controls.size(), 1u);

    for (std::uint64_t input = 0; input < 4; ++input) {
        sim::StateVector via(2), direct(2);
        via.setBasisState(input);
        direct.setBasisState(input);
        std::map<std::string, std::uint64_t> meas;
        Rng rng(1);
        circuit::runCircuitOn(scoped, via, meas, rng);
        direct.applyControlled(sim::gates::x(), {0}, 1);
        EXPECT_NEAR(via.fidelity(direct), 1.0, 1e-12) << input;
    }
}

TEST(ControlScopeTest, NestedScopesStackControls)
{
    // Control scopes nest into multi-controlled operations.
    Circuit circ(3);
    {
        ControlScope outer(circ, {0});
        {
            ControlScope inner(circ, {1});
            circ.x(2);
        }
    }
    ASSERT_EQ(circ.size(), 1u);
    EXPECT_EQ(circ.instructions()[0].controls.size(), 2u);

    // Toffoli behaviour.
    sim::StateVector sv(3);
    sv.setBasisState(0b011);
    std::map<std::string, std::uint64_t> meas;
    Rng rng(1);
    circuit::runCircuitOn(circ, sv, meas, rng);
    EXPECT_NEAR(std::abs(sv.amp(0b111)), 1.0, 1e-12);
}

TEST(ScopedGrover, Table4RightColumnReproducesLeftColumn)
{
    // Rebuild the GF(2^3) Grover oracle iteration with scopes (the
    // ProjectQ structure) and compare against the hand-built program.
    const unsigned n = 3;
    const gf2::Field field(n);
    const std::uint32_t target = 0b101;

    // Hand-built (Table 4 left column, as in algo::buildGroverProgram).
    algo::GroverConfig config;
    config.degree = n;
    config.target = target;
    config.iterations = 1;
    const auto manual = algo::buildGroverProgram(config);

    // Scope-built: compute work = x^2 xor ~target, flip, uncompute.
    Circuit circ;
    const auto q = circ.addRegister("q", n);
    const auto work = circ.addRegister("work", n);
    const auto chain = circ.addRegister("chain", n - 1);
    circ.prepRegister(q, 0);
    circ.prepRegister(work, 0);
    circ.prepRegister(chain, 0);
    for (unsigned j = 0; j < n; ++j)
        circ.h(q[j]);

    const auto rows = field.squaringMatrixRows();
    {
        ComputeScope oracle(circ, "oracle");
        for (unsigned i = 0; i < n; ++i)
            for (unsigned j = 0; j < n; ++j)
                if (getBit(rows[i], j))
                    circ.cnot(q[j], work[i]);
        for (unsigned i = 0; i < n; ++i)
            if (!getBit(target, i))
                circ.x(work[i]);
        oracle.endCompute();
        // Action: phase flip on work == all-ones (n = 3: the AND of
        // work[0], work[1] lands in chain[0]).
        circ.ccnot(work[1], work[0], chain[0]);
        circ.cz(chain[0], work[n - 1]);
        circ.ccnot(work[1], work[0], chain[0]);
    }
    algo::appendDiffusion(circ, q, chain);
    circ.breakpoint("iter_1");

    const auto manual_probs = assertions::exactMarginal(
        manual.circuit, "iter_1", manual.q);
    const auto scoped_probs =
        assertions::exactMarginal(circ, "iter_1", q);
    for (std::uint64_t v = 0; v < 8; ++v)
        EXPECT_NEAR(manual_probs[v], scoped_probs[v], 1e-9) << v;
}

TEST(AutoPlacement, RegistersPairedAssertions)
{
    // Scoped oracle program: autoPlaceScopeAssertions finds the pair
    // of breakpoints and registers entangled + product assertions
    // that pass.
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    const auto work = circ.addRegister("work", 2);
    for (unsigned j = 0; j < 2; ++j)
        circ.h(q[j]);
    {
        ComputeScope scope(circ, "copy");
        circ.cnot(q[0], work[0]);
        circ.cnot(q[1], work[1]);
        scope.endCompute();
        circ.cz(work[0], work[1]);
    }

    assertions::AssertionChecker checker(circ);
    const std::size_t placed =
        assertions::autoPlaceScopeAssertions(checker, circ, q, work);
    EXPECT_EQ(placed, 2u);

    const auto outcomes = checker.checkAll();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(assertions::allPassed(outcomes));
    EXPECT_EQ(outcomes[0].spec.kind,
              assertions::AssertionKind::Entangled);
    EXPECT_EQ(outcomes[1].spec.kind,
              assertions::AssertionKind::Product);
}

TEST(AutoPlacement, NoScopesNoAssertions)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.breakpoint("plain");

    assertions::AssertionChecker checker(circ);
    EXPECT_EQ(assertions::autoPlaceScopeAssertions(checker, circ, q,
                                                   q.slice(0, 1)),
              0u);
}

} // anonymous namespace
