/**
 * @file
 * Tests for classically-conditioned gates and the semiclassical
 * (2n+3-qubit) Shor variant built on them.
 */

#include <gtest/gtest.h>

#include "algo/numtheory.hh"
#include "algo/shor.hh"
#include "circuit/executor.hh"
#include "circuit/qasm.hh"
#include "common/rng.hh"
#include "stats/chi2.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;

// --- Conditional instructions ------------------------------------------------

TEST(Conditional, GateFiresOnlyOnMatch)
{
    // Measure a |1> qubit, then flip another conditioned on the
    // outcome being 1 (fires) and on 0 (does not).
    Circuit circ(3);
    circ.prepZ(0, 1);
    circ.measureQubits({0}, "m");
    circ.x(1);
    circ.conditionLast("m", 1);
    circ.x(2);
    circ.conditionLast("m", 0);

    Rng rng(1);
    const auto rec = circuit::runCircuit(circ, rng);
    EXPECT_NEAR(rec.state.probabilityOne(1), 1.0, 1e-12);
    EXPECT_NEAR(rec.state.probabilityOne(2), 0.0, 1e-12);
}

TEST(Conditional, DeferredMeasurementTeleport)
{
    // Measurement-based teleportation: corrections conditioned on the
    // two measured bits reproduce the payload exactly.
    const double theta = 1.3, phi = -0.7;
    Circuit circ(3);
    circ.prepZ(0, 0); // message
    circ.ry(0, theta);
    circ.rz(0, phi);
    circ.prepZ(1, 0); // alice
    circ.prepZ(2, 0); // bob
    circ.h(1);
    circ.cnot(1, 2);
    circ.cnot(0, 1);
    circ.h(0);
    circ.measureQubits({1}, "mx");
    circ.measureQubits({0}, "mz");
    circ.x(2);
    circ.conditionLast("mx", 1);
    circ.z(2);
    circ.conditionLast("mz", 1);
    // Verify: undo the payload preparation; bob must read |0>.
    circ.rz(2, -phi);
    circ.ry(2, -theta);

    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const auto rec = circuit::runCircuit(circ, rng);
        EXPECT_NEAR(rec.state.probabilityOne(2), 0.0, 1e-9);
    }
}

TEST(Conditional, UnmeasuredLabelIsFatal)
{
    Circuit circ(1);
    circ.x(0);
    circ.conditionLast("nope", 1);
    Rng rng(1);
    EXPECT_EXIT(circuit::runCircuit(circ, rng),
                ::testing::ExitedWithCode(1), "unmeasured");
}

TEST(Conditional, CannotInvertOrControl)
{
    Circuit circ(2);
    circ.measureQubits({0}, "m");
    circ.x(1);
    circ.conditionLast("m", 1);
    EXPECT_EXIT({ auto inv = circ.inverse(); (void)inv; },
                ::testing::ExitedWithCode(1), "cannot invert");
}

TEST(Conditional, QasmRoundTrip)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.measureQubits({q[0]}, "m");
    circ.x(q[1]);
    circ.conditionLast("m", 1);

    const std::string text = circuit::toQasm(circ);
    EXPECT_NE(text.find("if(m_m==1) x q[1];"), std::string::npos);

    const Circuit parsed = circuit::fromQasm(text);
    EXPECT_EQ(circuit::toQasm(parsed), text);

    // Behavioural check under a shared stream.
    Rng ra(3), rb(3);
    const auto rec_a = circuit::runCircuit(circ, ra);
    const auto rec_b = circuit::runCircuit(parsed, rb);
    EXPECT_NEAR(rec_a.state.fidelity(rec_b.state), 1.0, 1e-12);
}

// --- Semiclassical Shor --------------------------------------------------------

TEST(SemiclassicalShor, UsesTwoNPlusThreeQubits)
{
    const auto prog =
        algo::buildSemiclassicalShorProgram(algo::ShorConfig());
    // n = 4 bits for N = 15: 2n + 3 = 11 qubits.
    EXPECT_EQ(prog.circuit.numQubits(), 11u);
}

TEST(SemiclassicalShor, OutputsMatchFullRegisterVersion)
{
    // The semiclassical outputs follow the same {0, 2, 4, 6}
    // distribution as the full-register program.
    const auto prog =
        algo::buildSemiclassicalShorProgram(algo::ShorConfig());

    Rng rng(4242);
    std::vector<double> counts(8, 0.0);
    const int runs = 160;
    for (int i = 0; i < runs; ++i) {
        const auto rec = circuit::runCircuit(prog.circuit, rng);
        const std::uint64_t out =
            algo::semiclassicalShorOutput(rec.measurements, 3);
        ASSERT_LT(out, 8u);
        ASSERT_EQ(out % 2, 0u) << "odd output " << out;
        counts[out] += 1.0;

        // Helper register clean on every trajectory.
        EXPECT_EQ(rec.measurements.at("helper"), 0u);
        EXPECT_EQ(rec.measurements.at("flag"), 0u);
    }

    // Uniformity over {0, 2, 4, 6} via chi-square.
    const std::vector<double> observed{counts[0], counts[2], counts[4],
                                       counts[6]};
    const auto res = stats::chiSquareGof(
        observed, stats::uniformExpected(4, runs));
    EXPECT_GT(res.pValue, 0.01);
}

TEST(SemiclassicalShor, FactorsFifteen)
{
    const auto prog =
        algo::buildSemiclassicalShorProgram(algo::ShorConfig());
    Rng rng(99);
    bool factored = false;
    for (int attempt = 0; attempt < 10 && !factored; ++attempt) {
        const auto rec = circuit::runCircuit(prog.circuit, rng);
        const auto out =
            algo::semiclassicalShorOutput(rec.measurements, 3);
        const auto f = algo::shorPostprocess(out, 3, 7, 15);
        factored = f.has_value() && f->first * f->second == 15;
    }
    EXPECT_TRUE(factored);
}

TEST(SemiclassicalShor, WrongInverseDirtiesHelper)
{
    // The Table 3 bug shows up in the semiclassical variant too.
    algo::ShorConfig config;
    config.pairs = algo::shorClassicalInputs(7, 15, 3);
    config.pairs[0].second = 12;
    const auto prog = algo::buildSemiclassicalShorProgram(config);

    Rng rng(55);
    int dirty = 0;
    const int runs = 60;
    for (int i = 0; i < runs; ++i) {
        const auto rec = circuit::runCircuit(prog.circuit, rng);
        dirty += rec.measurements.at("helper") != 0;
    }
    // Paper's Table 3: helper non-zero with probability ~1/2.
    EXPECT_GT(dirty, runs / 4);
    EXPECT_LT(dirty, 3 * runs / 4);
}

TEST(SemiclassicalShor, SerialisesWithConditions)
{
    const auto prog =
        algo::buildSemiclassicalShorProgram(algo::ShorConfig());
    const std::string text = circuit::toQasm(prog.circuit);
    EXPECT_NE(text.find("if(m_m_3==1)"), std::string::npos);
    const auto parsed = circuit::fromQasm(text);
    EXPECT_EQ(circuit::toQasm(parsed), text);
}

} // anonymous namespace
