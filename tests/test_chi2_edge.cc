/**
 * @file
 * Edge-case coverage for src/stats/chi2 and the Yates-corrected
 * contingency machinery: bins with low expected counts, zero-expected
 * bins, the 2x2 continuity correction on and off, and G-test vs
 * Pearson agreement at large samples.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "stats/chi2.hh"
#include "stats/contingency.hh"

namespace
{

using namespace qsa::stats;

// --- Low and zero expected counts -----------------------------------------

TEST(Chi2Edge, LowExpectedCountsStayFiniteAndBounded)
{
    // Expected counts far below the rule-of-thumb 5 per bin: the test
    // must still return a finite statistic and a p-value in [0, 1].
    const std::vector<double> observed = {1, 0, 2, 0, 1, 0, 0, 0};
    const std::vector<double> expected = {0.5, 0.5, 0.5, 0.5,
                                          0.5, 0.5, 0.5, 0.5};
    const auto res = chiSquareGof(observed, expected);
    EXPECT_TRUE(std::isfinite(res.statistic));
    EXPECT_GE(res.pValue, 0.0);
    EXPECT_LE(res.pValue, 1.0);
    EXPECT_EQ(res.usedBins, 8u);
    EXPECT_EQ(res.df, 7.0);
    EXPECT_FALSE(res.impossibleOutcome);
}

TEST(Chi2Edge, BothZeroBinsAreSkipped)
{
    // Bins empty in both observed and expected contribute nothing, to
    // the statistic or to the degrees of freedom (NR chsone).
    const std::vector<double> observed = {10, 0, 12, 0};
    const std::vector<double> expected = {11, 0, 11, 0};
    const auto res = chiSquareGof(observed, expected);
    EXPECT_EQ(res.usedBins, 2u);
    EXPECT_EQ(res.df, 1.0);
}

TEST(Chi2Edge, ImpossibleOutcomeRejectsWithZeroPValue)
{
    // Observation in a zero-expected bin: exactly the "classical
    // assertion read a forbidden value" case; p must be exactly 0.
    const std::vector<double> observed = {99, 1};
    const std::vector<double> expected = {100, 0};
    const auto res = chiSquareGof(observed, expected);
    EXPECT_TRUE(res.impossibleOutcome);
    EXPECT_EQ(res.pValue, 0.0);
    EXPECT_TRUE(std::isinf(res.statistic));

    const auto g = gTestGof(observed, expected);
    EXPECT_TRUE(g.impossibleOutcome);
    EXPECT_EQ(g.pValue, 0.0);
}

TEST(Chi2Edge, DegeneratePointMassHypothesis)
{
    // Every observation on the hypothesised point mass: zero degrees
    // of freedom and nothing to reject.
    const auto expected = pointMassExpected(4, 2, 100.0);
    const std::vector<double> observed = {0, 0, 100, 0};
    const auto res = chiSquareGof(observed, expected);
    EXPECT_EQ(res.df, 0.0);
    EXPECT_EQ(res.pValue, 1.0);
}

TEST(Chi2Edge, QuantileInvertsSurvival)
{
    for (double df : {1.0, 3.0, 10.0}) {
        for (double p : {0.01, 0.05, 0.5, 0.95}) {
            const double x = chiSquareQuantile(1.0 - p, df);
            EXPECT_NEAR(chiSquareSf(x, df), p, 1e-8)
                << "df " << df << " p " << p;
        }
    }
}

// --- Yates continuity correction on 2x2 tables ----------------------------

/** The classic 2x2 example: cells {{10, 20}, {30, 40}}. */
ContingencyTable
textbookTable()
{
    return ContingencyTable::fromCounts({0, 1}, {0, 1},
                                        {{10, 20}, {30, 40}});
}

TEST(YatesCorrection, KnownTwoByTwoStatistics)
{
    // Hand-computed: chi2 = n(ad - bc)^2 / (r1 r2 c1 c2) = 0.79365
    // uncorrected; (|ad - bc| - n/2)^2 variant = 0.44643 with Yates.
    const auto table = textbookTable();

    const auto corrected = independenceTest(table, true);
    EXPECT_TRUE(corrected.yatesApplied);
    EXPECT_NEAR(corrected.statistic, 0.44643, 1e-4);
    EXPECT_EQ(corrected.df, 1.0);

    const auto plain = independenceTest(table, false);
    EXPECT_FALSE(plain.yatesApplied);
    EXPECT_NEAR(plain.statistic, 0.79365, 1e-4);
    EXPECT_EQ(plain.df, 1.0);

    // The correction is conservative: smaller statistic, larger p.
    EXPECT_LT(corrected.statistic, plain.statistic);
    EXPECT_GT(corrected.pValue, plain.pValue);
}

TEST(YatesCorrection, OnlyAppliesToTwoByTwo)
{
    // A 3x2 table must not be corrected even when the flag is on.
    const auto table = ContingencyTable::fromCounts(
        {0, 1, 2}, {0, 1}, {{10, 12}, {14, 9}, {8, 11}});
    const auto res = independenceTest(table, true);
    EXPECT_FALSE(res.yatesApplied);
    EXPECT_EQ(res.df, 2.0);
}

TEST(YatesCorrection, PerfectCorrelationStillRejects)
{
    // The paper's ensemble-of-16 Bell pair: perfectly correlated 2x2
    // table; Yates-corrected p-value quoted as ~0.0005.
    const auto table = ContingencyTable::fromCounts({0, 1}, {0, 1},
                                                    {{8, 0}, {0, 8}});
    const auto res = independenceTest(table, true);
    EXPECT_TRUE(res.yatesApplied);
    EXPECT_LT(res.pValue, 0.001);
    EXPECT_GT(res.pValue, 0.0001);
}

// --- G-test vs Pearson agreement ------------------------------------------

TEST(GTestAgreement, LargeSampleGoodnessOfFit)
{
    // At large expected counts the G and Pearson statistics converge
    // (both are asymptotically chi-square under the null). Draw a
    // large multinomial close to uniform and compare.
    const std::size_t bins = 16;
    const double per_bin = 4000.0;
    qsa::Rng rng(0x600d);
    std::vector<double> observed(bins);
    double total = 0.0;
    for (auto &o : observed) {
        // Uniform jitter of a few sigma around the expectation.
        o = per_bin + std::floor((rng.uniform() - 0.5) * 120.0);
        total += o;
    }
    const auto expected = uniformExpected(bins, total);

    const auto pearson = chiSquareGof(observed, expected);
    const auto g = gTestGof(observed, expected);
    EXPECT_EQ(pearson.df, g.df);
    EXPECT_NEAR(pearson.statistic, g.statistic,
                0.02 * (1.0 + pearson.statistic));
    EXPECT_NEAR(pearson.pValue, g.pValue, 0.01);
}

TEST(GTestAgreement, LargeSampleIndependence)
{
    // Same convergence for the independence variants: under the null
    // (a genuinely independent 4x4 table) at large counts the two
    // statistics and p-values must agree closely.
    qsa::Rng rng(0xbead);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    for (int i = 0; i < 40000; ++i)
        pairs.emplace_back(rng.uniformInt(4), rng.uniformInt(4));
    const auto table = ContingencyTable::fromPairs(pairs);
    const auto pearson = independenceTest(table, false);
    const auto g = independenceGTest(table);
    EXPECT_EQ(pearson.df, g.df);
    EXPECT_NEAR(pearson.statistic, g.statistic,
                0.02 * (1.0 + pearson.statistic));
    EXPECT_NEAR(pearson.pValue, g.pValue, 0.01);
}

} // anonymous namespace
