/**
 * @file
 * Robustness and edge-case coverage: error paths (fatal/panic), mid-
 * circuit resets, scattered-qubit dense unitaries, statistics corner
 * cases, and the logging/table utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hh"
#include "circuit/executor.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "sim/gates.hh"
#include "sim/statevector.hh"
#include "stats/chi2.hh"
#include "stats/contingency.hh"
#include "stats/specfun.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;

// --- Simulator edges -----------------------------------------------------------

TEST(SimEdges, ScatteredUnitaryMatchesGatePath)
{
    // A 2-qubit unitary applied to non-adjacent qubits {0, 3} in a
    // 5-qubit register: compare dense path against native gates for
    // CNOT with control on qubit 3, target on qubit 0.
    sim::CMatrix cnot(4);
    // Matrix index space: bit 0 = qubits[0] = q0 (target),
    // bit 1 = qubits[1] = q3 (control).
    cnot.at(0b00, 0b00) = 1;
    cnot.at(0b01, 0b01) = 1;
    cnot.at(0b11, 0b10) = 1;
    cnot.at(0b10, 0b11) = 1;

    for (std::uint64_t input = 0; input < 32; ++input) {
        sim::StateVector dense(5), native(5);
        dense.setBasisState(input);
        native.setBasisState(input);
        dense.applyUnitary(cnot, {0, 3});
        native.applyControlled(sim::gates::x(), {3}, 0);
        EXPECT_NEAR(dense.fidelity(native), 1.0, 1e-12)
            << "input " << input;
    }
}

TEST(SimEdges, NormalizeRestoresUnitNorm)
{
    sim::StateVector sv(2);
    sv.applyGate(sim::Mat2{2.0, 0.0, 0.0, 2.0}, 0); // non-unitary x2
    EXPECT_NEAR(sv.norm(), 4.0, 1e-12);
    sv.normalize();
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(SimEdges, GhzMeasurementIsAllOrNothing)
{
    Rng rng(8);
    for (int trial = 0; trial < 30; ++trial) {
        sim::StateVector sv(4);
        sv.applyGate(sim::gates::h(), 0);
        for (unsigned q = 1; q < 4; ++q)
            sv.applyControlled(sim::gates::x(), {q - 1}, q);
        const std::uint64_t m = sv.measureQubits({0, 1, 2, 3}, rng);
        EXPECT_TRUE(m == 0 || m == 0b1111) << m;
    }
}

TEST(SimEdges, MidCircuitResetStatistics)
{
    // prepZ on a superposed qubit must land deterministically in the
    // requested state while collapsing entanglement partners
    // consistently.
    Rng rng(9);
    int partner_ones = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        sim::StateVector sv(2);
        sv.applyGate(sim::gates::h(), 0);
        sv.applyControlled(sim::gates::x(), {0}, 1);
        sv.prepZ(0, 0, rng);
        EXPECT_NEAR(sv.probabilityOne(0), 0.0, 1e-12);
        // The partner collapsed to a definite value during the reset.
        const double p1 = sv.probabilityOne(1);
        EXPECT_TRUE(p1 < 1e-9 || p1 > 1.0 - 1e-9);
        partner_ones += p1 > 0.5;
    }
    EXPECT_NEAR(partner_ones / (double)trials, 0.5, 0.1);
}

TEST(SimEdgesDeath, BadArgumentsPanic)
{
    sim::StateVector sv(2);
    EXPECT_DEATH(sv.setBasisState(4), "out of range");
    EXPECT_DEATH(sv.applyGate(sim::gates::x(), 2), "out of range");
    EXPECT_DEATH(sv.applyControlled(sim::gates::x(), {1}, 1),
                 "control equals target");
    EXPECT_DEATH(sv.applySwap(0, 0), "distinct");
    const sim::CMatrix bad(2);
    EXPECT_DEATH(sv.applyUnitary(bad, {0, 1}),
                 "dimension mismatch");
}

TEST(SimEdgesDeath, ControlOverlapsUnitaryTarget)
{
    sim::StateVector sv(3);
    const sim::CMatrix id4 = sim::CMatrix::identity(4);
    EXPECT_DEATH(sv.applyControlledUnitary(id4, {1}, {0, 1}),
                 "overlap");
}

// --- Executor edges ---------------------------------------------------------------

TEST(ExecutorEdges, RunsOnLargerState)
{
    // A 2-qubit circuit applied to a 4-qubit state touches only its
    // own qubits.
    Circuit circ(2);
    circ.h(0);
    circ.cnot(0, 1);

    sim::StateVector sv(4);
    sv.setBasisState(0b1100);
    std::map<std::string, std::uint64_t> meas;
    Rng rng(2);
    circuit::runCircuitOn(circ, sv, meas, rng);
    // Upper qubits untouched.
    const auto probs = sv.marginalProbs({2, 3});
    EXPECT_NEAR(probs[0b11], 1.0, 1e-12);
}

TEST(ExecutorEdges, StateTooSmallIsFatal)
{
    Circuit circ(3);
    circ.h(2);
    sim::StateVector sv(2);
    std::map<std::string, std::uint64_t> meas;
    Rng rng(1);
    EXPECT_EXIT(circuit::runCircuitOn(circ, sv, meas, rng),
                ::testing::ExitedWithCode(1), "too small");
}

TEST(ExecutorEdges, RepeatedMeasureLabelOverwrites)
{
    Circuit circ(1);
    circ.prepZ(0, 1);
    circ.measureQubits({0}, "m");
    circ.x(0);
    circ.measureQubits({0}, "m");
    Rng rng(1);
    const auto rec = circuit::runCircuit(circ, rng);
    EXPECT_EQ(rec.measurements.at("m"), 0u); // latest wins
}

// --- Statistics edges ----------------------------------------------------------

TEST(StatsEdges, QuantileMonotoneInDf)
{
    double prev = 0.0;
    for (double df : {1.0, 2.0, 5.0, 10.0, 30.0}) {
        const double q = stats::chiSquareQuantile(0.95, df);
        EXPECT_GT(q, prev);
        prev = q;
    }
}

TEST(StatsEdges, GammaQLargeArguments)
{
    // Q(a, x) -> 0 for x >> a and stays in [0, 1].
    EXPECT_LT(stats::gammaQ(2.0, 200.0), 1e-60);
    EXPECT_GE(stats::gammaQ(50.0, 30.0), 0.0);
    EXPECT_LE(stats::gammaQ(50.0, 30.0), 1.0);
    EXPECT_NEAR(stats::gammaP(50.0, 30.0) + stats::gammaQ(50.0, 30.0),
                1.0, 1e-10);
}

TEST(StatsEdges, TwoSampleDetectsShift)
{
    // Binned samples from shifted distributions reject equality.
    std::vector<double> s1{50, 30, 15, 5, 0, 0};
    std::vector<double> s2{0, 0, 5, 15, 30, 50};
    const auto res = stats::chiSquareTwoSample(s1, s2);
    EXPECT_LT(res.pValue, 1e-10);
}

TEST(StatsEdgesDeath, InvalidInputs)
{
    EXPECT_DEATH(stats::chiSquareSf(1.0, 0.0), "df > 0");
    EXPECT_DEATH(stats::lnGamma(-1.0), "x > 0");
    EXPECT_DEATH(
        stats::chiSquareGof({1.0}, {1.0, 2.0}),
        "mismatch");
    EXPECT_DEATH(stats::pointMassExpected(4, 9, 16.0), "outside");
}

TEST(StatsEdgesDeath, ContingencyShapeChecks)
{
    EXPECT_DEATH(stats::ContingencyTable::fromCounts(
                     {0, 1}, {0}, {{1.0}, {2.0, 3.0}}),
                 "mismatch");
}

// --- Utility edges -----------------------------------------------------------------

TEST(UtilEdges, TableSeparators)
{
    AsciiTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.render();
    // Four rules: top, under-header, separator, bottom.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+---", pos)) != std::string::npos) {
        ++rules;
        pos += 4;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(UtilEdges, LoggingSinksDoNotCrash)
{
    inform("info message ", 42);
    warn("warn message ", 3.14);
    SUCCEED();
}

TEST(UtilEdgesDeath, FatalExitsPanicAborts)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "boom");
    EXPECT_DEATH(panic("kaboom"), "kaboom");
}

TEST(UtilEdgesDeath, RngValidation)
{
    Rng rng(1);
    EXPECT_DEATH(rng.uniformInt(0), "positive");
    EXPECT_DEATH(rng.discrete({0.0, 0.0}), "positive sum");
    EXPECT_DEATH(rng.discrete({-1.0, 2.0}), "non-negative");
}

TEST(UtilEdgesDeath, RegisterSliceBounds)
{
    circuit::QubitRegister r("r", {0, 1, 2});
    EXPECT_DEATH(r.slice(2, 2), "out of range");
    EXPECT_DEATH(r.qubit(3), "out of range");
}

} // anonymous namespace
