/**
 * @file
 * The sampled statistical oracle (OracleMode::Sampled / Auto
 * fallback): Monte-Carlo reference marginals for wide-measurement
 * programs past the exact oracle's branch cap.
 *
 * Pins: (1) sampled marginals agree with the exact mixture marginals
 * within a binomial confidence half-width on programs the exact
 * oracle handles; (2) forcing the sampled oracle reproduces the exact
 * oracle's bracket on every taxonomy fixture; (3) sampled derivation
 * is deterministic in the seed and bit-identical across thread
 * counts; (4) the wide-measurement flagship — a 13-round
 * semiclassical QPE whose 8192 outcome histories overflow the 4096
 * branch cap — throws a catchable DeriveError in exact mode and
 * localizes in Auto mode (sampled fallback) to a bracket containing
 * the defect, in fewer probes than a linear scan.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "common/errors.hh"
#include "locate/locate.hh"
#include "locate/predicates.hh"
#include "obs/obs.hh"

namespace
{

using namespace qsa;
using namespace qsa::locate;
using qsa::circuit::Circuit;
using qsa::circuit::Instruction;
using qsa::circuit::QubitRegister;

std::int64_t
counterValue(const std::string &name)
{
    for (const auto &[key, value] : obs::Registry::snapshot())
        if (key == name)
            return value;
    return 0;
}

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.kind == b.kind && a.controls == b.controls &&
           a.targets == b.targets && a.angle == b.angle &&
           a.bit == b.bit && a.label == b.label &&
           a.condLabel == b.condLabel && a.condValue == b.condValue;
}

bool
intervalCoversDefect(const Circuit &suspect, const Circuit &reference,
                     std::size_t begin, std::size_t end)
{
    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    for (std::size_t i = begin; i < end; ++i) {
        if (i >= si.size() || i >= ri.size())
            return true;
        if (!sameInstruction(si[i], ri[i]))
            return true;
    }
    return false;
}

// --- Fixtures (the measured-program taxonomy of test_locate_measure) --------

enum class TeleportBug
{
    None,
    WrongInitialValue,
    FlippedPayload,
    MisroutedCorrection,
    BrokenMirror,
    WrongCondValue,
};

Circuit
buildMeasuredTeleport(TeleportBug bug)
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;

    Circuit circ;
    const auto msg = circ.addRegister("msg", 1);
    const auto half = circ.addRegister("half", 1);
    const auto recv = circ.addRegister("recv", 1);

    circ.prepZ(msg[0], 0);
    circ.prepZ(half[0], 0);
    circ.prepZ(recv[0],
               bug == TeleportBug::WrongInitialValue ? 1 : 0);
    circ.ry(msg[0],
            bug == TeleportBug::FlippedPayload ? -theta : theta);
    circ.rz(msg[0], phi);
    circ.h(half[0]);
    circ.cnot(half[0], recv[0]);
    circ.cnot(msg[0], half[0]);
    circ.h(msg[0]);
    circ.measureQubits({half[0]}, "m_x");
    circ.measureQubits({msg[0]}, "m_z");

    circ.x(recv[0]);
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_z" : "m_x",
        bug == TeleportBug::WrongCondValue ? 0 : 1);
    circ.z(recv[0]);
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_x" : "m_z", 1);

    circ.rz(recv[0], -phi);
    circ.ry(recv[0],
            bug == TeleportBug::BrokenMirror ? theta : -theta);
    return circ;
}

enum class QpeBug
{
    None,
    WrongEigenstate,
    FlippedPhase,
    WrongFeedback,
};

/**
 * Semiclassical phase estimation with one recycled ancilla measuring
 * one phase bit per round (see test_locate_measure.cc). Branch count
 * is 2^t: t = 3 stays within the exact oracle's cap, t = 13 (8192
 * outcome histories) overflows it — the wide-measurement flagship.
 */
Circuit
buildSemiclassicalQpe(QpeBug bug, unsigned t = 3)
{
    const double phase = 1.0 / 3.0; // non-dyadic: every bit is random

    Circuit circ;
    const auto sys = circ.addRegister("sys", 1);
    const auto anc = circ.addRegister("anc", 1);

    circ.prepZ(sys[0], bug == QpeBug::WrongEigenstate ? 0 : 1);
    circ.prepZ(anc[0], 0);

    for (unsigned l = t; l >= 1; --l) {
        if (l < t)
            circ.prepZ(anc[0], 0); // recycle the ancilla
        circ.h(anc[0]);
        const double sign = bug == QpeBug::FlippedPhase ? -1.0 : 1.0;
        circ.cphase(anc[0], sys[0],
                    sign * 2.0 * M_PI * phase *
                        static_cast<double>(1u << (l - 1)));
        for (unsigned j = l + 1; j <= t; ++j) {
            const unsigned denom_pow =
                bug == QpeBug::WrongFeedback ? j - l : j - l + 1;
            circ.phase(anc[0],
                       -2.0 * M_PI /
                           static_cast<double>(1u << denom_pow));
            circ.conditionLast("m_" + std::to_string(j), 1);
        }
        circ.h(anc[0]);
        circ.measureQubits({anc[0]}, "m_" + std::to_string(l));
    }
    return circ;
}

struct Fixture
{
    std::string name;
    Circuit suspect;
    Circuit reference;
};

std::vector<Fixture>
taxonomyFixtures()
{
    std::vector<Fixture> out;
    const auto teleport = [&](TeleportBug bug, const char *name) {
        out.push_back({std::string("teleport/") + name,
                       buildMeasuredTeleport(bug),
                       buildMeasuredTeleport(TeleportBug::None)});
    };
    const auto qpe = [&](QpeBug bug, const char *name) {
        out.push_back({std::string("qpe/") + name,
                       buildSemiclassicalQpe(bug),
                       buildSemiclassicalQpe(QpeBug::None)});
    };
    teleport(TeleportBug::WrongInitialValue, "wrong-initial-value");
    teleport(TeleportBug::FlippedPayload, "flipped-payload");
    teleport(TeleportBug::MisroutedCorrection, "misrouted-correction");
    teleport(TeleportBug::BrokenMirror, "broken-mirror");
    teleport(TeleportBug::WrongCondValue, "wrong-cond-value");
    qpe(QpeBug::WrongEigenstate, "wrong-eigenstate");
    qpe(QpeBug::FlippedPhase, "flipped-phase");
    qpe(QpeBug::WrongFeedback, "wrong-feedback");
    return out;
}

LocateConfig
sampledConfig(OracleMode oracle,
              Strategy strategy = Strategy::AdaptiveBinarySearch,
              unsigned num_threads = 0)
{
    LocateConfig cfg;
    cfg.strategy = strategy;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.numThreads = num_threads;
    cfg.oracleMode = oracle;
    return cfg;
}

void
expectLocalizes(const Fixture &fx, const LocalizationReport &report)
{
    ASSERT_TRUE(report.bugFound) << fx.name << ": " << report.summary();
    EXPECT_EQ(report.firstFailing, report.lastPassing + 1) << fx.name;
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << fx.name << ": " << report.summary();
}

/** The exact predicate's probability vector, densified per kind. */
std::vector<double>
densify(const BoundaryPredicate &pred, unsigned width)
{
    const std::size_t dim = std::size_t{1} << width;
    std::vector<double> probs(dim, 0.0);
    switch (pred.kind) {
      case assertions::AssertionKind::Classical:
        probs[pred.expectedValue] = 1.0;
        break;
      case assertions::AssertionKind::Superposition:
        std::fill(probs.begin(), probs.end(),
                  1.0 / static_cast<double>(dim));
        break;
      default:
        probs = pred.expectedProbs;
        break;
    }
    return probs;
}

// --- Sampled-vs-exact marginal agreement ------------------------------------

TEST(SampledOracle, MarginalsAgreeWithExactWithinConfidenceInterval)
{
    // On programs the exact oracle handles, every sampled boundary
    // marginal must sit within a binomial confidence half-width of
    // the exact mixture marginal (z = 4, plus one count of slack):
    // the estimator is unbiased and the trial budget is the only
    // noise source.
    struct Case
    {
        Circuit circ;
        std::string reg;
    };
    const Case cases[] = {
        {buildMeasuredTeleport(TeleportBug::None), "recv"},
        {buildSemiclassicalQpe(QpeBug::None), "anc"},
    };

    for (const Case &c : cases) {
        const QubitRegister reg = c.circ.reg(c.reg);

        OracleOptions exact_opts;
        exact_opts.mode = OracleMode::Exact;
        const PredicateOracle exact(c.circ, reg, 0x51c0ffee,
                                    exact_opts);
        ASSERT_FALSE(exact.sampled());

        OracleOptions sampled_opts;
        sampled_opts.mode = OracleMode::Sampled;
        const PredicateOracle sampled(c.circ, reg, 0x51c0ffee,
                                      sampled_opts);
        ASSERT_TRUE(sampled.sampled());
        ASSERT_EQ(sampled.trials(), 4096u);

        const double trials =
            static_cast<double>(sampled.trials());
        for (std::size_t b = 0; b <= c.circ.size(); ++b) {
            const auto exact_probs =
                densify(exact.at(b), reg.width());
            const auto &pred = sampled.at(b);
            ASSERT_EQ(pred.kind,
                      assertions::AssertionKind::Distribution);
            ASSERT_EQ(pred.referenceTrials, sampled.trials());
            ASSERT_EQ(pred.expectedProbs.size(), exact_probs.size());
            ASSERT_EQ(pred.referenceCounts.size(),
                      exact_probs.size());

            double total = 0.0;
            for (std::size_t v = 0; v < exact_probs.size(); ++v) {
                const double p = exact_probs[v];
                const double phat = pred.expectedProbs[v];
                const double half_width =
                    4.0 * std::sqrt(p * (1.0 - p) / trials) +
                    1.0 / trials;
                EXPECT_NEAR(phat, p, half_width)
                    << c.reg << " boundary " << b << " value " << v;
                EXPECT_EQ(pred.referenceCounts[v], phat * trials);
                total += pred.referenceCounts[v];
            }
            EXPECT_EQ(total, trials)
                << c.reg << " boundary " << b;
        }
    }
}

TEST(SampledOracle, ExactStaysTheDefaultOnNarrowPrograms)
{
    // Auto mode must not pay for sampling (or change any predicate)
    // when the exact derivation fits the cap.
    const Circuit circ = buildMeasuredTeleport(TeleportBug::None);
    const PredicateOracle oracle(circ, circ.reg("recv"));
    EXPECT_FALSE(oracle.sampled());
    EXPECT_EQ(oracle.trials(), 0u);
}

TEST(SampledOracle, DerivationIsDeterministicInTheSeed)
{
    const Circuit circ = buildSemiclassicalQpe(QpeBug::None);
    const QubitRegister anc = circ.reg("anc");

    OracleOptions opts;
    opts.mode = OracleMode::Sampled;
    const PredicateOracle a(circ, anc, 0x1234, opts);
    const PredicateOracle b(circ, anc, 0x1234, opts);

    ASSERT_EQ(a.entries().size(), b.entries().size());
    auto ita = a.entries().begin();
    auto itb = b.entries().begin();
    for (; ita != a.entries().end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        EXPECT_EQ(ita->second.expectedProbs,
                  itb->second.expectedProbs);
        EXPECT_EQ(ita->second.referenceCounts,
                  itb->second.referenceCounts);
    }
}

// --- Bracket identity on the taxonomy ---------------------------------------

TEST(SampledOracle, SampledBracketsMatchExactOnTaxonomyFixtures)
{
    // Forcing the sampled oracle on every fixture the exact oracle
    // handles must reproduce the exact bracket: 4096 reference
    // trajectories resolve every divergence the taxonomy's defects
    // produce.
    for (const Fixture &fx : taxonomyFixtures()) {
        const auto exact =
            BugLocator(fx.suspect, fx.reference,
                       sampledConfig(OracleMode::Exact))
                .locate();
        const auto sampled =
            BugLocator(fx.suspect, fx.reference,
                       sampledConfig(OracleMode::Sampled))
                .locate();
        expectLocalizes(fx, exact);
        expectLocalizes(fx, sampled);
        EXPECT_EQ(exact.lastPassing, sampled.lastPassing) << fx.name;
        EXPECT_EQ(exact.firstFailing, sampled.firstFailing)
            << fx.name;
    }
}

// --- The wide-measurement flagship ------------------------------------------

/** 13 rounds: 8192 outcome histories, past the 4096 branch cap. */
constexpr unsigned kWideRounds = 13;

Fixture
wideQpeFixture(QpeBug bug = QpeBug::FlippedPhase)
{
    Fixture fx;
    fx.name = "qpe-wide/t13";
    fx.suspect = buildSemiclassicalQpe(bug, kWideRounds);
    fx.reference = buildSemiclassicalQpe(QpeBug::None, kWideRounds);
    return fx;
}

TEST(WideMeasurement, ExactModeThrowsDeriveError)
{
    const Fixture fx = wideQpeFixture();
    const BugLocator locator(fx.suspect, fx.reference,
                             sampledConfig(OracleMode::Exact));
    try {
        locator.locate();
        FAIL() << "exact oracle past the branch cap must throw";
    } catch (const DeriveError &err) {
        EXPECT_NE(std::string(err.what()).find("exceeded its cap"),
                  std::string::npos)
            << err.what();
        EXPECT_NE(err.where().find("measure"), std::string::npos)
            << err.where();
    }
}

TEST(WideMeasurement, AutoFallsBackToSampledAndBracketsTheDefect)
{
    const Fixture fx = wideQpeFixture();
    const std::int64_t fallbacks0 =
        counterValue("locate.oracle.sampled_fallbacks");
    const std::int64_t trials0 =
        counterValue("locate.oracle.sampled_trials");

    const BugLocator locator(fx.suspect, fx.reference,
                             sampledConfig(OracleMode::Auto));
    const auto report = locator.locate();
    expectLocalizes(fx, report);

    EXPECT_GT(counterValue("locate.oracle.sampled_fallbacks"),
              fallbacks0)
        << "Auto mode never hit the sampled fallback";
    EXPECT_GT(counterValue("locate.oracle.sampled_trials"), trials0);
}

TEST(WideMeasurement, AdaptiveUsesFewerProbesThanLinearScan)
{
    const Fixture fx = wideQpeFixture();

    LocateConfig fast_cfg = sampledConfig(OracleMode::Auto);
    fast_cfg.staticPruning = false;
    const auto fast =
        BugLocator(fx.suspect, fx.reference, fast_cfg).locate();

    LocateConfig scan_cfg =
        sampledConfig(OracleMode::Auto, Strategy::LinearScan);
    scan_cfg.staticPruning = false;
    const auto scan =
        BugLocator(fx.suspect, fx.reference, scan_cfg).locate();

    expectLocalizes(fx, fast);
    expectLocalizes(fx, scan);
    EXPECT_LT(fast.probes.size(), scan.probes.size());
}

TEST(WideMeasurement, ThreadCountInvariant)
{
    // The sampled derivation is a single serial trajectory loop and
    // every ensemble trial keys its stream by trial index: the whole
    // localization — probed boundaries, ensemble sizes, p-values —
    // is bit-identical at 1, 4, and auto threads.
    const Fixture fx = wideQpeFixture();

    std::vector<LocalizationReport> reports;
    for (unsigned threads : {1u, 4u, 0u}) {
        const BugLocator locator(
            fx.suspect, fx.reference,
            sampledConfig(OracleMode::Sampled,
                          Strategy::AdaptiveBinarySearch, threads));
        reports.push_back(locator.locate());
    }
    const auto &a = reports.front();
    for (std::size_t r = 1; r < reports.size(); ++r) {
        const auto &b = reports[r];
        EXPECT_EQ(a.lastPassing, b.lastPassing);
        EXPECT_EQ(a.firstFailing, b.firstFailing);
        ASSERT_EQ(a.probes.size(), b.probes.size());
        for (std::size_t i = 0; i < a.probes.size(); ++i) {
            EXPECT_EQ(a.probes[i].boundary, b.probes[i].boundary);
            EXPECT_EQ(a.probes[i].ensembleSize,
                      b.probes[i].ensembleSize);
            EXPECT_EQ(a.probes[i].pValue, b.probes[i].pValue);
            EXPECT_EQ(a.probes[i].failed, b.probes[i].failed);
        }
    }
}

TEST(WideMeasurement, SeedInvariantBracket)
{
    const Fixture fx = wideQpeFixture();
    LocateConfig cfg = sampledConfig(OracleMode::Sampled);
    const auto a =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.seed = 0xfeedbeef;
    const auto b =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    EXPECT_EQ(a.lastPassing, b.lastPassing);
    EXPECT_EQ(a.firstFailing, b.firstFailing);
}

} // anonymous namespace
