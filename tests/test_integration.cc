/**
 * @file
 * Heavier cross-module integration tests: a 16-qubit Shor instance
 * beyond the paper's N = 15, the H2 dissociation curve through the
 * full chemistry stack, and end-to-end QASM export of the benchmark
 * programs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/grover.hh"
#include "algo/numtheory.hh"
#include "algo/shor.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "chem/eigen.hh"
#include "chem/h2.hh"
#include "circuit/executor.hh"
#include "circuit/qasm.hh"
#include "common/rng.hh"

namespace
{

using namespace qsa;

TEST(ShorLarge, FactorsTwentyOne)
{
    // N = 21, a = 2 (order 6): a 16-qubit circuit. Phase read-out at
    // 5 counting bits gives convergents identifying r = 6 often
    // enough that a handful of attempts factors 21 = 3 x 7.
    algo::ShorConfig config;
    config.n = 21;
    config.a = 2;
    config.upperBits = 5;

    // 5 counting + 5 lower + 6 helper + 1 flag.
    const auto prog = algo::buildShorProgram(config);
    EXPECT_EQ(prog.circuit.numQubits(), 17u);

    // Helper register must come back clean even at this size.
    const auto helper =
        assertions::exactMarginal(prog.circuit, "final", prog.helper);
    EXPECT_NEAR(helper[0], 1.0, 1e-6);

    // Classical post-processing over the exact output distribution:
    // at least a third of the probability mass yields the factors.
    const auto output =
        assertions::exactMarginal(prog.circuit, "final", prog.upper);
    double success_mass = 0.0;
    for (std::uint64_t m = 0; m < output.size(); ++m) {
        if (output[m] < 1e-9)
            continue;
        const auto factors =
            algo::shorPostprocess(m, config.upperBits, config.a,
                                  config.n);
        if (factors && factors->first * factors->second == 21)
            success_mass += output[m];
    }
    EXPECT_GT(success_mass, 0.3);
}

TEST(ShorLarge, RoadmapAssertionsScale)
{
    algo::ShorConfig config;
    config.n = 21;
    config.a = 2;
    config.upperBits = 3; // keep the ensemble checks quick

    const auto prog = algo::buildShorProgram(config);
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 64;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertClassical("init", prog.lower, 1);
    checker.assertSuperposition("superposed", prog.upper);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    checker.assertClassical("final", prog.helper, 0);
    for (const auto &o : checker.checkAll())
        EXPECT_TRUE(o.passed) << o.spec.name;
}

TEST(Chemistry, DissociationCurveHasMinimumNearEquilibrium)
{
    // FCI energies along the H2 curve: the equilibrium region must
    // beat both the compressed and stretched geometries.
    const double e_short =
        chem::groundStateEnergy(chem::buildH2Model(40.0).hamiltonian);
    const double e_eq =
        chem::groundStateEnergy(chem::buildH2Model(73.48).hamiltonian);
    const double e_long =
        chem::groundStateEnergy(chem::buildH2Model(150.0).hamiltonian);

    EXPECT_LT(e_eq, e_short);
    EXPECT_LT(e_eq, e_long);
}

TEST(Chemistry, DissociationLimitApproachesTwoHydrogenAtoms)
{
    // At large separation FCI tends to 2 x E(H, STO-3G) = 2 x
    // (-0.46658) = -0.93316 hartree; Hartree-Fock famously does not.
    const auto model = chem::buildH2Model(500.0);
    const double fci = chem::groundStateEnergy(model.hamiltonian);
    EXPECT_NEAR(fci, -0.93316, 2e-3);
    EXPECT_GT(model.hartreeFockEnergy, fci + 0.1); // HF fails here
}

TEST(Chemistry, CorrelationEnergyGrowsWithStretch)
{
    // |E_FCI - E_HF| increases monotonically along the curve.
    double prev = 0.0;
    for (double r_pm : {60.0, 100.0, 150.0, 250.0}) {
        const auto model = chem::buildH2Model(r_pm);
        const double corr = model.hartreeFockEnergy -
                            chem::groundStateEnergy(model.hamiltonian);
        EXPECT_GT(corr, prev) << "R = " << r_pm;
        prev = corr;
    }
}

TEST(QasmExport, BenchmarkProgramsSerialise)
{
    // The Shor and Grover programs round-trip through the QASM
    // dialect with identical text on re-emission.
    const auto shor = algo::buildShorProgram(algo::ShorConfig());
    const std::string shor_text = circuit::toQasm(shor.circuit);
    EXPECT_EQ(circuit::toQasm(circuit::fromQasm(shor_text)),
              shor_text);

    algo::GroverConfig gconf;
    const auto grover = algo::buildGroverProgram(gconf);
    const std::string grover_text = circuit::toQasm(grover.circuit);
    EXPECT_EQ(circuit::toQasm(circuit::fromQasm(grover_text)),
              grover_text);
}

TEST(QasmExport, ParsedShorStillFactorsFifteen)
{
    // Full pipeline: build -> serialise -> parse -> simulate.
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    const auto parsed =
        circuit::fromQasm(circuit::toQasm(prog.circuit));

    Rng rng(77);
    bool factored = false;
    for (int attempt = 0; attempt < 8 && !factored; ++attempt) {
        const auto rec = circuit::runCircuit(parsed, rng);
        const auto f = algo::shorPostprocess(
            rec.measurements.at("output"), 3, 7, 15);
        factored = f.has_value() && f->first * f->second == 15;
    }
    EXPECT_TRUE(factored);
}

} // anonymous namespace
