/**
 * @file
 * Property-based tests over randomised inputs.
 *
 * The centrepiece is the dense reference simulator: each random
 * circuit is also executed by building its full 2^n x 2^n unitary
 * column by column through an independent code path and applying it
 * with dense algebra. This stands in for the paper's cross-language
 * validation against LIQUi|>, ProjectQ, and Q# (Section 3.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "assertions/checker.hh"
#include "chem/pauli.hh"
#include "circuit/executor.hh"
#include "circuit/qasm.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "sim/gates.hh"
#include "stats/chi2.hh"

namespace
{

using namespace qsa;
using qsa::circuit::Circuit;
using qsa::circuit::GateKind;

/** Append a random unitary instruction drawn from the full gate set. */
void
appendRandomGate(Circuit &circ, Rng &rng, unsigned n)
{
    const unsigned pick = rng.uniformInt(12);
    const unsigned q = rng.uniformInt(n);
    const double angle = (rng.uniform() - 0.5) * 4.0 * M_PI;

    auto other = [&](unsigned avoid) {
        unsigned o;
        do {
            o = rng.uniformInt(n);
        } while (o == avoid);
        return o;
    };

    switch (pick) {
      case 0: circ.h(q); break;
      case 1: circ.x(q); break;
      case 2: circ.y(q); break;
      case 3: circ.z(q); break;
      case 4: circ.s(q); break;
      case 5: circ.t(q); break;
      case 6: circ.rx(q, angle); break;
      case 7: circ.ry(q, angle); break;
      case 8: circ.rz(q, angle); break;
      case 9: circ.phase(q, angle); break;
      case 10:
        if (n >= 2)
            circ.cnot(other(q), q);
        else
            circ.h(q);
        break;
      default:
        if (n >= 2)
            circ.cphase(other(q), q, angle);
        else
            circ.phase(q, angle);
        break;
    }
}

/** Build a random unitary circuit. */
Circuit
randomCircuit(std::uint64_t seed, unsigned n, unsigned gates)
{
    Rng rng(seed);
    Circuit circ(n);
    for (unsigned g = 0; g < gates; ++g)
        appendRandomGate(circ, rng, n);
    return circ;
}

/** Dense unitary of a circuit, built through the dense code path. */
sim::CMatrix
denseUnitary(const Circuit &circ, unsigned n)
{
    const std::uint64_t dim = pow2(n);
    sim::CMatrix u(dim);
    for (std::uint64_t col = 0; col < dim; ++col) {
        sim::StateVector state(n);
        state.setBasisState(col);
        std::map<std::string, std::uint64_t> meas;
        Rng rng(1);
        circuit::runCircuitOn(circ, state, meas, rng);
        for (std::uint64_t row = 0; row < dim; ++row)
            u.at(row, col) = state.amp(row);
    }
    return u;
}

class RandomSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomSeeds, InverseCancelsCircuit)
{
    const unsigned n = 4;
    const Circuit circ = randomCircuit(GetParam(), n, 40);

    Circuit round(n);
    round.appendCircuit(circ);
    round.appendCircuit(circ.inverse());

    Rng rng(7);
    const auto rec = circuit::runCircuit(round, rng);
    EXPECT_NEAR(std::abs(rec.state.amp(0)), 1.0, 1e-9);
}

TEST_P(RandomSeeds, CircuitUnitaryIsUnitary)
{
    const unsigned n = 3;
    const Circuit circ = randomCircuit(GetParam(), n, 25);
    EXPECT_TRUE(denseUnitary(circ, n).isUnitary(1e-8));
}

TEST_P(RandomSeeds, DenseReferenceMatchesSimulator)
{
    // Cross-validation: fast simulator vs dense matrix application on
    // a random input state.
    const unsigned n = 4;
    const Circuit circ = randomCircuit(GetParam(), n, 30);
    const auto u = denseUnitary(circ, n);

    // Random product input state.
    Rng rng(GetParam() ^ 0xfeed);
    sim::StateVector fast(n);
    std::vector<sim::Complex> dense(pow2(n), 0.0);
    dense[0] = 1.0;
    for (unsigned q = 0; q < n; ++q) {
        const double theta = rng.uniform() * M_PI;
        fast.applyGate(sim::gates::ry(theta), q);
        // Mirror with dense algebra.
        sim::CMatrix ry2 = sim::CMatrix::fromMat2(
            sim::gates::ry(theta));
        sim::CMatrix full = sim::CMatrix::identity(1);
        for (unsigned k = n; k-- > 0;) {
            full = full.kron(k == q ? ry2 : sim::CMatrix::identity(2));
        }
        dense = full.apply(dense);
    }

    std::map<std::string, std::uint64_t> meas;
    Rng rng2(1);
    circuit::runCircuitOn(circ, fast, meas, rng2);
    dense = u.apply(dense);

    for (std::uint64_t i = 0; i < pow2(n); ++i) {
        EXPECT_NEAR(std::abs(fast.amp(i) - dense[i]), 0.0, 1e-8)
            << "amplitude " << i;
    }
}

TEST_P(RandomSeeds, QasmRoundTripPreservesUnitary)
{
    const unsigned n = 3;
    const Circuit circ = randomCircuit(GetParam(), n, 20);
    const Circuit parsed = circuit::fromQasm(circuit::toQasm(circ));
    EXPECT_LT(denseUnitary(circ, n).distance(denseUnitary(parsed, n)),
              1e-9);
}

TEST_P(RandomSeeds, ControlledWrapMatchesDenseControl)
{
    // appendControlled(circ, {ctrl}) == dense controlled unitary.
    const unsigned n = 3; // circuit acts on qubits 0..2, control = 3
    const Circuit base = randomCircuit(GetParam(), n, 15);

    Circuit wrapped(n + 1);
    wrapped.appendControlled(base, {n});

    // Dense: controlled() prepends the control as the high bit, which
    // matches qubit index n being the control.
    const auto u_controlled = denseUnitary(base, n).controlled();
    const auto u_wrapped = denseUnitary(wrapped, n + 1);
    EXPECT_LT(u_wrapped.distance(u_controlled), 1e-8);
}

TEST_P(RandomSeeds, PhiAddRandomOperands)
{
    Rng rng(GetParam());
    const unsigned width = 2 + rng.uniformInt(4); // 2..5
    const std::uint64_t a = rng.uniformInt(pow2(width));
    const std::uint64_t b_val = rng.uniformInt(pow2(width));

    Circuit circ;
    const auto b = circ.addRegister("b", width);
    circ.prepRegister(b, b_val);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, a);
    algo::iqft(circ, b);
    circ.measure(b, "b");

    Rng run_rng(3);
    EXPECT_EQ(circuit::runCircuit(circ, run_rng).measurements.at("b"),
              (a + b_val) & lowMask(width));
}

TEST_P(RandomSeeds, ModularAdderRandomOperands)
{
    Rng rng(GetParam());
    const std::uint64_t n_mod = 3 + rng.uniformInt(13); // 3..15
    const unsigned n_bits = bitWidth(n_mod);
    const std::uint64_t a = rng.uniformInt(n_mod);
    const std::uint64_t b_val = rng.uniformInt(n_mod);

    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 2);
    const auto b = circ.addRegister("b", n_bits + 1);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 3);
    circ.prepRegister(b, b_val);
    circ.prepRegister(anc, 0);
    algo::qft(circ, b);
    algo::phiAddModN(circ, b, a, n_mod, anc[0], {ctrl[0], ctrl[1]});
    algo::iqft(circ, b);
    circ.measure(b, "b");
    circ.measure(anc, "anc");

    Rng run_rng(5);
    const auto rec = circuit::runCircuit(circ, run_rng);
    EXPECT_EQ(rec.measurements.at("b"), (a + b_val) % n_mod)
        << "a=" << a << " b=" << b_val << " N=" << n_mod;
    EXPECT_EQ(rec.measurements.at("anc"), 0u);
}

TEST_P(RandomSeeds, PauliAlgebraAssociativeAndDistributive)
{
    Rng rng(GetParam());
    auto random_op = [&](unsigned terms) {
        chem::PauliOperator op(3);
        for (unsigned t = 0; t < terms; ++t) {
            op = op.add(chem::PauliOperator::term(
                3, rng.uniformInt(8), rng.uniformInt(8),
                sim::Complex(rng.uniform() - 0.5,
                             rng.uniform() - 0.5)));
        }
        return op;
    };
    const auto a = random_op(3), b = random_op(3), c = random_op(2);

    // (ab)c == a(bc)
    const auto lhs = a.mul(b).mul(c);
    const auto rhs = a.mul(b.mul(c));
    EXPECT_LT(lhs.add(rhs.scale(-1.0)).pruned(1e-10).size(), 1u);

    // a(b + c) == ab + ac
    const auto dist_l = a.mul(b.add(c));
    const auto dist_r = a.mul(b).add(a.mul(c));
    EXPECT_LT(dist_l.add(dist_r.scale(-1.0)).pruned(1e-10).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeeds,
                         ::testing::Values(11ull, 23ull, 37ull, 59ull,
                                           71ull, 97ull, 113ull,
                                           131ull));

// --- Statistical calibration ---------------------------------------------------

TEST(Calibration, Chi2FalsePositiveRateNearAlpha)
{
    // Under the null (truly uniform data) the chi-square test should
    // reject at roughly the significance level.
    Rng rng(2718);
    const int trials = 400;
    const std::size_t bins = 8, m = 160;
    int rejections = 0;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> counts(bins, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            counts[rng.uniformInt(bins)] += 1.0;
        const auto res = stats::chiSquareGof(
            counts, stats::uniformExpected(bins, m));
        rejections += res.pValue <= 0.05;
    }
    const double rate = (double)rejections / trials;
    EXPECT_GT(rate, 0.01);
    EXPECT_LT(rate, 0.11);
}

TEST(Calibration, PValuesRoughlyUniformUnderNull)
{
    // Kolmogorov-style coarse check: under the null, p-values land in
    // each third of [0,1] with roughly equal frequency.
    Rng rng(314159);
    const int trials = 600;
    const std::size_t bins = 6, m = 120;
    int low = 0, mid = 0, high = 0;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> counts(bins, 0.0);
        for (std::size_t i = 0; i < m; ++i)
            counts[rng.uniformInt(bins)] += 1.0;
        const double p =
            stats::chiSquareGof(counts,
                                stats::uniformExpected(bins, m))
                .pValue;
        if (p < 1.0 / 3.0)
            ++low;
        else if (p < 2.0 / 3.0)
            ++mid;
        else
            ++high;
    }
    EXPECT_NEAR(low / (double)trials, 1.0 / 3.0, 0.1);
    EXPECT_NEAR(mid / (double)trials, 1.0 / 3.0, 0.1);
    EXPECT_NEAR(high / (double)trials, 1.0 / 3.0, 0.1);
}

TEST(Calibration, EntangledAssertionFalseNegativeRateSmall)
{
    // On a true Bell pair at M = 64, the entanglement assertion
    // should essentially never miss.
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.breakpoint("bp");
    const auto q0 = q.slice(0, 1, "q0");
    const auto q1 = q.slice(1, 1, "q1");

    int misses = 0;
    for (unsigned t = 0; t < 50; ++t) {
        assertions::CheckConfig cfg;
        cfg.ensembleSize = 64;
        cfg.seed = 9000 + t;
        assertions::AssertionChecker checker(circ, cfg);
        checker.assertEntangled("bp", q0, q1);
        misses += !checker.check(checker.assertions()[0]).passed;
    }
    EXPECT_EQ(misses, 0);
}

} // anonymous namespace
