/**
 * @file
 * Tests for the statistical assertion checker: the four assertion
 * types against known-good and known-bad states, both ensemble modes,
 * exact inspection helpers, and the paper's quoted p-values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/bell.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"

namespace
{

using namespace qsa;
using namespace qsa::assertions;
using qsa::circuit::Circuit;
using qsa::circuit::QubitRegister;

/** Bell program plus registers for the two halves. */
struct BellFixture
{
    Circuit circ = algo::buildBellProgram();
    QubitRegister q0 = circ.reg("q").slice(0, 1, "q0");
    QubitRegister q1 = circ.reg("q").slice(1, 1, "q1");
};

TEST(Checker, ClassicalPassesOnPreparedValue)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 0);
    const auto outcomes = checker.checkAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].passed);
    EXPECT_NEAR(outcomes[0].pValue, 1.0, 1e-9);
}

TEST(Checker, ClassicalFailsOnWrongValue)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 3);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
    EXPECT_TRUE(o.impossibleOutcome);
}

TEST(Checker, ClassicalFailsOnSuperposedState)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    // After the H the state is no longer classical 0.
    checker.assertClassical("superposition", f.q0, 0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

TEST(Checker, SuperpositionPassesAfterH)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertSuperposition("superposition", f.q0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_GT(o.pValue, 0.05);
}

TEST(Checker, SuperpositionFailsOnClassicalState)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertSuperposition("classical", f.circ.reg("q"));
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_LT(o.pValue, 1e-6);
}

TEST(Checker, EntangledDetectsBellPair)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_LE(o.pValue, 0.05);
    EXPECT_GT(o.cramersV, 0.9);
}

TEST(Checker, EntangledFailsBeforeCnot)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    // After only the H the qubits are independent.
    checker.assertEntangled("superposition", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_GT(o.pValue, 0.05);
}

TEST(Checker, ProductPassesBeforeCnot)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertProduct("superposition", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
}

TEST(Checker, ProductFailsOnBellPair)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertProduct("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_LE(o.pValue, 0.05);
}

TEST(Checker, PaperQuotedBellPValueAtEnsemble16)
{
    // Section 4.4: a perfectly correlated 2x2 table at ensemble size
    // 16 yields p ~ 0.0005 with the Yates correction. Finite samples
    // occasionally split 7/9, so accept the small family of exact
    // Yates p-values near it.
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 16;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_LT(o.pValue, 0.005);
}

TEST(Checker, ResimulateModeMatchesSampling)
{
    BellFixture f;

    CheckConfig fast;
    fast.mode = EnsembleMode::SampleFinalState;
    CheckConfig slow;
    slow.mode = EnsembleMode::Resimulate;
    slow.ensembleSize = fast.ensembleSize = 128;

    for (const auto &cfg : {fast, slow}) {
        AssertionChecker checker(f.circ, cfg);
        checker.assertEntangled("entangled", f.q0, f.q1);
        checker.assertClassical("classical", f.circ.reg("q"), 0);
        checker.assertSuperposition("superposition", f.q0);
        const auto outcomes = checker.checkAll();
        EXPECT_TRUE(allPassed(outcomes));
    }
}

TEST(Checker, GTestModeWorks)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.useGTest = true;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    checker.assertProduct("superposition", f.q0, f.q1);
    EXPECT_TRUE(allPassed(checker.checkAll()));
}

TEST(Checker, UnknownBreakpointRejected)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    EXPECT_EXIT(
        checker.assertClassical("nope", f.q0, 0),
        ::testing::ExitedWithCode(1), "no breakpoint");
}

TEST(Checker, GatherEnsembleShape)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 64;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto pairs =
        checker.gatherEnsemble(checker.assertions()[0]);
    EXPECT_EQ(pairs.size(), 64u);
    for (const auto &[a, b] : pairs)
        EXPECT_EQ(a, b); // Bell: perfectly correlated
}

TEST(Checker, DeterministicAcrossRuns)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.seed = 1234;
    AssertionChecker c1(f.circ, cfg), c2(f.circ, cfg);
    c1.assertEntangled("entangled", f.q0, f.q1);
    c2.assertEntangled("entangled", f.q0, f.q1);
    const auto o1 = c1.check(c1.assertions()[0]);
    const auto o2 = c2.check(c2.assertions()[0]);
    EXPECT_EQ(o1.pValue, o2.pValue);
    EXPECT_EQ(o1.statistic, o2.statistic);
}

// --- Exact inspection ------------------------------------------------------

TEST(Exact, MarginalBellHalves)
{
    BellFixture f;
    const auto probs = exactMarginal(f.circ, "entangled", f.q0);
    ASSERT_EQ(probs.size(), 2u);
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.5, 1e-12);
}

TEST(Exact, JointBellDistribution)
{
    BellFixture f;
    const auto joint = exactJoint(f.circ, "entangled", f.q0, f.q1);
    EXPECT_NEAR(joint[0][0], 0.5, 1e-12);
    EXPECT_NEAR(joint[1][1], 0.5, 1e-12);
    EXPECT_NEAR(joint[0][1], 0.0, 1e-12);
    EXPECT_NEAR(joint[1][0], 0.0, 1e-12);
}

TEST(Exact, PurityTracksEntanglement)
{
    BellFixture f;
    EXPECT_NEAR(exactPurity(f.circ, "superposition", f.q0), 1.0, 1e-12);
    EXPECT_NEAR(exactPurity(f.circ, "entangled", f.q0), 0.5, 1e-12);
}

TEST(Exact, MutualInformationBell)
{
    BellFixture f;
    EXPECT_NEAR(exactMutualInformation(f.circ, "entangled", f.q0, f.q1),
                1.0, 1e-9); // one full bit
    EXPECT_NEAR(exactMutualInformation(f.circ, "superposition", f.q0,
                                       f.q1),
                0.0, 1e-9);
}

// --- Reports ----------------------------------------------------------------

TEST(Report, RendersVerdicts)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 0);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto outcomes = checker.checkAll();
    const std::string report = renderReport(outcomes);
    EXPECT_NE(report.find("classical"), std::string::npos);
    EXPECT_NE(report.find("PASS"), std::string::npos);
    EXPECT_NE(report.find("p-value"), std::string::npos);

    const std::string line = renderOutcomeLine(outcomes[0]);
    EXPECT_NE(line.find("PASS"), std::string::npos);
}

TEST(Report, AllPassedFalseOnFailure)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 2); // wrong
    EXPECT_FALSE(allPassed(checker.checkAll()));
}

// --- GHZ generalisation -----------------------------------------------------

class GhzWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GhzWidths, EntanglementDetectedAtEveryWidth)
{
    const unsigned width = GetParam();
    Circuit circ;
    const auto q = circ.addRegister("q", width);
    algo::appendGhz(circ, q);
    circ.breakpoint("done");

    const auto half_a = q.slice(0, width / 2, "a");
    const auto half_b =
        q.slice(width / 2, width - width / 2, "b");

    AssertionChecker checker(circ);
    checker.assertEntangled("done", half_a, half_b);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed) << "width " << width;

    EXPECT_NEAR(exactPurity(circ, "done", half_a), 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, GhzWidths,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

} // anonymous namespace
