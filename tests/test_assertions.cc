/**
 * @file
 * Tests for the statistical assertion checker: the four assertion
 * types against known-good and known-bad states, both ensemble modes,
 * exact inspection helpers, and the paper's quoted p-values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/bell.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"

namespace
{

using namespace qsa;
using namespace qsa::assertions;
using qsa::circuit::Circuit;
using qsa::circuit::QubitRegister;

/** Bell program plus registers for the two halves. */
struct BellFixture
{
    Circuit circ = algo::buildBellProgram();
    QubitRegister q0 = circ.reg("q").slice(0, 1, "q0");
    QubitRegister q1 = circ.reg("q").slice(1, 1, "q1");
};

TEST(Checker, ClassicalPassesOnPreparedValue)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 0);
    const auto outcomes = checker.checkAll();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].passed);
    EXPECT_NEAR(outcomes[0].pValue, 1.0, 1e-9);
}

TEST(Checker, ClassicalFailsOnWrongValue)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 3);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
    EXPECT_TRUE(o.impossibleOutcome);
}

TEST(Checker, ClassicalFailsOnSuperposedState)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    // After the H the state is no longer classical 0.
    checker.assertClassical("superposition", f.q0, 0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

TEST(Checker, SuperpositionPassesAfterH)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertSuperposition("superposition", f.q0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_GT(o.pValue, 0.05);
}

TEST(Checker, SuperpositionFailsOnClassicalState)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertSuperposition("classical", f.circ.reg("q"));
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_LT(o.pValue, 1e-6);
}

TEST(Checker, EntangledDetectsBellPair)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_LE(o.pValue, 0.05);
    EXPECT_GT(o.cramersV, 0.9);
}

TEST(Checker, EntangledFailsBeforeCnot)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    // After only the H the qubits are independent.
    checker.assertEntangled("superposition", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_GT(o.pValue, 0.05);
}

TEST(Checker, ProductPassesBeforeCnot)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertProduct("superposition", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
}

TEST(Checker, ProductFailsOnBellPair)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertProduct("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_LE(o.pValue, 0.05);
}

TEST(Checker, PaperQuotedBellPValueAtEnsemble16)
{
    // Section 4.4: a perfectly correlated 2x2 table at ensemble size
    // 16 yields p ~ 0.0005 with the Yates correction. Finite samples
    // occasionally split 7/9, so accept the small family of exact
    // Yates p-values near it.
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 16;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_LT(o.pValue, 0.005);
}

TEST(Checker, ResimulateModeMatchesSampling)
{
    BellFixture f;

    CheckConfig fast;
    fast.mode = EnsembleMode::SampleFinalState;
    CheckConfig slow;
    slow.mode = EnsembleMode::Resimulate;
    slow.ensembleSize = fast.ensembleSize = 128;

    for (const auto &cfg : {fast, slow}) {
        AssertionChecker checker(f.circ, cfg);
        checker.assertEntangled("entangled", f.q0, f.q1);
        checker.assertClassical("classical", f.circ.reg("q"), 0);
        checker.assertSuperposition("superposition", f.q0);
        const auto outcomes = checker.checkAll();
        EXPECT_TRUE(allPassed(outcomes));
    }
}

TEST(Checker, GTestModeWorks)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.useGTest = true;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    checker.assertProduct("superposition", f.q0, f.q1);
    EXPECT_TRUE(allPassed(checker.checkAll()));
}

TEST(Checker, UnknownBreakpointRejected)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    EXPECT_EXIT(
        checker.assertClassical("nope", f.q0, 0),
        ::testing::ExitedWithCode(1), "no breakpoint");
}

TEST(Checker, GatherEnsembleShape)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 64;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto pairs =
        checker.gatherEnsemble(checker.assertions()[0]);
    EXPECT_EQ(pairs.size(), 64u);
    for (const auto &[a, b] : pairs)
        EXPECT_EQ(a, b); // Bell: perfectly correlated
}

TEST(Checker, DeterministicAcrossRuns)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.seed = 1234;
    AssertionChecker c1(f.circ, cfg), c2(f.circ, cfg);
    c1.assertEntangled("entangled", f.q0, f.q1);
    c2.assertEntangled("entangled", f.q0, f.q1);
    const auto o1 = c1.check(c1.assertions()[0]);
    const auto o2 = c2.check(c2.assertions()[0]);
    EXPECT_EQ(o1.pValue, o2.pValue);
    EXPECT_EQ(o1.statistic, o2.statistic);
}

// --- Exact inspection ------------------------------------------------------

TEST(Exact, MarginalBellHalves)
{
    BellFixture f;
    const auto probs = exactMarginal(f.circ, "entangled", f.q0);
    ASSERT_EQ(probs.size(), 2u);
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.5, 1e-12);
}

TEST(Exact, JointBellDistribution)
{
    BellFixture f;
    const auto joint = exactJoint(f.circ, "entangled", f.q0, f.q1);
    EXPECT_NEAR(joint[0][0], 0.5, 1e-12);
    EXPECT_NEAR(joint[1][1], 0.5, 1e-12);
    EXPECT_NEAR(joint[0][1], 0.0, 1e-12);
    EXPECT_NEAR(joint[1][0], 0.0, 1e-12);
}

TEST(Exact, PurityTracksEntanglement)
{
    BellFixture f;
    EXPECT_NEAR(exactPurity(f.circ, "superposition", f.q0), 1.0, 1e-12);
    EXPECT_NEAR(exactPurity(f.circ, "entangled", f.q0), 0.5, 1e-12);
}

TEST(Exact, MutualInformationBell)
{
    BellFixture f;
    EXPECT_NEAR(exactMutualInformation(f.circ, "entangled", f.q0, f.q1),
                1.0, 1e-9); // one full bit
    EXPECT_NEAR(exactMutualInformation(f.circ, "superposition", f.q0,
                                       f.q1),
                0.0, 1e-9);
}

// --- Reports ----------------------------------------------------------------

TEST(Report, RendersVerdicts)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 0);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto outcomes = checker.checkAll();
    const std::string report = renderReport(outcomes);
    EXPECT_NE(report.find("classical"), std::string::npos);
    EXPECT_NE(report.find("PASS"), std::string::npos);
    EXPECT_NE(report.find("p-value"), std::string::npos);

    const std::string line = renderOutcomeLine(outcomes[0]);
    EXPECT_NE(line.find("PASS"), std::string::npos);
}

TEST(Report, AllPassedFalseOnFailure)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 2); // wrong
    EXPECT_FALSE(allPassed(checker.checkAll()));
}

// --- GHZ generalisation -----------------------------------------------------

class GhzWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GhzWidths, EntanglementDetectedAtEveryWidth)
{
    const unsigned width = GetParam();
    Circuit circ;
    const auto q = circ.addRegister("q", width);
    algo::appendGhz(circ, q);
    circ.breakpoint("done");

    const auto half_a = q.slice(0, width / 2, "a");
    const auto half_b =
        q.slice(width / 2, width - width / 2, "b");

    AssertionChecker checker(circ);
    checker.assertEntangled("done", half_a, half_b);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed) << "width " << width;

    EXPECT_NEAR(exactPurity(circ, "done", half_a), 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, GhzWidths,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

// --- Spec validation at registration time ------------------------------------

TEST(SpecValidation, OutOfDomainClassicalValueRejected)
{
    // Registration must reject the value, not panic later inside
    // stats::pointMassExpected mid-check.
    BellFixture f;
    AssertionChecker checker(f.circ);
    EXPECT_EXIT(checker.assertClassical("classical", f.q0, 2),
                ::testing::ExitedWithCode(1),
                "outside the register domain");
    EXPECT_EXIT(checker.assertClassical("classical", f.circ.reg("q"), 4),
                ::testing::ExitedWithCode(1),
                "outside the register domain");
    // The top of the domain is still accepted.
    checker.assertClassical("classical", f.circ.reg("q"), 3);
    EXPECT_EQ(checker.assertions().size(), 1u);
}

TEST(SpecValidation, UniformSubsetErrorPathConsistent)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    EXPECT_EXIT(checker.assertUniformSubset("classical", f.q0, {2}),
                ::testing::ExitedWithCode(1),
                "outside the register domain");
}

TEST(SpecValidation, DistributionShapeRejectedAtRegistration)
{
    // Matching the Classical treatment: malformed expectedProbs die
    // at registration, not later inside the chi-square machinery.
    BellFixture f;
    AssertionChecker checker(f.circ);

    // Wrong length: a 1-qubit register needs exactly 2 entries.
    EXPECT_EXIT(checker.assertDistribution("classical", f.q0,
                                           {0.5, 0.25, 0.25}),
                ::testing::ExitedWithCode(1), "2\\^width entries");
    EXPECT_EXIT(checker.assertDistribution("classical", f.q0, {1.0}),
                ::testing::ExitedWithCode(1), "2\\^width entries");

    // Not a probability vector.
    EXPECT_EXIT(checker.assertDistribution("classical", f.q0,
                                           {0.7, 0.7}),
                ::testing::ExitedWithCode(1), "must sum to 1");
    EXPECT_EXIT(checker.assertDistribution("classical", f.q0,
                                           {-0.5, 1.5}),
                ::testing::ExitedWithCode(1), "negative probability");
    const double nan = std::nan("");
    EXPECT_EXIT(checker.assertDistribution("classical", f.q0,
                                           {nan, 1.0}),
                ::testing::ExitedWithCode(1), "non-finite");

    // A well-formed vector (within the 1e-6 sum tolerance) registers.
    checker.assertDistribution("classical", f.q0,
                               {0.5 + 4e-7, 0.5});
    EXPECT_EQ(checker.assertions().size(), 1u);
}

TEST(SpecValidation, FreeValidatorsShareTheCheckerSemantics)
{
    // validateSpecShape / validateSpec are the registration gate the
    // session facade uses; they must agree with the checker's.
    BellFixture f;
    AssertionSpec spec;
    spec.kind = AssertionKind::Distribution;
    spec.breakpoint = "classical";
    spec.regA = f.q0;
    spec.expectedProbs = {0.5, 0.5};
    validateSpecShape(spec);          // well-formed: no exit
    validateSpec(f.circ, spec);       // breakpoint exists: no exit

    spec.expectedProbs = {0.25, 0.25, 0.25, 0.25};
    EXPECT_EXIT(validateSpecShape(spec), ::testing::ExitedWithCode(1),
                "2\\^width entries");

    spec.expectedProbs = {0.5, 0.5};
    spec.breakpoint = "missing";
    EXPECT_EXIT(validateSpec(f.circ, spec),
                ::testing::ExitedWithCode(1),
                "no breakpoint labelled");
}

// --- Holm-Bonferroni family-wise control -------------------------------------

/** Synthetic outcome with a chosen p-value. */
AssertionOutcome
syntheticOutcome(double p, AssertionKind kind, double alpha = 0.05)
{
    AssertionOutcome out;
    out.spec.kind = kind;
    out.spec.alpha = alpha;
    out.pValue = p;
    out.effectiveAlpha = alpha;
    if (kind == AssertionKind::Entangled)
        out.passed = p <= alpha;
    else
        out.passed = p > alpha;
    return out;
}

TEST(HolmBonferroni, StepDownOrdering)
{
    // p = {0.01, 0.04, 0.04, 0.9} at alpha 0.05: rank 0 clears
    // 0.05/4 = 0.0125, rank 1 misses 0.05/3, and the step-down stops
    // — naive per-assertion alpha would have rejected three.
    std::vector<AssertionOutcome> outcomes{
        syntheticOutcome(0.04, AssertionKind::Classical),
        syntheticOutcome(0.9, AssertionKind::Classical),
        syntheticOutcome(0.01, AssertionKind::Classical),
        syntheticOutcome(0.04, AssertionKind::Classical),
    };
    EXPECT_EQ(applyHolmBonferroni(outcomes), 1u);
    EXPECT_TRUE(outcomes[0].passed);  // retained by the step-down
    EXPECT_TRUE(outcomes[1].passed);
    EXPECT_FALSE(outcomes[2].passed); // the one true rejection
    EXPECT_TRUE(outcomes[3].passed);
    EXPECT_NEAR(outcomes[2].effectiveAlpha, 0.05 / 4, 1e-12);
    EXPECT_NEAR(outcomes[1].effectiveAlpha, 0.05 / 1, 1e-12);
}

TEST(HolmBonferroni, EntangledSemanticsInverted)
{
    // For Entangled assertions rejection of independence is the
    // *passing* verdict: entanglement claims that squeak under the
    // naive per-assertion alpha no longer clear the corrected bar.
    std::vector<AssertionOutcome> outcomes{
        syntheticOutcome(0.03, AssertionKind::Entangled),
        syntheticOutcome(0.04, AssertionKind::Entangled),
    };
    EXPECT_TRUE(outcomes[0].passed); // naively significant...
    EXPECT_EQ(applyHolmBonferroni(outcomes), 0u);
    EXPECT_FALSE(outcomes[0].passed); // 0.03 > 0.05/2: step-down stops
    EXPECT_FALSE(outcomes[1].passed);
}

TEST(HolmBonferroni, CheckAllAppliesWhenConfigured)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.holmBonferroni = true;
    AssertionChecker checker(f.circ, cfg);
    checker.assertClassical("classical", f.circ.reg("q"), 0);
    checker.assertEntangled("entangled", f.q0, f.q1);
    const auto outcomes = checker.checkAll();
    EXPECT_TRUE(allPassed(outcomes));
    // The step-down thresholds were recorded: the smaller p-value was
    // adjudicated against alpha / 2.
    const double lo = std::min(outcomes[0].effectiveAlpha,
                               outcomes[1].effectiveAlpha);
    EXPECT_NEAR(lo, 0.05 / 2, 1e-12);
}

// --- Sequential-testing escalation hook --------------------------------------

TEST(Escalation, DecisiveVerdictStopsAtInitialSize)
{
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertClassical("classical", f.circ.reg("q"), 0);

    EscalationPolicy policy;
    policy.initialSize = 32;
    policy.maxSize = 1024;
    const auto out =
        checker.checkEscalated(checker.assertions()[0], policy);
    EXPECT_TRUE(out.passed);
    EXPECT_EQ(out.ensembleSize, 32u); // p = 1: no escalation needed
}

TEST(Escalation, CapMatchesPlainCheckBitIdentically)
{
    BellFixture f;
    CheckConfig cfg;
    cfg.ensembleSize = 128;
    AssertionChecker checker(f.circ, cfg);
    checker.assertEntangled("entangled", f.q0, f.q1);

    EscalationPolicy policy;
    policy.initialSize = 128;
    policy.maxSize = 128;
    const auto escalated =
        checker.checkEscalated(checker.assertions()[0], policy);
    const auto plain = checker.check(checker.assertions()[0]);
    EXPECT_EQ(escalated.pValue, plain.pValue);
    EXPECT_EQ(escalated.statistic, plain.statistic);
    EXPECT_EQ(escalated.ensembleSize, plain.ensembleSize);
}

TEST(Escalation, UnderpoweredEntangledAssertionEscalates)
{
    // An entangled assertion passes by *rejecting* independence; a
    // tiny ensemble cannot reject at a strict alpha, so escalation
    // must keep growing the ensemble until the correlation shows
    // instead of declaring failure from weak evidence.
    BellFixture f;
    AssertionChecker checker(f.circ);
    checker.assertEntangled("entangled", f.q0, f.q1, 0.001);

    EscalationPolicy policy;
    policy.initialSize = 8;
    policy.maxSize = 1024;
    const auto out =
        checker.checkEscalated(checker.assertions()[0], policy);
    EXPECT_TRUE(out.passed);
    EXPECT_GT(out.ensembleSize, 8u);
}

TEST(Escalation, InconclusiveProbeGrowsTheEnsemble)
{
    // A distribution hypothesis mildly off the true one: small
    // ensembles land in the inconclusive band and escalate; the
    // final verdict is decisive or at the cap, and deterministic.
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    circ.h(q[0]);
    circ.breakpoint("bp");

    AssertionChecker checker(circ);
    AssertionSpec spec;
    spec.kind = AssertionKind::Distribution;
    spec.breakpoint = "bp";
    spec.regA = q;
    spec.expectedProbs = {0.38, 0.62}; // truth is {0.5, 0.5}
    spec.alpha = 0.01;

    EscalationPolicy policy;
    policy.initialSize = 64;
    policy.maxSize = 4096;
    const auto out = checker.checkEscalated(spec, policy);
    EXPECT_GT(out.ensembleSize, 64u);
    EXPECT_TRUE(out.pValue <= spec.alpha ||
                out.pValue >= policy.passThreshold ||
                out.ensembleSize == policy.maxSize);

    const auto again = checker.checkEscalated(spec, policy);
    EXPECT_EQ(out.ensembleSize, again.ensembleSize);
    EXPECT_EQ(out.pValue, again.pValue);
}

} // anonymous namespace
