/**
 * @file
 * Bug-taxonomy tests: every injected bug type must (a) change program
 * behaviour the way the paper describes and (b) be caught by the
 * assertion type the paper prescribes — while the correct variants
 * pass.
 */

#include <gtest/gtest.h>

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "algo/shor.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"
#include "bugs/bugs.hh"
#include "bugs/injectors.hh"
#include "circuit/executor.hh"
#include "common/rng.hh"
#include "sim/matrix.hh"

namespace
{

using namespace qsa;
using namespace qsa::bugs;
using qsa::circuit::Circuit;
using qsa::circuit::QubitRegister;

TEST(Catalog, HasAllTypes)
{
    // The paper's six types plus the three statically-visible
    // extension types the analyze linter catches.
    const auto catalog = bugCatalog();
    EXPECT_EQ(catalog.size(), 9u);
    EXPECT_EQ(bugInfo(BugType::MisroutedControl).paperSection, "4.4");
    EXPECT_EQ(bugInfo(BugType::WrongClassicalInput).name,
              "wrong-classical-input");

    // The paper's six are dynamic-only; the three extensions each
    // name their lint rule (the full mapping is pinned in
    // tests/test_analyze_bugs.cc).
    EXPECT_TRUE(bugInfo(BugType::WrongInitialValue).lintRule.empty());
    EXPECT_EQ(bugInfo(BugType::ConditionLabelTypo).lintRule,
              "cond-unwritten-label");
    EXPECT_EQ(bugInfo(BugType::MeasuredQubitReuse).lintRule,
              "measure-without-reset");
    EXPECT_EQ(bugInfo(BugType::EntangledReset).lintRule,
              "reset-entangled");
}

// --- Table 1: rotation decompositions (bug type 2) ---------------------------

/** Dense 4x4 unitary of a 2-qubit circuit builder. */
sim::CMatrix
unitaryOf(const std::function<void(Circuit &)> &build)
{
    sim::CMatrix u(4);
    for (std::uint64_t col = 0; col < 4; ++col) {
        Circuit circ(2);
        build(circ);
        Rng rng(1);
        sim::StateVector state(2);
        state.setBasisState(col);
        std::map<std::string, std::uint64_t> meas;
        circuit::runCircuitOn(circ, state, meas, rng);
        for (std::uint64_t row = 0; row < 4; ++row)
            u.at(row, col) = state.amp(row);
    }
    return u;
}

TEST(Table1, CorrectVariantsMatchNativeCPhase)
{
    const double angle = 2.0 * M_PI / 8.0;
    const auto reference = unitaryOf(
        [&](Circuit &c) { c.cphase(0, 1, angle); });

    for (auto variant : {Table1Variant::CorrectDropA,
                         Table1Variant::CorrectDropC}) {
        const auto u = unitaryOf([&](Circuit &c) {
            appendCPhaseDecomposed(c, 0, 1, angle, variant);
        });
        EXPECT_LT(u.distance(reference), 1e-12)
            << table1VariantName(variant);
    }
}

TEST(Table1, FlippedVariantIsWrongOperation)
{
    const double angle = 2.0 * M_PI / 8.0;
    const auto reference = unitaryOf(
        [&](Circuit &c) { c.cphase(0, 1, angle); });
    const auto u = unitaryOf([&](Circuit &c) {
        appendCPhaseDecomposed(c, 0, 1, angle,
                               Table1Variant::IncorrectFlipped);
    });
    // Not equal even up to global phase: wrong direction of rotation.
    EXPECT_GT(u.distanceUpToPhase(reference), 0.1);
}

/** Listing 3's harness with a decomposed adder variant. */
std::uint64_t
decomposedAdderResult(Table1Variant variant)
{
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(ctrl, 1);
    circ.prepRegister(b, 12);
    algo::qft(circ, b);
    phiAddDecomposed(circ, b, 13, ctrl[0], variant);
    algo::iqft(circ, b);
    circ.measure(b, "b");
    Rng rng(3);
    return circuit::runCircuit(circ, rng).measurements.at("b");
}

TEST(Table1, AdderHarnessSeparatesVariants)
{
    EXPECT_EQ(decomposedAdderResult(Table1Variant::CorrectDropA), 25u);
    EXPECT_EQ(decomposedAdderResult(Table1Variant::CorrectDropC), 25u);
    EXPECT_NE(decomposedAdderResult(Table1Variant::IncorrectFlipped),
              25u);
}

TEST(Table1, AssertionCatchesFlippedVariant)
{
    // The paper: "the output assertion returns p-value = 0.0".
    for (auto variant : {Table1Variant::CorrectDropA,
                         Table1Variant::IncorrectFlipped}) {
        Circuit circ;
        const auto ctrl = circ.addRegister("ctrl", 1);
        const auto b = circ.addRegister("b", 5);
        circ.prepRegister(ctrl, 1);
        circ.prepRegister(b, 12);
        algo::qft(circ, b);
        phiAddDecomposed(circ, b, 13, ctrl[0], variant);
        algo::iqft(circ, b);
        circ.breakpoint("done");

        assertions::AssertionChecker checker(circ);
        checker.assertClassical("done", b, 25);
        const auto o = checker.check(checker.assertions()[0]);
        if (variant == Table1Variant::CorrectDropA) {
            EXPECT_TRUE(o.passed);
            EXPECT_NEAR(o.pValue, 1.0, 1e-9);
        } else {
            EXPECT_FALSE(o.passed);
            EXPECT_EQ(o.pValue, 0.0);
        }
    }
}

// --- Bug type 3: iteration bugs ------------------------------------------------

class IterationBugs : public ::testing::TestWithParam<IterationBug>
{
};

TEST_P(IterationBugs, BreaksAdditionAndIsCaught)
{
    const IterationBug bug = GetParam();

    Circuit circ;
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(b, 12);
    algo::qft(circ, b);
    phiAddIterationBug(circ, b, 13, {}, bug);
    algo::iqft(circ, b);
    circ.breakpoint("done");

    assertions::AssertionChecker checker(circ);
    checker.assertClassical("done", b, 25);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed) << iterationBugName(bug);
}

INSTANTIATE_TEST_SUITE_P(
    AllBugs, IterationBugs,
    ::testing::Values(IterationBug::InnerOffByOne,
                      IterationBug::WrongAngleDenominator,
                      IterationBug::EndianSwapped));

// --- Bug type 4: misrouted controls (Listing 4 harness) -------------------------

/** Build the Listing 4 test harness around a multiplier builder. */
struct ModMulHarness
{
    Circuit circ;
    QubitRegister ctrl, x, b, anc;

    template <typename Builder>
    explicit ModMulHarness(Builder build_multiplier)
    {
        ctrl = circ.addRegister("ctrl", 1);
        x = circ.addRegister("x", 4);
        b = circ.addRegister("b", 5);
        anc = circ.addRegister("anc", 1);

        // Listing 4: control in superposition, x = 6, b = 7.
        circ.prepRegister(ctrl, 1);
        circ.h(ctrl[0]);
        circ.prepRegister(x, 6);
        circ.prepRegister(b, 7);
        circ.prepRegister(anc, 0);

        build_multiplier(circ, ctrl[0], x, b, anc[0]);
        circ.breakpoint("after_mul");
    }
};

TEST(MisroutedControl, CorrectMultiplierEntangles)
{
    ModMulHarness h([](Circuit &c, unsigned ctrl,
                       const QubitRegister &x, const QubitRegister &b,
                       unsigned anc) {
        algo::cModMul(c, ctrl, x, b, 7, 15, anc);
    });

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 16; // the paper's ensemble size
    assertions::AssertionChecker checker(h.circ, cfg);
    checker.assertEntangled("after_mul", h.ctrl, h.b);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_TRUE(o.passed);
    EXPECT_LT(o.pValue, 0.005); // paper quotes 0.0005
}

TEST(MisroutedControl, BuggyMultiplierFailsEntanglementAssertion)
{
    ModMulHarness h([](Circuit &c, unsigned ctrl,
                       const QubitRegister &x, const QubitRegister &b,
                       unsigned anc) {
        cModMulMisrouted(c, ctrl, x, b, 7, 15, anc);
    });

    // Ground truth: with the control never routed in, the control
    // qubit stays in a product state with everything else.
    EXPECT_NEAR(assertions::exactPurity(h.circ, "after_mul", h.ctrl),
                1.0, 1e-9);

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 16;
    assertions::AssertionChecker checker(h.circ, cfg);
    checker.assertEntangled("after_mul", h.ctrl, h.b);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed); // p-value not significant (paper: 0.121)
    EXPECT_GT(o.pValue, 0.05);
}

// --- Bug type 5: broken mirroring -----------------------------------------------

TEST(BrokenMirror, CorrectUaReturnsProductState)
{
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1);
    circ.h(ctrl[0]);
    circ.prepRegister(x, 6);
    circ.prepRegister(b, 0);
    circ.prepRegister(anc, 0);
    algo::cUa(circ, ctrl[0], x, b, 7, 13, 15, anc[0]);
    circ.breakpoint("after_ua");

    assertions::AssertionChecker checker(circ);
    checker.assertProduct("after_ua", ctrl, b);
    checker.assertClassical("after_ua", b, 0);
    EXPECT_TRUE(assertions::allPassed(checker.checkAll()));
}

TEST(BrokenMirror, ForgottenAdjointLeavesHelperDirty)
{
    Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);
    circ.prepRegister(ctrl, 1);
    circ.h(ctrl[0]);
    circ.prepRegister(x, 6);
    circ.prepRegister(b, 0);
    circ.prepRegister(anc, 0);
    cUaBrokenMirror(circ, ctrl[0], x, b, 7, 13, 15, anc[0]);
    circ.breakpoint("after_ua");

    assertions::AssertionChecker checker(circ);
    checker.assertClassical("after_ua", b, 0);
    const auto o = checker.check(checker.assertions()[0]);
    EXPECT_FALSE(o.passed);
    EXPECT_EQ(o.pValue, 0.0);
}

TEST(BrokenMirror, ForgottenNegationDoesNotInvert)
{
    // add(13) then "subtract"(13) with the forgotten negation: the
    // result is 12 + 26 instead of 12.
    Circuit circ;
    const auto b = circ.addRegister("b", 5);
    circ.prepRegister(b, 12);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, 13);
    phiSubForgotNegate(circ, b, 13, {});
    algo::iqft(circ, b);
    circ.measure(b, "b");

    Rng rng(7);
    const auto m = circuit::runCircuit(circ, rng).measurements.at("b");
    EXPECT_NE(m, 12u);
    EXPECT_EQ(m, (12 + 26) % 32);
}

// --- Bug types 1 & 6 through ShorConfig ------------------------------------------

TEST(ShorBugs, WrongInitCaughtOnlyByInitAssertion)
{
    algo::ShorConfig config;
    config.lowerInit = 0; // bug type 1
    const auto prog = algo::buildShorProgram(config);

    assertions::AssertionChecker checker(prog.circuit);
    checker.assertClassical("init", prog.lower, 1);
    checker.assertSuperposition("superposed", prog.upper);
    const auto outcomes = checker.checkAll();
    EXPECT_FALSE(outcomes[0].passed); // precondition violated
    EXPECT_TRUE(outcomes[1].passed);  // superposition still fine
}

TEST(ShorBugs, WrongInverseBreaksFactoringReliability)
{
    // With the Table 3 bug the outputs are polluted; factoring
    // becomes unreliable rather than impossible (the paper: "the
    // algorithm still succeeds" when the ancillas collapse to 0).
    algo::ShorConfig good;
    algo::ShorConfig bad;
    bad.pairs = algo::shorClassicalInputs(7, 15, 3);
    bad.pairs[0].second = 12;

    const auto good_prog = algo::buildShorProgram(good);
    const auto bad_prog = algo::buildShorProgram(bad);

    const auto good_out =
        assertions::exactMarginal(good_prog.circuit, "final",
                                  good_prog.upper);
    const auto bad_out =
        assertions::exactMarginal(bad_prog.circuit, "final",
                                  bad_prog.upper);

    // Correct run: odd outputs impossible. Buggy run: they leak in.
    double good_odd = 0.0, bad_odd = 0.0;
    for (std::uint64_t v = 1; v < 8; v += 2) {
        good_odd += good_out[v];
        bad_odd += bad_out[v];
    }
    EXPECT_NEAR(good_odd, 0.0, 1e-9);
    EXPECT_GT(bad_odd, 0.05);
}

} // anonymous namespace
