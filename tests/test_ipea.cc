/**
 * @file
 * Iterative phase estimation tests: exact phases on synthetic
 * unitaries, the H2 energy pipeline (exact and Trotterised), and the
 * Section 5.2.3 convergence behaviours.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/ipea.hh"
#include "chem/eigen.hh"
#include "chem/h2.hh"
#include "chem/trotter.hh"
#include "common/bits.hh"
#include "sim/gates.hh"
#include "sim/matrix.hh"

namespace
{

using namespace qsa;
using namespace qsa::algo;
using namespace qsa::chem;

/** Controlled powers of a dense unitary by repeated squaring. */
ControlledPowerFn
densePowerFn(const sim::CMatrix &u, const std::vector<unsigned> &sys)
{
    return [u, sys](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
        sim::CMatrix p = u;
        for (unsigned i = 0; i < k; ++i)
            p = p.mul(p);
        circ.unitary(p, sys, {ctrl});
    };
}

TEST(Ipea, ExactBinaryPhase)
{
    // U = phase gate with phi = 5/16 = 0.0101b on the |1> eigenstate.
    const double phi = 5.0 / 16.0;
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));

    IpeaConfig cfg;
    cfg.bits = 4;
    const auto result = runIpea(1, 1, densePowerFn(u, {0}), cfg);
    EXPECT_NEAR(result.phase, phi, 1e-12);
    ASSERT_EQ(result.bits.size(), 4u);
    EXPECT_EQ(result.bits[0], 0u);
    EXPECT_EQ(result.bits[1], 1u);
    EXPECT_EQ(result.bits[2], 0u);
    EXPECT_EQ(result.bits[3], 1u);
}

class IpeaPhases : public ::testing::TestWithParam<int>
{
};

TEST_P(IpeaPhases, RecoversAllFourBitPhases)
{
    const double phi = GetParam() / 16.0;
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    IpeaConfig cfg;
    cfg.bits = 4;
    const auto result = runIpea(1, 1, densePowerFn(u, {0}), cfg);
    EXPECT_NEAR(result.phase, phi, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllPhases, IpeaPhases, ::testing::Range(0, 16));

TEST(Ipea, NonBinaryPhaseRoundsToNearest)
{
    const double phi = 0.30103; // not a 6-bit binary fraction
    const auto u =
        sim::CMatrix::fromMat2(sim::gates::phase(2.0 * M_PI * phi));
    IpeaConfig cfg;
    cfg.bits = 6;
    const auto result = runIpea(1, 1, densePowerFn(u, {0}), cfg);
    EXPECT_NEAR(result.phase, phi, 1.0 / 64.0);
}

TEST(Ipea, EigenstateOfTwoQubitUnitary)
{
    // Controlled phase on |11> of two qubits: starting in |11> the
    // phase is phi, starting in |01> it is 0.
    const double phi = 3.0 / 8.0;
    sim::CMatrix u = sim::CMatrix::identity(4);
    u.at(3, 3) = std::exp(sim::Complex(0, 2.0 * M_PI * phi));

    IpeaConfig cfg;
    cfg.bits = 3;
    EXPECT_NEAR(runIpea(2, 0b11, densePowerFn(u, {0, 1}), cfg).phase,
                phi, 1e-12);
    EXPECT_NEAR(runIpea(2, 0b01, densePowerFn(u, {0, 1}), cfg).phase,
                0.0, 1e-12);
}

TEST(Ipea, PhaseToEnergyInversion)
{
    const double t = 1.2, e_ref = 1.5;
    for (double e : {-1.1, -0.5, 0.3}) {
        const double phi = (e_ref - e) * t / (2.0 * M_PI);
        EXPECT_NEAR(phaseToEnergy(phi, t, e_ref), e, 1e-12);
    }
}

// --- H2 energies via IPEA -----------------------------------------------------

struct H2Ipea
{
    H2Model model = buildH2Model();
    double e_ref = 1.5;
    double time = 1.2;

    double
    energyFromBasis(std::uint32_t occupation, unsigned bits = 14)
    {
        const auto u =
            evolutionOperator(model.hamiltonian, time, e_ref);
        IpeaConfig cfg;
        cfg.bits = bits;
        const auto result =
            runIpea(4, occupation, densePowerFn(u, {0, 1, 2, 3}), cfg);
        return phaseToEnergy(result.phase, time, e_ref);
    }
};

TEST(IpeaH2, GroundStateEnergyMatchesFci)
{
    H2Ipea h;
    const double fci = groundStateEnergy(h.model.hamiltonian);
    // |0011> overlaps the true ground state at > 0.99; IPEA collapses
    // onto it with high probability and reads its energy.
    const double e = h.energyFromBasis(0b0011);
    EXPECT_NEAR(e, fci, 2e-3);
}

TEST(IpeaH2, TripletStatesAreExactEigenstates)
{
    H2Ipea h;
    // Same-spin open-shell determinants are eigenstates; IPEA is
    // deterministic up to bit precision and both give E1.
    const double e_up = h.energyFromBasis(0b0101);
    const double e_dn = h.energyFromBasis(0b1010);
    EXPECT_NEAR(e_up, e_dn, 2e-3);
    EXPECT_NEAR(e_up, determinantEnergy(h.model, 0b0101), 2e-3);
}

TEST(IpeaH2, DoublyExcitedState)
{
    H2Ipea h;
    const auto sys = diagonalize(h.model.hamiltonian);
    const double e = h.energyFromBasis(0b1100);
    // |1100> is dominated by the highest 2-electron singlet; check it
    // lands on one of the exact eigenvalues.
    double best = 1e9;
    for (double ev : sys.values)
        best = std::min(best, std::fabs(ev - e));
    EXPECT_LT(best, 2e-3);
}

TEST(IpeaH2, TrotterizedEvolutionConverges)
{
    // Section 5.2.3: energies converge as Trotter steps increase.
    H2Ipea h;
    const double fci = groundStateEnergy(h.model.hamiltonian);

    double prev_err = 1e9;
    for (unsigned steps : {1u, 2u, 4u}) {
        ControlledPowerFn fn = [&](circuit::Circuit &circ,
                                   unsigned ctrl, unsigned k) {
            const std::uint64_t reps = 1ull << k;
            for (std::uint64_t r = 0; r < reps; ++r) {
                appendTrotterEvolution(circ, h.model.hamiltonian,
                                       h.time, steps, {0, 1, 2, 3},
                                       {ctrl}, h.e_ref);
            }
        };
        IpeaConfig cfg;
        cfg.bits = 10;
        const auto result = runIpea(4, 0b0011, fn, cfg);
        const double e =
            phaseToEnergy(result.phase, h.time, h.e_ref);
        const double err = std::fabs(e - fci);
        EXPECT_LT(err, prev_err + 2e-3) << steps;
        prev_err = err;
    }
    EXPECT_LT(prev_err, 5e-3);
}

TEST(IpeaH2, PrecisionRefinementIsConsistent)
{
    // Section 5.2.3: rounding a high-precision run must match the
    // low-precision run.
    H2Ipea h;
    const auto u = evolutionOperator(h.model.hamiltonian, h.time,
                                     h.e_ref);
    IpeaConfig lo, hi;
    lo.bits = 6;
    hi.bits = 12;
    const auto r_lo =
        runIpea(4, 0b0101, densePowerFn(u, {0, 1, 2, 3}), lo);
    const auto r_hi =
        runIpea(4, 0b0101, densePowerFn(u, {0, 1, 2, 3}), hi);
    // Most significant 6 bits agree up to rounding in the last place.
    EXPECT_NEAR(r_lo.phase, r_hi.phase, 1.0 / 64.0);
}

} // anonymous namespace
