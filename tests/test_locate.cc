/**
 * @file
 * qsa::locate tests: every injected bug variant of the qsa::bugs
 * taxonomy must localize to an interval containing its injection
 * site, in strictly fewer probes than the exhaustive linear scan,
 * with outputs invariant across thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/arith.hh"
#include "algo/qft.hh"
#include "assertions/checker.hh"
#include "bugs/injectors.hh"
#include "circuit/circuit.hh"
#include "circuit/scopes.hh"
#include "locate/locate.hh"
#include "locate/predicates.hh"

namespace
{

using namespace qsa;
using namespace qsa::locate;
using qsa::circuit::Circuit;
using qsa::circuit::Instruction;
using qsa::circuit::QubitRegister;

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.kind == b.kind && a.controls == b.controls &&
           a.targets == b.targets && a.angle == b.angle &&
           a.bit == b.bit && a.label == b.label &&
           a.condLabel == b.condLabel && a.condValue == b.condValue;
}

/**
 * True when the instruction interval [begin, end) of `suspect`
 * contains at least one position where it disagrees with `reference`
 * — i.e. when the located range covers (part of) the injected defect.
 */
bool
intervalCoversDefect(const Circuit &suspect, const Circuit &reference,
                     std::size_t begin, std::size_t end)
{
    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    for (std::size_t i = begin; i < end; ++i) {
        if (i >= si.size() || i >= ri.size())
            return true;
        if (!sameInstruction(si[i], ri[i]))
            return true;
    }
    return false;
}

/** A (suspect, reference) pair with a known injected defect. */
struct Fixture
{
    std::string name;
    Circuit suspect;
    Circuit reference;
};

// --- Bug type 2: flipped rotation decomposition (Table 1) -------------------

Fixture
flippedRotationFixture()
{
    Fixture fx;
    fx.name = "flipped-rotation";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        bugs::phiAddDecomposed(
            *circ, b, 13, ctrl[0],
            buggy ? bugs::Table1Variant::IncorrectFlipped
                  : bugs::Table1Variant::CorrectDropA);
        algo::iqft(*circ, b);
    }
    return fx;
}

// --- Bug type 3: iteration bugs ---------------------------------------------

Fixture
iterationFixture(bugs::IterationBug bug)
{
    Fixture fx;
    fx.name = "iteration/" + bugs::iterationBugName(bug);
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        if (buggy)
            bugs::phiAddIterationBug(*circ, b, 13, {}, bug);
        else
            algo::phiAdd(*circ, b, 13);
        algo::iqft(*circ, b);
    }
    return fx;
}

// --- Bug type 4: misrouted control ------------------------------------------

Fixture
misroutedControlFixture()
{
    Fixture fx;
    fx.name = "misrouted-control";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 5);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        if (buggy)
            bugs::cModMulMisrouted(*circ, ctrl[0], x, b, 3, 7, anc[0]);
        else
            algo::cModMul(*circ, ctrl[0], x, b, 3, 7, anc[0]);
    }
    return fx;
}

// --- Bug type 5: broken mirroring -------------------------------------------

Fixture
brokenMirrorFixture()
{
    Fixture fx;
    fx.name = "broken-mirror";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 0);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        if (buggy)
            bugs::cUaBrokenMirror(*circ, ctrl[0], x, b, 3, 5, 7,
                                  anc[0]);
        else
            algo::cUa(*circ, ctrl[0], x, b, 3, 5, 7, anc[0]);
    }
    return fx;
}

Fixture
forgotNegateFixture()
{
    Fixture fx;
    fx.name = "forgot-negate";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        algo::phiAdd(*circ, b, 13);
        if (buggy)
            bugs::phiSubForgotNegate(*circ, b, 13, {});
        else
            algo::phiAdd(*circ, b, 13, {}, -1);
        algo::iqft(*circ, b);
    }
    return fx;
}

// --- Bug type 6: wrong classical input (Table 3) ----------------------------

Fixture
wrongClassicalInputFixture()
{
    Fixture fx;
    fx.name = "wrong-classical-input";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 0);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        // 3^-1 = 5 (mod 7); the Table 3 mistake supplies 4 instead.
        algo::cUa(*circ, ctrl[0], x, b, 3, buggy ? 4 : 5, 7, anc[0]);
    }
    return fx;
}

// --- Bug type 1: wrong initial value ----------------------------------------

/**
 * Prep-before-use style program: a register computed first, then a
 * second register initialised (wrongly, in the suspect) mid-program —
 * the localization target is a reset instruction, which the
 * predicate-probe family handles (mirror probes require a unitary
 * compared region).
 */
Fixture
wrongInitialValueFixture()
{
    Fixture fx;
    fx.name = "wrong-initial-value";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto a = circ->addRegister("a", 4);
        const auto y = circ->addRegister("y", 3);
        circ->prepRegister(a, 5);
        algo::qft(*circ, a);
        algo::phiAdd(*circ, a, 3);
        algo::iqft(*circ, a);
        circ->prepRegister(y, buggy ? 0 : 1); // the type-1 mistake
        circ->cnot(y[0], a[0]);
        circ->cnot(y[1], a[1]);
    }
    return fx;
}

// --- Shared assertions over a fixture ---------------------------------------

LocateConfig
testConfig(Strategy strategy = Strategy::AdaptiveBinarySearch,
           unsigned num_threads = 0)
{
    LocateConfig cfg;
    cfg.strategy = strategy;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.numThreads = num_threads;
    return cfg;
}

void
expectLocalizes(const Fixture &fx, const LocalizationReport &report)
{
    ASSERT_TRUE(report.bugFound) << fx.name << ": " << report.summary();
    EXPECT_EQ(report.firstFailing, report.lastPassing + 1) << fx.name;
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << fx.name << ": " << report.summary();
}

class MirrorFixtures : public ::testing::TestWithParam<int>
{
  public:
    static Fixture
    make(int index)
    {
        switch (index) {
          case 0: return flippedRotationFixture();
          case 1:
            return iterationFixture(bugs::IterationBug::InnerOffByOne);
          case 2:
            return iterationFixture(
                bugs::IterationBug::WrongAngleDenominator);
          case 3:
            return iterationFixture(bugs::IterationBug::EndianSwapped);
          case 4: return misroutedControlFixture();
          case 5: return brokenMirrorFixture();
          case 6: return forgotNegateFixture();
          case 7: return wrongClassicalInputFixture();
        }
        throw std::logic_error("bad fixture index");
    }
};

TEST_P(MirrorFixtures, AdaptiveSearchBracketsTheDefect)
{
    const Fixture fx = make(GetParam());
    const BugLocator locator(fx.suspect, fx.reference, testConfig());
    expectLocalizes(fx, locator.locate());
}

TEST_P(MirrorFixtures, FewerProbesThanLinearScan)
{
    const Fixture fx = make(GetParam());

    // This compares the two search strategies over the same boundary
    // range; static pruning would shrink both searches (and on a
    // late defect leave the scan almost nothing to probe), so it
    // stays off here. LocatePruning tests cover the pre-pass.
    LocateConfig fast_cfg = testConfig();
    fast_cfg.staticPruning = false;
    const BugLocator adaptive(fx.suspect, fx.reference, fast_cfg);
    const auto fast = adaptive.locate();

    LocateConfig scan_cfg = testConfig(Strategy::LinearScan);
    scan_cfg.staticPruning = false;
    const BugLocator linear(fx.suspect, fx.reference, scan_cfg);
    const auto scan = linear.locate();

    expectLocalizes(fx, fast);
    expectLocalizes(fx, scan);
    EXPECT_LT(fast.probes.size(), scan.probes.size()) << fx.name;
}

TEST_P(MirrorFixtures, ThreadCountInvariant)
{
    const Fixture fx = make(GetParam());

    const BugLocator serial(fx.suspect, fx.reference,
                            testConfig(Strategy::AdaptiveBinarySearch,
                                       1));
    const BugLocator pooled(fx.suspect, fx.reference,
                            testConfig(Strategy::AdaptiveBinarySearch,
                                       3));
    const auto a = serial.locate();
    const auto b = pooled.locate();

    EXPECT_EQ(a.lastPassing, b.lastPassing) << fx.name;
    EXPECT_EQ(a.firstFailing, b.firstFailing) << fx.name;
    ASSERT_EQ(a.probes.size(), b.probes.size()) << fx.name;
    for (std::size_t i = 0; i < a.probes.size(); ++i) {
        EXPECT_EQ(a.probes[i].boundary, b.probes[i].boundary);
        EXPECT_EQ(a.probes[i].ensembleSize, b.probes[i].ensembleSize);
        // Bit-identical, not approximately equal: the runtime keys
        // every trial's stream by trial index, not by worker.
        EXPECT_EQ(a.probes[i].pValue, b.probes[i].pValue);
        EXPECT_EQ(a.probes[i].failed, b.probes[i].failed);
    }
}

INSTANTIATE_TEST_SUITE_P(Taxonomy, MirrorFixtures,
                         ::testing::Range(0, 8));

TEST(MirrorLocate, SeedInvariantInterval)
{
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg = testConfig();
    const auto a = BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.seed = 0xfeedbeef;
    const auto b = BugLocator(fx.suspect, fx.reference, cfg).locate();
    EXPECT_EQ(a.lastPassing, b.lastPassing);
    EXPECT_EQ(a.firstFailing, b.firstFailing);
}

TEST(MirrorLocate, TrailingExtraInstructionsBlamed)
{
    // A defect confined to the suffix one program has and the other
    // lacks is invisible to index-aligned prefix probes; the report
    // must blame the length mismatch instead of declaring no bug.
    Fixture fx;
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const auto b = circ->addRegister("b", 3);
        circ->prepRegister(b, 1);
        algo::qft(*circ, b);
        algo::iqft(*circ, b);
    }
    fx.suspect.x(fx.suspect.reg("b")[0]); // the extra trailing gate

    const BugLocator locator(fx.suspect, fx.reference, testConfig());
    const auto report = locator.locate();
    ASSERT_TRUE(report.bugFound);
    EXPECT_EQ(report.suspectBegin(), fx.reference.size());
    EXPECT_EQ(report.suspectEnd(), fx.suspect.size());
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()));
}

TEST(MirrorLocate, MissingTrailingInstructionsBlamed)
{
    // The mirror of TrailingExtraInstructionsBlamed: the suspect ends
    // early. No suspect instruction can be blamed, so the bracket
    // names the one-past-the-end position and says why.
    Fixture fx;
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const auto b = circ->addRegister("b", 3);
        circ->prepRegister(b, 1);
        algo::qft(*circ, b);
        algo::iqft(*circ, b);
    }
    fx.reference.x(fx.reference.reg("b")[0]); // suspect lacks this

    const BugLocator locator(fx.suspect, fx.reference, testConfig());
    const auto report = locator.locate();
    ASSERT_TRUE(report.bugFound);
    EXPECT_EQ(report.firstFailing, report.lastPassing + 1);
    EXPECT_EQ(report.suspectBegin(), fx.suspect.size());
    EXPECT_NE(report.suspectGates.find("ends 1 instructions"),
              std::string::npos)
        << report.summary();
}

TEST(MirrorLocate, CorrectProgramReportsNoBug)
{
    Fixture fx = flippedRotationFixture();
    const BugLocator locator(fx.reference, fx.reference, testConfig());
    const auto report = locator.locate();
    EXPECT_FALSE(report.bugFound);
    // An identical program is certified boundary-for-boundary by the
    // static pre-pass: the search ends before a single probe runs.
    EXPECT_EQ(report.probes.size(), 0u);
    EXPECT_EQ(report.prunedBoundaries, fx.reference.size());

    // Unpruned, identical prefixes have off-probability exactly zero,
    // so the only probe is the (passing) end-to-end one.
    LocateConfig cfg = testConfig();
    cfg.staticPruning = false;
    const auto unpruned =
        BugLocator(fx.reference, fx.reference, cfg).locate();
    EXPECT_FALSE(unpruned.bugFound);
    EXPECT_EQ(unpruned.probes.size(), 1u);
    EXPECT_EQ(unpruned.prunedBoundaries, 0u);
}

// --- Predicate probes (bug type 1 and scope inheritance) --------------------

TEST(PredicateLocate, WrongInitialValueBrackets)
{
    const Fixture fx = wrongInitialValueFixture();
    const QubitRegister y = fx.suspect.reg("y");

    const BugLocator locator(fx.suspect, fx.reference, testConfig());
    const auto report = locator.locateByPredicates(y);
    expectLocalizes(fx, report);

    const BugLocator linear(fx.suspect, fx.reference,
                            testConfig(Strategy::LinearScan));
    const auto scan = linear.locateByPredicates(y);
    expectLocalizes(fx, scan);
    EXPECT_LT(report.probes.size(), scan.probes.size());
}

TEST(PredicateLocate, ThreadCountInvariant)
{
    const Fixture fx = wrongInitialValueFixture();
    const QubitRegister y = fx.suspect.reg("y");

    const auto a = BugLocator(fx.suspect, fx.reference,
                              testConfig(
                                  Strategy::AdaptiveBinarySearch, 1))
                       .locateByPredicates(y);
    const auto b = BugLocator(fx.suspect, fx.reference,
                              testConfig(
                                  Strategy::AdaptiveBinarySearch, 3))
                       .locateByPredicates(y);
    EXPECT_EQ(a.lastPassing, b.lastPassing);
    EXPECT_EQ(a.firstFailing, b.firstFailing);
    ASSERT_EQ(a.probes.size(), b.probes.size());
    for (std::size_t i = 0; i < a.probes.size(); ++i)
        EXPECT_EQ(a.probes[i].pValue, b.probes[i].pValue);
}

/** Broken-uncompute program with manual scope labels. */
Fixture
scopedBrokenUncomputeFixture()
{
    Fixture fx;
    fx.name = "scoped-broken-uncompute";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto q = circ->addRegister("q", 2);
        const auto work = circ->addRegister("work", 2);
        circ->h(q[0]);
        circ->h(q[1]);
        circ->cnot(q[0], work[0]);
        circ->cnot(q[1], work[1]);
        circ->breakpoint("copy_computed");
        circ->cz(work[0], work[1]);
        circ->cnot(q[0], work[0]);
        // The mirroring mistake: the second uncompute CNOT reuses
        // q[0] as its control, leaving work[1] = q0 xor q1.
        circ->cnot(buggy ? q[0] : q[1], work[1]);
        circ->breakpoint("copy_uncomputed");
        circ->x(q[0]);
        circ->x(q[0]);
    }
    return fx;
}

TEST(PredicateLocate, ScopeInheritedKindsParticipate)
{
    const Fixture fx = scopedBrokenUncomputeFixture();
    const QubitRegister work = fx.suspect.reg("work");
    const QubitRegister q = fx.suspect.reg("q");

    LocateConfig cfg = testConfig(Strategy::LinearScan);
    cfg.ensembleSize = 256;
    // The inherited-kind probes sit at the scope labels, which the
    // static pre-pass would certify away (they precede the defect):
    // this test is about the probes themselves, so scan everything.
    cfg.staticPruning = false;
    const BugLocator locator(fx.suspect, fx.reference, cfg);
    const auto report = locator.locateByPredicates(work, q);
    expectLocalizes(fx, report);

    // The scope labels contributed inherited probe kinds.
    const auto has_kind = [&](assertions::AssertionKind kind) {
        return std::any_of(report.probes.begin(), report.probes.end(),
                           [&](const ProbeRecord &rec) {
                               return rec.kind == kind;
                           });
    };
    EXPECT_TRUE(has_kind(assertions::AssertionKind::Entangled));
    EXPECT_TRUE(has_kind(assertions::AssertionKind::Product));
}

// --- PredicateOracle classification -----------------------------------------

TEST(PredicateOracle_, ClassifiesBoundaries)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.prepRegister(q, 2);
    circ.h(q[0]);
    circ.h(q[1]);

    const PredicateOracle oracle(circ, q);
    ASSERT_EQ(oracle.numBoundaries(), 5u);

    // |00>, |00>, |10>: classical point masses.
    EXPECT_EQ(oracle.at(0).kind, assertions::AssertionKind::Classical);
    EXPECT_EQ(oracle.at(0).expectedValue, 0u);
    EXPECT_EQ(oracle.at(2).kind, assertions::AssertionKind::Classical);
    EXPECT_EQ(oracle.at(2).expectedValue, 2u);

    // H on bit 0 only: uniform over {0, 1} x {1} = a distribution.
    EXPECT_EQ(oracle.at(3).kind,
              assertions::AssertionKind::Distribution);

    // Full Hadamard wall: uniform superposition.
    EXPECT_EQ(oracle.at(4).kind,
              assertions::AssertionKind::Superposition);
}

TEST(PredicateOracle_, ScopeDerivedPredicates)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 1);
    const auto work = circ.addRegister("work", 1);
    {
        circuit::ComputeScope scope(circ, "oracle");
        circ.cnot(q[0], work[0]);
        scope.endCompute();
        circ.z(work[0]);
    }
    const auto scoped = scopeDerivedPredicates(circ);
    ASSERT_EQ(scoped.size(), 2u);
    EXPECT_EQ(scoped[0].kind, assertions::AssertionKind::Entangled);
    EXPECT_EQ(scoped[0].label, "oracle_computed");
    EXPECT_EQ(scoped[1].kind, assertions::AssertionKind::Product);
    EXPECT_LT(scoped[0].boundary, scoped[1].boundary);
}

// --- Boundary instrumentation (circuit layer) --------------------------------

TEST(BoundaryBreakpoints, InstrumentEveryBoundary)
{
    Circuit circ;
    const auto q = circ.addRegister("q", 2);
    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.breakpoint("mid");
    circ.x(q[1]);

    const Circuit inst = circ.withBoundaryBreakpoints("b");
    // 4 original instructions + 5 boundary markers.
    EXPECT_EQ(inst.size(), 9u);
    EXPECT_EQ(inst.breakpointPosition("b0"), 0u);
    EXPECT_EQ(inst.breakpointPosition("b4"), 8u);
    // Existing labels survive instrumentation.
    EXPECT_NO_FATAL_FAILURE(inst.breakpointPosition("mid"));

    // Truncating at boundary k reproduces the original k-prefix
    // behaviour (markers are no-ops).
    const auto pre = inst.prefixUpTo("b2");
    std::size_t gates = 0;
    for (const auto &i : pre.instructions()) {
        if (i.kind != circuit::GateKind::Breakpoint)
            ++gates;
    }
    EXPECT_EQ(gates, 2u);
}

// --- Static boundary-equivalence pruning ------------------------------------

/** Run one fixture with pruning on and off; the pruned search must
 *  reproduce the unpruned bracket in no more probes. Returns the
 *  (pruned, unpruned) probe counts. */
std::pair<std::size_t, std::size_t>
comparePruning(const Fixture &fx)
{
    LocateConfig on = testConfig();
    on.staticPruning = true;
    LocateConfig off = testConfig();
    off.staticPruning = false;

    const auto pruned =
        BugLocator(fx.suspect, fx.reference, on).locate();
    const auto unpruned =
        BugLocator(fx.suspect, fx.reference, off).locate();

    expectLocalizes(fx, pruned);
    expectLocalizes(fx, unpruned);
    EXPECT_EQ(pruned.lastPassing, unpruned.lastPassing) << fx.name;
    EXPECT_EQ(pruned.firstFailing, unpruned.firstFailing) << fx.name;
    EXPECT_LE(pruned.probes.size(), unpruned.probes.size()) << fx.name;
    EXPECT_EQ(unpruned.prunedBoundaries, 0u) << fx.name;
    return {pruned.probes.size(), unpruned.probes.size()};
}

TEST_P(MirrorFixtures, PruningPreservesBracketWithNoMoreProbes)
{
    comparePruning(make(GetParam()));
}

TEST(LocatePruning, StrictlyFewerProbesOnSomeFixture)
{
    // Across the taxonomy at least one fixture must realise an
    // actual probe saving, or the pre-pass is dead weight.
    bool strictly_fewer = false;
    for (int i = 0; i < 8; ++i) {
        const auto [pruned, unpruned] =
            comparePruning(MirrorFixtures::make(i));
        strictly_fewer = strictly_fewer || pruned < unpruned;
    }
    EXPECT_TRUE(strictly_fewer);
}

TEST(LocatePruning, CertifiedBoundaryReachesTheDefect)
{
    // The flipped-rotation fixture diverges at one known rotation;
    // everything before it is structurally identical, so the
    // certificate must reach the defect site exactly.
    const Fixture fx = flippedRotationFixture();
    const auto &si = fx.suspect.instructions();
    const auto &ri = fx.reference.instructions();
    std::size_t defect = 0;
    while (defect < si.size() && sameInstruction(si[defect], ri[defect]))
        ++defect;

    const auto report =
        BugLocator(fx.suspect, fx.reference, testConfig()).locate();
    EXPECT_EQ(report.prunedBoundaries, defect) << report.summary();
    expectLocalizes(fx, report);
}

TEST(LocatePruning, LinearScanSkipsCertifiedBoundaries)
{
    const Fixture fx = flippedRotationFixture();
    const auto scan =
        BugLocator(fx.suspect, fx.reference,
                   testConfig(Strategy::LinearScan))
            .locate();
    expectLocalizes(fx, scan);
    for (const auto &rec : scan.probes)
        EXPECT_GT(rec.boundary, scan.prunedBoundaries);
}

TEST(LocatePruning, EquivalentCliffordDressingIsCertified)
{
    // The two programs implement the same unitary through different
    // gate sequences (HZH vs X; S·Sdg vs nothing useful on q1):
    // structural comparison fails at the first dressed instruction,
    // but the Clifford-run tableau match must certify past the whole
    // dressed region — the runs end at the same breakpoint — and
    // prune it, leaving only the genuinely divergent tail to search.
    Fixture fx;
    fx.name = "clifford-dressing";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool suspect = circ == &fx.suspect;
        const auto q = circ->addRegister("q", 2);
        if (suspect) {
            circ->h(q[0]);
            circ->z(q[0]);
            circ->h(q[0]); // HZH = X
            circ->cnot(q[0], q[1]);
        } else {
            circ->x(q[0]);
            circ->s(q[1]);
            circ->sdg(q[1]); // identity dressing, equal run length
            circ->cnot(q[0], q[1]);
        }
        circ->breakpoint("sync"); // run barrier at the same index
        // Divergent tail: the suspect flips the wrong qubit.
        circ->x(suspect ? q[0] : q[1]);
        circ->h(q[0]);
        circ->h(q[1]);
    }

    const auto report =
        BugLocator(fx.suspect, fx.reference, testConfig()).locate();
    ASSERT_TRUE(report.bugFound) << report.summary();
    // Certified through the dressed run (4) and the breakpoint (5).
    EXPECT_EQ(report.prunedBoundaries, 5u) << report.summary();
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << report.summary();
    for (const auto &rec : report.probes)
        EXPECT_GT(rec.boundary, 5u);
}

TEST(LocatePruning, SoundWhenRunLengthsDiffer)
{
    // Same unitary on both sides but through different-*length* gate
    // sequences: index-aligned boundaries do not line up, so the
    // pre-pass must refuse to certify anything past the mismatch
    // (boundary b means "the first b instructions" in both programs,
    // and prefix k of one run is not prefix k of the other).
    Fixture fx;
    fx.name = "unequal-length-dressing";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool suspect = circ == &fx.suspect;
        const auto q = circ->addRegister("q", 2);
        if (suspect) {
            circ->h(q[0]);
            circ->z(q[0]);
            circ->h(q[0]); // HZH = X, 3 instructions
        } else {
            circ->x(q[0]); // 1 instruction
        }
        circ->cnot(q[0], q[1]);
        circ->x(suspect ? q[0] : q[1]); // divergent tail
        circ->h(q[0]);
        circ->h(q[1]);
    }

    const auto report =
        BugLocator(fx.suspect, fx.reference, testConfig()).locate();
    EXPECT_EQ(report.prunedBoundaries, 0u) << report.summary();
    ASSERT_TRUE(report.bugFound) << report.summary();
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << report.summary();
}

TEST(LocatePruning, PredicateProbesPruneToo)
{
    const Fixture fx = wrongInitialValueFixture();
    const QubitRegister y = fx.suspect.reg("y");

    LocateConfig on = testConfig();
    LocateConfig off = testConfig();
    off.staticPruning = false;

    const auto pruned = BugLocator(fx.suspect, fx.reference, on)
                            .locateByPredicates(y);
    const auto unpruned = BugLocator(fx.suspect, fx.reference, off)
                              .locateByPredicates(y);
    expectLocalizes(fx, pruned);
    expectLocalizes(fx, unpruned);
    EXPECT_EQ(pruned.lastPassing, unpruned.lastPassing);
    EXPECT_EQ(pruned.firstFailing, unpruned.firstFailing);
    EXPECT_LE(pruned.probes.size(), unpruned.probes.size());
}

} // anonymous namespace
