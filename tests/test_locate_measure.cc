/**
 * @file
 * Localization past mid-circuit measurement: Resimulate-mode probes.
 *
 * The tier injects the paper's bug taxonomy into measurement-bearing
 * programs — a measured (non-deferred) teleportation protocol with
 * classically-conditioned corrections, a semiclassical phase
 * estimation with one recycled ancilla, and the semiclassical
 * one-control-qubit Shor circuit — and requires every variant to be
 * bracketed to an interval containing the defect, thread- and
 * seed-invariantly, in strictly fewer probes than the exhaustive
 * LinearScan. A regression block pins that Resimulate-mode
 * localization of a measurement-free program probes the same
 * boundaries with the same verdicts as the default Truncate path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "algo/shor.hh"
#include "assertions/checker.hh"
#include "bugs/injectors.hh"
#include "circuit/circuit.hh"
#include "locate/locate.hh"
#include "locate/predicates.hh"

namespace
{

using namespace qsa;
using namespace qsa::locate;
using qsa::circuit::Circuit;
using qsa::circuit::GateKind;
using qsa::circuit::Instruction;
using qsa::circuit::QubitRegister;

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.kind == b.kind && a.controls == b.controls &&
           a.targets == b.targets && a.angle == b.angle &&
           a.bit == b.bit && a.label == b.label &&
           a.condLabel == b.condLabel && a.condValue == b.condValue;
}

bool
intervalCoversDefect(const Circuit &suspect, const Circuit &reference,
                     std::size_t begin, std::size_t end)
{
    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    for (std::size_t i = begin; i < end; ++i) {
        if (i >= si.size() || i >= ri.size())
            return true;
        if (!sameInstruction(si[i], ri[i]))
            return true;
    }
    return false;
}

/** Boundary index just after the first Measure instruction. */
std::size_t
firstMeasureBoundary(const Circuit &circ)
{
    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].kind == GateKind::Measure)
            return i + 1;
    }
    return insts.size();
}

/** A (suspect, reference) pair with a known injected defect. */
struct Fixture
{
    std::string name;
    Circuit suspect;
    Circuit reference;
};

// --- Measured teleportation --------------------------------------------------
//
// The non-deferred protocol: Bell-basis measurement mid-circuit,
// Pauli corrections classically conditioned on the recorded bits,
// then the inverse payload preparation returns the receiver to |0>
// exactly when teleportation worked.

enum class TeleportBug
{
    None,
    WrongInitialValue,   // type 1: receiver reset to |1>
    FlippedPayload,      // type 2: payload rotation sign flipped
    MisroutedCorrection, // type 4: corrections read the wrong bits
    BrokenMirror,        // type 5: verify step repeats instead of
                         //         inverting the payload rotation
    WrongCondValue,      // type 6: X correction fires on outcome 0
};

Circuit
buildMeasuredTeleport(TeleportBug bug)
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;

    Circuit circ;
    const auto msg = circ.addRegister("msg", 1);
    const auto half = circ.addRegister("half", 1);
    const auto recv = circ.addRegister("recv", 1);

    circ.prepZ(msg[0], 0);
    circ.prepZ(half[0], 0);
    circ.prepZ(recv[0],
               bug == TeleportBug::WrongInitialValue ? 1 : 0); // [2]
    circ.ry(msg[0],
            bug == TeleportBug::FlippedPayload ? -theta : theta); // [3]
    circ.rz(msg[0], phi);
    circ.h(half[0]);
    circ.cnot(half[0], recv[0]);
    circ.cnot(msg[0], half[0]);
    circ.h(msg[0]);
    circ.measureQubits({half[0]}, "m_x"); // [9]
    circ.measureQubits({msg[0]}, "m_z");  // [10]

    circ.x(recv[0]); // [11]
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_z" : "m_x",
        bug == TeleportBug::WrongCondValue ? 0 : 1);
    circ.z(recv[0]); // [12]
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_x" : "m_z", 1);

    circ.rz(recv[0], -phi); // [13]
    circ.ry(recv[0],
            bug == TeleportBug::BrokenMirror ? theta : -theta); // [14]
    return circ;
}

Fixture
teleportFixture(TeleportBug bug, const std::string &name)
{
    Fixture fx;
    fx.name = "teleport/" + name;
    fx.suspect = buildMeasuredTeleport(bug);
    fx.reference = buildMeasuredTeleport(TeleportBug::None);
    return fx;
}

// --- Semiclassical phase estimation ------------------------------------------
//
// One recycled ancilla measures one phase bit per round (least
// significant first), with feedback rotations conditioned on the
// recorded bits — the same recurrence as the semiclassical Shor
// driver, on a two-qubit program small enough for exhaustive scans.
// The estimated phase 1/3 is non-dyadic, so every round's measurement
// is genuinely random and the boundary predicates are true outcome
// mixtures.

enum class QpeBug
{
    None,
    WrongEigenstate,   // type 1: system prepared in |0>
    FlippedPhase,      // type 2: controlled-phase sign flipped
    WrongFeedback,     // type 3: feedback angle denominator off by
                       //         one power of two (iteration bug)
};

Circuit
buildSemiclassicalQpe(QpeBug bug, unsigned t = 3)
{
    const double phase = 1.0 / 3.0; // non-dyadic: every bit is random

    Circuit circ;
    const auto sys = circ.addRegister("sys", 1);
    const auto anc = circ.addRegister("anc", 1);

    circ.prepZ(sys[0], bug == QpeBug::WrongEigenstate ? 0 : 1);
    circ.prepZ(anc[0], 0);

    for (unsigned l = t; l >= 1; --l) {
        if (l < t)
            circ.prepZ(anc[0], 0); // recycle the ancilla
        circ.h(anc[0]);
        const double sign = bug == QpeBug::FlippedPhase ? -1.0 : 1.0;
        circ.cphase(anc[0], sys[0],
                    sign * 2.0 * M_PI * phase *
                        static_cast<double>(1u << (l - 1)));
        for (unsigned j = l + 1; j <= t; ++j) {
            const unsigned denom_pow =
                bug == QpeBug::WrongFeedback ? j - l : j - l + 1;
            circ.phase(anc[0],
                       -2.0 * M_PI /
                           static_cast<double>(1u << denom_pow));
            circ.conditionLast("m_" + std::to_string(j), 1);
        }
        circ.h(anc[0]);
        circ.measureQubits({anc[0]}, "m_" + std::to_string(l));
    }
    return circ;
}

Fixture
qpeFixture(QpeBug bug, const std::string &name)
{
    Fixture fx;
    fx.name = "qpe/" + name;
    fx.suspect = buildSemiclassicalQpe(bug);
    fx.reference = buildSemiclassicalQpe(QpeBug::None);
    return fx;
}

// --- Shared assertions -------------------------------------------------------

LocateConfig
measureConfig(Strategy strategy = Strategy::AdaptiveBinarySearch,
              unsigned num_threads = 0)
{
    LocateConfig cfg;
    cfg.strategy = strategy;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.numThreads = num_threads;
    return cfg;
}

void
expectLocalizes(const Fixture &fx, const LocalizationReport &report)
{
    ASSERT_TRUE(report.bugFound) << fx.name << ": " << report.summary();
    EXPECT_EQ(report.firstFailing, report.lastPassing + 1) << fx.name;
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << fx.name << ": " << report.summary();
}

class MeasureFixtures : public ::testing::TestWithParam<int>
{
  public:
    static Fixture
    make(int index)
    {
        switch (index) {
          case 0:
            return teleportFixture(TeleportBug::WrongInitialValue,
                                   "wrong-initial-value");
          case 1:
            return teleportFixture(TeleportBug::FlippedPayload,
                                   "flipped-payload");
          case 2:
            return teleportFixture(TeleportBug::MisroutedCorrection,
                                   "misrouted-correction");
          case 3:
            return teleportFixture(TeleportBug::BrokenMirror,
                                   "broken-mirror");
          case 4:
            return teleportFixture(TeleportBug::WrongCondValue,
                                   "wrong-cond-value");
          case 5:
            return qpeFixture(QpeBug::WrongEigenstate,
                              "wrong-eigenstate");
          case 6:
            return qpeFixture(QpeBug::FlippedPhase, "flipped-phase");
          case 7:
            return qpeFixture(QpeBug::WrongFeedback,
                              "wrong-feedback");
        }
        throw std::logic_error("bad fixture index");
    }
};

TEST_P(MeasureFixtures, AdaptiveSearchBracketsTheDefect)
{
    const Fixture fx = make(GetParam());
    const BugLocator locator(fx.suspect, fx.reference,
                             measureConfig());
    expectLocalizes(fx, locator.locate());
}

TEST_P(MeasureFixtures, FewerProbesThanLinearScan)
{
    const Fixture fx = make(GetParam());

    const BugLocator adaptive(fx.suspect, fx.reference,
                              measureConfig());
    const auto fast = adaptive.locate();

    const BugLocator linear(fx.suspect, fx.reference,
                            measureConfig(Strategy::LinearScan));
    const auto scan = linear.locate();

    expectLocalizes(fx, fast);
    expectLocalizes(fx, scan);
    EXPECT_LT(fast.probes.size(), scan.probes.size()) << fx.name;
}

TEST_P(MeasureFixtures, ThreadCountInvariant)
{
    const Fixture fx = make(GetParam());

    const BugLocator serial(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 1));
    const BugLocator four(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 4));
    const BugLocator pooled(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 0));
    const auto a = serial.locate();
    const auto b = four.locate();
    const auto c = pooled.locate();

    for (const auto *other : {&b, &c}) {
        EXPECT_EQ(a.lastPassing, other->lastPassing) << fx.name;
        EXPECT_EQ(a.firstFailing, other->firstFailing) << fx.name;
        ASSERT_EQ(a.probes.size(), other->probes.size()) << fx.name;
        for (std::size_t i = 0; i < a.probes.size(); ++i) {
            EXPECT_EQ(a.probes[i].boundary, other->probes[i].boundary);
            EXPECT_EQ(a.probes[i].ensembleSize,
                      other->probes[i].ensembleSize);
            // Bit-identical: Resimulate trials key their streams by
            // trial index, never by worker or shard.
            EXPECT_EQ(a.probes[i].pValue, other->probes[i].pValue);
            EXPECT_EQ(a.probes[i].failed, other->probes[i].failed);
        }
    }
}

TEST_P(MeasureFixtures, SeedInvariantInterval)
{
    const Fixture fx = make(GetParam());
    LocateConfig cfg = measureConfig();
    const auto a =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.seed = 0xfeedbeef;
    const auto b =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    EXPECT_EQ(a.lastPassing, b.lastPassing) << fx.name;
    EXPECT_EQ(a.firstFailing, b.firstFailing) << fx.name;
}

INSTANTIATE_TEST_SUITE_P(Taxonomy, MeasureFixtures,
                         ::testing::Range(0, 8));

// --- Probes beyond the first measure -----------------------------------------

TEST(MeasureLocate, ProbesLandBeyondTheFirstMeasure)
{
    // The defects sitting after the Bell measurement are only
    // reachable by probes beyond the first Measure — exactly the
    // range both families clamped off before Resimulate mode.
    const Fixture fx = teleportFixture(TeleportBug::BrokenMirror,
                                       "broken-mirror");
    const std::size_t measured = firstMeasureBoundary(fx.suspect);

    const BugLocator locator(fx.suspect, fx.reference,
                             measureConfig());
    const auto report = locator.locate();
    expectLocalizes(fx, report);
    EXPECT_GT(report.firstFailing, measured);
    EXPECT_TRUE(std::any_of(report.probes.begin(),
                            report.probes.end(),
                            [&](const ProbeRecord &rec) {
                                return rec.boundary > measured;
                            }));
}

// --- Predicate probes through measurement ------------------------------------

TEST(MeasureLocate, PredicateProbesCrossMeasurements)
{
    // The receiver's marginal is wrong from the defective reset on:
    // the oracle's mixture predicates must carry the scan across the
    // Bell measurement and the conditioned corrections, and its
    // first-failing boundary must sit at the defect. (The Bell pair's
    // CNOT later uniformises the receiver's marginal, so only the
    // exhaustive scan's first-failing semantics pins the onset — a
    // register marginal is not a monotone divergence witness, which
    // is exactly why the mirror family exists.)
    const Fixture fx = teleportFixture(TeleportBug::WrongInitialValue,
                                       "wrong-initial-value");
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator linear(fx.suspect, fx.reference,
                            measureConfig(Strategy::LinearScan));
    const auto scan = linear.locateByPredicates(recv);
    expectLocalizes(fx, scan);
    // The probeable range extends to the end of the program, not to
    // the first measure.
    EXPECT_EQ(scan.probes.size(), fx.suspect.size());

    // A defect past both measurements whose marginal divergence
    // persists bracket-localizes adaptively, in fewer probes.
    const Fixture late = teleportFixture(TeleportBug::BrokenMirror,
                                         "broken-mirror");
    const BugLocator adaptive(late.suspect, late.reference,
                              measureConfig());
    const auto report = adaptive.locateByPredicates(
        late.suspect.reg("recv"));
    expectLocalizes(late, report);
    EXPECT_LT(report.probes.size(), scan.probes.size());
}

TEST(MeasureLocate, MixturePredicatesAreExact)
{
    // Ground truth for the oracle through a measurement: after the
    // Bell measurement of the |Phi+>-teleport, the receiver's
    // unconditional marginal equals the payload's outcome
    // distribution (teleportation works before correction only up to
    // Pauli frames, which do not change the computational marginal of
    // this payload's |amplitudes|^2 mixed over outcomes).
    const Circuit circ = buildMeasuredTeleport(TeleportBug::None);
    const QubitRegister recv = circ.reg("recv");

    const PredicateOracle oracle(circ, recv);
    ASSERT_EQ(oracle.numBoundaries(), circ.size() + 1);

    // Before anything: classical |0>.
    EXPECT_EQ(oracle.at(0).kind, assertions::AssertionKind::Classical);

    // After the full program the receiver reads |0> again in every
    // branch: the mixture predicate collapses back to a classical
    // point mass — the verified-teleportation invariant.
    const auto &final_pred = oracle.at(circ.size());
    EXPECT_EQ(final_pred.kind, assertions::AssertionKind::Classical);
    EXPECT_EQ(final_pred.expectedValue, 0u);
}

// --- Semiclassical Shor (the flagship) ---------------------------------------

TEST(MeasureLocate, SemiclassicalShorWrongInverseBracketed)
{
    // Table 3's bug type 6 — the wrong modular inverse (12 instead of
    // 13) — injected into Beauregard's one-control-qubit circuit,
    // where it sits in the *last* phase-bit round, past the recycled
    // control's earlier measurements.
    algo::ShorConfig good_config;
    good_config.upperBits = 2;
    algo::ShorConfig bad_config = good_config;
    bad_config.pairs =
        algo::shorClassicalInputs(7, 15, good_config.upperBits);
    bad_config.pairs[0].second = 12; // 7^-1 mod 15 is 13, not 12

    const auto good = algo::buildSemiclassicalShorProgram(good_config);
    const auto bad = algo::buildSemiclassicalShorProgram(bad_config);

    LocateConfig cfg;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.ensembleSize = 32;
    cfg.maxEnsembleSize = 128;

    const BugLocator locator(bad.circuit, good.circuit, cfg);
    const auto report = locator.locate();

    ASSERT_TRUE(report.bugFound) << report.summary();
    EXPECT_TRUE(intervalCoversDefect(bad.circuit, good.circuit,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << report.summary();

    // The bracket sits past the first recycled-control measurement,
    // and the search needs under a tenth of the probes an exhaustive
    // scan spends (LinearScan adjudicates every boundary exactly
    // once, so its probe count is the boundary count).
    EXPECT_GT(report.firstFailing,
              firstMeasureBoundary(bad.circuit));
    EXPECT_LT(report.probes.size(), bad.circuit.size() / 10);
}

// --- Measurement-free regression: Resimulate == Truncate path ----------------

Fixture
flippedRotationFixture()
{
    Fixture fx;
    fx.name = "flipped-rotation";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        bugs::phiAddDecomposed(
            *circ, b, 13, ctrl[0],
            buggy ? bugs::Table1Variant::IncorrectFlipped
                  : bugs::Table1Variant::CorrectDropA);
        algo::iqft(*circ, b);
    }
    return fx;
}

Fixture
wrongInitialValueFixture()
{
    Fixture fx;
    fx.name = "wrong-initial-value";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto a = circ->addRegister("a", 4);
        const auto y = circ->addRegister("y", 3);
        circ->prepRegister(a, 5);
        algo::qft(*circ, a);
        algo::phiAdd(*circ, a, 3);
        algo::iqft(*circ, a);
        circ->prepRegister(y, buggy ? 0 : 1);
        circ->cnot(y[0], a[0]);
        circ->cnot(y[1], a[1]);
    }
    return fx;
}

/**
 * Probe counts, probed boundaries, verdicts, and the bracket must be
 * identical between the two modes on a measurement-free program (the
 * probe specs coincide; ensembles are drawn through different stream
 * layouts, so p-values are not compared).
 */
void
expectSameTrajectory(const LocalizationReport &truncate,
                     const LocalizationReport &resim,
                     const std::string &name)
{
    EXPECT_EQ(truncate.bugFound, resim.bugFound) << name;
    EXPECT_EQ(truncate.lastPassing, resim.lastPassing) << name;
    EXPECT_EQ(truncate.firstFailing, resim.firstFailing) << name;
    EXPECT_EQ(truncate.suspectGates, resim.suspectGates) << name;
    ASSERT_EQ(truncate.probes.size(), resim.probes.size()) << name;
    for (std::size_t i = 0; i < truncate.probes.size(); ++i) {
        EXPECT_EQ(truncate.probes[i].boundary,
                  resim.probes[i].boundary)
            << name << " probe " << i;
        EXPECT_EQ(truncate.probes[i].kind, resim.probes[i].kind)
            << name << " probe " << i;
        EXPECT_EQ(truncate.probes[i].failed, resim.probes[i].failed)
            << name << " probe " << i;
    }
}

TEST(MeasureFreeRegression, MirrorTrajectoryIdentical)
{
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    expectSameTrajectory(truncate, resim, fx.name);
}

TEST(MeasureFreeRegression, PredicateTrajectoryIdentical)
{
    const Fixture fx = wrongInitialValueFixture();
    const QubitRegister y = fx.suspect.reg("y");
    LocateConfig cfg;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locateByPredicates(y);
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locateByPredicates(y);
    expectSameTrajectory(truncate, resim, fx.name);
}

TEST(MeasureFreeRegression, LinearScanTrajectoryIdentical)
{
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg;
    cfg.strategy = Strategy::LinearScan;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    expectSameTrajectory(truncate, resim, fx.name);
}

} // anonymous namespace
