/**
 * @file
 * Localization past mid-circuit measurement: Resimulate-mode probes.
 *
 * The tier injects the paper's bug taxonomy into measurement-bearing
 * programs — a measured (non-deferred) teleportation protocol with
 * classically-conditioned corrections, a semiclassical phase
 * estimation with one recycled ancilla, and the semiclassical
 * one-control-qubit Shor circuit — and requires every variant to be
 * bracketed to an interval containing the defect, thread- and
 * seed-invariantly, in strictly fewer probes than the exhaustive
 * LinearScan. A regression block pins that Resimulate-mode
 * localization of a measurement-free program probes the same
 * boundaries with the same verdicts as the default Truncate path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "algo/shor.hh"
#include "assertions/checker.hh"
#include "bugs/injectors.hh"
#include "circuit/circuit.hh"
#include "common/errors.hh"
#include "locate/locate.hh"
#include "locate/predicates.hh"

namespace
{

using namespace qsa;
using namespace qsa::locate;
using qsa::circuit::Circuit;
using qsa::circuit::GateKind;
using qsa::circuit::Instruction;
using qsa::circuit::QubitRegister;

bool
sameInstruction(const Instruction &a, const Instruction &b)
{
    return a.kind == b.kind && a.controls == b.controls &&
           a.targets == b.targets && a.angle == b.angle &&
           a.bit == b.bit && a.label == b.label &&
           a.condLabel == b.condLabel && a.condValue == b.condValue;
}

bool
intervalCoversDefect(const Circuit &suspect, const Circuit &reference,
                     std::size_t begin, std::size_t end)
{
    const auto &si = suspect.instructions();
    const auto &ri = reference.instructions();
    for (std::size_t i = begin; i < end; ++i) {
        if (i >= si.size() || i >= ri.size())
            return true;
        if (!sameInstruction(si[i], ri[i]))
            return true;
    }
    return false;
}

/** Boundary index just after the first Measure instruction. */
std::size_t
firstMeasureBoundary(const Circuit &circ)
{
    const auto &insts = circ.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].kind == GateKind::Measure)
            return i + 1;
    }
    return insts.size();
}

/** A (suspect, reference) pair with a known injected defect. */
struct Fixture
{
    std::string name;
    Circuit suspect;
    Circuit reference;
};

// --- Measured teleportation --------------------------------------------------
//
// The non-deferred protocol: Bell-basis measurement mid-circuit,
// Pauli corrections classically conditioned on the recorded bits,
// then the inverse payload preparation returns the receiver to |0>
// exactly when teleportation worked.

enum class TeleportBug
{
    None,
    WrongInitialValue,   // type 1: receiver reset to |1>
    FlippedPayload,      // type 2: payload rotation sign flipped
    MisroutedCorrection, // type 4: corrections read the wrong bits
    BrokenMirror,        // type 5: verify step repeats instead of
                         //         inverting the payload rotation
    WrongCondValue,      // type 6: X correction fires on outcome 0
    ConditionedZFrame,   // the phase blind spot: the conditioned Z
                         //   correction applies an S frame instead,
                         //   a relative-phase defect invisible to
                         //   every computational-basis probe between
                         //   its site and the verify step
};

Circuit
buildMeasuredTeleport(TeleportBug bug)
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;

    Circuit circ;
    const auto msg = circ.addRegister("msg", 1);
    const auto half = circ.addRegister("half", 1);
    const auto recv = circ.addRegister("recv", 1);

    circ.prepZ(msg[0], 0);
    circ.prepZ(half[0], 0);
    circ.prepZ(recv[0],
               bug == TeleportBug::WrongInitialValue ? 1 : 0); // [2]
    circ.ry(msg[0],
            bug == TeleportBug::FlippedPayload ? -theta : theta); // [3]
    circ.rz(msg[0], phi);
    circ.h(half[0]);
    circ.cnot(half[0], recv[0]);
    circ.cnot(msg[0], half[0]);
    circ.h(msg[0]);
    circ.measureQubits({half[0]}, "m_x"); // [9]
    circ.measureQubits({msg[0]}, "m_z");  // [10]

    circ.x(recv[0]); // [11]
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_z" : "m_x",
        bug == TeleportBug::WrongCondValue ? 0 : 1);
    if (bug == TeleportBug::ConditionedZFrame)
        circ.phase(recv[0], M_PI / 2); // [12] S frame instead of Z
    else
        circ.z(recv[0]); // [12]
    circ.conditionLast(
        bug == TeleportBug::MisroutedCorrection ? "m_x" : "m_z", 1);

    circ.rz(recv[0], -phi); // [13]
    circ.ry(recv[0],
            bug == TeleportBug::BrokenMirror ? theta : -theta); // [14]
    return circ;
}

Fixture
teleportFixture(TeleportBug bug, const std::string &name)
{
    Fixture fx;
    fx.name = "teleport/" + name;
    fx.suspect = buildMeasuredTeleport(bug);
    fx.reference = buildMeasuredTeleport(TeleportBug::None);
    return fx;
}

// --- Semiclassical phase estimation ------------------------------------------
//
// One recycled ancilla measures one phase bit per round (least
// significant first), with feedback rotations conditioned on the
// recorded bits — the same recurrence as the semiclassical Shor
// driver, on a two-qubit program small enough for exhaustive scans.
// The estimated phase 1/3 is non-dyadic, so every round's measurement
// is genuinely random and the boundary predicates are true outcome
// mixtures.

enum class QpeBug
{
    None,
    WrongEigenstate,   // type 1: system prepared in |0>
    FlippedPhase,      // type 2: controlled-phase sign flipped
    WrongFeedback,     // type 3: feedback angle denominator off by
                       //         one power of two (iteration bug)
};

Circuit
buildSemiclassicalQpe(QpeBug bug, unsigned t = 3)
{
    const double phase = 1.0 / 3.0; // non-dyadic: every bit is random

    Circuit circ;
    const auto sys = circ.addRegister("sys", 1);
    const auto anc = circ.addRegister("anc", 1);

    circ.prepZ(sys[0], bug == QpeBug::WrongEigenstate ? 0 : 1);
    circ.prepZ(anc[0], 0);

    for (unsigned l = t; l >= 1; --l) {
        if (l < t)
            circ.prepZ(anc[0], 0); // recycle the ancilla
        circ.h(anc[0]);
        const double sign = bug == QpeBug::FlippedPhase ? -1.0 : 1.0;
        circ.cphase(anc[0], sys[0],
                    sign * 2.0 * M_PI * phase *
                        static_cast<double>(1u << (l - 1)));
        for (unsigned j = l + 1; j <= t; ++j) {
            const unsigned denom_pow =
                bug == QpeBug::WrongFeedback ? j - l : j - l + 1;
            circ.phase(anc[0],
                       -2.0 * M_PI /
                           static_cast<double>(1u << denom_pow));
            circ.conditionLast("m_" + std::to_string(j), 1);
        }
        circ.h(anc[0]);
        circ.measureQubits({anc[0]}, "m_" + std::to_string(l));
    }
    return circ;
}

Fixture
qpeFixture(QpeBug bug, const std::string &name)
{
    Fixture fx;
    fx.name = "qpe/" + name;
    fx.suspect = buildSemiclassicalQpe(bug);
    fx.reference = buildSemiclassicalQpe(QpeBug::None);
    return fx;
}

// --- Shared assertions -------------------------------------------------------

LocateConfig
measureConfig(Strategy strategy = Strategy::AdaptiveBinarySearch,
              unsigned num_threads = 0)
{
    LocateConfig cfg;
    cfg.strategy = strategy;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.numThreads = num_threads;
    return cfg;
}

void
expectLocalizes(const Fixture &fx, const LocalizationReport &report)
{
    ASSERT_TRUE(report.bugFound) << fx.name << ": " << report.summary();
    EXPECT_EQ(report.firstFailing, report.lastPassing + 1) << fx.name;
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << fx.name << ": " << report.summary();
}

class MeasureFixtures : public ::testing::TestWithParam<int>
{
  public:
    static Fixture
    make(int index)
    {
        switch (index) {
          case 0:
            return teleportFixture(TeleportBug::WrongInitialValue,
                                   "wrong-initial-value");
          case 1:
            return teleportFixture(TeleportBug::FlippedPayload,
                                   "flipped-payload");
          case 2:
            return teleportFixture(TeleportBug::MisroutedCorrection,
                                   "misrouted-correction");
          case 3:
            return teleportFixture(TeleportBug::BrokenMirror,
                                   "broken-mirror");
          case 4:
            return teleportFixture(TeleportBug::WrongCondValue,
                                   "wrong-cond-value");
          case 5:
            return qpeFixture(QpeBug::WrongEigenstate,
                              "wrong-eigenstate");
          case 6:
            return qpeFixture(QpeBug::FlippedPhase, "flipped-phase");
          case 7:
            return qpeFixture(QpeBug::WrongFeedback,
                              "wrong-feedback");
        }
        throw std::logic_error("bad fixture index");
    }
};

TEST_P(MeasureFixtures, AdaptiveSearchBracketsTheDefect)
{
    const Fixture fx = make(GetParam());
    const BugLocator locator(fx.suspect, fx.reference,
                             measureConfig());
    expectLocalizes(fx, locator.locate());
}

TEST_P(MeasureFixtures, FewerProbesThanLinearScan)
{
    const Fixture fx = make(GetParam());

    // Strategy comparison over the same boundary range: static
    // pruning would shrink both searches, so it stays off here.
    LocateConfig fast_cfg = measureConfig();
    fast_cfg.staticPruning = false;
    const BugLocator adaptive(fx.suspect, fx.reference, fast_cfg);
    const auto fast = adaptive.locate();

    LocateConfig scan_cfg = measureConfig(Strategy::LinearScan);
    scan_cfg.staticPruning = false;
    const BugLocator linear(fx.suspect, fx.reference, scan_cfg);
    const auto scan = linear.locate();

    expectLocalizes(fx, fast);
    expectLocalizes(fx, scan);
    EXPECT_LT(fast.probes.size(), scan.probes.size()) << fx.name;
}

TEST_P(MeasureFixtures, ThreadCountInvariant)
{
    const Fixture fx = make(GetParam());

    const BugLocator serial(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 1));
    const BugLocator four(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 4));
    const BugLocator pooled(
        fx.suspect, fx.reference,
        measureConfig(Strategy::AdaptiveBinarySearch, 0));
    const auto a = serial.locate();
    const auto b = four.locate();
    const auto c = pooled.locate();

    for (const auto *other : {&b, &c}) {
        EXPECT_EQ(a.lastPassing, other->lastPassing) << fx.name;
        EXPECT_EQ(a.firstFailing, other->firstFailing) << fx.name;
        ASSERT_EQ(a.probes.size(), other->probes.size()) << fx.name;
        for (std::size_t i = 0; i < a.probes.size(); ++i) {
            EXPECT_EQ(a.probes[i].boundary, other->probes[i].boundary);
            EXPECT_EQ(a.probes[i].ensembleSize,
                      other->probes[i].ensembleSize);
            // Bit-identical: Resimulate trials key their streams by
            // trial index, never by worker or shard.
            EXPECT_EQ(a.probes[i].pValue, other->probes[i].pValue);
            EXPECT_EQ(a.probes[i].failed, other->probes[i].failed);
        }
    }
}

TEST_P(MeasureFixtures, SeedInvariantInterval)
{
    const Fixture fx = make(GetParam());
    LocateConfig cfg = measureConfig();
    const auto a =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.seed = 0xfeedbeef;
    const auto b =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    EXPECT_EQ(a.lastPassing, b.lastPassing) << fx.name;
    EXPECT_EQ(a.firstFailing, b.firstFailing) << fx.name;
}

INSTANTIATE_TEST_SUITE_P(Taxonomy, MeasureFixtures,
                         ::testing::Range(0, 8));

// --- Probes beyond the first measure -----------------------------------------

TEST(MeasureLocate, ProbesLandBeyondTheFirstMeasure)
{
    // The defects sitting after the Bell measurement are only
    // reachable by probes beyond the first Measure — exactly the
    // range both families clamped off before Resimulate mode.
    const Fixture fx = teleportFixture(TeleportBug::BrokenMirror,
                                       "broken-mirror");
    const std::size_t measured = firstMeasureBoundary(fx.suspect);

    const BugLocator locator(fx.suspect, fx.reference,
                             measureConfig());
    const auto report = locator.locate();
    expectLocalizes(fx, report);
    EXPECT_GT(report.firstFailing, measured);
    EXPECT_TRUE(std::any_of(report.probes.begin(),
                            report.probes.end(),
                            [&](const ProbeRecord &rec) {
                                return rec.boundary > measured;
                            }));
}

// --- Predicate probes through measurement ------------------------------------

TEST(MeasureLocate, PredicateProbesCrossMeasurements)
{
    // The receiver's marginal is wrong from the defective reset on:
    // the oracle's mixture predicates must carry the scan across the
    // Bell measurement and the conditioned corrections, and its
    // first-failing boundary must sit at the defect. (The Bell pair's
    // CNOT later uniformises the receiver's marginal, so only the
    // exhaustive scan's first-failing semantics pins the onset — a
    // register marginal is not a monotone divergence witness, which
    // is exactly why the mirror family exists.)
    const Fixture fx = teleportFixture(TeleportBug::WrongInitialValue,
                                       "wrong-initial-value");
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator linear(fx.suspect, fx.reference,
                            measureConfig(Strategy::LinearScan));
    const auto scan = linear.locateByPredicates(recv);
    expectLocalizes(fx, scan);
    // The probeable range extends to the end of the program, not to
    // the first measure; the boundaries the static pre-pass certified
    // equivalent are the only ones skipped.
    EXPECT_EQ(scan.probes.size() + scan.prunedBoundaries,
              fx.suspect.size());

    // A defect past both measurements whose marginal divergence
    // persists bracket-localizes adaptively, in fewer probes.
    const Fixture late = teleportFixture(TeleportBug::BrokenMirror,
                                         "broken-mirror");
    const BugLocator adaptive(late.suspect, late.reference,
                              measureConfig());
    const auto report = adaptive.locateByPredicates(
        late.suspect.reg("recv"));
    expectLocalizes(late, report);
    EXPECT_LT(report.probes.size(), scan.probes.size());
}

TEST(MeasureLocate, MixturePredicatesAreExact)
{
    // Ground truth for the oracle through a measurement: after the
    // Bell measurement of the |Phi+>-teleport, the receiver's
    // unconditional marginal equals the payload's outcome
    // distribution (teleportation works before correction only up to
    // Pauli frames, which do not change the computational marginal of
    // this payload's |amplitudes|^2 mixed over outcomes).
    const Circuit circ = buildMeasuredTeleport(TeleportBug::None);
    const QubitRegister recv = circ.reg("recv");

    const PredicateOracle oracle(circ, recv);
    ASSERT_EQ(oracle.numBoundaries(), circ.size() + 1);

    // Before anything: classical |0>.
    EXPECT_EQ(oracle.at(0).kind, assertions::AssertionKind::Classical);

    // After the full program the receiver reads |0> again in every
    // branch: the mixture predicate collapses back to a classical
    // point mass — the verified-teleportation invariant.
    const auto &final_pred = oracle.at(circ.size());
    EXPECT_EQ(final_pred.kind, assertions::AssertionKind::Classical);
    EXPECT_EQ(final_pred.expectedValue, 0u);
}

// --- Semiclassical Shor (the flagship) ---------------------------------------

TEST(MeasureLocate, SemiclassicalShorWrongInverseBracketed)
{
    // Table 3's bug type 6 — the wrong modular inverse (12 instead of
    // 13) — injected into Beauregard's one-control-qubit circuit,
    // where it sits in the *last* phase-bit round, past the recycled
    // control's earlier measurements.
    algo::ShorConfig good_config;
    good_config.upperBits = 2;
    algo::ShorConfig bad_config = good_config;
    bad_config.pairs =
        algo::shorClassicalInputs(7, 15, good_config.upperBits);
    bad_config.pairs[0].second = 12; // 7^-1 mod 15 is 13, not 12

    const auto good = algo::buildSemiclassicalShorProgram(good_config);
    const auto bad = algo::buildSemiclassicalShorProgram(bad_config);

    LocateConfig cfg;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.ensembleSize = 32;
    cfg.maxEnsembleSize = 128;

    const BugLocator locator(bad.circuit, good.circuit, cfg);
    const auto report = locator.locate();

    ASSERT_TRUE(report.bugFound) << report.summary();
    EXPECT_TRUE(intervalCoversDefect(bad.circuit, good.circuit,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << report.summary();

    // The bracket sits past the first recycled-control measurement,
    // and the search needs under a tenth of the probes an exhaustive
    // scan spends (LinearScan adjudicates every boundary exactly
    // once, so its probe count is the boundary count).
    EXPECT_GT(report.firstFailing,
              firstMeasureBoundary(bad.circuit));
    EXPECT_LT(report.probes.size(), bad.circuit.size() / 10);
}

// --- Measurement-free regression: Resimulate == Truncate path ----------------

Fixture
flippedRotationFixture()
{
    Fixture fx;
    fx.name = "flipped-rotation";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        bugs::phiAddDecomposed(
            *circ, b, 13, ctrl[0],
            buggy ? bugs::Table1Variant::IncorrectFlipped
                  : bugs::Table1Variant::CorrectDropA);
        algo::iqft(*circ, b);
    }
    return fx;
}

Fixture
wrongInitialValueFixture()
{
    Fixture fx;
    fx.name = "wrong-initial-value";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto a = circ->addRegister("a", 4);
        const auto y = circ->addRegister("y", 3);
        circ->prepRegister(a, 5);
        algo::qft(*circ, a);
        algo::phiAdd(*circ, a, 3);
        algo::iqft(*circ, a);
        circ->prepRegister(y, buggy ? 0 : 1);
        circ->cnot(y[0], a[0]);
        circ->cnot(y[1], a[1]);
    }
    return fx;
}

/**
 * Probe counts, probed boundaries, verdicts, and the bracket must be
 * identical between the two modes on a measurement-free program (the
 * probe specs coincide; ensembles are drawn through different stream
 * layouts, so p-values are not compared).
 */
void
expectSameTrajectory(const LocalizationReport &truncate,
                     const LocalizationReport &resim,
                     const std::string &name)
{
    EXPECT_EQ(truncate.bugFound, resim.bugFound) << name;
    EXPECT_EQ(truncate.lastPassing, resim.lastPassing) << name;
    EXPECT_EQ(truncate.firstFailing, resim.firstFailing) << name;
    EXPECT_EQ(truncate.suspectGates, resim.suspectGates) << name;
    ASSERT_EQ(truncate.probes.size(), resim.probes.size()) << name;
    for (std::size_t i = 0; i < truncate.probes.size(); ++i) {
        EXPECT_EQ(truncate.probes[i].boundary,
                  resim.probes[i].boundary)
            << name << " probe " << i;
        EXPECT_EQ(truncate.probes[i].kind, resim.probes[i].kind)
            << name << " probe " << i;
        EXPECT_EQ(truncate.probes[i].failed, resim.probes[i].failed)
            << name << " probe " << i;
    }
}

TEST(MeasureFreeRegression, MirrorTrajectoryIdentical)
{
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    expectSameTrajectory(truncate, resim, fx.name);
}

TEST(MeasureFreeRegression, PredicateTrajectoryIdentical)
{
    const Fixture fx = wrongInitialValueFixture();
    const QubitRegister y = fx.suspect.reg("y");
    LocateConfig cfg;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locateByPredicates(y);
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locateByPredicates(y);
    expectSameTrajectory(truncate, resim, fx.name);
}

// --- The phase blind spot: conditioned-Z-frame defect ------------------------
//
// The conditioned Z correction applies an S frame instead of Z: in
// every m_z = 1 branch the receiver differs from the reference by a
// relative phase only. No computational-basis probe between the
// defect's site [12] and the verify rotation [14] can see it — the
// mixture marginals are bit-identical — so the computational families
// bracket the verify step, not the defect. The register-scoped
// swap-test family compares reduced states, whose overlap deficit is
// invariant under the common verify rotations, and brackets the
// defect itself.

/** Instruction index of the defective conditioned correction. */
constexpr std::size_t kZFrameDefect = 12;

Fixture
zFrameFixture()
{
    return teleportFixture(TeleportBug::ConditionedZFrame,
                           "conditioned-z-frame");
}

LocateConfig
zFrameConfig(ProbeFamily family,
             Strategy strategy = Strategy::AdaptiveBinarySearch,
             unsigned num_threads = 0)
{
    LocateConfig cfg = measureConfig(strategy, num_threads);
    cfg.family = family;
    return cfg;
}

TEST(PhaseBlindSpot, SwapTestBracketsTheDefect)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator locator(fx.suspect, fx.reference,
                             zFrameConfig(ProbeFamily::SwapTest));
    const auto report = locator.locateByPredicates(recv);

    expectLocalizes(fx, report);
    EXPECT_EQ(report.suspectBegin(), kZFrameDefect)
        << report.summary();
    EXPECT_EQ(report.decidedBy, ProbeFamily::SwapTest);
    for (const auto &rec : report.probes)
        EXPECT_EQ(rec.family, ProbeFamily::SwapTest);
}

TEST(PhaseBlindSpot, SwapTestFewerProbesThanLinearScan)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    // Strategy comparison over the same boundary range: static
    // pruning would shrink both searches, so it stays off here.
    LocateConfig fast_cfg = zFrameConfig(ProbeFamily::SwapTest);
    fast_cfg.staticPruning = false;
    const BugLocator adaptive(fx.suspect, fx.reference, fast_cfg);
    const auto fast = adaptive.locateByPredicates(recv);

    LocateConfig scan_cfg =
        zFrameConfig(ProbeFamily::SwapTest, Strategy::LinearScan);
    scan_cfg.staticPruning = false;
    const BugLocator linear(fx.suspect, fx.reference, scan_cfg);
    const auto scan = linear.locateByPredicates(recv);

    expectLocalizes(fx, fast);
    expectLocalizes(fx, scan);
    EXPECT_EQ(scan.suspectBegin(), kZFrameDefect);
    EXPECT_LT(fast.probes.size(), scan.probes.size());
}

TEST(PhaseBlindSpot, SwapTestThreadCountInvariant)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    std::vector<LocalizationReport> reports;
    for (unsigned threads : {1u, 4u, 0u}) {
        const BugLocator locator(
            fx.suspect, fx.reference,
            zFrameConfig(ProbeFamily::SwapTest,
                         Strategy::AdaptiveBinarySearch, threads));
        reports.push_back(locator.locateByPredicates(recv));
    }
    const auto &a = reports.front();
    for (std::size_t r = 1; r < reports.size(); ++r) {
        const auto &b = reports[r];
        EXPECT_EQ(a.lastPassing, b.lastPassing);
        EXPECT_EQ(a.firstFailing, b.firstFailing);
        ASSERT_EQ(a.probes.size(), b.probes.size());
        for (std::size_t i = 0; i < a.probes.size(); ++i) {
            EXPECT_EQ(a.probes[i].boundary, b.probes[i].boundary);
            EXPECT_EQ(a.probes[i].ensembleSize,
                      b.probes[i].ensembleSize);
            // Bit-identical: swap-probe trials key their streams by
            // trial index, never by worker or shard.
            EXPECT_EQ(a.probes[i].pValue, b.probes[i].pValue);
            EXPECT_EQ(a.probes[i].failed, b.probes[i].failed);
        }
    }
}

TEST(PhaseBlindSpot, SwapTestSeedInvariantInterval)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    LocateConfig cfg = zFrameConfig(ProbeFamily::SwapTest);
    const auto a = BugLocator(fx.suspect, fx.reference, cfg)
                       .locateByPredicates(recv);
    cfg.seed = 0xfeedbeef;
    const auto b = BugLocator(fx.suspect, fx.reference, cfg)
                       .locateByPredicates(recv);
    EXPECT_EQ(a.lastPassing, b.lastPassing);
    EXPECT_EQ(a.firstFailing, b.firstFailing);
    EXPECT_EQ(a.suspectBegin(), kZFrameDefect);
}

/**
 * Regression pin of the blind spot itself: both computational-basis
 * families *do* reject — the divergence reaches the receiver's
 * marginal at the verify rotation — but the bracket sits at the
 * verify step, strictly past the defect, and no probe between the
 * defect's site and the verify step fails. This documents why the
 * phase-sensitive families exist; if a future change makes a
 * computational probe see the defect in place, this pin should fail
 * and the taxonomy in locate.hh revisited.
 */
TEST(PhaseBlindSpot, ComputationalFamiliesBracketOnlyTheVerifyStep)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    // Segment-mirror family (the locate() default).
    const BugLocator mirror(
        fx.suspect, fx.reference,
        zFrameConfig(ProbeFamily::SegmentMirror,
                     Strategy::LinearScan));
    const auto mirror_scan = mirror.locate();
    ASSERT_TRUE(mirror_scan.bugFound) << mirror_scan.summary();
    EXPECT_GT(mirror_scan.suspectBegin(), kZFrameDefect)
        << mirror_scan.summary();
    EXPECT_FALSE(intervalCoversDefect(fx.suspect, fx.reference,
                                      mirror_scan.suspectBegin(),
                                      mirror_scan.suspectEnd()));

    // Mixture-marginal family on the receiver register.
    const BugLocator marginal(
        fx.suspect, fx.reference,
        zFrameConfig(ProbeFamily::MixtureMarginal,
                     Strategy::LinearScan));
    const auto marginal_scan = marginal.locateByPredicates(recv);
    ASSERT_TRUE(marginal_scan.bugFound) << marginal_scan.summary();
    EXPECT_GT(marginal_scan.suspectBegin(), kZFrameDefect)
        << marginal_scan.summary();
    EXPECT_FALSE(intervalCoversDefect(fx.suspect, fx.reference,
                                      marginal_scan.suspectBegin(),
                                      marginal_scan.suspectEnd()));

    // The mirror record at the bracket carries the phase-ambiguity
    // flag Auto escalates on: only the computational pre-marginal
    // component failed, the phase-sensitive unwind passed.
    bool flagged = false;
    for (const auto &rec : mirror_scan.probes) {
        if (rec.boundary == mirror_scan.firstFailing && rec.failed)
            flagged = flagged || rec.phaseAmbiguous;
    }
    EXPECT_TRUE(flagged);
}

TEST(PhaseBlindSpot, RotatedMarginalSeesTheFrameDefectInPlace)
{
    // The S-frame divergence is visible in the receiver's X/Y
    // marginals the instruction it appears, so the rotated triple
    // brackets the defect exactly where the computational marginal
    // could not.
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator locator(
        fx.suspect, fx.reference,
        zFrameConfig(ProbeFamily::RotatedMarginal));
    const auto report = locator.locateByPredicates(recv);

    expectLocalizes(fx, report);
    EXPECT_EQ(report.suspectBegin(), kZFrameDefect)
        << report.summary();
    EXPECT_EQ(report.decidedBy, ProbeFamily::RotatedMarginal);
}

TEST(PhaseBlindSpot, AutoEscalatesFromMarginalsToSwapTest)
{
    const Fixture fx = zFrameFixture();
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator locator(fx.suspect, fx.reference,
                             zFrameConfig(ProbeFamily::Auto));
    const auto report = locator.locateByPredicates(recv);

    expectLocalizes(fx, report);
    EXPECT_TRUE(report.escalatedToSwapTest) << report.summary();
    EXPECT_EQ(report.decidedBy, ProbeFamily::SwapTest);
    EXPECT_EQ(report.suspectBegin(), kZFrameDefect)
        << report.summary();

    // Both families appear in the probe log: the cheap marginal
    // probes first, then the swap-test escalation.
    bool sawMarginal = false, sawSwap = false;
    for (const auto &rec : report.probes) {
        sawMarginal = sawMarginal ||
                      rec.family == ProbeFamily::MixtureMarginal;
        sawSwap = sawSwap || rec.family == ProbeFamily::SwapTest;
    }
    EXPECT_TRUE(sawMarginal);
    EXPECT_TRUE(sawSwap);
}

TEST(PhaseBlindSpot, AutoDoesNotEscalateWhenTheMarginalBracketHolds)
{
    // A defect whose divergence arises where it becomes visible (the
    // broken verify mirror) is confirmed by the single decisive swap
    // probe at lastPassing; Auto must not pay for a second search.
    const Fixture fx = teleportFixture(TeleportBug::BrokenMirror,
                                       "broken-mirror");
    const QubitRegister recv = fx.suspect.reg("recv");

    const BugLocator locator(fx.suspect, fx.reference,
                             zFrameConfig(ProbeFamily::Auto));
    const auto report = locator.locateByPredicates(recv);

    expectLocalizes(fx, report);
    EXPECT_FALSE(report.escalatedToSwapTest) << report.summary();
    EXPECT_EQ(report.decidedBy, ProbeFamily::MixtureMarginal);
    // Exactly one swap-test record: the escalation-decision probe.
    std::size_t swapProbes = 0;
    for (const auto &rec : report.probes) {
        if (rec.family == ProbeFamily::SwapTest)
            ++swapProbes;
    }
    EXPECT_EQ(swapProbes, 1u);
}

TEST(PhaseBlindSpot, FullSpaceAutoEscalatesOnAmbiguousMirrorVerdict)
{
    // locate()'s Auto family: the mirror bracket at the verify step
    // is phase-ambiguous (marginal-only failure), so the search
    // escalates to full-space swap-test probes. The full-space
    // comparator's sensitivity is diluted by the measured qubits'
    // branch orthogonality — the register-scoped family is the sharp
    // tool — so only the escalation mechanics are pinned here.
    const Fixture fx = zFrameFixture();
    const BugLocator locator(fx.suspect, fx.reference,
                             zFrameConfig(ProbeFamily::Auto));
    const auto report = locator.locate();
    EXPECT_TRUE(report.escalatedToSwapTest) << report.summary();
    EXPECT_TRUE(report.bugFound) << report.summary();
}

TEST(PhaseBlindSpot, FullSpaceAutoMatchesMirrorWhenUnambiguous)
{
    // A defect whose segment unwind fails too (the broken verify
    // mirror) is not phase-ambiguous: Auto must not escalate, and
    // the trajectory is the mirror family's exactly.
    const Fixture fx = teleportFixture(TeleportBug::BrokenMirror,
                                       "broken-mirror");

    const auto mirror =
        BugLocator(fx.suspect, fx.reference,
                   zFrameConfig(ProbeFamily::SegmentMirror))
            .locate();
    const auto agile = BugLocator(fx.suspect, fx.reference,
                                  zFrameConfig(ProbeFamily::Auto))
                           .locate();

    EXPECT_FALSE(agile.escalatedToSwapTest) << agile.summary();
    EXPECT_EQ(agile.lastPassing, mirror.lastPassing);
    EXPECT_EQ(agile.firstFailing, mirror.firstFailing);
    ASSERT_EQ(agile.probes.size(), mirror.probes.size());
    for (std::size_t i = 0; i < agile.probes.size(); ++i) {
        EXPECT_EQ(agile.probes[i].boundary,
                  mirror.probes[i].boundary);
        EXPECT_EQ(agile.probes[i].pValue, mirror.probes[i].pValue);
    }
}

TEST(PhaseBlindSpot, AutoFallsBackToMarginalsPastTheSwapGate)
{
    // Swap-test probes simulate two embedded copies (2n+1 qubits),
    // so they are gated to n <= 10. An Auto search on a wider
    // program must keep the cheap marginal verdict — not die
    // constructing a prober it may never need.
    Fixture fx;
    fx.name = "wide-auto";
    for (Circuit *circ : {&fx.suspect, &fx.reference}) {
        const bool buggy = circ == &fx.suspect;
        const auto q = circ->addRegister("q", 11);
        circ->prepRegister(q, 0);
        circ->x(q[buggy ? 3 : 4]); // index-aligned, marginal-visible
        circ->h(q[0]);
    }
    const QubitRegister q = fx.suspect.reg("q");

    LocateConfig cfg;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    cfg.family = ProbeFamily::Auto;
    const auto agile = BugLocator(fx.suspect, fx.reference, cfg)
                           .locateByPredicates(q);
    cfg.family = ProbeFamily::MixtureMarginal;
    const auto marginal = BugLocator(fx.suspect, fx.reference, cfg)
                              .locateByPredicates(q);

    expectLocalizes(fx, agile);
    EXPECT_FALSE(agile.escalatedToSwapTest);
    EXPECT_EQ(agile.decidedBy, ProbeFamily::MixtureMarginal);
    EXPECT_EQ(agile.lastPassing, marginal.lastPassing);
    EXPECT_EQ(agile.firstFailing, marginal.firstFailing);
    EXPECT_EQ(agile.probes.size(), marginal.probes.size());
}

TEST(PhaseBlindSpot, SwapTestWorksInSampleFinalStateMode)
{
    // On a measurement-free program the comparator's null is a pure
    // point mass (ancilla always 0) and the default sampling mode
    // carries the probes; the flipped rotation is phase-visible.
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg;
    cfg.family = ProbeFamily::SwapTest;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto report =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    ASSERT_TRUE(report.bugFound) << report.summary();
    EXPECT_TRUE(intervalCoversDefect(fx.suspect, fx.reference,
                                     report.suspectBegin(),
                                     report.suspectEnd()))
        << report.summary();
}

// --- Config validation and diagnostics ---------------------------------------

TEST(LocateValidation, RejectsPassThresholdOutsideUnitInterval)
{
    const Fixture fx = zFrameFixture();
    LocateConfig cfg = measureConfig();
    cfg.passThreshold = 1.5;
    EXPECT_EXIT((BugLocator(fx.suspect, fx.reference, cfg)),
                ::testing::ExitedWithCode(1), "outside \\[0, 1\\]");
    cfg.passThreshold = -0.1;
    EXPECT_EXIT((BugLocator(fx.suspect, fx.reference, cfg)),
                ::testing::ExitedWithCode(1), "outside \\[0, 1\\]");
}

TEST(LocateValidation, RegisterFamiliesRejectedOnFullSpaceLocate)
{
    const Fixture fx = zFrameFixture();
    LocateConfig cfg = measureConfig();
    cfg.family = ProbeFamily::RotatedMarginal;
    const BugLocator locator(fx.suspect, fx.reference, cfg);
    EXPECT_EXIT(locator.locate(), ::testing::ExitedWithCode(1),
                "locateByPredicates");
}

TEST(LocateValidation, BranchCapDiagnosticNamesTheInstruction)
{
    // One recycled qubit measured 13 times doubles the branch count
    // past the 2^12 cap. In exact mode the failure must be a designed
    // diagnostic — a catchable DeriveError naming the measuring
    // instruction and pointing at the sampled-mode escape hatch — not
    // a silent truncation, an OOM, or a process death. The default
    // Auto mode does not fail at all: it falls back to the sampled
    // oracle.
    Circuit circ(1);
    circ.prepZ(0, 0);
    for (int round = 0; round < 13; ++round) {
        circ.h(0);
        circ.measureQubits({0}, "m_" + std::to_string(round));
    }
    const QubitRegister reg("q", {0});

    OracleOptions exact;
    exact.mode = OracleMode::Exact;
    try {
        const PredicateOracle oracle(circ, reg, 0x51c0ffee, exact);
        FAIL() << "exact derivation past the branch cap must throw";
    } catch (const DeriveError &err) {
        const std::string message = err.what();
        EXPECT_NE(message.find(
                      "measurement-branch enumeration exceeded its "
                      "cap"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("sampled"), std::string::npos)
            << message;
        EXPECT_NE(err.where().find("measure"), std::string::npos)
            << err.where();
    }

    const PredicateOracle fallback(circ, reg);
    EXPECT_TRUE(fallback.sampled());
}

TEST(MeasureFreeRegression, LinearScanTrajectoryIdentical)
{
    const Fixture fx = flippedRotationFixture();
    LocateConfig cfg;
    cfg.strategy = Strategy::LinearScan;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;

    const auto truncate =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    cfg.mode = assertions::EnsembleMode::Resimulate;
    const auto resim =
        BugLocator(fx.suspect, fx.reference, cfg).locate();
    expectSameTrajectory(truncate, resim, fx.name);
}

} // anonymous namespace
