/**
 * @file
 * Tests for qsa::runtime: the thread pool, the RNG splitting/jumping
 * machinery it relies on, thread-count invariance of the ensemble
 * engine, and batch-vs-serial equivalence of BatchRunner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    runtime::ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    runtime::ThreadPool pool(4);
    bool touched = false;
    pool.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, SerialPoolRunsInOrder)
{
    runtime::ThreadPool pool(1);
    EXPECT_EQ(pool.concurrency(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    runtime::ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A worker body fanning out again must run inline, not wait
        // for pool slots it may be occupying itself.
        pool.parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, BodyExceptionPropagatesAndPoolSurvives)
{
    runtime::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i == 10)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The job must not wedge the pool: later work still runs.
    std::atomic<int> count{0};
    pool.parallelFor(32, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReusableAcrossManyInvocations)
{
    runtime::ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(10, [&](std::size_t i) { sum += (long)i; });
    EXPECT_EQ(sum.load(), 50 * 45);
}

// --- Rng splitting and jumping --------------------------------------------

TEST(RngSplit, MatchesDocumentedGammaStreamDerivation)
{
    // split(i) is documented (rng.hh) as seeding the child with the
    // i-th output of the SplitMix64 sequence started at the parent
    // seed. Recompute that by hand through the public splitMix64.
    const std::uint64_t seed = 0x51c0ffee;
    for (std::uint64_t i : {0ull, 1ull, 7ull, 63ull}) {
        std::uint64_t sm = seed + i * 0x9e3779b97f4a7c15ull;
        Rng expected{splitMix64(sm)};
        Rng child = Rng(seed).split(i);
        for (int k = 0; k < 4; ++k)
            EXPECT_EQ(child.next(), expected.next());
    }
}

TEST(RngSplit, ChildrenAreDistinctAcrossManyShards)
{
    // The satellite requirement: collision-free stream splitting for
    // >= 64 shards. The derivation is injective in the child index, so
    // the children's first outputs must all differ (xoshiro's first
    // output is a bijective-ish hash of the seed; 4096 distinct seeds
    // colliding here would be a real bug, not bad luck).
    const Rng master(0xdeadbeef);
    std::set<std::uint64_t> firsts;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        Rng child = master.split(i);
        firsts.insert(child.next());
    }
    EXPECT_EQ(firsts.size(), 4096u);
}

TEST(RngSplit, DeterministicPerIndex)
{
    const Rng master(123);
    Rng a = master.split(42);
    Rng b = master.split(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngJump, JumpedStreamsDiffer)
{
    Rng base(7);
    Rng hopped(7);
    hopped.jump();
    std::set<std::uint64_t> base_vals;
    for (int i = 0; i < 512; ++i)
        base_vals.insert(base.next());
    // Disjoint subsequences: none of the jumped stream's outputs
    // should appear in the base stream's window.
    for (int i = 0; i < 512; ++i)
        EXPECT_EQ(base_vals.count(hopped.next()), 0u);
}

TEST(RngJump, JumpedCountComposes)
{
    Rng twice(99);
    twice.jump();
    twice.jump();
    Rng composed = Rng(99).jumped(2);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(twice.next(), composed.next());

    Rng far(99);
    far.longJump();
    Rng near(99);
    near.jump();
    EXPECT_NE(far.next(), near.next());
}

TEST(RngJump, JumpRekeysSplitDerivation)
{
    // Handing shard k a jumped copy and then splitting per trial must
    // give different children than the parent's (split() is keyed on
    // the seed, which jump()/longJump() re-key).
    const Rng master(0x77);
    Rng hop = master.jumped(1);
    Rng hop2 = master.jumped(2);
    Rng lj(0x77);
    lj.longJump();
    std::set<std::uint64_t> firsts;
    for (const Rng &parent : {master, hop, hop2, lj})
        for (std::uint64_t i = 0; i < 4; ++i)
            firsts.insert(parent.split(i).next());
    EXPECT_EQ(firsts.size(), 16u);
}

// --- CdfSampler ------------------------------------------------------------

TEST(CdfSampler, NeverPicksZeroProbabilityBins)
{
    runtime::CdfSampler sampler({0.0, 0.25, 0.0, 0.75, 0.0});
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t bin = sampler.sample(rng.uniform());
        EXPECT_TRUE(bin == 1 || bin == 3) << "bin " << bin;
    }
    // Boundary draws must also land on positive-probability bins.
    EXPECT_EQ(sampler.sample(0.0), 1u);
    EXPECT_EQ(sampler.sample(0.25), 3u);
}

TEST(CdfSampler, MatchesExpectedFrequencies)
{
    runtime::CdfSampler sampler({1.0, 3.0});
    Rng rng(5);
    std::size_t ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ones += sampler.sample(rng.uniform());
    EXPECT_NEAR((double)ones / n, 0.75, 0.02);
}

// --- EnsembleEngine --------------------------------------------------------

/** Bell-pair program with a breakpoint, the paper's Figure 1 shape. */
circuit::Circuit
bellProgram()
{
    circuit::Circuit circ;
    auto a = circ.addRegister("a", 1);
    auto b = circ.addRegister("b", 1);
    circ.h(a[0]);
    circ.cnot(a[0], b[0]);
    circ.breakpoint("pair");
    circ.measure(a, "ma");
    circ.measure(b, "mb");
    return circ;
}

/** Three-qubit GHZ chain with a breakpoint after the entangler. */
circuit::Circuit
ghzProgram()
{
    circuit::Circuit circ;
    auto r = circ.addRegister("r", 3);
    circ.h(r[0]);
    circ.cnot(r[0], r[1]);
    circ.cnot(r[1], r[2]);
    circ.breakpoint("ghz");
    return circ;
}

runtime::EnsembleSpec
bellSpec(runtime::SampleMode mode)
{
    runtime::EnsembleSpec spec;
    spec.breakpoint = "pair";
    spec.qubits = {0, 1};
    spec.shots = 512;
    spec.mode = mode;
    spec.seed = 0xabcdef;
    return spec;
}

TEST(EnsembleEngine, ThreadCountInvariance)
{
    const auto program = bellProgram();
    for (auto mode : {runtime::SampleMode::Resimulate,
                      runtime::SampleMode::SampleFinalState}) {
        const auto spec = bellSpec(mode);
        runtime::EnsembleEngine serial(program, 1);
        runtime::EnsembleEngine four(program, 4);
        runtime::EnsembleEngine eight(program, 8);

        const auto r1 = serial.gather(spec);
        const auto r4 = four.gather(spec);
        const auto r8 = eight.gather(spec);
        EXPECT_EQ(r1, r4);
        EXPECT_EQ(r1, r8);

        EXPECT_EQ(serial.gatherHistogram(spec),
                  eight.gatherHistogram(spec));
    }
}

TEST(EnsembleEngine, HistogramMatchesGather)
{
    const auto program = ghzProgram();
    runtime::EnsembleSpec spec;
    spec.breakpoint = "ghz";
    spec.qubits = {0, 1, 2};
    spec.shots = 300;
    spec.mode = runtime::SampleMode::Resimulate;
    spec.seed = 42;

    runtime::EnsembleEngine engine(program, 4);
    const auto values = engine.gather(spec);
    std::map<std::uint64_t, std::uint64_t> counted;
    for (auto v : values)
        ++counted[v];
    EXPECT_EQ(counted, engine.gatherHistogram(spec));

    // GHZ on |0..0>: only all-zeros and all-ones outcomes exist.
    for (const auto &[value, count] : counted)
        EXPECT_TRUE(value == 0 || value == 7) << "outcome " << value;
}

TEST(EnsembleEngine, CacheIsTransparent)
{
    const auto program = bellProgram();
    runtime::EnsembleEngine engine(program, 2);
    const auto spec = bellSpec(runtime::SampleMode::SampleFinalState);
    const auto first = engine.gather(spec);   // cold: simulates prefix
    const auto second = engine.gather(spec);  // warm: cached state
    EXPECT_EQ(first, second);
    engine.clearCache();
    EXPECT_EQ(first, engine.gather(spec));
}

TEST(EnsembleEngine, ZeroShotsYieldsEmpty)
{
    const auto program = bellProgram();
    runtime::EnsembleEngine engine(program, 2);
    auto spec = bellSpec(runtime::SampleMode::Resimulate);
    spec.shots = 0;
    EXPECT_TRUE(engine.gather(spec).empty());
    EXPECT_TRUE(engine.gatherHistogram(spec).empty());
}

// --- Checker-level invariance ---------------------------------------------

TEST(CheckerRuntime, OutcomesInvariantUnderThreadCount)
{
    const auto program = bellProgram();
    for (auto mode : {assertions::EnsembleMode::Resimulate,
                      assertions::EnsembleMode::SampleFinalState}) {
        std::vector<assertions::AssertionOutcome> per_thread_count;
        for (unsigned threads : {1u, 4u, 8u}) {
            assertions::CheckConfig cfg;
            cfg.ensembleSize = 256;
            cfg.mode = mode;
            cfg.seed = 0x51c0ffee;
            cfg.numThreads = threads;
            assertions::AssertionChecker checker(program, cfg);
            checker.assertEntangled("pair", program.reg("a"),
                                    program.reg("b"));
            per_thread_count.push_back(
                checker.check(checker.assertions()[0]));
        }
        const auto &ref = per_thread_count.front();
        EXPECT_TRUE(ref.passed);
        for (const auto &outcome : per_thread_count) {
            EXPECT_EQ(outcome.pValue, ref.pValue);
            EXPECT_EQ(outcome.statistic, ref.statistic);
            EXPECT_EQ(outcome.countsA, ref.countsA);
            EXPECT_EQ(outcome.jointCounts, ref.jointCounts);
        }
    }
}

TEST(CheckerRuntime, ClearRuntimeCacheIsTransparent)
{
    const auto program = bellProgram();
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 128;
    assertions::AssertionChecker checker(program, cfg);
    checker.assertSuperposition("pair", program.reg("a"));
    const auto before = checker.check(checker.assertions()[0]);
    checker.clearRuntimeCache();
    const auto after = checker.check(checker.assertions()[0]);
    EXPECT_EQ(before.pValue, after.pValue);
    EXPECT_EQ(before.countsA, after.countsA);
}

// --- BatchRunner -----------------------------------------------------------

TEST(BatchRunner, MatchesSerialCheckAll)
{
    const auto bell = bellProgram();

    // A broken variant: the missing CNOT leaves the pair unentangled.
    circuit::Circuit broken;
    auto a = broken.addRegister("a", 1);
    auto b = broken.addRegister("b", 1);
    broken.h(a[0]);
    broken.breakpoint("pair");
    (void)b;

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 256;
    cfg.seed = 0xfeed;

    std::vector<assertions::AssertionSpec> specs;
    {
        assertions::AssertionChecker proto(bell, cfg);
        proto.assertEntangled("pair", bell.reg("a"), bell.reg("b"));
        proto.assertSuperposition("pair", bell.reg("a"));
        specs = proto.assertions();
    }

    runtime::BatchRunner runner(4);
    const auto batch = runner.checkAll({&bell, &broken}, specs, cfg);
    ASSERT_EQ(batch.size(), 2u);

    std::size_t program_index = 0;
    for (const circuit::Circuit *program :
         {&bell, static_cast<const circuit::Circuit *>(&broken)}) {
        assertions::AssertionChecker serial(*program, cfg);
        for (const auto &spec : specs)
            serial.addAssertion(spec);
        const auto expected = serial.checkAll();
        const auto &got = batch[program_index];
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t j = 0; j < expected.size(); ++j) {
            EXPECT_EQ(got[j].pValue, expected[j].pValue);
            EXPECT_EQ(got[j].statistic, expected[j].statistic);
            EXPECT_EQ(got[j].passed, expected[j].passed);
            EXPECT_EQ(got[j].countsA, expected[j].countsA);
            EXPECT_EQ(got[j].jointCounts, expected[j].jointCounts);
        }
        ++program_index;
    }

    // Sanity on the verdicts themselves: the Bell pair is entangled,
    // the broken variant is not.
    EXPECT_TRUE(batch[0][0].passed);
    EXPECT_FALSE(batch[1][0].passed);
}

TEST(BatchRunner, BatchedCheckAllMatchesSerialPerSpecLoop)
{
    // AssertionChecker::checkAll now fans its specs through
    // BatchRunner; the satellite contract is that the batched plan is
    // bit-identical to checking each spec serially, at any thread
    // count and in both ensemble modes.
    const auto program = bellProgram();
    for (auto mode : {assertions::EnsembleMode::Resimulate,
                      assertions::EnsembleMode::SampleFinalState}) {
        for (unsigned threads : {1u, 4u, 0u}) {
            assertions::CheckConfig cfg;
            cfg.ensembleSize = 192;
            cfg.mode = mode;
            cfg.numThreads = threads;
            assertions::AssertionChecker checker(program, cfg);
            checker.assertClassical("pair", program.reg("a"), 0, 0.2);
            checker.assertSuperposition("pair", program.reg("a"));
            checker.assertEntangled("pair", program.reg("a"),
                                    program.reg("b"));
            checker.assertProduct("pair", program.reg("a"),
                                  program.reg("b"));

            const auto batched = checker.checkAll();
            ASSERT_EQ(batched.size(), 4u);
            for (std::size_t i = 0; i < batched.size(); ++i) {
                const auto serial =
                    checker.check(checker.assertions()[i]);
                EXPECT_EQ(batched[i].pValue, serial.pValue);
                EXPECT_EQ(batched[i].statistic, serial.statistic);
                EXPECT_EQ(batched[i].df, serial.df);
                EXPECT_EQ(batched[i].passed, serial.passed);
                EXPECT_EQ(batched[i].countsA, serial.countsA);
                EXPECT_EQ(batched[i].jointCounts, serial.jointCounts);
            }
        }
    }
}

TEST(BatchRunner, SharedCheckerOverloadMatchesDirectChecks)
{
    // The BatchRunner::checkAll(checker, specs) overload — the plan
    // executor behind checkAll and Session::run — shares one engine
    // across units and stays bit-identical, with or without an
    // escalation policy.
    const auto program = bellProgram();
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 64;
    assertions::AssertionChecker checker(program, cfg);
    checker.assertSuperposition("pair", program.reg("a"));
    checker.assertEntangled("pair", program.reg("a"),
                            program.reg("b"));
    const auto &specs = checker.assertions();

    runtime::BatchRunner runner(4);
    const auto plain = runner.checkAll(checker, specs);
    ASSERT_EQ(plain.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto want = checker.check(specs[i]);
        EXPECT_EQ(plain[i].pValue, want.pValue);
        EXPECT_EQ(plain[i].countsA, want.countsA);
    }

    const assertions::EscalationPolicy policy{16, 256, 0.30};
    const auto escalated = runner.checkAll(checker, specs, &policy);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto want = checker.checkEscalated(specs[i], policy);
        EXPECT_EQ(escalated[i].pValue, want.pValue);
        EXPECT_EQ(escalated[i].ensembleSize, want.ensembleSize);
        EXPECT_EQ(escalated[i].passed, want.passed);
    }
}

TEST(BatchRunner, PerItemConfigsAreHonoured)
{
    const auto bell = bellProgram();

    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Superposition;
    spec.breakpoint = "pair";
    spec.regA = bell.reg("a");

    runtime::BatchItem fast;
    fast.program = &bell;
    fast.specs = {spec};
    fast.config.ensembleSize = 64;

    runtime::BatchItem big = fast;
    big.config.ensembleSize = 512;

    runtime::BatchRunner runner(2);
    const auto results = runner.checkAll({fast, big});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0][0].ensembleSize, 64u);
    EXPECT_EQ(results[1][0].ensembleSize, 512u);
}

} // anonymous namespace
