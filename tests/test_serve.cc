/**
 * @file
 * qsa::serve tests: wire protocol, determinism contract, persistent
 * oracle store, and the concurrent request server (ISSUE 8 tentpole).
 *
 * The load-bearing property is byte-level determinism: a response's
 * "result" member is a pure function of the request — independent of
 * thread count, concurrency interleaving, repeat runs, and store
 * temperature. Every test here ultimately compares dumped JSON text,
 * not parsed approximations.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "qsa/qsa.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/store.hh"

namespace
{

using namespace qsa;

std::int64_t
counterValue(const std::string &name)
{
    for (const auto &[key, value] : obs::Registry::snapshot())
        if (key == name)
            return value;
    return 0;
}

/** Entangled pair split over two named registers. */
constexpr const char *kBellQasm = "OPENQASM 2.0;\n"
                                  "qreg a[1];\n"
                                  "qreg b[1];\n"
                                  "h a[0];\n"
                                  "cx a[0],b[0];\n"
                                  "// qsa.breakpoint done\n";

/** Clean reference for locate... */
constexpr const char *kLocateRef = "OPENQASM 2.0;\n"
                                   "qreg q[2];\n"
                                   "h q[0];\n"
                                   "cx q[0],q[1];\n"
                                   "h q[1];\n"
                                   "cx q[1],q[0];\n";

/** ...and the suspect with one extra defective gate. */
constexpr const char *kLocateSus = "OPENQASM 2.0;\n"
                                   "qreg q[2];\n"
                                   "h q[0];\n"
                                   "cx q[0],q[1];\n"
                                   "t q[1];\n"
                                   "h q[1];\n"
                                   "cx q[1],q[0];\n";

json::Value
checkRequestDoc(std::uint64_t seed, unsigned threads)
{
    json::Value plan_item = json::Value::object();
    plan_item.set("at", json::Value::string("done"));
    plan_item.set("expect", json::Value::string("entangled"));
    plan_item.set("register", json::Value::string("a"));
    plan_item.set("register_b", json::Value::string("b"));

    json::Value plan = json::Value::array();
    plan.push(std::move(plan_item));

    json::Value doc = json::Value::object();
    doc.set("id", json::Value::integer(seed));
    doc.set("command", json::Value::string("check"));
    doc.set("circuit", json::Value::string(kBellQasm));
    doc.set("plan", std::move(plan));
    doc.set("seed", json::Value::integer(seed));
    doc.set("ensemble_size", json::Value::integer(192));
    doc.set("threads",
            json::Value::integer(static_cast<std::uint64_t>(threads)));
    return doc;
}

json::Value
locateRequestDoc(std::uint64_t seed, unsigned threads)
{
    json::Value doc = json::Value::object();
    doc.set("id", json::Value::string("loc"));
    doc.set("command", json::Value::string("locate"));
    doc.set("circuit", json::Value::string(kLocateSus));
    doc.set("reference", json::Value::string(kLocateRef));
    doc.set("seed", json::Value::integer(seed));
    doc.set("ensemble_size", json::Value::integer(128));
    doc.set("threads",
            json::Value::integer(static_cast<std::uint64_t>(threads)));
    return doc;
}

/**
 * A wide-measurement locate pair: qubit 0 is recycled through 13
 * measurement rounds (2^13 = 8192 outcome histories, past the exact
 * oracle's 4096 branch cap) while qubit 1 carries the defect — the
 * suspect preps it with X where the reference uses H. The programs
 * stay instruction-aligned (so the mirror prober's range spans the
 * whole circuit) and the defect persists in qubit 1's marginal all
 * the way to the final boundary.
 */
std::string
wideMeasureQasm(bool buggy)
{
    std::string qasm = "OPENQASM 2.0;\nqreg q[2];\n";
    for (int round = 0; round < 13; ++round)
        qasm += "creg m_r" + std::to_string(round) + "[1];\n";
    qasm += "h q[0];\nmeasure q[0] -> m_r0[0];\n";
    qasm += std::string(buggy ? "x" : "h") + " q[1];\n";
    for (int round = 1; round < 13; ++round) {
        qasm += "h q[0];\n";
        qasm += "measure q[0] -> m_r" + std::to_string(round) +
                "[0];\n";
    }
    return qasm;
}

json::Value
wideLocateRequestDoc(const std::string &oracle_mode,
                     const char *id = "wide")
{
    json::Value doc = json::Value::object();
    doc.set("id", json::Value::string(id));
    doc.set("command", json::Value::string("locate"));
    doc.set("circuit", json::Value::string(wideMeasureQasm(true)));
    doc.set("reference", json::Value::string(wideMeasureQasm(false)));
    doc.set("mode", json::Value::string("resimulate"));
    doc.set("ensemble_size", json::Value::integer(64));
    if (!oracle_mode.empty())
        doc.set("oracle_mode", json::Value::string(oracle_mode));
    doc.set("oracle_trials", json::Value::integer(2048));
    return doc;
}

/** Execute a request document in-process; returns the "result" dump. */
std::string
resultDump(const json::Value &doc)
{
    serve::Request request;
    std::string error;
    const bool ok = serve::parseRequest(doc, &request, &error);
    EXPECT_TRUE(ok) << error;
    if (!ok)
        return "";
    return serve::executeRequest(request).dump();
}

/** A response line minus its (timing-bearing) "obs" member. */
std::string
stripObs(const std::string &response_line)
{
    const json::Value doc = json::Value::parseOrDie(response_line);
    json::Value out = json::Value::object();
    for (const auto &[key, value] : doc.members())
        if (key != "obs")
            out.set(key, value);
    return out.dump();
}

// --- protocol unit tests ---------------------------------------------------

TEST(ServeProtocol, PingRoundTrips)
{
    const std::string response =
        serve::handleRequestLine(R"({"id": 7, "command": "ping"})");
    const json::Value doc = json::Value::parseOrDie(response);
    EXPECT_TRUE(doc.find("ok")->asBool());
    EXPECT_EQ(doc.find("id")->asUint64(), 7u);
    EXPECT_TRUE(doc.find("result")->find("pong")->asBool());
    ASSERT_NE(doc.find("obs"), nullptr);
    EXPECT_NE(doc.find("obs")->find("duration_ns"), nullptr);
}

TEST(ServeProtocol, MalformedJsonIsAnErrorResponse)
{
    const std::string response = serve::handleRequestLine("{nope");
    const json::Value doc = json::Value::parseOrDie(response);
    EXPECT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")
                  ->find("message")
                  ->asString()
                  .find("not valid JSON"),
              std::string::npos);
}

TEST(ServeProtocol, UnknownCommandIsRejected)
{
    const std::string response =
        serve::handleRequestLine(R"({"command": "frobnicate"})");
    const json::Value doc = json::Value::parseOrDie(response);
    EXPECT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")
                  ->find("message")
                  ->asString()
                  .find("unknown command"),
              std::string::npos);
}

TEST(ServeProtocol, QasmErrorsCarryPosition)
{
    const std::string response = serve::handleRequestLine(
        R"({"command": "lint",)"
        R"( "circuit": "OPENQASM 2.0;\nqreg q[1];\nzz q[0];\n"})");
    const json::Value doc = json::Value::parseOrDie(response);
    ASSERT_FALSE(doc.find("ok")->asBool());
    const json::Value *error = doc.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->find("line")->asUint64(), 3u);
    EXPECT_EQ(error->find("column")->asUint64(), 1u);
    EXPECT_EQ(error->find("token")->asString(), "zz");
}

TEST(ServeProtocol, PlanValidationIsPositioned)
{
    // Unknown register name in the plan: caught by validatePlan, not
    // by a fatal() inside Session.
    const std::string response = serve::handleRequestLine(
        R"({"command": "check",)"
        R"( "circuit": "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n",)"
        R"( "plan": [{"after": 1, "expect": "superposition",)"
        R"( "register": "nope"}]})");
    const json::Value doc = json::Value::parseOrDie(response);
    ASSERT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")
                  ->find("message")
                  ->asString()
                  .find("nope"),
              std::string::npos);
}

// --- oracle modes and derive-error survival --------------------------------

TEST(ServeProtocol, OracleFieldsAreValidated)
{
    json::Value bad_mode = locateRequestDoc(1, 0);
    bad_mode.set("oracle_mode", json::Value::string("bogus"));
    json::Value doc =
        json::Value::parseOrDie(serve::handleRequestLine(
            bad_mode.dump()));
    ASSERT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")->find("message")->asString().find(
                  "oracle_mode"),
              std::string::npos);

    json::Value bad_trials = locateRequestDoc(1, 0);
    bad_trials.set("oracle_trials", json::Value::integer(0));
    doc = json::Value::parseOrDie(
        serve::handleRequestLine(bad_trials.dump()));
    ASSERT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")->find("message")->asString().find(
                  "oracle_trials"),
              std::string::npos);

    json::Value wrong_command = checkRequestDoc(1, 0);
    wrong_command.set("oracle_mode", json::Value::string("sampled"));
    doc = json::Value::parseOrDie(
        serve::handleRequestLine(wrong_command.dump()));
    ASSERT_FALSE(doc.find("ok")->asBool());
    EXPECT_NE(doc.find("error")->find("message")->asString().find(
                  "only valid for locate"),
              std::string::npos);
}

TEST(ServeProtocol, ExactOracleOverflowIsAStructuredError)
{
    // The headline bugfix: an exact-mode locate whose reference
    // overflows the branch cap must come back as a per-request error
    // naming the offending instruction — not kill the process.
    const std::int64_t derive0 =
        counterValue("serve.requests.derive_errors");
    const std::string response = serve::handleRequestLine(
        wideLocateRequestDoc("exact").dump());
    const json::Value doc = json::Value::parseOrDie(response);

    ASSERT_FALSE(doc.find("ok")->asBool());
    EXPECT_EQ(doc.find("id")->asString(), "wide");
    const json::Value *error = doc.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_NE(error->find("message")->asString().find(
                  "exceeded its cap"),
              std::string::npos);
    EXPECT_NE(error->find("message")->asString().find("sampled"),
              std::string::npos)
        << "the error must advertise the sampled-mode escape hatch";
    ASSERT_NE(error->find("instruction"), nullptr);
    EXPECT_NE(error->find("instruction")->asString().find("measure"),
              std::string::npos);
    EXPECT_GT(counterValue("serve.requests.derive_errors"), derive0);
}

TEST(ServeProtocol, SampledOracleLocatesTheWideMeasurementProgram)
{
    // The same over-cap pair localizes under the sampled oracle (and
    // under the default auto mode, which falls back to it).
    for (const char *mode : {"sampled", ""}) {
        const std::string response = serve::handleRequestLine(
            wideLocateRequestDoc(mode).dump());
        const json::Value doc = json::Value::parseOrDie(response);
        ASSERT_TRUE(doc.find("ok")->asBool())
            << "mode '" << mode << "': " << response;
        const json::Value *result = doc.find("result");
        ASSERT_NE(result, nullptr);
        EXPECT_TRUE(result->find("bug_found")->asBool())
            << "mode '" << mode << "': " << response;
    }
}

// --- determinism contract --------------------------------------------------

TEST(ServeDeterminism, ResultIndependentOfThreadCount)
{
    // numThreads steers scheduling only; per-member RNG streams make
    // the "result" member bit-identical at 1, 4, and auto threads.
    const std::string check1 = resultDump(checkRequestDoc(11, 1));
    const std::string check4 = resultDump(checkRequestDoc(11, 4));
    const std::string check0 = resultDump(checkRequestDoc(11, 0));
    EXPECT_EQ(check1, check4);
    EXPECT_EQ(check1, check0);

    const std::string loc1 = resultDump(locateRequestDoc(23, 1));
    const std::string loc4 = resultDump(locateRequestDoc(23, 4));
    const std::string loc0 = resultDump(locateRequestDoc(23, 0));
    EXPECT_EQ(loc1, loc4);
    EXPECT_EQ(loc1, loc0);
}

TEST(ServeDeterminism, RepeatRunsAreByteIdentical)
{
    const std::string first = resultDump(checkRequestDoc(42, 0));
    const std::string second = resultDump(checkRequestDoc(42, 0));
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"all_passed\":true"), std::string::npos)
        << first;
}

TEST(ServeDeterminism, SeedChangesTheEnsemble)
{
    // Different seeds draw different ensembles: verdicts agree, raw
    // counts (part of "result") almost surely differ.
    const std::string a = resultDump(checkRequestDoc(1, 0));
    const std::string b = resultDump(checkRequestDoc(2, 0));
    EXPECT_NE(a, b);
}

// --- persistent oracle store -----------------------------------------------

TEST(ServeOracleStore, WarmReplayIsByteIdenticalAndHits)
{
    const std::string root = ::testing::TempDir() + "qsa_store_" +
                             std::to_string(::getpid());

    serve::OracleStore store(root);
    store.install();

    const std::int64_t writes0 =
        counterValue("serve.oracle_cache.writes");
    const std::string cold = resultDump(locateRequestDoc(5, 0));
    const std::int64_t writes1 =
        counterValue("serve.oracle_cache.writes");
    EXPECT_GT(writes1, writes0)
        << "cold run derived nothing worth persisting";

    const std::int64_t hits0 =
        counterValue("serve.oracle_cache.hits");
    const std::int64_t misses0 =
        counterValue("serve.oracle_cache.misses");
    const std::string warm = resultDump(locateRequestDoc(5, 0));
    const std::int64_t hits1 =
        counterValue("serve.oracle_cache.hits");
    const std::int64_t misses1 =
        counterValue("serve.oracle_cache.misses");

    EXPECT_EQ(cold, warm)
        << "a persisted artifact changed the localization verdict";
    EXPECT_GT(hits1, hits0) << "warm replay never consulted the store";
    EXPECT_EQ(misses1, misses0)
        << "warm replay re-derived something it just persisted";

    store.uninstall();

    // With the store gone, the same request still gives the same
    // bytes — persistence is a pure accelerator.
    EXPECT_EQ(resultDump(locateRequestDoc(5, 0)), cold);
}

TEST(ServeOracleStore, EntryBoundEvictsOldestFirst)
{
    const std::string root = ::testing::TempDir() + "qsa_evict_" +
                             std::to_string(::getpid());

    serve::OracleStore store(root, /*max_entries=*/2,
                             /*max_bytes=*/0);
    const std::int64_t evictions0 =
        counterValue("serve.oracle_cache.evictions");

    store.store("predicates", "key-a", R"({"payload": "a"})");
    store.store("predicates", "key-b", R"({"payload": "b"})");
    EXPECT_EQ(counterValue("serve.oracle_cache.evictions"),
              evictions0)
        << "a store within bounds must not evict";

    store.store("predicates", "key-c", R"({"payload": "c"})");
    EXPECT_GT(counterValue("serve.oracle_cache.evictions"),
              evictions0)
        << "the third entry must push one out";

    // At most two complete entries survive on disk...
    std::size_t on_disk = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(root))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            ++on_disk;
    EXPECT_LE(on_disk, 2u);

    // ...and exactly that many of the three keys still load. (mtime
    // granularity can tie all three writes, so which keys survive is
    // not pinned — only how many.)
    std::size_t loadable = 0;
    std::string payload;
    for (const char *key : {"key-a", "key-b", "key-c"})
        if (store.load("predicates", key, &payload))
            ++loadable;
    EXPECT_EQ(loadable, on_disk);
}

// --- the server ------------------------------------------------------------

std::string
testSocketPath(const char *tag)
{
    return ::testing::TempDir() + "qsa_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

TEST(ServeServer, ConcurrentClientsMatchInProcessResults)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("conc");
    config.workers = 4;

    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // A mixed batch: checks and locates at distinct seeds, a lint, a
    // positioned QASM error, a ping. Expected responses are computed
    // in-process first; N concurrent connections must then return
    // exactly those bytes (modulo the "obs" timing member).
    std::vector<std::string> requests;
    for (std::uint64_t seed = 1; seed <= 3; ++seed)
        requests.push_back(checkRequestDoc(seed, 0).dump());
    requests.push_back(locateRequestDoc(9, 0).dump());
    requests.push_back(locateRequestDoc(10, 0).dump());
    requests.push_back(
        R"({"id": "lint", "command": "lint",)"
        R"( "circuit": "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n"})");
    requests.push_back(
        R"({"id": "bad", "command": "lint",)"
        R"( "circuit": "OPENQASM 2.0;\nqreg q[1];\nzz q[0];\n"})");
    requests.push_back(R"({"id": "ping", "command": "ping"})");
    ASSERT_EQ(requests.size(), 8u);

    std::vector<std::string> expected;
    for (const auto &request : requests)
        expected.push_back(
            stripObs(serve::handleRequestLine(request)));

    std::vector<std::string> got(requests.size());
    std::vector<std::string> failures(requests.size());
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        clients.emplace_back([&, i] {
            serve::Client client;
            std::string client_error;
            if (!client.connect(config.socketPath, &client_error)) {
                failures[i] = client_error;
                return;
            }
            std::string response;
            if (!client.request(requests[i], &response,
                                &client_error)) {
                failures[i] = client_error;
                return;
            }
            got[i] = stripObs(response);
        });
    }
    for (auto &t : clients)
        t.join();

    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_TRUE(failures[i].empty()) << failures[i];
        EXPECT_EQ(got[i], expected[i]) << "request " << i;
    }

    server.stop();
}

TEST(ServeServer, OneConnectionManySequentialRequests)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("seq");
    config.workers = 2;

    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const std::string request = checkRequestDoc(seed, 0).dump();
        std::string response;
        ASSERT_TRUE(client.request(request, &response, &error))
            << error;
        EXPECT_EQ(stripObs(response),
                  stripObs(serve::handleRequestLine(request)));
    }

    server.stop();
}

TEST(ServeServer, SurvivesOracleDeriveFailureOnTheSameConnection)
{
    // The headline bugfix, end to end: an exact-mode locate whose
    // reference derivation overflows the branch cap used to bring the
    // whole daemon down. It must now answer that request with a
    // structured error and keep serving — on the very same socket.
    serve::ServerConfig config;
    config.socketPath = testSocketPath("derive");
    config.workers = 2;

    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;

    std::string response;
    ASSERT_TRUE(client.request(wideLocateRequestDoc("exact").dump(),
                               &response, &error))
        << error;
    {
        const json::Value doc = json::Value::parseOrDie(response);
        ASSERT_FALSE(doc.find("ok")->asBool()) << response;
        const json::Value *err = doc.find("error");
        ASSERT_NE(err, nullptr);
        EXPECT_NE(
            err->find("message")->asString().find("exceeded its cap"),
            std::string::npos);
        ASSERT_NE(err->find("instruction"), nullptr);
        EXPECT_NE(err->find("instruction")->asString().find("measure"),
                  std::string::npos);
    }

    // Same connection, next request: the daemon is still alive and
    // still correct.
    const std::string follow_up = checkRequestDoc(1, 0).dump();
    ASSERT_TRUE(client.request(follow_up, &response, &error)) << error;
    {
        const json::Value doc = json::Value::parseOrDie(response);
        EXPECT_TRUE(doc.find("ok")->asBool()) << response;
    }
    EXPECT_EQ(stripObs(response),
              stripObs(serve::handleRequestLine(follow_up)));

    // And the sampled escape hatch the error advertised works here.
    ASSERT_TRUE(client.request(wideLocateRequestDoc("sampled").dump(),
                               &response, &error))
        << error;
    {
        const json::Value doc = json::Value::parseOrDie(response);
        ASSERT_TRUE(doc.find("ok")->asBool()) << response;
        EXPECT_TRUE(
            doc.find("result")->find("bug_found")->asBool())
            << response;
    }

    server.stop();
}

TEST(ServeServer, OverloadIsRejectedExplicitly)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("ovl");
    config.workers = 1;
    config.maxQueue = 0; // every request overloads, deterministically

    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    std::string response;
    ASSERT_TRUE(client.request(R"({"id": 1, "command": "ping"})",
                               &response, &error))
        << error;
    const json::Value doc = json::Value::parseOrDie(response);
    EXPECT_FALSE(doc.find("ok")->asBool());
    EXPECT_EQ(doc.find("id")->asUint64(), 1u)
        << "rejection must still echo the request id";
    EXPECT_NE(doc.find("error")
                  ->find("message")
                  ->asString()
                  .find("overloaded"),
              std::string::npos);

    server.stop();
}

TEST(ServeServer, StopIsGracefulAndIdempotent)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("stop");
    config.workers = 2;

    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    std::string response;
    ASSERT_TRUE(client.request(R"({"command": "ping"})", &response,
                               &error))
        << error;

    server.stop();
    server.stop(); // idempotent

    // The socket file is gone; fresh connections fail cleanly.
    serve::Client after;
    EXPECT_FALSE(after.connect(config.socketPath, &error));
}

} // namespace
