/**
 * @file
 * Bracketing a phase defect the computational basis cannot see.
 *
 * The measured teleportation protocol corrects the receiver with
 * classically-conditioned Pauli gates. This walkthrough injects a
 * *frame* defect: the conditioned Z correction applies S instead, so
 * in every m_z = 1 branch the receiver differs from the reference by
 * a relative phase only. Between the defect's site and the verify
 * rotation every computational-basis marginal of every register is
 * bit-identical to the reference — the paper's assertion types, and
 * the mixture-marginal / segment-mirror probe families built on
 * them, bracket the verify step instead of the defect.
 *
 * The swap-test probe family closes the gap: each probe runs the
 * suspect prefix and a label-renamed reference prefix side by side
 * and compares the receiver registers with an ancilla-controlled
 * SWAP. The ancilla's outcome distribution depends on the *overlap*
 * of the two reduced states — invariant under the common verify
 * rotations, sensitive to pure phase — so the adaptive search
 * brackets the defective conditioned correction itself, in fewer
 * probes than an exhaustive scan. ProbeFamily::Auto packages the
 * escalation: cheap marginal probes first, swap-test re-adjudication
 * only when a decisive swap probe proves the divergence predates the
 * visible bracket.
 */

#include <cmath>
#include <iostream>

#include "qsa/qsa.hh"

using namespace qsa;

namespace
{

/** The measured teleport; the defect swaps the Z correction for S. */
circuit::Circuit
buildTeleport(bool buggy)
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;

    circuit::Circuit circ;
    const auto msg = circ.addRegister("msg", 1);
    const auto half = circ.addRegister("half", 1);
    const auto recv = circ.addRegister("recv", 1);

    circ.prepZ(msg[0], 0);
    circ.prepZ(half[0], 0);
    circ.prepZ(recv[0], 0);
    circ.ry(msg[0], theta); // the payload
    circ.rz(msg[0], phi);
    circ.h(half[0]);
    circ.cnot(half[0], recv[0]);
    circ.cnot(msg[0], half[0]);
    circ.h(msg[0]);
    circ.measureQubits({half[0]}, "m_x");
    circ.measureQubits({msg[0]}, "m_z");
    circ.x(recv[0]);
    circ.conditionLast("m_x", 1);
    if (buggy)
        circ.phase(recv[0], M_PI / 2); // [12] S frame instead of Z
    else
        circ.z(recv[0]); // [12]
    circ.conditionLast("m_z", 1);
    circ.rz(recv[0], -phi); // verify: inverse payload preparation
    circ.ry(recv[0], -theta);
    return circ;
}

void
printProbes(const locate::LocalizationReport &report)
{
    for (const auto &probe : report.probes) {
        std::cout << "  " << locate::probeFamilyName(probe.family)
                  << " probe @ boundary " << probe.boundary << ": "
                  << (probe.failed ? "FAIL" : "pass")
                  << (probe.phaseAmbiguous ? " [phase-ambiguous]"
                                           : "")
                  << " (p = " << probe.pValue << ", ensemble "
                  << probe.ensembleSize << ")\n";
    }
}

} // anonymous namespace

int
main()
{
    constexpr std::size_t defect = 12; // the conditioned correction

    const circuit::Circuit bad = buildTeleport(true);
    const circuit::Circuit good = buildTeleport(false);
    const auto recv = bad.reg("recv");

    std::cout << "measured teleport with a conditioned-Z-frame "
                 "defect at instruction " << defect << "\n"
              << "program size: " << bad.size()
              << " instructions on " << bad.numQubits()
              << " qubits\n\n";

    // The session carries mode / seed / escalation into every
    // locator run below.
    session::Session s(bad);
    s.mode(assertions::EnsembleMode::Resimulate);
    s.use(assertions::EscalationPolicy{64, 1024, 0.30});

    // Step 1: the computational families see the failure but bracket
    // the verify step — the phase defect is invisible between its
    // site and the rotation that exposes it.
    const auto marginal = s.locate(good, recv);
    std::cout << "mixture-marginal family: " << marginal.summary()
              << "\n";
    const bool marginal_misses =
        marginal.bugFound && marginal.suspectBegin() > defect;
    std::cout << "  -> brackets the verify step, "
              << (marginal_misses ? "missing" : "covering??")
              << " the defect at " << defect << "\n\n";

    // Step 2: the swap-test family compares receiver states against
    // an embedded reference copy; the overlap witness is monotone
    // under the common verify rotations, so the bracket lands on the
    // defective conditioned correction itself.
    s.probes(locate::ProbeFamily::SwapTest);
    const auto swap = s.locate(good, recv);
    std::cout << "swap-test family:        " << swap.summary() << "\n";
    printProbes(swap);

    // The exhaustive baseline: a linear scan with the static-pruning
    // pre-pass off probes every boundary until the first failure —
    // the cost the pruned adaptive search above is saving against.
    locate::LocateConfig scan_cfg =
        s.locateConfig(locate::Strategy::LinearScan);
    scan_cfg.staticPruning = false;
    const locate::BugLocator scanner(bad, good, scan_cfg);
    const auto swap_scan = scanner.locateByPredicates(recv);
    std::cout << "\nswap-test probe savings: " << swap.probes.size()
              << " adaptive probes vs " << swap_scan.probes.size()
              << " for the exhaustive scan\n\n";

    // Step 3: Auto packages the escalation — marginal probes first,
    // one decisive swap probe at the marginal bracket's lastPassing
    // boundary, a swap-test search only because that probe failed.
    s.probes(locate::ProbeFamily::Auto);
    const auto agile = s.locate(good, recv);
    std::cout << "auto family:             " << agile.summary()
              << "\n";
    printProbes(agile);

    const bool ok =
        marginal_misses && swap.bugFound &&
        swap.suspectBegin() == defect && swap_scan.bugFound &&
        swap_scan.suspectBegin() == defect &&
        swap.probes.size() < swap_scan.probes.size() &&
        agile.bugFound && agile.escalatedToSwapTest &&
        agile.suspectBegin() == defect;
    std::cout << (ok ? "\nphase defect bracketed at its site by the "
                       "swap-test witness.\n"
                     : "\nunexpected localization behaviour!\n");
    return ok ? 0 : 1;
}
