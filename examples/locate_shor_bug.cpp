/**
 * @file
 * Localizing the paper's Table 3 bug automatically.
 *
 * Section 4.6 injects a wrong modular inverse into Shor's algorithm
 * ((7, 12) instead of (7, 13)) and shows an output assertion catching
 * it; *finding* the defect was still the programmer's job. This
 * walkthrough hands that job to qsa::locate through the session
 * facade: the same session that catches the failure brackets the
 * defective instruction range of the full Shor program with a handful
 * of mirror probes (session.locate hands the program pair plus the
 * session's seed, threading, and escalation policy to BugLocator).
 */

#include <iostream>

#include "qsa/qsa.hh"

using namespace qsa;

int
main()
{
    // The reference program and the buggy variant of Table 3.
    algo::ShorConfig good_config;
    algo::ShorConfig bad_config;
    bad_config.pairs = algo::shorClassicalInputs(7, 15, 3);
    bad_config.pairs[0].second = 12; // 7^-1 mod 15 is 13, not 12

    const auto good = algo::buildShorProgram(good_config);
    const auto bad = algo::buildShorProgram(bad_config);

    std::cout << "Shor N=15 a=7, wrong modular inverse injected\n"
              << "program size: " << bad.circuit.size()
              << " instructions on " << bad.circuit.numQubits()
              << " qubits\n\n";

    // Step 1: an end-to-end assertion notices *that* something is
    // wrong — the helper register must return to |0> after every
    // controlled U_a, and with the wrong inverse it does not.
    session::Session s(bad.circuit);
    auto &verdict = s.at("final").expectClassical(bad.helper, 0);
    std::cout << "end-to-end helper-cleared assertion: "
              << (verdict.passed() ? "PASS (unexpected!)" : "FAIL")
              << " (p = " << verdict.pValue() << ")\n\n";

    // Step 2: the same session hands off to the locator. The
    // escalation policy doubles as the probe-ensemble schedule.
    s.use(assertions::EscalationPolicy{64, 1024, 0.30});
    const auto report = s.locate(good.circuit);
    std::cout << "adaptive search:  " << report.summary() << "\n";

    for (const auto &probe : report.probes) {
        std::cout << "  probe @ boundary " << probe.boundary << ": "
                  << (probe.failed ? "FAIL" : "pass")
                  << " (p = " << probe.pValue << ", ensemble "
                  << probe.ensembleSize << ")\n";
    }

    // The exhaustive baseline would adjudicate every one of the
    // ~2.8k instruction boundaries (bench_locate measures both
    // strategies head to head on mid-size fixtures; at full-Shor
    // scale the linear scan is minutes of simulation for the same
    // answer).
    std::cout << "\nprobe savings: " << report.probes.size()
              << " adaptive probes vs " << bad.circuit.size()
              << " boundaries for an exhaustive scan\n";
    return report.bugFound ? 0 : 1;
}
