/**
 * @file
 * Ground-state energy of molecular hydrogen — the paper's Section 5.2
 * case study. Builds the H2/STO-3G model from first-principles
 * integrals, reads the ground-state energy out with iterative phase
 * estimation (exact and Trotterised evolution), and compares against
 * Hartree-Fock and FCI. A qsa::session plan validates the evolution
 * circuit first: the Hartree-Fock preparation must be classical, and
 * the Trotterised state's outcome distribution must match the exact
 * marginal — statistical assertions guarding a numerical workload.
 */

#include <cmath>
#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;
    using namespace qsa::chem;

    // --- Model (bond length from the paper's Table 5). -------------------
    const H2Model model = buildH2Model(73.48);
    std::cout << "H2 / STO-3G at R = 73.48 pm ("
              << AsciiTable::fmt(model.bondLength, 4) << " bohr)\n";
    std::cout << "Hamiltonian: " << model.hamiltonian.size()
              << " Pauli terms on 4 qubits\n";
    std::cout << model.hamiltonian.str() << "\n\n";

    const double e_hf = model.hartreeFockEnergy;
    const double e_fci = groundStateEnergy(model.hamiltonian);

    // --- Assert the Trotter evolution circuit before trusting it. --------
    // |0011> is the Hartree-Fock determinant the IPEA runs start from.
    {
        circuit::Circuit evol;
        const auto sys = evol.addRegister("sys", 4);
        evol.prepRegister(sys, 0b0011);
        const std::size_t prepared = evol.size();
        appendTrotterEvolution(evol, model.hamiltonian, 1.2, 4,
                               {0, 1, 2, 3});

        session::Session s(evol);
        s.ensembleSize(512);
        s.after(prepared).expectClassical(sys, 0b0011);
        s.after(evol.size())
            .expectDistribution(
                sys, assertions::exactMarginal(
                         s.program(),
                         session::Session::boundaryLabel(evol.size()),
                         sys))
            .named("trotter-evolved distribution");
        std::cout << "evolution-circuit assertions:\n"
                  << s.report() << "\n";
        if (!s.allPassed())
            return 1;
    }

    // --- IPEA with exact controlled evolution. -----------------------------
    const double e_ref = 1.5, time = 1.2;
    const auto u = evolutionOperator(model.hamiltonian, time, e_ref);

    algo::IpeaConfig ipea_cfg;
    ipea_cfg.bits = 14;
    const algo::ControlledPowerFn exact_fn =
        [&](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
            sim::CMatrix p = u;
            for (unsigned i = 0; i < k; ++i)
                p = p.mul(p);
            circ.unitary(p, {0, 1, 2, 3}, {ctrl});
        };
    const auto exact_run = algo::runIpea(4, 0b0011, exact_fn, ipea_cfg);
    const double e_ipea =
        algo::phaseToEnergy(exact_run.phase, time, e_ref);

    // --- IPEA with Trotterised evolution (4 steps). -------------------------
    const algo::ControlledPowerFn trotter_fn =
        [&](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
            const std::uint64_t reps = 1ull << k;
            for (std::uint64_t r = 0; r < reps; ++r) {
                appendTrotterEvolution(circ, model.hamiltonian, time,
                                       4, {0, 1, 2, 3}, {ctrl}, e_ref);
            }
        };
    algo::IpeaConfig trotter_cfg;
    trotter_cfg.bits = 10;
    const auto trotter_run =
        algo::runIpea(4, 0b0011, trotter_fn, trotter_cfg);
    const double e_trotter =
        algo::phaseToEnergy(trotter_run.phase, time, e_ref);

    // --- Report. --------------------------------------------------------------
    AsciiTable t;
    t.setHeader({"method", "energy (hartree)", "vs FCI"});
    t.addRow({"Hartree-Fock", AsciiTable::fmt(e_hf, 6),
              AsciiTable::fmt(e_hf - e_fci, 6)});
    t.addRow({"FCI (exact diagonalisation)", AsciiTable::fmt(e_fci, 6),
              "0"});
    t.addRow({"IPEA, exact U, 14 bits", AsciiTable::fmt(e_ipea, 6),
              AsciiTable::fmt(e_ipea - e_fci, 6)});
    t.addRow({"IPEA, Trotter r=4, 10 bits",
              AsciiTable::fmt(e_trotter, 6),
              AsciiTable::fmt(e_trotter - e_fci, 6)});
    std::cout << t.render();

    std::cout << "\nIPEA phase bits (msb first): ";
    for (unsigned b : exact_run.bits)
        std::cout << b;
    std::cout << " -> phase " << AsciiTable::fmt(exact_run.phase, 6)
              << "\n";

    const bool ok = std::fabs(e_ipea - e_fci) < 5e-3 &&
                    std::fabs(e_trotter - e_fci) < 2e-2;
    return ok ? 0 : 1;
}
