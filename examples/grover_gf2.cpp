/**
 * @file
 * Grover search for a square root in GF(2^4) — the paper's Section
 * 5.1 case study — with assertions placed by the compute / controlled
 * / uncompute structure of Table 4.
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    algo::GroverConfig config;
    config.degree = 4;
    config.target = 0b1011;
    const algo::GroverProgram prog = algo::buildGroverProgram(config);

    const gf2::Field field(config.degree);
    std::cout << "searching GF(2^" << config.degree
              << ") for sqrt(" << config.target << ") = "
              << prog.expectedAnswer << " (modulus polynomial 0b";
    for (int b = field.degree(); b >= 0; --b)
        std::cout << ((field.modulus() >> b) & 1);
    std::cout << ")\n";
    std::cout << "circuit: " << prog.circuit.numQubits() << " qubits, "
              << prog.circuit.size() << " instructions, "
              << prog.iterations << " Grover iterations\n\n";

    // --- Structural assertions (Section 5.1.3). ---------------------------
    session::Session s(prog.circuit);
    s.ensembleSize(256);
    s.at("init").expectClassical(prog.q, 0);
    s.at("superposed").expectSuperposition(prog.q);
    s.at("oracle_computed").expectEntangled(prog.q, prog.work);
    auto uncomputed = s.at("oracle_uncomputed");
    uncomputed.expectProduct(prog.q, prog.work);
    uncomputed.expectClassical(prog.work, 0);

    std::cout << s.report() << "\n";

    // --- Success probability per iteration. --------------------------------
    std::cout << "success probability after each iteration:\n";
    AsciiTable series;
    series.setHeader({"iteration", "P(result = sqrt)", "max other"});
    for (unsigned i = 1; i <= prog.iterations; ++i) {
        const auto probs = assertions::exactMarginal(
            prog.circuit, "iter_" + std::to_string(i), prog.q);
        double other = 0.0;
        for (std::uint64_t v = 0; v < probs.size(); ++v) {
            if (v != prog.expectedAnswer)
                other = std::max(other, probs[v]);
        }
        series.addRow({std::to_string(i),
                       AsciiTable::fmt(probs[prog.expectedAnswer], 4),
                       AsciiTable::fmt(other, 4)});
    }
    std::cout << series.render() << "\n";

    // --- Run it. -------------------------------------------------------------
    Rng rng(501);
    const auto rec = circuit::runCircuit(prog.circuit, rng);
    const std::uint64_t answer = rec.measurements.at("result");
    std::cout << "measured x = " << answer << "; x^2 = "
              << field.square(static_cast<std::uint32_t>(answer))
              << " (target " << config.target << ")\n";

    return s.allPassed() ? 0 : 1;
}
