/**
 * @file
 * A guided debugging session reproducing the Section 4.4 narrative:
 * a programmer replicates the controlled-adder code for a different
 * control count, misroutes a control qubit, and hunts the bug down
 * with entanglement assertions — then fixes it and watches the same
 * assertions go green. Driven through qsa::session: no breakpoints
 * are placed in the program; the session addresses the boundary after
 * the multiplier directly.
 */

#include <iostream>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** The Listing 4 harness around a multiplier implementation. */
template <typename Multiplier>
circuit::Circuit
buildHarness(Multiplier multiplier, circuit::QubitRegister &ctrl_out,
             circuit::QubitRegister &b_out)
{
    circuit::Circuit circ;
    const auto ctrl = circ.addRegister("ctrl", 1);
    const auto x = circ.addRegister("x", 4);
    const auto b = circ.addRegister("b", 5);
    const auto anc = circ.addRegister("anc", 1);

    // Listing 4: control qubit in superposition; x = 6; b = 7.
    circ.prepRegister(ctrl, 1);
    circ.h(ctrl[0]);
    circ.prepRegister(x, 6);
    circ.prepRegister(b, 7);
    circ.prepRegister(anc, 0);

    multiplier(circ, ctrl[0], x, b, anc[0]);

    ctrl_out = ctrl;
    b_out = b;
    return circ;
}

/** Run the entanglement assertion and narrate the verdict. */
bool
checkEntangled(const circuit::Circuit &circ,
               const circuit::QubitRegister &ctrl,
               const circuit::QubitRegister &b, const char *label)
{
    session::Session s(circ);
    s.ensembleSize(16); // the ensemble size the paper quotes
    auto &expect = s.after(circ.size()).expectEntangled(ctrl, b);

    std::cout << "  assert_entangled(ctrl, b) [" << label
              << "]: p = " << AsciiTable::fmtP(expect.pValue())
              << " -> "
              << (expect.passed()
                      ? "PASS (correlated, as expected)"
                      : "FAIL (no correlation detected)")
              << "\n";
    return expect.passed();
}

/** Exact purity of a register at the end of the program. */
double
endPurity(const circuit::Circuit &circ,
          const circuit::QubitRegister &reg)
{
    session::Session s(circ);
    s.after(circ.size()); // instrument the end boundary
    return assertions::exactPurity(
        s.program(), session::Session::boundaryLabel(circ.size()),
        reg);
}

} // anonymous namespace

int
main()
{
    using namespace qsa;

    std::cout << "== Step 1: test the multiplier we just wrote =====\n";
    std::cout << "The controlled modular multiplier was copy-pasted\n";
    std::cout << "for the two-control case, and the new version\n";
    std::cout << "accidentally passes ctrl1 twice (Listing 2, line 15"
                 ").\n";

    circuit::QubitRegister ctrl, b;
    const auto buggy = buildHarness(
        [](circuit::Circuit &c, unsigned ctrl_q,
           const circuit::QubitRegister &x,
           const circuit::QubitRegister &bb, unsigned anc) {
            bugs::cModMulMisrouted(c, ctrl_q, x, bb, 7, 15, anc);
        },
        ctrl, b);

    const bool buggy_passed = checkEntangled(buggy, ctrl, b, "buggy");

    std::cout << "\nThe control register is not toggling the\n";
    std::cout << "multiplier: the bug must be in how the controls\n";
    std::cout << "are routed inside the multiplier.\n";
    std::cout << "Ground truth purity of ctrl: "
              << AsciiTable::fmt(endPurity(buggy, ctrl), 4)
              << " (1.0 = unentangled)\n";

    std::cout << "\n== Step 2: fix the control routing ===============\n";
    const auto fixed = buildHarness(
        [](circuit::Circuit &c, unsigned ctrl_q,
           const circuit::QubitRegister &x,
           const circuit::QubitRegister &bb, unsigned anc) {
            algo::cModMul(c, ctrl_q, x, bb, 7, 15, anc);
        },
        ctrl, b);

    const bool fixed_passed = checkEntangled(fixed, ctrl, b, "fixed");
    std::cout << "Ground truth purity of ctrl: "
              << AsciiTable::fmt(endPurity(fixed, ctrl), 4)
              << " (< 1.0 = entangled with the target)\n";

    std::cout << "\n== Step 3: verify the uncompute path (4.5) =======\n";
    // Multiply by a, then by a^-1: product-state + classical checks.
    circuit::Circuit circ;
    const auto c2 = circ.addRegister("ctrl", 1);
    const auto x2 = circ.addRegister("x", 4);
    const auto b2 = circ.addRegister("b", 5);
    const auto anc2 = circ.addRegister("anc", 1);
    circ.prepRegister(c2, 1);
    circ.h(c2[0]);
    circ.prepRegister(x2, 6);
    circ.prepRegister(b2, 7);
    circ.prepRegister(anc2, 0);
    algo::cModMul(circ, c2[0], x2, b2, 7, 15, anc2[0]);
    algo::cModMulInverse(circ, c2[0], x2, b2, 7, 15, anc2[0]);

    session::Session s(circ);
    auto after_inverse = s.after(circ.size());
    after_inverse.expectProduct(c2, b2);
    after_inverse.expectClassical(b2, 7);
    std::cout << s.report();

    // The same outcome table, machine-readable: CI and trajectory
    // tooling consume this the way they consume BENCH_*.json.
    const char *json_path = "debug_session.json";
    s.exportJson(json_path);
    std::cout << "outcome table exported to " << json_path << "\n";

    const bool ok = !buggy_passed && fixed_passed && s.allPassed();
    std::cout << (ok ? "\nbug caught, fix verified.\n"
                     : "\nunexpected assertion behaviour!\n");
    return ok ? 0 : 1;
}
