/**
 * @file
 * Localizing the Table 3 bug in the *semiclassical* Shor circuit.
 *
 * The paper implements Shor "to minimize the qubit cost" — that is
 * Beauregard's one-control-qubit construction, where each phase bit
 * is measured mid-circuit, the control qubit is recycled, and later
 * rounds are classically conditioned on the recorded bits. Injecting
 * Section 4.6's wrong modular inverse ((7, 12) instead of (7, 13))
 * puts the defect into the *last* phase-bit round — behind two
 * measurements and a wall of conditioned feedback rotations, exactly
 * where the default probe families stop.
 *
 * This walkthrough drives the localization through the session
 * facade in EnsembleMode::Resimulate: every probe re-simulates its
 * truncated program once per ensemble member (the runtime caches the
 * deterministic head, so only the post-measurement region is re-run
 * per trial), probes cross the measurements, and the adaptive search
 * brackets the defect in a tiny fraction of the probes an exhaustive
 * scan would spend.
 */

#include <algorithm>
#include <iostream>

#include "qsa/qsa.hh"

using namespace qsa;

int
main()
{
    // The reference program and the buggy variant of Table 3.
    algo::ShorConfig good_config;
    algo::ShorConfig bad_config;
    bad_config.pairs = algo::shorClassicalInputs(7, 15, 3);
    bad_config.pairs[0].second = 12; // 7^-1 mod 15 is 13, not 12

    const auto good = algo::buildSemiclassicalShorProgram(good_config);
    const auto bad = algo::buildSemiclassicalShorProgram(bad_config);

    std::size_t first_measure = bad.circuit.size();
    const auto &insts = bad.circuit.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        if (insts[i].kind == circuit::GateKind::Measure) {
            first_measure = i + 1;
            break;
        }
    }

    std::cout << "semiclassical Shor N=15 a=7 t=3, wrong modular "
                 "inverse injected\n"
              << "program size: " << bad.circuit.size()
              << " instructions on " << bad.circuit.numQubits()
              << " qubits (first measurement at boundary "
              << first_measure << ")\n\n";

    // Step 1: an end-to-end assertion notices *that* something is
    // wrong — the helper register must return to |0> at "final", and
    // with the wrong inverse it does not. The session runs in
    // Resimulate mode because the truncation at "final" contains the
    // recycled control's measurements.
    session::Session s(bad.circuit);
    s.mode(assertions::EnsembleMode::Resimulate);
    s.ensembleSize(64);
    auto &verdict = s.at("final").expectClassical(bad.helper, 0);
    std::cout << "end-to-end helper-cleared assertion: "
              << (verdict.passed() ? "PASS (unexpected!)" : "FAIL")
              << " (p = " << verdict.pValue() << ")\n\n";

    // Step 2: the same session hands off to the locator — mode,
    // seed, threads, and the escalation schedule all carry over.
    s.use(assertions::EscalationPolicy{32, 256, 0.30});
    const auto report = s.locate(good.circuit);
    std::cout << "adaptive search:  " << report.summary() << "\n";

    std::size_t beyond = 0;
    for (const auto &probe : report.probes) {
        if (probe.boundary > first_measure)
            ++beyond;
        std::cout << "  probe @ boundary " << probe.boundary << ": "
                  << (probe.failed ? "FAIL" : "pass")
                  << " (p = " << probe.pValue << ", ensemble "
                  << probe.ensembleSize << ")\n";
    }

    // The exhaustive baseline adjudicates every boundary exactly
    // once, so its probe count is the boundary count.
    const std::size_t scan_probes = bad.circuit.size();
    std::cout << "\nprobe savings: " << report.probes.size()
              << " adaptive probes (" << beyond
              << " beyond the first measurement) vs " << scan_probes
              << " for an exhaustive scan\n";

    const bool ok = report.bugFound && !verdict.passed() &&
                    beyond > 0 &&
                    report.probes.size() * 10 <= scan_probes &&
                    report.suspectBegin() > first_measure;
    std::cout << (ok ? "bracketed past the measurements.\n"
                     : "unexpected localization behaviour!\n");
    return ok ? 0 : 1;
}
