/**
 * @file
 * Quickstart: the paper's Figure 1 example end to end.
 *
 * Builds the two-qubit Bell program, registers one assertion of each
 * of the four statistical types at the appropriate breakpoints, runs
 * the ensemble checker, and prints the report.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    // --- 1. Write the quantum program (Figure 1). -----------------------
    circuit::Circuit program = algo::buildBellProgram();
    const auto q = program.reg("q");
    const auto q0 = q.slice(0, 1, "q0");
    const auto q1 = q.slice(1, 1, "q1");

    std::cout << "Bell program (" << program.numQubits()
              << " qubits, " << program.size() << " instructions)\n";
    std::cout << "OpenQASM:\n" << circuit::toQasm(program) << "\n";

    // --- 2. Register statistical assertions at breakpoints. -------------
    assertions::CheckConfig config;
    config.ensembleSize = 256;

    assertions::AssertionChecker checker(program, config);
    // The initial state is classical |00>.
    checker.assertClassical("classical", q, 0);
    // After the Hadamard, qubit 0 is in uniform superposition...
    checker.assertSuperposition("superposition", q0);
    // ...and independent of qubit 1.
    checker.assertProduct("superposition", q0, q1);
    // After the CNOT the qubits are entangled.
    checker.assertEntangled("entangled", q0, q1);

    // --- 3. Check and report. --------------------------------------------
    const auto outcomes = checker.checkAll();
    std::cout << assertions::renderReport(outcomes);

    // --- 4. Exact (infinite-ensemble) ground truth. ----------------------
    std::cout << "\nexact joint distribution at 'entangled':\n";
    const auto joint =
        assertions::exactJoint(program, "entangled", q0, q1);
    AsciiTable t;
    t.setHeader({"P(q0, q1)", "q1=0", "q1=1"});
    for (unsigned a = 0; a < 2; ++a) {
        t.addRow({"q0=" + std::to_string(a),
                  AsciiTable::fmt(joint[a][0], 3),
                  AsciiTable::fmt(joint[a][1], 3)});
    }
    std::cout << t.render();

    std::cout << "\npurity of q0 at 'entangled': "
              << assertions::exactPurity(program, "entangled", q0)
              << " (0.5 = maximally entangled)\n";

    return assertions::allPassed(outcomes) ? 0 : 1;
}
