/**
 * @file
 * Quickstart: the paper's Figure 1 example end to end, driven through
 * the qsa::session facade.
 *
 * Writes the two-qubit Bell circuit with NO pre-placed breakpoints,
 * addresses raw instruction boundaries with after() (the session
 * instruments the circuit on demand), registers one assertion of each
 * of the four statistical types with the fluent builders, and prints
 * the report — the whole plan executes in one batched ensemble
 * fan-out.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/example_quickstart
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    // --- 1. Write the quantum program (Figure 1, no breakpoints). -------
    circuit::Circuit program;
    const auto q = program.addRegister("q", 2);
    program.prepZ(q[0], 0);
    program.prepZ(q[1], 0); // boundary 2: classical |00>
    program.h(q[0]);        // boundary 3: q0 in superposition
    program.cnot(q[0], q[1]); // boundary 4: the pair is entangled
    program.measure(q, "m");

    const auto q0 = q.slice(0, 1, "q0");
    const auto q1 = q.slice(1, 1, "q1");

    std::cout << "Bell program (" << program.numQubits()
              << " qubits, " << program.size() << " instructions)\n";
    std::cout << "OpenQASM:\n" << circuit::toQasm(program) << "\n";

    // --- 2. Register statistical assertions at boundaries. --------------
    session::Session s(program);
    s.ensembleSize(256);

    // The initial state is classical |00>.
    s.after(2).expectClassical(q, 0);
    // After the Hadamard, qubit 0 is in uniform superposition...
    s.after(3).expectSuperposition(q0);
    // ...and independent of qubit 1.
    s.after(3).expectProduct(q0, q1);
    // After the CNOT the qubits are entangled.
    s.after(4).expectEntangled(q0, q1);

    // --- 3. Check and report (one batched run). --------------------------
    std::cout << s.report();

    // --- 4. Exact (infinite-ensemble) ground truth. ----------------------
    // The session's resolved program exposes every boundary label, so
    // the exact oracles work on it directly.
    std::cout << "\nexact joint distribution after the CNOT:\n";
    const auto joint = assertions::exactJoint(
        s.program(), session::Session::boundaryLabel(4), q0, q1);
    AsciiTable t;
    t.setHeader({"P(q0, q1)", "q1=0", "q1=1"});
    for (unsigned a = 0; a < 2; ++a) {
        t.addRow({"q0=" + std::to_string(a),
                  AsciiTable::fmt(joint[a][0], 3),
                  AsciiTable::fmt(joint[a][1], 3)});
    }
    std::cout << t.render();

    std::cout << "\npurity of q0 after the CNOT: "
              << assertions::exactPurity(
                     s.program(), session::Session::boundaryLabel(4),
                     q0)
              << " (0.5 = maximally entangled)\n";

    return s.allPassed() ? 0 : 1;
}
