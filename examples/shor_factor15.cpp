/**
 * @file
 * Factoring 15 with Shor's algorithm, instrumented with the paper's
 * Figure 2 assertion roadmap.
 *
 * The example (1) prints the classical inputs of Table 2, (2) checks
 * preconditions, invariants, and postconditions at every roadmap
 * breakpoint, (3) shows the exact output distribution, and (4) runs
 * the full quantum+classical factoring loop.
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    // --- Classical inputs (Table 2). -------------------------------------
    std::cout << "classical inputs for N = 15, a = 7 (Table 2):\n";
    AsciiTable inputs;
    inputs.setHeader({"k", "a = 7^(2^k) mod 15", "a^-1 mod 15"});
    const auto pairs = algo::shorClassicalInputs(7, 15, 4);
    for (unsigned k = 0; k < pairs.size(); ++k) {
        inputs.addRow({std::to_string(k),
                       std::to_string(pairs[k].first),
                       std::to_string(pairs[k].second)});
    }
    std::cout << inputs.render() << "\n";

    // --- Build the instrumented program. ----------------------------------
    const algo::ShorProgram prog = algo::buildShorProgram();
    std::cout << "circuit: " << prog.circuit.numQubits() << " qubits, "
              << prog.circuit.size() << " instructions\n";
    std::cout << "gate counts:";
    for (const auto &[gate, count] : prog.circuit.gateCounts())
        std::cout << " " << gate << "=" << count;
    std::cout << "\n\n";

    // --- Assertion roadmap (Figure 2), one session plan. ------------------
    session::Session s(prog.circuit);
    s.ensembleSize(128);

    auto init = s.at("init");
    init.expectClassical(prog.upper, 0);
    init.expectClassical(prog.lower, 1);
    init.expectClassical(prog.helper, 0);
    auto superposed = s.at("superposed");
    superposed.expectSuperposition(prog.upper);
    superposed.expectClassical(prog.lower, 1);
    auto entangled = s.at("entangled");
    entangled.expectEntangled(prog.upper, prog.lower);
    entangled.expectProduct(prog.upper, prog.helper);
    s.at("final").expectClassical(prog.helper, 0);

    std::cout << s.report() << "\n";

    // --- Exact output distribution. -----------------------------------------
    std::cout << "exact P(output) at 'final' (N&C p.235 expects "
                 "0, 2, 4, 6 at 1/4 each):\n";
    const auto probs =
        assertions::exactMarginal(prog.circuit, "final", prog.upper);
    AsciiTable dist;
    dist.setHeader({"output", "probability"});
    for (std::uint64_t v = 0; v < probs.size(); ++v) {
        if (probs[v] > 1e-9)
            dist.addRow({std::to_string(v),
                         AsciiTable::fmt(probs[v], 4)});
    }
    std::cout << dist.render() << "\n";

    // --- Full factoring loop. -------------------------------------------------
    Rng rng(2019);
    const auto result = algo::runShorFactoring(algo::ShorConfig(), rng);
    if (result.factors) {
        std::cout << "factored 15 = " << result.factors->first << " x "
                  << result.factors->second << " after "
                  << result.attempts << " attempt(s); measurements:";
        for (std::uint64_t m : result.measurements)
            std::cout << " " << m;
        std::cout << "\n";
    } else {
        std::cout << "factoring failed (unlucky measurements)\n";
    }

    return s.allPassed() && result.factors ? 0 : 1;
}
