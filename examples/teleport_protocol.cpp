/**
 * @file
 * Quantum teleportation with entangled-precondition assertions — the
 * "quantum communications protocols often need entangled states as
 * initial conditions" scenario of Section 4.1.
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    const double theta = 1.234, phi = 0.541;
    const auto prog = algo::buildTeleportProgram(theta, phi);

    std::cout << "teleporting Ry(" << theta << ") Rz(" << phi
              << ") |0> from Alice to Bob\n";
    std::cout << "circuit: " << prog.circuit.numQubits() << " qubits, "
              << prog.circuit.size() << " instructions, depth "
              << prog.circuit.depth() << "\n\n";

    // The builder instruments semantic breakpoints; the session
    // addresses them by label.
    session::Session s(prog.circuit);
    s.ensembleSize(128);

    // Precondition: the shared Bell pair must be entangled.
    s.at("pair_ready").expectEntangled(prog.senderHalf, prog.receiver);
    // Postcondition: undoing the payload preparation on Bob's qubit
    // returns it to |0> exactly when the payload arrived intact.
    s.at("verified").expectClassical(prog.receiver, 0);

    std::cout << s.report();

    std::cout << "\nBob's qubit P(0) at 'verified': "
              << AsciiTable::fmt(
                     assertions::exactMarginal(prog.circuit, "verified",
                                               prog.receiver)[0],
                     6)
              << "\n";
    return s.allPassed() ? 0 : 1;
}
