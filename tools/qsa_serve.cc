/**
 * @file
 * qsa_serve — the debugging-as-a-service daemon.
 *
 * Usage:
 *   qsa_serve --socket <path> [--store <dir>] [--workers N]
 *             [--queue N] [--max-qubits N]
 *             [--store-max-entries N] [--store-max-bytes N]
 *
 * Listens on a Unix-domain socket for newline-delimited JSON requests
 * (serve/protocol.hh documents the wire schema: ping / lint /
 * analyze / check / locate over OpenQASM circuits) and serves them
 * concurrently; every request's ensemble work fans out over the one
 * process-wide runtime::ThreadPool. With --store, a
 * serve::OracleStore is installed at the given directory so boundary
 * predicates, mixture purities, and Clifford prefix-equivalence
 * certificates persist across requests AND daemon restarts
 * (content-addressed by Circuit::contentHash; serve.oracle_cache.*
 * counters report reuse).
 *
 * Shutdown: SIGTERM / SIGINT trigger a graceful drain — stop
 * accepting, finish every queued request, flush responses — followed
 * by a NORMAL process exit, so atexit hooks run: a daemon started
 * with QSA_TRACE=<path> writes its trace file on the way out like
 * every other qsa tool.
 *
 * Readiness: prints "listening on <path>" to stdout (flushed) once
 * requests can connect; scripts wait for that line.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "serve/server.hh"
#include "serve/store.hh"

namespace
{

using namespace qsa;

void
usage(std::ostream &os)
{
    os << "usage: qsa_serve --socket <path> [--store <dir>] "
          "[--workers N] [--queue N] [--max-qubits N]\n"
          "                 [--store-max-entries N] "
          "[--store-max-bytes N]\n"
          "  --socket     Unix-domain socket path to listen on\n"
          "  --store      oracle store directory (persistent cache)\n"
          "  --workers    dispatcher threads (default: auto)\n"
          "  --queue      request queue bound (default: 64)\n"
          "  --max-qubits per-request qubit ceiling (default: 12)\n"
          "  --store-max-entries\n"
          "               oracle store entry cap, oldest evicted "
          "first (default: unbounded)\n"
          "  --store-max-bytes\n"
          "               oracle store size cap in bytes (default: "
          "unbounded)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig config;
    std::string store_dir;
    std::size_t store_max_entries = 0;
    std::size_t store_max_bytes = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            config.socketPath = argv[++i];
        } else if (arg == "--store" && has_value) {
            store_dir = argv[++i];
        } else if (arg == "--store-max-entries" && has_value) {
            store_max_entries =
                static_cast<std::size_t>(std::atol(argv[++i]));
        } else if (arg == "--store-max-bytes" && has_value) {
            store_max_bytes =
                static_cast<std::size_t>(std::atol(argv[++i]));
        } else if (arg == "--workers" && has_value) {
            config.workers =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--queue" && has_value) {
            config.maxQueue =
                static_cast<std::size_t>(std::atol(argv[++i]));
        } else if (arg == "--max-qubits" && has_value) {
            config.limits.maxQubits =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "qsa_serve: unknown or incomplete argument '"
                      << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (config.socketPath.empty()) {
        std::cerr << "qsa_serve: --socket is required\n";
        usage(std::cerr);
        return 2;
    }

    // Block the shutdown signals in every thread the server will
    // spawn (threads inherit the mask), then wait for one below.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGTERM);
    sigaddset(&signals, SIGINT);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    // Optional persistent oracle store, shared by every request.
    std::unique_ptr<serve::OracleStore> store;
    if (!store_dir.empty()) {
        store = std::make_unique<serve::OracleStore>(
            store_dir, store_max_entries, store_max_bytes);
        store->install();
    }

    serve::Server server(config);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "qsa_serve: " << error << "\n";
        return 1;
    }
    std::cout << "listening on " << server.socketPath() << std::endl;

    int signal_number = 0;
    sigwait(&signals, &signal_number);
    std::cout << "draining (signal " << signal_number << ")"
              << std::endl;
    server.stop();

    // Normal return: static destructors and atexit hooks (the
    // QSA_TRACE flush) run.
    return 0;
}
