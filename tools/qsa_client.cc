/**
 * @file
 * qsa_client — command-line client for the qsa_serve daemon.
 *
 * Usage:
 *   qsa_client --socket <path> [--ping]
 *
 * Reads newline-delimited JSON requests from stdin, sends each to the
 * daemon, and prints the response line to stdout — the pipe-friendly
 * form scripts and the CI smoke test drive. --ping sends a single
 * ping request instead and exits 0 iff the daemon answered ok.
 *
 * Exit status: 0 when every request got a response (whatever its
 * "ok" verdict — protocol errors are payload, not transport), 1 on
 * connection/transport failure, 2 on usage problems.
 */

#include <iostream>
#include <string>

#include "serve/client.hh"

int
main(int argc, char **argv)
{
    std::string socket_path;
    bool ping = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (arg == "--ping") {
            ping = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: qsa_client --socket <path> "
                         "[--ping]\n";
            return 0;
        } else {
            std::cerr << "qsa_client: unknown argument '" << arg
                      << "'\n";
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::cerr << "qsa_client: --socket is required\n";
        return 2;
    }

    qsa::serve::Client client;
    std::string error;
    if (!client.connect(socket_path, &error)) {
        std::cerr << "qsa_client: " << error << "\n";
        return 1;
    }

    if (ping) {
        std::string response;
        if (!client.request(R"({"command":"ping"})", &response,
                            &error)) {
            std::cerr << "qsa_client: " << error << "\n";
            return 1;
        }
        std::cout << response << "\n";
        return response.find("\"ok\":true") != std::string::npos ? 0
                                                                 : 1;
    }

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::string response;
        if (!client.request(line, &response, &error)) {
            std::cerr << "qsa_client: " << error << "\n";
            return 1;
        }
        std::cout << response << "\n";
    }
    return 0;
}
