/**
 * @file
 * qsa_lint — static circuit linter over QASM files.
 *
 * Usage:
 *   qsa_lint [--json] [--rules] [--demo] [file.qasm ...]
 *
 * Each input file is parsed (circuit::loadQasmFile) and run through
 * the full analyze::lintRules() registry; findings print as text (or
 * one JSON document per file with --json). --rules lists the
 * registry; --demo lints a built-in defective circuit exercising
 * every rule. Exit status: 0 when no file produced an error-severity
 * finding, 1 otherwise, 2 on usage problems. A file the QASM parser
 * rejects aborts through the library's fatal (exit 1), like every
 * qsa tool.
 *
 * Tracing: like every qsa::obs client, the linter's passes emit
 * analyze.* spans; run with QSA_TRACE=out.json to capture them.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/lint.hh"
#include "circuit/circuit.hh"
#include "circuit/qasm.hh"

namespace
{

using namespace qsa;

void
usage(std::ostream &os)
{
    os << "usage: qsa_lint [--json] [--rules] [--demo] "
          "[file.qasm ...]\n"
          "  --json   machine-readable output (one document per "
          "input)\n"
          "  --rules  list the registered lint rules and exit\n"
          "  --demo   lint a built-in defective circuit\n";
}

void
listRules()
{
    for (const auto &rule : analyze::lintRules()) {
        std::cout << rule.id << " (" << severityName(rule.severity)
                  << "): " << rule.summary << "\n";
    }
}

/**
 * A deliberately defective program touching every rule: a condition
 * on an unwritten label, an unsatisfiable condition, a double
 * measurement, measure-then-use without reset, a reset of an
 * entangled qubit, a dead qubit, and an adjacent self-inverse pair.
 */
circuit::Circuit
demoCircuit()
{
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", 3);
    const auto junk = circ.addRegister("junk", 1);

    circ.h(q[0]);
    circ.cnot(q[0], q[1]);
    circ.prepZ(q[1], 0); // reset while genuinely entangled with q[0]
    circ.x(junk[0]);
    circ.x(junk[0]); // self-inverse pair on a never-measured qubit
    circ.measureQubits({q[0]}, "m");
    circ.measureQubits({q[0]}, "m2"); // double measurement
    circ.x(q[0]); // measured then used without reset
    circ.x(q[2]);
    circ.conditionLast("typo", 1); // condition on an unwritten label
    circ.z(q[2]);
    circ.conditionLast("m", 2); // 1-bit label can never read 2
    circ.measureQubits({q[1], q[2]}, "out");
    return circ;
}

/** Lint one named circuit; returns true when errors were found. */
bool
lintOne(const std::string &name, const circuit::Circuit &circ,
        bool json)
{
    const analyze::LintReport report = analyze::lintCircuit(circ);
    if (json) {
        std::cout << report.json();
    } else {
        std::cout << name << ":\n" << report.render();
    }
    return report.hasErrors();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool demo = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--demo") {
            demo = true;
        } else if (arg == "--rules") {
            listRules();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "qsa_lint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    if (!demo && files.empty()) {
        usage(std::cerr);
        return 2;
    }

    bool errors = false;
    if (demo)
        errors = lintOne("demo", demoCircuit(), json) || errors;
    for (const std::string &file : files) {
        // Parse problems are fatal() inside the loader: the process
        // exits with a diagnostic, matching the library convention.
        const circuit::Circuit circ = circuit::loadQasmFile(file);
        errors = lintOne(file, circ, json) || errors;
    }
    return errors ? 1 : 0;
}
