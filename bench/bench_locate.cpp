/**
 * @file
 * Bug-localization cost: probes-per-localization and wall-clock for
 * the adaptive binary search versus the exhaustive linear scan, over
 * representative taxonomy defects (a flipped rotation deep in a
 * decomposed adder, a misrouted control in a modular multiplier, and
 * a wrong modular inverse in a controlled U_a).
 *
 * Run with --benchmark_counters_tabular=true; the "probes" and
 * "measurements" counters are the headline numbers — the adaptive
 * search needs O(log n) probes where the scan needs one per
 * instruction boundary. --json <path> writes the machine-readable
 * BENCH_*.json record.
 */

#include <cmath>

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using circuit::Circuit;

/** Table 1 flipped-rotation defect inside a decomposed adder. */
std::pair<Circuit, Circuit>
flippedAdderPair()
{
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto b = circ->addRegister("b", 5);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(b, 12);
        algo::qft(*circ, b);
        bugs::phiAddDecomposed(
            *circ, b, 13, ctrl[0],
            buggy ? bugs::Table1Variant::IncorrectFlipped
                  : bugs::Table1Variant::CorrectDropA);
        algo::iqft(*circ, b);
    }
    return pair;
}

/** Section 4.4 misrouted control in a controlled modular multiplier. */
std::pair<Circuit, Circuit>
misroutedPair()
{
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 5);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        if (buggy)
            bugs::cModMulMisrouted(*circ, ctrl[0], x, b, 3, 7, anc[0]);
        else
            algo::cModMul(*circ, ctrl[0], x, b, 3, 7, anc[0]);
    }
    return pair;
}

/** Table 3 wrong modular inverse inside a controlled U_a. */
std::pair<Circuit, Circuit>
wrongInversePair()
{
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto ctrl = circ->addRegister("ctrl", 1);
        const auto x = circ->addRegister("x", 3);
        const auto b = circ->addRegister("b", 4);
        const auto anc = circ->addRegister("anc", 1);
        circ->prepRegister(ctrl, 1);
        circ->prepRegister(x, 6);
        circ->prepRegister(b, 0);
        circ->prepRegister(anc, 0);
        circ->h(ctrl[0]);
        algo::cUa(*circ, ctrl[0], x, b, 3, buggy ? 4 : 5, 7, anc[0]);
    }
    return pair;
}

/**
 * Measured teleportation with a broken verify mirror *after* the
 * Bell measurement and its conditioned corrections — localizable
 * only by the Resimulate probe family.
 */
std::pair<Circuit, Circuit>
measuredTeleportPair()
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto msg = circ->addRegister("msg", 1);
        const auto half = circ->addRegister("half", 1);
        const auto recv = circ->addRegister("recv", 1);
        circ->prepZ(msg[0], 0);
        circ->prepZ(half[0], 0);
        circ->prepZ(recv[0], 0);
        circ->ry(msg[0], theta);
        circ->rz(msg[0], phi);
        circ->h(half[0]);
        circ->cnot(half[0], recv[0]);
        circ->cnot(msg[0], half[0]);
        circ->h(msg[0]);
        circ->measureQubits({half[0]}, "m_x");
        circ->measureQubits({msg[0]}, "m_z");
        circ->x(recv[0]);
        circ->conditionLast("m_x", 1);
        circ->z(recv[0]);
        circ->conditionLast("m_z", 1);
        circ->rz(recv[0], -phi);
        circ->ry(recv[0], buggy ? theta : -theta);
    }
    return pair;
}

/**
 * Measured teleportation with a conditioned-Z-*frame* defect (the
 * conditioned Z correction applies S instead): a pure relative-phase
 * divergence invisible to every computational-basis probe between
 * its site and the verify rotation — the swap-test family's
 * flagship.
 */
std::pair<Circuit, Circuit>
zFrameTeleportPair()
{
    constexpr double theta = 1.1;
    constexpr double phi = 0.6;
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto msg = circ->addRegister("msg", 1);
        const auto half = circ->addRegister("half", 1);
        const auto recv = circ->addRegister("recv", 1);
        circ->prepZ(msg[0], 0);
        circ->prepZ(half[0], 0);
        circ->prepZ(recv[0], 0);
        circ->ry(msg[0], theta);
        circ->rz(msg[0], phi);
        circ->h(half[0]);
        circ->cnot(half[0], recv[0]);
        circ->cnot(msg[0], half[0]);
        circ->h(msg[0]);
        circ->measureQubits({half[0]}, "m_x");
        circ->measureQubits({msg[0]}, "m_z");
        circ->x(recv[0]);
        circ->conditionLast("m_x", 1);
        if (buggy)
            circ->phase(recv[0], M_PI / 2);
        else
            circ->z(recv[0]);
        circ->conditionLast("m_z", 1);
        circ->rz(recv[0], -phi);
        circ->ry(recv[0], -theta);
    }
    return pair;
}

/**
 * Wide-measurement program: qubit 0 recycled through 13 measurement
 * rounds (2^13 = 8192 outcome histories, past the exact oracle's
 * 4096-branch cap) while qubit 1 carries a persistent prep defect
 * (X where the reference uses H). Exact reference derivation is
 * impossible here — this fixture is the sampled oracle's headline.
 */
std::pair<Circuit, Circuit>
wideMeasurePair()
{
    std::pair<Circuit, Circuit> pair;
    Circuit *circs[] = {&pair.first, &pair.second};
    for (Circuit *circ : circs) {
        const bool buggy = circ == &pair.first;
        const auto work = circ->addRegister("work", 1);
        const auto carry = circ->addRegister("carry", 1);
        circ->h(work[0]);
        circ->measureQubits({work[0]}, "m_r0");
        if (buggy)
            circ->x(carry[0]);
        else
            circ->h(carry[0]);
        for (int round = 1; round < 13; ++round) {
            circ->h(work[0]);
            circ->measureQubits({work[0]},
                                "m_r" + std::to_string(round));
        }
    }
    return pair;
}

std::pair<Circuit, Circuit>
fixturePair(int which)
{
    switch (which) {
      case 0: return flippedAdderPair();
      case 1: return misroutedPair();
      case 2: return wrongInversePair();
      case 3: return measuredTeleportPair();
      case 4: return zFrameTeleportPair();
      default: return wideMeasurePair();
    }
}

const char *
fixtureName(int which)
{
    switch (which) {
      case 0: return "flipped-adder";
      case 1: return "misrouted-control";
      case 2: return "wrong-inverse";
      case 3: return "measured-teleport";
      case 4: return "zframe-teleport";
      default: return "wide-measure";
    }
}

void
runLocate(benchmark::State &state, locate::Strategy strategy,
          assertions::EnsembleMode mode =
              assertions::EnsembleMode::SampleFinalState,
          locate::ProbeFamily family =
              locate::ProbeFamily::SegmentMirror,
          const char *reg_name = nullptr,
          locate::OracleMode oracle_mode = locate::OracleMode::Auto)
{
    const auto pair = fixturePair((int)state.range(0));

    locate::LocateConfig cfg;
    cfg.strategy = strategy;
    cfg.mode = mode;
    cfg.family = family;
    cfg.oracleMode = oracle_mode;
    cfg.ensembleSize = 64;
    cfg.maxEnsembleSize = 1024;
    const locate::BugLocator locator(pair.first, pair.second, cfg);

    std::size_t probes = 0;
    std::size_t measurements = 0;
    std::size_t pruned = 0;
    bool found = true;
    for (auto _ : state) {
        const auto report =
            reg_name == nullptr
                ? locator.locate()
                : locator.locateByPredicates(
                      pair.first.reg(reg_name));
        probes = report.probes.size();
        measurements = report.totalMeasurements;
        pruned = report.prunedBoundaries;
        found = found && report.bugFound;
        benchmark::DoNotOptimize(report);
    }

    state.SetLabel(std::string(fixtureName((int)state.range(0))) +
                   (found ? "" : " [NOT FOUND]"));
    state.counters["probes"] = (double)probes;
    state.counters["measurements"] = (double)measurements;
    state.counters["boundaries"] = (double)pair.first.size();
    // Boundaries the analyze prefix-equivalence pre-pass certified
    // away before any ensemble ran (see locate.hh "Static pruning").
    state.counters["pruned"] = (double)pruned;
}

void
BM_LocateAdaptive(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch);
}
BENCHMARK(BM_LocateAdaptive)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void
BM_LocateLinearScan(benchmark::State &state)
{
    runLocate(state, locate::Strategy::LinearScan);
}
BENCHMARK(BM_LocateLinearScan)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Resimulate-mode probes: the same unitary fixtures (cost of lifting
// the measurement clamp when nothing needs it — the runtime's cached
// deterministic head keeps it near the sampling path) plus the
// measurement-bearing teleport fixture only this mode can localize.
void
BM_LocateResimulate(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch,
              assertions::EnsembleMode::Resimulate);
}
BENCHMARK(BM_LocateResimulate)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void
BM_LocateResimulateScan(benchmark::State &state)
{
    runLocate(state, locate::Strategy::LinearScan,
              assertions::EnsembleMode::Resimulate);
}
BENCHMARK(BM_LocateResimulateScan)->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Phase-sensitive families on the conditioned-Z-frame teleport — the
// defect every computational-basis family brackets at the verify
// step instead of its site. Probes are register-scoped to the
// receiver; the swap-test scan is the exhaustive baseline the
// adaptive search must beat, and Auto pays the marginal search plus
// one decisive swap probe before escalating.
void
BM_LocateSwapTest(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::SwapTest, "recv");
}
BENCHMARK(BM_LocateSwapTest)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_LocateSwapTestScan(benchmark::State &state)
{
    runLocate(state, locate::Strategy::LinearScan,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::SwapTest, "recv");
}
BENCHMARK(BM_LocateSwapTestScan)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_LocateRotatedMarginal(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::RotatedMarginal, "recv");
}
BENCHMARK(BM_LocateRotatedMarginal)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_LocateAutoEscalation(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::Auto, "recv");
}
BENCHMARK(BM_LocateAutoEscalation)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The sampled reference oracle on the wide-measurement fixture — the
// program whose exact mixture tracking overflows the branch cap, so
// Monte-Carlo marginal estimation is the only oracle that runs at
// all. The scan is the exhaustive baseline; the adaptive search's
// probe count is the number to watch.
void
BM_LocateSampledOracle(benchmark::State &state)
{
    runLocate(state, locate::Strategy::AdaptiveBinarySearch,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::SegmentMirror, nullptr,
              locate::OracleMode::Sampled);
}
BENCHMARK(BM_LocateSampledOracle)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void
BM_LocateSampledOracleScan(benchmark::State &state)
{
    runLocate(state, locate::Strategy::LinearScan,
              assertions::EnsembleMode::Resimulate,
              locate::ProbeFamily::SegmentMirror, nullptr,
              locate::OracleMode::Sampled);
}
BENCHMARK(BM_LocateSampledOracleScan)->Arg(5)
    ->Unit(benchmark::kMillisecond);

/**
 * Replay one localization per benchmark configuration with the
 * registry freshly reset, so the "metrics" snapshot in the --json
 * artifact counts a fixed workload — locate.probes, the cache
 * hit/miss totals, and friends are then independent of how many
 * iterations the timing loops above decided to run, and the CI
 * regression gate can compare them across commits exactly.
 */
void
metricsEpilogue()
{
    obs::Registry::reset();
    const auto once = [](int which, locate::Strategy strategy,
                         assertions::EnsembleMode mode,
                         locate::ProbeFamily family,
                         const char *reg_name,
                         locate::OracleMode oracle_mode =
                             locate::OracleMode::Auto) {
        const auto pair = fixturePair(which);
        locate::LocateConfig cfg;
        cfg.strategy = strategy;
        cfg.mode = mode;
        cfg.family = family;
        cfg.oracleMode = oracle_mode;
        cfg.ensembleSize = 64;
        cfg.maxEnsembleSize = 1024;
        const locate::BugLocator locator(pair.first, pair.second,
                                         cfg);
        const auto report =
            reg_name == nullptr
                ? locator.locate()
                : locator.locateByPredicates(
                      pair.first.reg(reg_name));
        benchmark::DoNotOptimize(report);
    };
    using assertions::EnsembleMode;
    using locate::ProbeFamily;
    using locate::Strategy;
    for (int which : {0, 1, 2}) {
        once(which, Strategy::AdaptiveBinarySearch,
             EnsembleMode::SampleFinalState,
             ProbeFamily::SegmentMirror, nullptr);
        once(which, Strategy::LinearScan,
             EnsembleMode::SampleFinalState,
             ProbeFamily::SegmentMirror, nullptr);
    }
    for (int which : {0, 1, 2, 3})
        once(which, Strategy::AdaptiveBinarySearch,
             EnsembleMode::Resimulate, ProbeFamily::SegmentMirror,
             nullptr);
    once(3, Strategy::LinearScan, EnsembleMode::Resimulate,
         ProbeFamily::SegmentMirror, nullptr);
    once(4, Strategy::AdaptiveBinarySearch, EnsembleMode::Resimulate,
         ProbeFamily::SwapTest, "recv");
    once(4, Strategy::LinearScan, EnsembleMode::Resimulate,
         ProbeFamily::SwapTest, "recv");
    once(4, Strategy::AdaptiveBinarySearch, EnsembleMode::Resimulate,
         ProbeFamily::RotatedMarginal, "recv");
    once(4, Strategy::AdaptiveBinarySearch, EnsembleMode::Resimulate,
         ProbeFamily::Auto, "recv");
    once(5, Strategy::AdaptiveBinarySearch, EnsembleMode::Resimulate,
         ProbeFamily::SegmentMirror, nullptr,
         locate::OracleMode::Sampled);
    once(5, Strategy::LinearScan, EnsembleMode::Resimulate,
         ProbeFamily::SegmentMirror, nullptr,
         locate::OracleMode::Sampled);
}

} // anonymous namespace

QSA_BENCHJSON_MAIN_WITH_METRICS("bench_locate", metricsEpilogue);
