/**
 * @file
 * Table 3: joint probability of Shor's output and ancillary
 * (helper) qubits when the classical input is wrong (a^-1 = 12
 * instead of 13 on the first iteration).
 *
 * The paper's shape: the clean-helper row keeps the correct output
 * distribution at reduced weight; non-zero helper rows appear with
 * total probability ~1/2 and polluted outputs; the classical
 * postcondition assertion on the helper register fires.
 */

#include <iostream>

#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** Print the joint P(helper, output) table for a built program. */
void
printJoint(const algo::ShorProgram &prog, const char *title)
{
    std::cout << title << "\n";
    const auto joint = assertions::exactJoint(
        prog.circuit, "final", prog.helper, prog.upper);

    AsciiTable t;
    std::vector<std::string> header{"helper \\ output"};
    for (unsigned v = 0; v < 8; ++v)
        header.push_back(std::to_string(v));
    t.setHeader(header);

    for (std::size_t h = 0; h < joint.size(); ++h) {
        double row_total = 0.0;
        for (double p : joint[h])
            row_total += p;
        if (row_total < 1e-9)
            continue;
        std::vector<std::string> row{std::to_string(h)};
        for (double p : joint[h])
            row.push_back(p < 1e-9 ? "0" : AsciiTable::fmt(p, 4));
        t.addRow(row);
    }
    std::cout << t.render();

    double p_clean = 0.0;
    for (double p : joint[0])
        p_clean += p;
    std::cout << "P(helper = 0) = " << AsciiTable::fmt(p_clean, 4)
              << "\n\n";
}

/** Assertion verdicts on the deallocated registers. */
void
printAssertions(const algo::ShorProgram &prog, const char *title)
{
    std::cout << title << "\n";
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 64;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertClassical("final", prog.helper, 0);
    checker.assertClassical("final", prog.flag, 0);
    std::cout << assertions::renderReport(checker.checkAll()) << "\n";
}

} // anonymous namespace

int
main()
{
    using namespace qsa;

    std::cout << "=== Table 3: wrong modular inverse (bug type 6) "
                 "===\n\n";

    // --- Correct program --------------------------------------------------
    algo::ShorConfig good;
    const auto good_prog = algo::buildShorProgram(good);
    printJoint(good_prog,
               "correct inputs (a^-1 = 13): P(helper, output)");
    printAssertions(good_prog, "postcondition assertions (correct):");

    // --- Buggy program (the paper's Table 3) --------------------------------
    algo::ShorConfig bad;
    bad.pairs = algo::shorClassicalInputs(7, 15, 3);
    bad.pairs[0].second = 12; // the paper's exact mistake
    const auto bad_prog = algo::buildShorProgram(bad);
    printJoint(bad_prog,
               "buggy inputs (a^-1 = 12): P(helper, output) "
               "[paper's Table 3]");
    printAssertions(bad_prog, "postcondition assertions (buggy):");

    std::cout
        << "paper reference: ancilla non-zero with probability 1/2;\n"
        << "conditioned on ancilla = 0 the outputs 0, 2, 4, 6 "
           "survive;\n"
        << "the classical assertion on the deallocated ancillas "
           "fails.\n";
    return 0;
}
