/**
 * @file
 * Table 3: Shor's output / helper joint distribution when the
 * classical input is wrong (a^-1 = 12 instead of 13 on the first
 * iteration), as a machine-readable benchmark.
 *
 * The paper's shape, pinned as counters: the clean-helper row keeps
 * the correct output distribution at reduced weight (p_clean ~ 1/2
 * for the buggy inputs, ~1 for the correct ones), and the classical
 * postcondition assertion on the deallocated helper register fires
 * only for the buggy program. Run with --json <path> to write the
 * BENCH_*.json record (bench/benchjson_main.hh).
 */

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

algo::ShorProgram
buildVariant(bool buggy)
{
    algo::ShorConfig cfg;
    if (buggy) {
        cfg.pairs = algo::shorClassicalInputs(7, 15, 3);
        cfg.pairs[0].second = 12; // the paper's exact mistake
    }
    return algo::buildShorProgram(cfg);
}

const char *
variantName(bool buggy)
{
    return buggy ? "buggy (a^-1 = 12)" : "correct (a^-1 = 13)";
}

/**
 * The exact joint P(helper, output) behind Table 3: p_clean is the
 * clean-helper row's total weight — the paper's headline ~1/2 for
 * the wrong inverse.
 */
void
BM_Tab3JointDistribution(benchmark::State &state)
{
    const bool buggy = state.range(0) != 0;
    const auto prog = buildVariant(buggy);

    double p_clean = 0.0;
    for (auto _ : state) {
        const auto joint = assertions::exactJoint(
            prog.circuit, "final", prog.helper, prog.upper);
        p_clean = 0.0;
        for (double p : joint[0])
            p_clean += p;
        benchmark::DoNotOptimize(joint);
    }

    state.SetLabel(variantName(buggy));
    state.counters["p_clean"] = p_clean;
}
BENCHMARK(BM_Tab3JointDistribution)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * The postcondition assertions on the deallocated registers: the
 * helper-cleared classical assertion must fail for the buggy inputs
 * and pass for the correct ones.
 */
void
BM_Tab3PostconditionAssertions(benchmark::State &state)
{
    const bool buggy = state.range(0) != 0;
    const auto prog = buildVariant(buggy);

    assertions::CheckConfig cfg;
    cfg.ensembleSize = 64;

    double helper_p = 1.0, flag_p = 1.0;
    bool helper_passed = true, flag_passed = true;
    for (auto _ : state) {
        assertions::AssertionChecker checker(prog.circuit, cfg);
        checker.assertClassical("final", prog.helper, 0);
        checker.assertClassical("final", prog.flag, 0);
        const auto outcomes = checker.checkAll();
        helper_p = outcomes[0].pValue;
        helper_passed = outcomes[0].passed;
        flag_p = outcomes[1].pValue;
        flag_passed = outcomes[1].passed;
        benchmark::DoNotOptimize(outcomes);
    }

    const bool expected =
        buggy ? (!helper_passed && flag_passed)
              : (helper_passed && flag_passed);
    state.SetLabel(std::string(variantName(buggy)) +
                   (expected ? "" : " [UNEXPECTED VERDICT]"));
    state.counters["helper_p"] = helper_p;
    state.counters["helper_passed"] = helper_passed ? 1.0 : 0.0;
    state.counters["flag_p"] = flag_p;
    state.counters["flag_passed"] = flag_passed ? 1.0 : 0.0;
}
BENCHMARK(BM_Tab3PostconditionAssertions)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

QSA_BENCHJSON_MAIN("bench_tab3_shor_bug");
