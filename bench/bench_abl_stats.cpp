/**
 * @file
 * Ablation A2: statistical-test variants.
 *
 * Compares the checker's design choices on the same programs:
 * Pearson chi-square with/without the Yates continuity correction,
 * the G-test, and the two ensemble modes (resimulate vs final-state
 * sampling). The paper's quoted numbers correspond to
 * Yates + resimulate; the table shows the verdicts are stable across
 * variants while the exact p-values move.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

struct Variant
{
    std::string name;
    assertions::CheckConfig config;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_abl_stats");
    using namespace qsa;

    std::cout << "=== Ablation A2: statistical test variants ===\n\n";

    circuit::Circuit bell = algo::buildBellProgram();
    const auto q0 = bell.reg("q").slice(0, 1, "q0");
    const auto q1 = bell.reg("q").slice(1, 1, "q1");

    std::vector<Variant> variants;
    {
        Variant v;
        v.name = "chi2 + Yates, sample-final (default)";
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "chi2, no Yates";
        v.config.yatesFor2x2 = false;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "G-test";
        v.config.useGTest = true;
        variants.push_back(v);
    }
    {
        Variant v;
        v.name = "chi2 + Yates, resimulate";
        v.config.mode = assertions::EnsembleMode::Resimulate;
        variants.push_back(v);
    }

    for (std::size_t m : {16u, 256u}) {
        std::cout << "Bell-pair assertions at ensemble size " << m
                  << ":\n";
        AsciiTable t;
        t.setHeader({"variant", "entangled p", "verdict", "product p",
                     "verdict"});
        for (auto variant : variants) {
            variant.config.ensembleSize = m;
            assertions::AssertionChecker checker(bell,
                                                 variant.config);
            checker.assertEntangled("entangled", q0, q1);
            checker.assertProduct("superposition", q0, q1);
            const auto outcomes = checker.checkAll();
            t.addRow({variant.name,
                      AsciiTable::fmtP(outcomes[0].pValue),
                      outcomes[0].passed ? "entangled" : "MISSED",
                      AsciiTable::fmtP(outcomes[1].pValue),
                      outcomes[1].passed ? "product" : "false alarm"});
        }
        std::cout << t.render() << "\n";
    }

    // --- Superposition assertion under the variants. -------------------------
    std::cout << "superposition assertion on a 4-qubit uniform state "
                 "(M = 256):\n";
    circuit::Circuit uni;
    const auto q = uni.addRegister("q", 4);
    for (unsigned i = 0; i < 4; ++i)
        uni.h(q[i]);
    uni.breakpoint("bp");

    AsciiTable t;
    t.setHeader({"variant", "statistic", "df", "p-value", "verdict"});
    for (auto variant : variants) {
        variant.config.ensembleSize = 256;
        assertions::AssertionChecker checker(uni, variant.config);
        checker.assertSuperposition("bp", q);
        const auto o = checker.check(checker.assertions()[0]);
        t.addRow({variant.name, AsciiTable::fmt(o.statistic, 2),
                  AsciiTable::fmt(o.df, 0), AsciiTable::fmtP(o.pValue),
                  o.passed ? "PASS" : "FAIL"});
    }
    std::cout << t.render() << "\n";

    std::cout << "reference points: Yates at M = 16 reproduces the "
                 "paper's 0.0005 for a perfect 2x2 table;\n"
              << "without the correction the same table gives "
                 "chi2 = 16, p = 6.3e-05.\n";
    return 0;
}
