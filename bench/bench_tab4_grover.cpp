/**
 * @file
 * Table 4: the amplitude-amplification subroutine's structure and the
 * assertions it dictates (Section 5.1), plus the per-iteration
 * success-probability series for the GF(2^4) square-root search.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_tab4_grover");
    using namespace qsa;

    std::cout << "=== Table 4: Grover amplitude amplification ===\n\n";

    algo::GroverConfig config;
    config.degree = 4;
    config.target = 0b1011;
    const auto prog = algo::buildGroverProgram(config);
    const gf2::Field field(config.degree);

    std::cout << "oracle: find x with x^2 = " << config.target
              << " in GF(16); unique answer x = "
              << prog.expectedAnswer << "\n";
    std::cout << "circuit: " << prog.circuit.numQubits() << " qubits, "
              << prog.circuit.size() << " instructions\n";
    std::cout << "gate counts:";
    for (const auto &[g, c] : prog.circuit.gateCounts())
        std::cout << " " << g << "=" << c;
    std::cout << "\n\n";

    // --- Structure-driven assertions (rows 2-6 of Table 4). ---------------
    std::cout << "assertions placed by the compute / controlled / "
                 "uncompute structure:\n";
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 256;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertClassical("init", prog.q, 0);
    checker.assertSuperposition("superposed", prog.q);
    checker.assertEntangled("oracle_computed", prog.q, prog.work);
    checker.assertProduct("oracle_uncomputed", prog.q, prog.work);
    checker.assertClassical("oracle_uncomputed", prog.work, 0);
    std::cout << assertions::renderReport(checker.checkAll()) << "\n";

    // --- Ground truth purity at the two oracle breakpoints. ----------------
    std::cout << "work-register purity (1 = product state): computed "
              << AsciiTable::fmt(
                     assertions::exactPurity(prog.circuit,
                                             "oracle_computed",
                                             prog.work),
                     4)
              << ", uncomputed "
              << AsciiTable::fmt(
                     assertions::exactPurity(prog.circuit,
                                             "oracle_uncomputed",
                                             prog.work),
                     4)
              << "\n\n";

    // --- Amplification series (the "figure" behind the table). -------------
    std::cout << "success probability per iteration (optimal = "
              << prog.iterations << "):\n";
    algo::GroverConfig sweep_cfg = config;
    sweep_cfg.iterations = prog.iterations + 3; // overshoot visible
    const auto sweep = algo::buildGroverProgram(sweep_cfg);

    AsciiTable series;
    series.setHeader({"iteration", "P(success)", "note"});
    series.addRow({"0", AsciiTable::fmt(1.0 / 16.0, 4),
                   "uniform superposition"});
    for (unsigned i = 1; i <= sweep.iterations; ++i) {
        const auto probs = assertions::exactMarginal(
            sweep.circuit, "iter_" + std::to_string(i), sweep.q);
        series.addRow({std::to_string(i),
                       AsciiTable::fmt(probs[sweep.expectedAnswer], 4),
                       i == prog.iterations ? "optimal stop" : ""});
    }
    std::cout << series.render() << "\n";
    std::cout << "shape check: probability rises to ~0.96 at the "
                 "optimal iteration, then over-rotates.\n";
    return 0;
}
