/**
 * @file
 * Figure 1: Bell state creation and the correlated-measurement
 * contingency table, as a machine-readable benchmark.
 *
 * Regenerates the entanglement-assertion p-value of the paper's
 * introductory example across ensemble sizes — including the quoted
 * M = 16 / p ~ 0.0005 point — plus the negative control before the
 * CNOT (independent qubits: the product assertion passes, the
 * entanglement assertion stays inconclusive). Contingency counts,
 * chi-square statistics, and verdicts land as counters; run with
 * --json <path> for the BENCH_*.json record.
 */

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

void
BM_BellEntangledAssertion(benchmark::State &state)
{
    const std::size_t m = (std::size_t)state.range(0);
    circuit::Circuit program = algo::buildBellProgram();
    const auto q0 = program.reg("q").slice(0, 1, "q0");
    const auto q1 = program.reg("q").slice(1, 1, "q1");

    assertions::AssertionOutcome out;
    for (auto _ : state) {
        session::Session s(program);
        s.ensembleSize(m);
        out = s.at("entangled").expectEntangled(q0, q1).outcome();
        benchmark::DoNotOptimize(out);
    }

    const auto count = [&](unsigned a, unsigned b) {
        const auto it = out.jointCounts.find({a, b});
        return it == out.jointCounts.end() ? 0ull : it->second;
    };
    state.SetLabel(out.passed ? "entangled" : "inconclusive");
    state.counters["p_value"] = out.pValue;
    state.counters["chi2"] = out.statistic;
    state.counters["passed"] = out.passed ? 1.0 : 0.0;
    state.counters["n00"] = (double)count(0, 0);
    state.counters["n01"] = (double)count(0, 1);
    state.counters["n10"] = (double)count(1, 0);
    state.counters["n11"] = (double)count(1, 1);
}
BENCHMARK(BM_BellEntangledAssertion)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

/** Negative control: before the CNOT the qubits are independent. */
void
BM_BellNegativeControl(benchmark::State &state)
{
    circuit::Circuit program = algo::buildBellProgram();
    const auto q0 = program.reg("q").slice(0, 1, "q0");
    const auto q1 = program.reg("q").slice(1, 1, "q1");

    bool product_passed = false, entangled_passed = true;
    double product_p = 0.0;
    for (auto _ : state) {
        session::Session s(program);
        s.ensembleSize(1024);
        auto before_cnot = s.at("superposition");
        auto &entangled = before_cnot.expectEntangled(q0, q1);
        auto &product = before_cnot.expectProduct(q0, q1);
        product_passed = product.passed();
        product_p = product.pValue();
        entangled_passed = entangled.passed();
    }

    const bool expected = product_passed && !entangled_passed;
    state.SetLabel(expected ? "independent"
                            : "UNEXPECTED CORRELATION");
    state.counters["product_p"] = product_p;
    state.counters["product_passed"] = product_passed ? 1.0 : 0.0;
    state.counters["entangled_passed"] =
        entangled_passed ? 1.0 : 0.0;
}
BENCHMARK(BM_BellNegativeControl)->Unit(benchmark::kMicrosecond);

} // anonymous namespace

QSA_BENCHJSON_MAIN("bench_fig1_bell");
