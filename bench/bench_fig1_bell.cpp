/**
 * @file
 * Figure 1: Bell state creation and the correlated-measurement
 * contingency table.
 *
 * Regenerates the 2x2 contingency table of the paper's introductory
 * example and the entanglement-assertion p-value across ensemble
 * sizes, including the paper's quoted M = 16 / p ~ 0.0005 point.
 */

#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;

    std::cout << "=== Figure 1: Bell state creation ===\n\n";

    circuit::Circuit program = algo::buildBellProgram();
    const auto q0 = program.reg("q").slice(0, 1, "q0");
    const auto q1 = program.reg("q").slice(1, 1, "q1");

    // --- The paper's probability table (exact). ---------------------------
    std::cout << "exact joint distribution at breakpoint 'entangled' "
                 "(paper: 1/2 diagonal):\n";
    const auto joint =
        assertions::exactJoint(program, "entangled", q0, q1);
    AsciiTable jt;
    jt.setHeader({"Probability", "m0 = 0", "m0 = 1"});
    for (unsigned b = 0; b < 2; ++b) {
        jt.addRow({"m1 = " + std::to_string(b),
                   AsciiTable::fmt(joint[0][b], 3),
                   AsciiTable::fmt(joint[1][b], 3)});
    }
    std::cout << jt.render() << "\n";

    // --- Sampled contingency tables + chi-square sweep. -------------------
    std::cout << "entanglement assertion vs ensemble size "
                 "(Yates-corrected chi-square):\n";
    AsciiTable sweep;
    sweep.setHeader({"M", "n00", "n01", "n10", "n11", "chi2", "df",
                     "p-value", "verdict"});
    for (std::size_t m : {16u, 32u, 64u, 256u, 1024u}) {
        session::Session s(program);
        s.ensembleSize(m);
        const auto o =
            s.at("entangled").expectEntangled(q0, q1).outcome();

        auto count = [&](unsigned a, unsigned b) {
            const auto it = o.jointCounts.find({a, b});
            return it == o.jointCounts.end() ? 0ull : it->second;
        };
        sweep.addRow({std::to_string(m), std::to_string(count(0, 0)),
                      std::to_string(count(0, 1)),
                      std::to_string(count(1, 0)),
                      std::to_string(count(1, 1)),
                      AsciiTable::fmt(o.statistic, 2),
                      AsciiTable::fmt(o.df, 0),
                      AsciiTable::fmtP(o.pValue),
                      o.passed ? "entangled" : "inconclusive"});
    }
    std::cout << sweep.render() << "\n";
    std::cout << "paper reference: perfectly correlated table at "
                 "M = 16 gives p = 0.0005\n\n";

    // --- Negative control: before the CNOT. --------------------------------
    std::cout << "negative control at breakpoint 'superposition' "
                 "(independent qubits):\n";
    session::Session s(program);
    s.ensembleSize(1024);
    auto before_cnot = s.at("superposition");
    before_cnot.expectEntangled(q0, q1);
    before_cnot.expectProduct(q0, q1);
    std::cout << s.report();

    return 0;
}
