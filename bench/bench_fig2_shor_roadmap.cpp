/**
 * @file
 * Figure 2: the Shor's-algorithm roadmap with assertions at every
 * structural site, for the correct program and for each injectable
 * bug of the taxonomy — the paper's claim that the roadmap catches
 * all six bug types, regenerated as one table.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** Run the roadmap's assertions and summarise which ones fail. */
std::string
roadmapVerdicts(const algo::ShorProgram &prog)
{
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 96;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertClassical("init", prog.upper, 0);
    checker.assertClassical("init", prog.lower, 1);
    checker.assertSuperposition("superposed", prog.upper);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    checker.assertProduct("entangled", prog.upper, prog.helper);
    checker.assertClassical("final", prog.helper, 0);

    std::string failures;
    for (const auto &o : checker.checkAll()) {
        if (!o.passed) {
            if (!failures.empty())
                failures += ", ";
            failures += o.spec.name;
        }
    }
    return failures.empty() ? "all pass" : "FAIL: " + failures;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_fig2_shor_roadmap");
    using namespace qsa;

    std::cout << "=== Figure 2: Shor roadmap assertions ===\n\n";

    // Stage-by-stage detail for the correct program.
    const auto good = algo::buildShorProgram(algo::ShorConfig());
    std::cout << "roadmap stages (correct program):\n";
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 128;
    assertions::AssertionChecker checker(good.circuit, cfg);
    checker.assertClassical("init", good.upper, 0);
    checker.assertClassical("init", good.lower, 1);
    checker.assertClassical("init", good.helper, 0);
    checker.assertSuperposition("superposed", good.upper);
    checker.assertClassical("superposed", good.lower, 1);
    checker.assertEntangled("entangled", good.upper, good.lower);
    checker.assertProduct("entangled", good.upper, good.helper);
    checker.assertClassical("final", good.helper, 0);
    checker.assertClassical("final", good.flag, 0);
    std::cout << assertions::renderReport(checker.checkAll()) << "\n";

    // The taxonomy sweep.
    std::cout << "bug taxonomy vs the same roadmap:\n";
    AsciiTable t;
    t.setHeader({"program variant", "bug type", "roadmap verdict"});

    t.addRow({"correct", "-", roadmapVerdicts(good)});

    {
        algo::ShorConfig c;
        c.lowerInit = 0;
        t.addRow({"lower register starts at 0", "1 (Section 4.1)",
                  roadmapVerdicts(algo::buildShorProgram(c))});
    }
    {
        algo::ShorConfig c;
        c.pairs = algo::shorClassicalInputs(7, 15, 3);
        c.pairs[0].second = 12;
        t.addRow({"a^-1 = 12 instead of 13", "6 (Section 4.6)",
                  roadmapVerdicts(algo::buildShorProgram(c))});
    }
    std::cout << t.render() << "\n";

    std::cout << "bug catalogue (Sections 4.1-4.6):\n";
    AsciiTable cat;
    cat.setHeader({"type", "name", "paper", "caught by"});
    for (const auto &info : bugs::bugCatalog()) {
        cat.addRow({std::to_string((int)info.type + 1), info.name,
                    info.paperSection, info.caughtBy});
    }
    std::cout << cat.render();
    std::cout << "\n(types 2-5 are exercised in bench_tab1_rotation "
                 "and bench_sec44_modmul)\n\n";

    // Full-register vs Beauregard's one-control-qubit construction.
    std::cout << "qubit cost: full register vs semiclassical "
                 "(Beauregard [2], the paper's basis):\n";
    const auto semi =
        algo::buildSemiclassicalShorProgram(algo::ShorConfig());
    AsciiTable qc;
    qc.setHeader({"variant", "qubits", "instructions", "depth",
                  "output distribution"});

    std::vector<double> semi_counts(8, 0.0);
    Rng rng(17);
    const int runs = 96;
    for (int i = 0; i < runs; ++i) {
        const auto rec = circuit::runCircuit(semi.circuit, rng);
        semi_counts[algo::semiclassicalShorOutput(rec.measurements,
                                                  3)] += 1.0;
    }
    std::string semi_dist;
    for (unsigned v = 0; v < 8; v += 2) {
        semi_dist += std::to_string(v) + ":" +
                     AsciiTable::fmt(semi_counts[v] / runs, 2) + " ";
    }

    const auto full_probs =
        assertions::exactMarginal(good.circuit, "final", good.upper);
    std::string full_dist;
    for (unsigned v = 0; v < 8; v += 2) {
        full_dist += std::to_string(v) + ":" +
                     AsciiTable::fmt(full_probs[v], 2) + " ";
    }

    qc.addRow({"full register (this repo's default)",
               std::to_string(good.circuit.numQubits()),
               std::to_string(good.circuit.size()),
               std::to_string(good.circuit.depth()), full_dist});
    qc.addRow({"semiclassical 2n+3 (one recycled control)",
               std::to_string(semi.circuit.numQubits()),
               std::to_string(semi.circuit.size()),
               std::to_string(semi.circuit.depth()),
               semi_dist + "(sampled, " + std::to_string(runs) +
                   " runs)"});
    std::cout << qc.render();
    return 0;
}
