/**
 * @file
 * Section 5.2.3: the two whole-algorithm convergence checks for the
 * quantum chemistry benchmark, as a machine-readable benchmark.
 *
 *  1. Trotter-step convergence: the eigenphase error of the
 *     Trotterised evolution shrinks with the step count; a failure
 *     to converge indicates a bug in the Hamiltonian subroutine.
 *  2. Precision refinement: every higher-precision IPEA phase
 *     estimate must agree with the coarser one to a unit in the last
 *     place; disagreement indicates a bug in the IPEA subroutine.
 *
 * Errors, energies, and consistency verdicts land as counters; run
 * with --json <path> for the BENCH_*.json record.
 */

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;
using namespace qsa::chem;

constexpr double kERef = 1.5;
constexpr double kTime = 1.2;

/**
 * Eigenphase error of one Trotterised evolution applied to the exact
 * ground state (no read-out limit): build the dense circuit matrix
 * column by column, apply it to the ground vector, and compare the
 * acquired phase with the exact eigenphase.
 */
double
trotterEigenphaseError(const H2Model &model, double fci,
                       unsigned steps)
{
    const auto spectrum = diagonalize(model.hamiltonian);
    std::vector<sim::Complex> ground(16);
    for (int i = 0; i < 16; ++i)
        ground[i] = spectrum.vectors[0][i];

    // The uncontrolled Trotter circuit implements exp(-i (H - c0) t):
    // the identity term is a global phase and is only physical once
    // controlled. Compare eigenphases against the same convention.
    double c0 = 0.0;
    const auto it =
        model.hamiltonian.terms().find(chem::PauliMask{0, 0});
    if (it != model.hamiltonian.terms().end())
        c0 = it->second.real();

    circuit::Circuit circ(4);
    appendTrotterEvolution(circ, model.hamiltonian, kTime, steps,
                           {0, 1, 2, 3}, {}, kERef);

    sim::CMatrix u(16);
    for (std::uint64_t col = 0; col < 16; ++col) {
        sim::StateVector basis(4);
        basis.setBasisState(col);
        std::map<std::string, std::uint64_t> meas;
        Rng rng(1);
        circuit::runCircuitOn(circ, basis, meas, rng);
        for (std::uint64_t row = 0; row < 16; ++row)
            u.at(row, col) = basis.amp(row);
    }
    const std::vector<sim::Complex> evolved = u.apply(ground);

    sim::Complex overlap(0.0);
    for (int i = 0; i < 16; ++i)
        overlap += std::conj(ground[i]) * evolved[i];
    const double measured_phase = -std::arg(overlap);
    const double exact_phase = (fci - c0) * kTime;
    double err = measured_phase - exact_phase;
    while (err > M_PI)
        err -= 2.0 * M_PI;
    while (err <= -M_PI)
        err += 2.0 * M_PI;
    return std::fabs(err);
}

void
BM_TrotterConvergence(benchmark::State &state)
{
    const unsigned steps = (unsigned)state.range(0);
    const H2Model model = buildH2Model(73.48);
    const double fci = groundStateEnergy(model.hamiltonian);

    double phase_err = 0.0;
    for (auto _ : state) {
        phase_err = trotterEigenphaseError(model, fci, steps);
        benchmark::DoNotOptimize(phase_err);
    }

    state.SetLabel("first-order Trotter, " + std::to_string(steps) +
                   " step(s)");
    state.counters["eigenphase_error"] = phase_err;
    state.counters["energy_error"] = phase_err / kTime;
}
BENCHMARK(BM_TrotterConvergence)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/**
 * IPEA read-out at 12 bits of phase on the Trotterised evolution:
 * the energy the algorithm actually measures must converge to FCI
 * within its resolution as the step count grows.
 */
void
BM_IpeaTrotterEnergy(benchmark::State &state)
{
    const unsigned steps = (unsigned)state.range(0);
    const H2Model model = buildH2Model(73.48);
    const double fci = groundStateEnergy(model.hamiltonian);

    const algo::ControlledPowerFn fn =
        [&](circuit::Circuit &cc, unsigned ctrl, unsigned k) {
            const std::uint64_t reps = 1ull << k;
            for (std::uint64_t r = 0; r < reps; ++r) {
                appendTrotterEvolution(cc, model.hamiltonian, kTime,
                                       steps, {0, 1, 2, 3}, {ctrl},
                                       kERef);
            }
        };

    double e_ipea = 0.0;
    for (auto _ : state) {
        algo::IpeaConfig cfg;
        cfg.bits = 12;
        const auto run = algo::runIpea(4, 0b0011, fn, cfg);
        e_ipea = algo::phaseToEnergy(run.phase, kTime, kERef);
        benchmark::DoNotOptimize(run);
    }

    state.SetLabel("12-bit IPEA, " + std::to_string(steps) +
                   " Trotter step(s)");
    state.counters["ipea_energy"] = e_ipea;
    state.counters["fci_energy"] = fci;
    state.counters["energy_error"] = std::fabs(e_ipea - fci);
}
BENCHMARK(BM_IpeaTrotterEnergy)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/**
 * Precision refinement on the exact evolution operator: each run
 * sweeps m = 4, 6, 8, 10, 12 bits and checks every refinement
 * against the coarser estimate (one unit in the last place). The
 * refinements_consistent counter must stay 1.
 */
void
BM_IpeaPrecisionRefinement(benchmark::State &state)
{
    const H2Model model = buildH2Model(73.48);
    const auto u =
        evolutionOperator(model.hamiltonian, kTime, kERef);
    const algo::ControlledPowerFn exact_fn =
        [&](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
            sim::CMatrix p = u;
            for (unsigned i = 0; i < k; ++i)
                p = p.mul(p);
            circ.unitary(p, {0, 1, 2, 3}, {ctrl});
        };

    bool consistent = true;
    double final_energy = 0.0;
    for (auto _ : state) {
        consistent = true;
        double prev_phase = -1.0;
        unsigned prev_bits = 0;
        for (unsigned bits : {4u, 6u, 8u, 10u, 12u}) {
            algo::IpeaConfig cfg;
            cfg.bits = bits;
            const auto run = algo::runIpea(4, 0b0011, exact_fn, cfg);
            if (prev_phase >= 0.0) {
                const double scale = std::pow(2.0, prev_bits);
                consistent = consistent &&
                             std::fabs(run.phase - prev_phase) <=
                                 1.0 / scale;
            }
            prev_phase = run.phase;
            prev_bits = bits;
            final_energy =
                algo::phaseToEnergy(run.phase, kTime, kERef);
        }
        benchmark::DoNotOptimize(final_energy);
    }

    state.SetLabel(consistent ? "refinements consistent"
                              : "REFINEMENT MISMATCH");
    state.counters["refinements_consistent"] =
        consistent ? 1.0 : 0.0;
    state.counters["energy_12bit"] = final_energy;
}
BENCHMARK(BM_IpeaPrecisionRefinement)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

QSA_BENCHJSON_MAIN("bench_sec52_convergence");
