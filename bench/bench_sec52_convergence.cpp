/**
 * @file
 * Section 5.2.3: the two whole-algorithm convergence checks for the
 * quantum chemistry benchmark.
 *
 *  1. Trotter-step convergence: the IPEA ground-state energy settles
 *     as the number of Trotter steps per evolution grows; a failure
 *     to converge indicates a bug in the Hamiltonian subroutine.
 *  2. Precision refinement: rounding a high-precision phase estimate
 *     must reproduce the low-precision estimate; disagreement
 *     indicates a bug in the IPEA subroutine.
 */

#include <cmath>
#include <iostream>

#include "qsa/qsa.hh"

int
main()
{
    using namespace qsa;
    using namespace qsa::chem;

    std::cout << "=== Section 5.2.3: convergence checks ===\n\n";

    const H2Model model = buildH2Model(73.48);
    const double fci = groundStateEnergy(model.hamiltonian);
    const double e_ref = 1.5, time = 1.2;

    // --- 1. Energy vs Trotter steps. ---------------------------------------
    // Two views: the eigenphase error of the Trotterised unitary
    // itself (no read-out limit), and the energy IPEA actually
    // measures at 12 bits of phase.
    const auto spectrum = diagonalize(model.hamiltonian);
    std::vector<sim::Complex> ground(16);
    for (int i = 0; i < 16; ++i)
        ground[i] = spectrum.vectors[0][i];

    // The uncontrolled Trotter circuit implements exp(-i (H - c0) t):
    // the identity term is a global phase and is only physical once
    // controlled. Compare eigenphases against the same convention.
    double c0 = 0.0;
    {
        const auto it =
            model.hamiltonian.terms().find(chem::PauliMask{0, 0});
        if (it != model.hamiltonian.terms().end())
            c0 = it->second.real();
    }

    std::cout << "ground-state energy vs Trotter steps (FCI = "
              << AsciiTable::fmt(fci, 6) << "):\n";
    AsciiTable t1;
    t1.setHeader({"Trotter steps", "eigenphase error (rad)",
                  "energy error (hartree)", "IPEA energy (12 bits)"});
    for (unsigned steps : {1u, 2u, 4u, 8u, 16u}) {
        // Direct view: apply one Trotterised evolution to the exact
        // ground state and compare the acquired phase with the exact
        // eigenphase (no read-out resolution limit).
        circuit::Circuit circ(4);
        appendTrotterEvolution(circ, model.hamiltonian, time, steps,
                               {0, 1, 2, 3}, {}, e_ref);

        // Build the dense matrix of the Trotter circuit column by
        // column and apply it to the exact ground vector.
        sim::CMatrix u(16);
        for (std::uint64_t col = 0; col < 16; ++col) {
            sim::StateVector basis(4);
            basis.setBasisState(col);
            std::map<std::string, std::uint64_t> meas;
            Rng rng(1);
            circuit::runCircuitOn(circ, basis, meas, rng);
            for (std::uint64_t row = 0; row < 16; ++row)
                u.at(row, col) = basis.amp(row);
        }
        const std::vector<sim::Complex> evolved = u.apply(ground);

        sim::Complex overlap(0.0);
        for (int i = 0; i < 16; ++i)
            overlap += std::conj(ground[i]) * evolved[i];
        const double measured_phase = -std::arg(overlap);
        const double exact_phase = (fci - c0) * time;
        double err = measured_phase - exact_phase;
        while (err > M_PI)
            err -= 2.0 * M_PI;
        while (err <= -M_PI)
            err += 2.0 * M_PI;
        const double energy_err = std::fabs(err) / time;

        // Read-out view: what IPEA measures at 12 bits of phase.
        const algo::ControlledPowerFn fn =
            [&](circuit::Circuit &cc, unsigned ctrl, unsigned k) {
                const std::uint64_t reps = 1ull << k;
                for (std::uint64_t r = 0; r < reps; ++r) {
                    appendTrotterEvolution(cc, model.hamiltonian,
                                           time, steps, {0, 1, 2, 3},
                                           {ctrl}, e_ref);
                }
            };
        algo::IpeaConfig cfg;
        cfg.bits = 12;
        const auto run = algo::runIpea(4, 0b0011, fn, cfg);
        const double e_ipea =
            algo::phaseToEnergy(run.phase, time, e_ref);

        t1.addRow({std::to_string(steps),
                   AsciiTable::fmt(std::fabs(err), 6),
                   AsciiTable::fmt(energy_err, 6),
                   AsciiTable::fmt(e_ipea, 6)});
    }
    std::cout << t1.render();
    std::cout << "shape check: the eigenphase error shrinks with r "
                 "(first-order Trotter); the IPEA column converges to "
                 "FCI within its 12-bit resolution.\n\n";

    // --- 2. Energy vs phase-estimation precision. ----------------------------
    std::cout << "phase estimate vs bit precision (exact evolution "
                 "operator):\n";
    const auto u = evolutionOperator(model.hamiltonian, time, e_ref);
    const algo::ControlledPowerFn exact_fn =
        [&](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
            sim::CMatrix p = u;
            for (unsigned i = 0; i < k; ++i)
                p = p.mul(p);
            circ.unitary(p, {0, 1, 2, 3}, {ctrl});
        };

    AsciiTable t2;
    t2.setHeader({"bits m", "phase (binary)", "phase", "energy",
                  "rounds to previous row?"});
    double prev_phase = -1.0;
    unsigned prev_bits = 0;
    for (unsigned bits : {4u, 6u, 8u, 10u, 12u}) {
        algo::IpeaConfig cfg;
        cfg.bits = bits;
        const auto run = algo::runIpea(4, 0b0011, exact_fn, cfg);

        std::string binary = "0.";
        for (unsigned b : run.bits)
            binary += std::to_string(b);

        std::string consistent = "-";
        if (prev_phase >= 0.0) {
            // The most significant prev_bits bits must agree up to
            // one unit in the last place.
            const double scale = std::pow(2.0, prev_bits);
            consistent = std::fabs(run.phase - prev_phase) <=
                                 1.0 / scale
                             ? "yes"
                             : "NO";
        }
        t2.addRow({std::to_string(bits), binary,
                   AsciiTable::fmt(run.phase, 5),
                   AsciiTable::fmt(
                       algo::phaseToEnergy(run.phase, time, e_ref), 5),
                   consistent});
        prev_phase = run.phase;
        prev_bits = bits;
    }
    std::cout << t2.render();
    std::cout << "shape check: every refinement is consistent with "
                 "the coarser estimate.\n";
    return 0;
}
