/**
 * @file
 * google-benchmark glue for the qsa::benchjson trajectory files.
 *
 * Replace BENCHMARK_MAIN() with QSA_BENCHJSON_MAIN("bench_name") to
 * accept `--json <path>` alongside the normal benchmark flags: runs
 * print to the console exactly as before, and when the flag is given
 * every run is additionally teed into one machine-readable JSON
 * document (format: src/common/benchjson.hh). This header is
 * bench-only on purpose — libqsa carries the renderer but never a
 * benchmark-library dependency.
 */

#ifndef QSA_BENCH_BENCHJSON_MAIN_HH
#define QSA_BENCH_BENCHJSON_MAIN_HH

#include <functional>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/benchjson.hh"
#include "obs/obs.hh"

namespace qsa::benchjson
{

/** Console output as usual, plus a Record per successful run. */
class TeeReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs) {
            if (run.error_occurred)
                continue;
            Record rec;
            rec.name = run.benchmark_name();
            rec.label = run.report_label;
            rec.iterations = run.iterations;
            rec.realTime = run.GetAdjustedRealTime();
            rec.cpuTime = run.GetAdjustedCPUTime();
            rec.timeUnit = benchmark::GetTimeUnitString(run.time_unit);
            for (const auto &[name, counter] : run.counters)
                rec.counters.emplace_back(name, (double)counter.value);
            records.push_back(std::move(rec));
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    std::vector<Record> records;
};

/**
 * The BENCHMARK_MAIN() body with --json teeing bolted on. The JSON
 * document embeds the qsa::obs metrics snapshot taken just before
 * writing; `metrics_epilogue`, when given, runs first — benches use
 * it to reset the registry and replay a fixed workload so the
 * snapshot is deterministic instead of scaling with however many
 * iterations the timing loops decided to run (see bench_locate.cpp).
 */
inline int
benchMain(const std::string &bench_name, int argc, char **argv,
          const std::function<void()> &metrics_epilogue = nullptr)
{
    const std::string json_path = extractJsonPath(&argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    TeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (!json_path.empty()) {
        if (metrics_epilogue)
            metrics_epilogue();
        write(json_path, bench_name, reporter.records,
              obs::metricsJson());
    }
    benchmark::Shutdown();
    return 0;
}

} // namespace qsa::benchjson

#define QSA_BENCHJSON_MAIN(bench_name)                                \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        return qsa::benchjson::benchMain(bench_name, argc, argv);     \
    }

/** As QSA_BENCHJSON_MAIN with a deterministic-metrics epilogue. */
#define QSA_BENCHJSON_MAIN_WITH_METRICS(bench_name, epilogue)         \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        return qsa::benchjson::benchMain(bench_name, argc, argv,      \
                                         epilogue);                   \
    }

#endif // QSA_BENCH_BENCHJSON_MAIN_HH
