/**
 * @file
 * Table 2: correct classical inputs a and a^-1 to Shor's algorithm
 * for factoring 15 with 7 as the guess — plus the wider sweep over
 * every valid base, exercising the classical number-theory substrate.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_tab2_shor_inputs");
    using namespace qsa;

    std::cout << "=== Table 2: classical inputs to Shor's algorithm "
                 "===\n\n";

    std::cout << "N = 15, a = 7 (the paper's table):\n";
    AsciiTable t;
    t.setHeader({"k, the algorithm iteration", "0", "1", "2", "3"});
    const auto pairs = algo::shorClassicalInputs(7, 15, 4);
    std::vector<std::string> row_a{"a = 7^(2^k) mod 15"};
    std::vector<std::string> row_i{"a^-1; a * a^-1 = 1 mod 15"};
    for (const auto &[a, inv] : pairs) {
        row_a.push_back(std::to_string(a));
        row_i.push_back(std::to_string(inv));
    }
    t.addRow(row_a);
    t.addRow(row_i);
    std::cout << t.render() << "\n";

    std::cout << "all valid trial bases for N = 15 (extension):\n";
    AsciiTable all;
    all.setHeader({"a", "order r", "a^(2^0)", "inv", "a^(2^1)", "inv",
                   "factors from r"});
    for (std::uint64_t a = 2; a < 15; ++a) {
        if (algo::gcd(a, 15) != 1)
            continue;
        const auto p = algo::shorClassicalInputs(a, 15, 2);
        const std::uint64_t r = algo::multiplicativeOrder(a, 15);

        std::string factors = "-";
        if (r % 2 == 0) {
            const std::uint64_t half = algo::powMod(a, r / 2, 15);
            if (half != 14) {
                const std::uint64_t f = algo::gcd(half + 1, 15);
                if (f != 1 && f != 15) {
                    factors = std::to_string(f) + " x " +
                              std::to_string(15 / f);
                }
            }
        }
        all.addRow({std::to_string(a), std::to_string(r),
                    std::to_string(p[0].first),
                    std::to_string(p[0].second),
                    std::to_string(p[1].first),
                    std::to_string(p[1].second), factors});
    }
    std::cout << all.render();
    return 0;
}
