/**
 * @file
 * `--json` support for the table-printing benches that never link
 * google-benchmark (bench_tab4_grover and friends): the human tables
 * print exactly as before, and when `--json <path>` is given the
 * bench additionally writes one benchjson document whose "metrics"
 * key is the process-wide qsa::obs snapshot — so every bench
 * artifact carries the probe/trial/gate/cache counters, not just the
 * google-benchmark ones.
 *
 * Usage, two lines at the top of main:
 *
 *   int main(int argc, char **argv) {
 *       qsa::benchjson::TableBenchJson json(&argc, argv,
 *                                           "bench_tab4_grover");
 *       ... existing table code; optionally json.counter("x", v) ...
 *   }
 *
 * The destructor writes the file, so early returns are covered.
 */

#ifndef QSA_BENCH_BENCHJSON_TABLE_HH
#define QSA_BENCH_BENCHJSON_TABLE_HH

#include <string>
#include <utility>

#include "common/benchjson.hh"
#include "obs/obs.hh"

namespace qsa::benchjson
{

/** See file comment. */
class TableBenchJson
{
  public:
    /** Strips `--json <path>` out of argv, like benchMain. */
    TableBenchJson(int *argc, char **argv, std::string bench_name)
        : name(std::move(bench_name)),
          path(extractJsonPath(argc, argv))
    {
        snapshot.name = "snapshot";
    }

    ~TableBenchJson() { finish(); }

    TableBenchJson(const TableBenchJson &) = delete;
    TableBenchJson &operator=(const TableBenchJson &) = delete;

    /** Record a headline number under the snapshot record. */
    void
    counter(const std::string &key, double value)
    {
        snapshot.counters.emplace_back(key, value);
    }

    /** Write now (idempotent; the destructor calls it too). */
    void
    finish()
    {
        if (written || path.empty())
            return;
        written = true;
        write(path, name, {snapshot}, obs::metricsJson());
    }

  private:
    std::string name;
    std::string path;
    Record snapshot;
    bool written = false;
};

} // namespace qsa::benchjson

#endif // QSA_BENCH_BENCHJSON_TABLE_HH
