/**
 * @file
 * Ablation A1: statistical power of the assertions.
 *
 * The paper notes an assertion only detects a bug "given the number
 * of measurements provided to the statistical test". This bench
 * quantifies that: detection rate over many independent ensembles, as
 * a function of ensemble size, for each assertion type against its
 * matching bug — plus the false-positive rate on correct programs.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/**
 * Fraction of `trials` independent ensembles in which the assertion
 * FAILS (fires). For buggy programs this is the detection rate; for
 * correct programs the false-alarm rate.
 */
double
assertionFireRate(const circuit::Circuit &circ,
                  const assertions::AssertionSpec &spec, std::size_t m,
                  unsigned trials)
{
    unsigned fired = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        assertions::CheckConfig cfg;
        cfg.ensembleSize = m;
        cfg.seed = 0xab1e + trial * 0x9e37;
        assertions::AssertionChecker checker(circ, cfg);
        checker.addAssertion(spec);
        const auto o = checker.check(checker.assertions()[0]);
        fired += !o.passed;
    }
    return (double)fired / trials;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_abl_power");
    using namespace qsa;
    const unsigned trials = 40;

    std::cout << "=== Ablation A1: detection rate vs ensemble size "
                 "===\n";
    std::cout << "(rate of assertion firing over " << trials
              << " independent ensembles)\n\n";

    AsciiTable t;
    t.setHeader({"scenario", "assertion", "M=8", "M=16", "M=32",
                 "M=64", "M=128"});

    const std::vector<std::size_t> sizes{8, 16, 32, 64, 128};

    auto add_row = [&](const std::string &name,
                       const circuit::Circuit &circ,
                       const assertions::AssertionSpec &spec,
                       const std::string &kind) {
        std::vector<std::string> row{name, kind};
        for (std::size_t m : sizes) {
            row.push_back(AsciiTable::fmt(
                assertionFireRate(circ, spec, m, trials), 2));
        }
        t.addRow(row);
    };

    // --- Superposition assertion vs missing-Hadamard bug. -----------------
    {
        // Correct: H wall. Bug: one H missing (partial superposition).
        circuit::Circuit good;
        const auto q = good.addRegister("q", 3);
        for (unsigned i = 0; i < 3; ++i)
            good.h(q[i]);
        good.breakpoint("bp");

        circuit::Circuit bad;
        const auto qb = bad.addRegister("q", 3);
        bad.h(qb[0]);
        bad.h(qb[1]); // q[2] forgotten
        bad.breakpoint("bp");

        assertions::AssertionSpec spec;
        spec.kind = assertions::AssertionKind::Superposition;
        spec.breakpoint = "bp";
        spec.regA = q;
        spec.name = "superposition";
        add_row("missing H (bug 1)", bad, spec, "superposition");
        add_row("correct H wall [false alarms]", good, spec,
                "superposition");
    }

    // --- Entanglement assertion vs misrouted control. -----------------------
    {
        auto make = [&](bool buggy) {
            circuit::Circuit circ;
            const auto ctrl = circ.addRegister("ctrl", 1);
            const auto x = circ.addRegister("x", 4);
            const auto b = circ.addRegister("b", 5);
            const auto anc = circ.addRegister("anc", 1);
            circ.prepRegister(ctrl, 1);
            circ.h(ctrl[0]);
            circ.prepRegister(x, 6);
            circ.prepRegister(b, 7);
            circ.prepRegister(anc, 0);
            if (buggy) {
                bugs::cModMulMisrouted(circ, ctrl[0], x, b, 7, 15,
                                       anc[0]);
            } else {
                algo::cModMul(circ, ctrl[0], x, b, 7, 15, anc[0]);
            }
            circ.breakpoint("bp");
            return circ;
        };
        const auto good = make(false);
        const auto bad = make(true);

        assertions::AssertionSpec spec;
        spec.kind = assertions::AssertionKind::Entangled;
        spec.breakpoint = "bp";
        spec.regA = good.reg("ctrl");
        spec.regB = good.reg("b");
        spec.name = "entangled";
        // For the entangled assertion "fires" means NOT detecting
        // correlation, so the buggy row shows how often the bug is
        // flagged and the good row how often a true entangled state
        // is misjudged.
        add_row("misrouted control (bug 4)", bad, spec, "entangled");
        add_row("correct cMODMUL [false alarms]", good, spec,
                "entangled");
    }

    // --- Product assertion vs wrong inverse. ---------------------------------
    {
        auto make = [&](std::uint64_t a_inv) {
            circuit::Circuit circ;
            const auto ctrl = circ.addRegister("ctrl", 1);
            const auto x = circ.addRegister("x", 4);
            const auto b = circ.addRegister("b", 5);
            const auto anc = circ.addRegister("anc", 1);
            circ.prepRegister(ctrl, 1);
            circ.h(ctrl[0]);
            circ.prepRegister(x, 6);
            circ.prepRegister(b, 7);
            circ.prepRegister(anc, 0);
            algo::cModMul(circ, ctrl[0], x, b, 7, 15, anc[0]);
            algo::cModMul(circ, ctrl[0], x, b, a_inv, 15, anc[0]);
            circ.breakpoint("bp");
            return circ;
        };
        const auto good = make(13);
        const auto bad = make(12);

        assertions::AssertionSpec spec;
        spec.kind = assertions::AssertionKind::Product;
        spec.breakpoint = "bp";
        spec.regA = good.reg("ctrl");
        spec.regB = good.reg("b");
        spec.name = "product";
        add_row("wrong inverse (bug 6)", bad, spec, "product");
        add_row("correct inverse [false alarms]", good, spec,
                "product");
    }

    std::cout << t.render() << "\n";
    std::cout
        << "shape check: detection rates rise toward 1.0 with M; "
           "false-alarm rows stay near the 0.05 significance level "
           "or below.\n";
    return 0;
}
