/**
 * @file
 * Table 5: QC-calculated energy of H2 (bond length 73.48 pm) for the
 * six two-electron assignments.
 *
 * Reports, per assignment: the Slater determinant expectation energy
 * (whose degeneracy pattern is exactly the paper's table), the IPEA
 * phase and energy, and the nearest exact eigenvalue. Also prints the
 * FCI spectrum and the symmetry (degeneracy) checks of Section 5.2.2.
 */

#include <cmath>
#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

std::string
occupationString(std::uint32_t mask)
{
    // Table 5 column order: bonding up/down, antibonding up/down.
    std::string s;
    for (unsigned p = 0; p < 4; ++p) {
        s += getBit(mask, p) ? '1' : '0';
        if (p == 1)
            s += ' ';
    }
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_tab5_chemistry");
    using namespace qsa;
    using namespace qsa::chem;

    std::cout << "=== Table 5: H2 energies per electron assignment "
                 "===\n\n";

    const H2Model model = buildH2Model(73.48);
    const auto spectrum = diagonalize(model.hamiltonian);

    const double e_ref = 1.5, time = 1.2;
    const auto u = evolutionOperator(model.hamiltonian, time, e_ref);
    const algo::ControlledPowerFn power_fn =
        [&](circuit::Circuit &circ, unsigned ctrl, unsigned k) {
            sim::CMatrix p = u;
            for (unsigned i = 0; i < k; ++i)
                p = p.mul(p);
            circ.unitary(p, {0, 1, 2, 3}, {ctrl});
        };

    AsciiTable t;
    t.setHeader({"assignment (bond|anti)", "level", "<det|H|det>",
                 "IPEA phase", "IPEA energy", "nearest eigenvalue"});

    struct Row
    {
        std::uint32_t mask;
        const char *level;
    };
    const Row rows[] = {
        {0b1100, "3rd excited (E3)"}, {0b0110, "2nd excited (E2)"},
        {0b1001, "2nd excited (E2)"}, {0b0101, "1st excited (E1)"},
        {0b1010, "1st excited (E1)"}, {0b0011, "ground (G)"},
    };

    for (const auto &row : rows) {
        const double det_e = determinantEnergy(model, row.mask);

        algo::IpeaConfig cfg;
        cfg.bits = 12;
        const auto run = algo::runIpea(4, row.mask, power_fn, cfg);
        const double ipea_e =
            algo::phaseToEnergy(run.phase, time, e_ref);

        double nearest = spectrum.values[0];
        for (double ev : spectrum.values) {
            if (std::fabs(ev - ipea_e) < std::fabs(nearest - ipea_e))
                nearest = ev;
        }

        t.addRow({occupationString(row.mask), row.level,
                  AsciiTable::fmt(det_e, 4),
                  AsciiTable::fmt(run.phase, 4),
                  AsciiTable::fmt(ipea_e, 4),
                  AsciiTable::fmt(nearest, 4)});
    }
    std::cout << t.render() << "\n";

    // --- Symmetry checks (Section 5.2.2). ----------------------------------
    const double e2a = determinantEnergy(model, 0b0110);
    const double e2b = determinantEnergy(model, 0b1001);
    const double e1a = determinantEnergy(model, 0b0101);
    const double e1b = determinantEnergy(model, 0b1010);
    std::cout << "symmetry checks: |E2a - E2b| = "
              << AsciiTable::fmt(std::fabs(e2a - e2b), 6)
              << ", |E1a - E1b| = "
              << AsciiTable::fmt(std::fabs(e1a - e1b), 6)
              << " (paper: both pairs give the same energy)\n";
    std::cout << "four distinct determinant levels, ordered G < E1 < "
                 "E2 < E3: "
              << (determinantEnergy(model, 0b0011) < e1a &&
                          e1a < e2a &&
                          e2a < determinantEnergy(model, 0b1100)
                      ? "yes"
                      : "NO")
              << "\n\n";

    // --- Exact 2-electron spectrum for reference. ----------------------------
    std::cout << "FCI eigenvalues in the 2-electron sector "
                 "(hartree, with nuclear repulsion):\n";
    auto number_op = PauliOperator(4);
    for (unsigned p = 0; p < 4; ++p)
        number_op = number_op.add(jwNumber(4, p));
    const auto n_matrix = number_op.toMatrix();

    AsciiTable ft;
    ft.setHeader({"eigenvalue", "dominant determinant(s)"});
    for (std::size_t k = 0; k < spectrum.values.size(); ++k) {
        // Two-electron states only: <v|N|v> == 2.
        double n_exp = 0.0;
        for (unsigned b = 0; b < 16; ++b)
            n_exp += spectrum.vectors[k][b] * spectrum.vectors[k][b] *
                     n_matrix.at(b, b).real();
        if (std::fabs(n_exp - 2.0) > 1e-6)
            continue;

        std::string dominant;
        for (unsigned b = 0; b < 16; ++b) {
            if (std::fabs(spectrum.vectors[k][b]) > 0.3) {
                if (!dominant.empty())
                    dominant += ", ";
                dominant += occupationString(b);
            }
        }
        ft.addRow({AsciiTable::fmt(spectrum.values[k], 4), dominant});
    }
    std::cout << ft.render() << "\n";

    std::cout << "note: the paper reports E2 identically for both "
                 "opposite-spin assignments; those determinants are\n"
              << "equal mixtures of the open-shell singlet and "
                 "triplet, so a single IPEA run collapses to one of\n"
              << "the two eigenvalues (see EXPERIMENTS.md). The "
                 "determinant expectation column reproduces the\n"
              << "paper's degeneracy pattern exactly.\n";
    return 0;
}
