/**
 * @file
 * qsa::serve cost: request throughput through the full NDJSON
 * pipeline (parse + validate + execute + render) and the persistent
 * oracle store's cold-versus-warm localization replay.
 *
 * The headline counters are deterministic: per-request probe work is
 * seeded, and the "hit_rate" counter on the warm-store benchmark is
 * the oracle-cache hit fraction over the timed loop — 0 when the
 * store stopped serving, which the CI gate pins via the document
 * metrics (`serve.oracle_cache.hits` strictly positive from the
 * deterministic epilogue replay). Wall-clock is reported but not
 * gated. --json <path> writes the BENCH_serve.json record.
 */

#include <unistd.h>

#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"
#include "serve/protocol.hh"
#include "serve/store.hh"

namespace
{

using namespace qsa;

constexpr const char *kBellQasm = "OPENQASM 2.0;\n"
                                  "qreg a[1];\n"
                                  "qreg b[1];\n"
                                  "h a[0];\n"
                                  "cx a[0],b[0];\n"
                                  "// qsa.breakpoint done\n";

constexpr const char *kLocateRef = "OPENQASM 2.0;\n"
                                   "qreg q[2];\n"
                                   "h q[0];\n"
                                   "cx q[0],q[1];\n"
                                   "h q[1];\n"
                                   "cx q[1],q[0];\n";

constexpr const char *kLocateSus = "OPENQASM 2.0;\n"
                                   "qreg q[2];\n"
                                   "h q[0];\n"
                                   "cx q[0],q[1];\n"
                                   "t q[1];\n"
                                   "h q[1];\n"
                                   "cx q[1],q[0];\n";

std::string
checkRequest(std::uint64_t seed)
{
    json::Value item = json::Value::object();
    item.set("at", json::Value::string("done"));
    item.set("expect", json::Value::string("entangled"));
    item.set("register", json::Value::string("a"));
    item.set("register_b", json::Value::string("b"));
    json::Value plan = json::Value::array();
    plan.push(std::move(item));

    json::Value doc = json::Value::object();
    doc.set("command", json::Value::string("check"));
    doc.set("circuit", json::Value::string(kBellQasm));
    doc.set("plan", std::move(plan));
    doc.set("seed", json::Value::integer(seed));
    doc.set("ensemble_size", json::Value::integer(128));
    return doc.dump();
}

std::string
locateRequest(std::uint64_t seed)
{
    json::Value doc = json::Value::object();
    doc.set("command", json::Value::string("locate"));
    doc.set("circuit", json::Value::string(kLocateSus));
    doc.set("reference", json::Value::string(kLocateRef));
    doc.set("seed", json::Value::integer(seed));
    doc.set("ensemble_size", json::Value::integer(128));
    return doc.dump();
}

std::int64_t
counterValue(const std::string &name)
{
    for (const auto &[key, value] : obs::Registry::snapshot())
        if (key == name)
            return value;
    return 0;
}

/** Throwaway store root, unique per process. */
std::string
freshStoreRoot(const char *tag)
{
    const std::string root = std::string("/tmp/qsa_bench_serve_") +
                             tag + "_" +
                             std::to_string(::getpid());
    std::filesystem::remove_all(root);
    return root;
}

void
BM_ServePing(benchmark::State &state)
{
    const std::string request = R"({"command": "ping"})";
    for (auto _ : state)
        benchmark::DoNotOptimize(serve::handleRequestLine(request));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServePing)->Unit(benchmark::kMicrosecond);

void
BM_ServeCheck(benchmark::State &state)
{
    const std::string request = checkRequest(21);
    for (auto _ : state)
        benchmark::DoNotOptimize(serve::handleRequestLine(request));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCheck)->Unit(benchmark::kMillisecond);

void
BM_ServeLocateNoStore(benchmark::State &state)
{
    const std::string request = locateRequest(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(serve::handleRequestLine(request));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeLocateNoStore)->Unit(benchmark::kMillisecond);

void
BM_ServeLocateWarmStore(benchmark::State &state)
{
    serve::OracleStore store(freshStoreRoot("warm"));
    store.install();
    const std::string request = locateRequest(5);
    serve::handleRequestLine(request); // populate

    const std::int64_t hits0 =
        counterValue("serve.oracle_cache.hits");
    const std::int64_t misses0 =
        counterValue("serve.oracle_cache.misses");
    for (auto _ : state)
        benchmark::DoNotOptimize(serve::handleRequestLine(request));
    const double hits = static_cast<double>(
        counterValue("serve.oracle_cache.hits") - hits0);
    const double misses = static_cast<double>(
        counterValue("serve.oracle_cache.misses") - misses0);

    state.SetItemsProcessed(state.iterations());
    state.counters["hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;

    store.uninstall();
    std::filesystem::remove_all(store.root());
}
BENCHMARK(BM_ServeLocateWarmStore)->Unit(benchmark::kMillisecond);

/**
 * Deterministic metrics replay for the --json document: reset the
 * registry, then serve a fixed request mix against a fresh store —
 * one cold locate (misses + writes) and one warm replay (hits). The
 * CI gate requires metrics.serve.oracle_cache.hits > 0 from exactly
 * this replay, independent of how many iterations the timing loops
 * above ran.
 */
void
metricsEpilogue()
{
    obs::Registry::reset();
    serve::OracleStore store(freshStoreRoot("epilogue"));
    store.install();
    serve::handleRequestLine(locateRequest(5)); // cold: derive+persist
    serve::handleRequestLine(locateRequest(5)); // warm: replay
    serve::handleRequestLine(checkRequest(21));
    serve::handleRequestLine(R"({"command": "ping"})");
    store.uninstall();
    std::filesystem::remove_all(store.root());
}

} // anonymous namespace

QSA_BENCHJSON_MAIN_WITH_METRICS("bench_serve", metricsEpilogue);
