/**
 * @file
 * google-benchmark timing harness for the substrate kernels: gate
 * application, full-program simulation, ensemble checking, and the
 * statistical tests. Establishes that breakpoint ensembles at the
 * paper's scales run in milliseconds on a laptop, versus the cluster
 * the original toolflow needed.
 */

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

void
BM_GateApplication(benchmark::State &state)
{
    const unsigned n = state.range(0);
    sim::StateVector sv(n);
    const auto h = sim::gates::h();
    unsigned q = 0;
    for (auto _ : state) {
        sv.applyGate(h, q);
        q = (q + 1) % n;
        benchmark::DoNotOptimize(sv);
    }
    state.SetItemsProcessed(state.iterations() * (1ull << n));
}
BENCHMARK(BM_GateApplication)->Arg(8)->Arg(13)->Arg(18);

void
BM_ControlledGate(benchmark::State &state)
{
    const unsigned n = state.range(0);
    sim::StateVector sv(n);
    const auto x = sim::gates::x();
    for (auto _ : state) {
        sv.applyControlled(x, {0, 1}, n - 1);
        benchmark::DoNotOptimize(sv);
    }
}
BENCHMARK(BM_ControlledGate)->Arg(8)->Arg(13)->Arg(18);

void
BM_BellProgram(benchmark::State &state)
{
    const auto program = algo::buildBellProgram();
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(program, rng);
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_BellProgram);

void
BM_ShorFullCircuit(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(prog.circuit, rng);
        benchmark::DoNotOptimize(rec);
    }
    state.counters["qubits"] = prog.circuit.numQubits();
    state.counters["instructions"] = prog.circuit.size();
}
BENCHMARK(BM_ShorFullCircuit)->Unit(benchmark::kMillisecond);

void
BM_GroverFullCircuit(benchmark::State &state)
{
    algo::GroverConfig config;
    const auto prog = algo::buildGroverProgram(config);
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(prog.circuit, rng);
        benchmark::DoNotOptimize(rec);
    }
    state.counters["qubits"] = prog.circuit.numQubits();
}
BENCHMARK(BM_GroverFullCircuit)->Unit(benchmark::kMillisecond);

void
BM_AssertionEnsembleSampled(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::CheckConfig cfg;
    cfg.ensembleSize = state.range(0);
    cfg.mode = assertions::EnsembleMode::SampleFinalState;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    for (auto _ : state) {
        auto o = checker.check(checker.assertions()[0]);
        benchmark::DoNotOptimize(o);
    }
}
BENCHMARK(BM_AssertionEnsembleSampled)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void
BM_AssertionEnsembleResimulated(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::CheckConfig cfg;
    cfg.ensembleSize = state.range(0);
    cfg.mode = assertions::EnsembleMode::Resimulate;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    for (auto _ : state) {
        auto o = checker.check(checker.assertions()[0]);
        benchmark::DoNotOptimize(o);
    }
}
BENCHMARK(BM_AssertionEnsembleResimulated)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ChiSquareGof(benchmark::State &state)
{
    const std::size_t bins = state.range(0);
    std::vector<double> observed(bins);
    Rng rng(3);
    for (auto &o : observed)
        o = 90.0 + 20.0 * rng.uniform();
    const auto expected = stats::uniformExpected(bins, 100.0 * bins);
    for (auto _ : state) {
        auto res = stats::chiSquareGof(observed, expected);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_ChiSquareGof)->Arg(16)->Arg(256)->Arg(4096);

void
BM_ContingencyTest(benchmark::State &state)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
        const std::uint64_t a = rng.uniformInt(16);
        pairs.emplace_back(a, (a + rng.uniformInt(3)) % 16);
    }
    const auto table = stats::ContingencyTable::fromPairs(pairs);
    for (auto _ : state) {
        auto res = stats::independenceTest(table);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_ContingencyTest);

void
BM_H2ModelBuild(benchmark::State &state)
{
    for (auto _ : state) {
        auto model = chem::buildH2Model(73.48);
        benchmark::DoNotOptimize(model);
    }
    state.SetLabel("integrals + JW transform");
}
BENCHMARK(BM_H2ModelBuild)->Unit(benchmark::kMillisecond);

void
BM_TrotterStepCircuit(benchmark::State &state)
{
    const auto model = chem::buildH2Model(73.48);
    for (auto _ : state) {
        circuit::Circuit circ(5);
        chem::appendTrotterEvolution(circ, model.hamiltonian, 1.2, 4,
                                     {0, 1, 2, 3}, {4}, 1.5);
        benchmark::DoNotOptimize(circ);
    }
}
BENCHMARK(BM_TrotterStepCircuit);

// --- Kernel-cost fixtures (the CI gate's subject) ----------------------------
//
// Two deterministic fixtures measure the amplitude traffic one
// ensemble check costs, via qsa::obs counter deltas around a single
// seeded run taken outside the timing loop. The per-record counters
// (gate_applies, amp_touches, amp_touches_per_trial) are seeded and
// exact, so scripts/check_bench_regression.py can gate them at a
// tight tolerance: a kernel or fusion regression shows up as more
// amplitude slots touched for the same probe count, long before
// wall-clock noise would reveal it. The fused:0 / tensor:0 variants
// keep the naive-kernel cost on record so the win stays visible in
// the artifact itself.

/** Value of one metric in a registry snapshot (0 when absent). */
std::int64_t
metricValue(const obs::Snapshot &snap, const std::string &name)
{
    for (const auto &[metric, value] : snap)
        if (metric == name)
            return value;
    return 0;
}

/** Trials per kernel-cost ensemble (fixed: cost scales with it). */
constexpr std::size_t kKernelTrials = 128;

/**
 * QFT-adder ensemble fixture. The coin measurement ends the
 * deterministic head so the whole Fourier-adder tail re-executes per
 * Resimulate trial — the regime gate fusion is for.
 */
circuit::Circuit
qftAdderFixture()
{
    circuit::Circuit circ(0);
    const auto coin = circ.addRegister("coin", 1);
    const auto b = circ.addRegister("b", 5);
    circ.h(coin.qubit(0));
    circ.measure(coin, "coin");
    circ.prepRegister(b, 12);
    algo::qft(circ, b);
    algo::phiAdd(circ, b, 9);
    algo::phiAdd(circ, b, 3);
    algo::iqft(circ, b);
    circ.breakpoint("sum");
    return circ;
}

/**
 * Swap-test probe fixture, shaped exactly like the SwapProber's
 * output: a suspect-like half on [0, n), an embedded-reference half
 * on [n, 2n), and the ancilla-controlled-SWAP comparator. A
 * mid-circuit measurement per half keeps the tails nondeterministic,
 * so the tensor split's 2^(2n+1) -> 2^n per-gate saving is what the
 * counters record.
 */
circuit::Circuit
swapProbeFixture(unsigned n)
{
    circuit::Circuit circ(0);
    const auto low = circ.addRegister("low", n);
    const auto high = circ.addRegister("high", n);
    const auto anc = circ.addRegister("anc", 1);
    const auto half = [&](const circuit::QubitRegister &r,
                          const std::string &label) {
        for (unsigned q = 0; q < n; ++q)
            circ.h(r.qubit(q));
        circ.measureQubits({r.qubit(0)}, label);
        for (unsigned q = 0; q + 1 < n; ++q)
            circ.cnot(r.qubit(q), r.qubit(q + 1));
        for (unsigned q = 0; q < n; ++q)
            circ.t(r.qubit(q));
    };
    half(low, "m_low");
    half(high, "m_high");
    const unsigned a = anc.qubit(0);
    circ.h(a);
    for (unsigned q = 0; q < n; ++q)
        circ.cswap(a, low.qubit(q), high.qubit(q));
    circ.h(a);
    circ.breakpoint("cmp");
    return circ;
}

assertions::AssertionSpec
kernelSpec(const circuit::Circuit &circ, const std::string &bp,
           const std::string &reg)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Superposition;
    spec.breakpoint = bp;
    spec.regA = circ.reg(reg);
    return spec;
}

/** One seeded ensemble check; returns the counter deltas it cost. */
void
runKernelFixture(benchmark::State &state,
                 const circuit::Circuit &circ,
                 const assertions::AssertionSpec &spec, bool fuse,
                 unsigned tensor_split)
{
    assertions::CheckConfig cfg;
    cfg.ensembleSize = kKernelTrials;
    cfg.mode = assertions::EnsembleMode::Resimulate;
    cfg.seed = 0x5eed;
    cfg.numThreads = 1;
    cfg.fuseGates = fuse;
    cfg.tensorSplit = tensor_split;
    const auto once = [&]() {
        const assertions::AssertionChecker checker(circ, cfg);
        return checker.check(spec);
    };

    const auto before = obs::Registry::snapshot();
    benchmark::DoNotOptimize(once());
    const auto after = obs::Registry::snapshot();
    for (auto _ : state)
        benchmark::DoNotOptimize(once());

    const auto delta = [&](const char *name) {
        return (double)(metricValue(after, name) -
                        metricValue(before, name));
    };
    state.counters["gate_applies"] = delta("sim.gate_applies");
    state.counters["amp_touches"] = delta("sim.amp_touches");
    state.counters["amp_touches_per_trial"] =
        delta("sim.amp_touches") / (double)kKernelTrials;
    state.counters["fused_gates"] = delta("sim.fused_gates");
}

void
BM_KernelCostQftAdder(benchmark::State &state)
{
    const auto circ = qftAdderFixture();
    runKernelFixture(state, circ, kernelSpec(circ, "sum", "b"),
                     state.range(0) != 0, 0);
}
BENCHMARK(BM_KernelCostQftAdder)
    ->ArgName("fused")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_KernelCostSwapProbe(benchmark::State &state)
{
    constexpr unsigned n = 5;
    const auto circ = swapProbeFixture(n);
    runKernelFixture(state, circ, kernelSpec(circ, "cmp", "anc"),
                     true, state.range(0) != 0 ? n : 0);
}
BENCHMARK(BM_KernelCostSwapProbe)
    ->ArgName("tensor")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Replay both kernel-cost fixtures in their optimized configuration
 * with the registry freshly reset, so the --json document's
 * "metrics" object records a fixed workload's sim.gate_applies /
 * sim.amp_touches totals (gated within tolerance by CI) and a
 * strictly positive sim.fused_gates (gated by --require-positive: a
 * zero means the fusion pass silently stopped firing, which the
 * tolerance half alone would read as "no regression").
 */
void
metricsEpilogue()
{
    obs::Registry::reset();
    const auto check = [](const circuit::Circuit &circ,
                          const assertions::AssertionSpec &spec,
                          unsigned tensor_split) {
        assertions::CheckConfig cfg;
        cfg.ensembleSize = kKernelTrials;
        cfg.mode = assertions::EnsembleMode::Resimulate;
        cfg.seed = 0x5eed;
        cfg.numThreads = 1;
        cfg.tensorSplit = tensor_split;
        const assertions::AssertionChecker checker(circ, cfg);
        benchmark::DoNotOptimize(checker.check(spec));
    };
    const auto adder = qftAdderFixture();
    check(adder, kernelSpec(adder, "sum", "b"), 0);
    const auto probe = swapProbeFixture(5);
    check(probe, kernelSpec(probe, "cmp", "anc"), 5);
}

} // anonymous namespace

QSA_BENCHJSON_MAIN_WITH_METRICS("bench_perf_kernels",
                                metricsEpilogue);
