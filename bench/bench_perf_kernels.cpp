/**
 * @file
 * google-benchmark timing harness for the substrate kernels: gate
 * application, full-program simulation, ensemble checking, and the
 * statistical tests. Establishes that breakpoint ensembles at the
 * paper's scales run in milliseconds on a laptop, versus the cluster
 * the original toolflow needed.
 */

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

void
BM_GateApplication(benchmark::State &state)
{
    const unsigned n = state.range(0);
    sim::StateVector sv(n);
    const auto h = sim::gates::h();
    unsigned q = 0;
    for (auto _ : state) {
        sv.applyGate(h, q);
        q = (q + 1) % n;
        benchmark::DoNotOptimize(sv);
    }
    state.SetItemsProcessed(state.iterations() * (1ull << n));
}
BENCHMARK(BM_GateApplication)->Arg(8)->Arg(13)->Arg(18);

void
BM_ControlledGate(benchmark::State &state)
{
    const unsigned n = state.range(0);
    sim::StateVector sv(n);
    const auto x = sim::gates::x();
    for (auto _ : state) {
        sv.applyControlled(x, {0, 1}, n - 1);
        benchmark::DoNotOptimize(sv);
    }
}
BENCHMARK(BM_ControlledGate)->Arg(8)->Arg(13)->Arg(18);

void
BM_BellProgram(benchmark::State &state)
{
    const auto program = algo::buildBellProgram();
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(program, rng);
        benchmark::DoNotOptimize(rec);
    }
}
BENCHMARK(BM_BellProgram);

void
BM_ShorFullCircuit(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(prog.circuit, rng);
        benchmark::DoNotOptimize(rec);
    }
    state.counters["qubits"] = prog.circuit.numQubits();
    state.counters["instructions"] = prog.circuit.size();
}
BENCHMARK(BM_ShorFullCircuit)->Unit(benchmark::kMillisecond);

void
BM_GroverFullCircuit(benchmark::State &state)
{
    algo::GroverConfig config;
    const auto prog = algo::buildGroverProgram(config);
    Rng rng(1);
    for (auto _ : state) {
        auto rec = circuit::runCircuit(prog.circuit, rng);
        benchmark::DoNotOptimize(rec);
    }
    state.counters["qubits"] = prog.circuit.numQubits();
}
BENCHMARK(BM_GroverFullCircuit)->Unit(benchmark::kMillisecond);

void
BM_AssertionEnsembleSampled(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::CheckConfig cfg;
    cfg.ensembleSize = state.range(0);
    cfg.mode = assertions::EnsembleMode::SampleFinalState;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    for (auto _ : state) {
        auto o = checker.check(checker.assertions()[0]);
        benchmark::DoNotOptimize(o);
    }
}
BENCHMARK(BM_AssertionEnsembleSampled)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void
BM_AssertionEnsembleResimulated(benchmark::State &state)
{
    const auto prog = algo::buildShorProgram(algo::ShorConfig());
    assertions::CheckConfig cfg;
    cfg.ensembleSize = state.range(0);
    cfg.mode = assertions::EnsembleMode::Resimulate;
    assertions::AssertionChecker checker(prog.circuit, cfg);
    checker.assertEntangled("entangled", prog.upper, prog.lower);
    for (auto _ : state) {
        auto o = checker.check(checker.assertions()[0]);
        benchmark::DoNotOptimize(o);
    }
}
BENCHMARK(BM_AssertionEnsembleResimulated)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_ChiSquareGof(benchmark::State &state)
{
    const std::size_t bins = state.range(0);
    std::vector<double> observed(bins);
    Rng rng(3);
    for (auto &o : observed)
        o = 90.0 + 20.0 * rng.uniform();
    const auto expected = stats::uniformExpected(bins, 100.0 * bins);
    for (auto _ : state) {
        auto res = stats::chiSquareGof(observed, expected);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_ChiSquareGof)->Arg(16)->Arg(256)->Arg(4096);

void
BM_ContingencyTest(benchmark::State &state)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
        const std::uint64_t a = rng.uniformInt(16);
        pairs.emplace_back(a, (a + rng.uniformInt(3)) % 16);
    }
    const auto table = stats::ContingencyTable::fromPairs(pairs);
    for (auto _ : state) {
        auto res = stats::independenceTest(table);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_ContingencyTest);

void
BM_H2ModelBuild(benchmark::State &state)
{
    for (auto _ : state) {
        auto model = chem::buildH2Model(73.48);
        benchmark::DoNotOptimize(model);
    }
    state.SetLabel("integrals + JW transform");
}
BENCHMARK(BM_H2ModelBuild)->Unit(benchmark::kMillisecond);

void
BM_TrotterStepCircuit(benchmark::State &state)
{
    const auto model = chem::buildH2Model(73.48);
    for (auto _ : state) {
        circuit::Circuit circ(5);
        chem::appendTrotterEvolution(circ, model.hamiltonian, 1.2, 4,
                                     {0, 1, 2, 3}, {4}, 1.5);
        benchmark::DoNotOptimize(circ);
    }
}
BENCHMARK(BM_TrotterStepCircuit);

} // anonymous namespace

QSA_BENCHJSON_MAIN("bench_perf_kernels");
