/**
 * @file
 * Figure 4: multiply-controlled operations as recursive composition.
 *
 * Checks that wrapping a circuit with appendControlled k times equals
 * the native k-controlled gate, for k = 1..4, and reports the gate
 * cost of the recursion (the replicated-code pressure that produces
 * bug type 4).
 */

#include <functional>
#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** Dense unitary of an n-qubit circuit (n <= 6). */
sim::CMatrix
unitaryOf(unsigned n, const circuit::Circuit &circ)
{
    const std::uint64_t dim = pow2(n);
    sim::CMatrix u(dim);
    for (std::uint64_t col = 0; col < dim; ++col) {
        Rng rng(1);
        sim::StateVector state(n);
        state.setBasisState(col);
        std::map<std::string, std::uint64_t> meas;
        circuit::runCircuitOn(circ, state, meas, rng);
        for (std::uint64_t row = 0; row < dim; ++row)
            u.at(row, col) = state.amp(row);
    }
    return u;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_fig4_recursion");
    using namespace qsa;

    std::cout << "=== Figure 4: recursive controlled operations "
                 "===\n\n";

    const double angle = M_PI / 3.0;

    AsciiTable t;
    t.setHeader({"controls k", "recursion depth", "||wrap - native||",
                 "instructions", "verdict"});

    for (unsigned k = 1; k <= 4; ++k) {
        const unsigned n = k + 1; // controls + one target

        // Native: a single k-controlled phase instruction.
        circuit::Circuit native(n);
        std::vector<unsigned> controls;
        for (unsigned c = 0; c < k; ++c)
            controls.push_back(c);
        native.controlledGate(circuit::GateKind::Phase, controls, k,
                              angle);

        // Recursive: start from the bare rotation and wrap one
        // control at a time (Figure 4's construction).
        circuit::Circuit wrapped(n);
        wrapped.phase(k, angle);
        for (unsigned c = 0; c < k; ++c) {
            circuit::Circuit next(n);
            next.appendControlled(wrapped, {c});
            wrapped = next;
        }

        const double dist =
            unitaryOf(n, wrapped).distance(unitaryOf(n, native));
        t.addRow({std::to_string(k), std::to_string(k),
                  AsciiTable::fmt(dist, 10),
                  std::to_string(wrapped.size()),
                  dist < 1e-9 ? "equal" : "MISMATCH"});
    }
    std::cout << t.render() << "\n";

    // Gate-cost of Listing 2's switch over control counts.
    std::cout << "controlled-adder cost vs control count (Listing 2's "
                 "replication pressure):\n";
    AsciiTable cost;
    cost.setHeader({"controls", "phase-gate count", "mnemonic"});
    for (unsigned k = 0; k <= 2; ++k) {
        circuit::Circuit circ;
        const auto ctrl = circ.addRegister("ctrl", 2);
        const auto b = circ.addRegister("b", 5);
        std::vector<unsigned> controls;
        for (unsigned c = 0; c < k; ++c)
            controls.push_back(ctrl[c]);
        algo::phiAdd(circ, b, 13, controls);

        const auto counts = circ.gateCounts();
        std::string mnemonic = std::string(k, 'c') + "u1";
        cost.addRow({std::to_string(k),
                     std::to_string(counts.at(mnemonic)), mnemonic});
    }
    std::cout << cost.render();
    return 0;
}
