/**
 * @file
 * Table 1 + Figure 3: correct and incorrect code for the controlled-
 * rotation decomposition.
 *
 * Verifies the three code variants (a) at the unitary level against
 * the native controlled phase, and (b) through the Listing 3 adder
 * harness (12 + 13 = 25) where the paper reports the output assertion
 * returning p-value 0.0 for the flipped variant.
 */

#include <functional>
#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** Dense 4x4 unitary of a 2-qubit circuit builder. */
sim::CMatrix
unitaryOf(const std::function<void(circuit::Circuit &)> &build)
{
    sim::CMatrix u(4);
    for (std::uint64_t col = 0; col < 4; ++col) {
        circuit::Circuit circ(2);
        build(circ);
        Rng rng(1);
        sim::StateVector state(2);
        state.setBasisState(col);
        std::map<std::string, std::uint64_t> meas;
        circuit::runCircuitOn(circ, state, meas, rng);
        for (std::uint64_t row = 0; row < 4; ++row)
            u.at(row, col) = state.amp(row);
    }
    return u;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_tab1_rotation");
    using namespace qsa;
    using bugs::Table1Variant;

    std::cout << "=== Table 1: rotation decomposition variants ===\n\n";

    const double angle = 2.0 * M_PI / 8.0;
    const auto reference =
        unitaryOf([&](circuit::Circuit &c) { c.cphase(0, 1, angle); });

    const Table1Variant variants[] = {Table1Variant::CorrectDropA,
                                      Table1Variant::CorrectDropC,
                                      Table1Variant::IncorrectFlipped};

    std::cout << "unitary-level check against native cphase(pi/4):\n";
    AsciiTable ut;
    ut.setHeader({"variant", "||U - cphase||", "verdict"});
    for (const auto variant : variants) {
        const auto u = unitaryOf([&](circuit::Circuit &c) {
            bugs::appendCPhaseDecomposed(c, 0, 1, angle, variant);
        });
        const double dist = u.distance(reference);
        ut.addRow({bugs::table1VariantName(variant),
                   AsciiTable::fmt(dist, 6),
                   dist < 1e-9 ? "correct" : "WRONG OPERATION"});
    }
    std::cout << ut.render() << "\n";

    std::cout << "Listing 3 harness (b = 12, a = 13, assert 25) with "
                 "each variant's decomposed cADD:\n";
    AsciiTable ht;
    ht.setHeader({"variant", "measured b", "assert_classical(b, 25)",
                  "p-value"});
    for (const auto variant : variants) {
        circuit::Circuit circ;
        const auto ctrl = circ.addRegister("ctrl", 1);
        const auto b = circ.addRegister("b", 5);
        circ.prepRegister(ctrl, 1);
        circ.prepRegister(b, 12);
        algo::qft(circ, b);
        bugs::phiAddDecomposed(circ, b, 13, ctrl[0], variant);
        algo::iqft(circ, b);
        circ.breakpoint("done");
        circ.measure(b, "b");

        Rng rng(7);
        const auto m =
            circuit::runCircuit(circ, rng).measurements.at("b");

        assertions::AssertionChecker checker(circ);
        checker.assertClassical("done", b, 25);
        const auto o = checker.check(checker.assertions()[0]);

        ht.addRow({bugs::table1VariantName(variant), std::to_string(m),
                   o.passed ? "PASS" : "FAIL",
                   AsciiTable::fmtP(o.pValue)});
    }
    std::cout << ht.render() << "\n";
    std::cout << "paper reference: the flipped variant is caught with "
                 "p-value = 0.0\n";
    return 0;
}
