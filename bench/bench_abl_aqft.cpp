/**
 * @file
 * Ablation A3: approximate QFT.
 *
 * The QFT's small controlled rotations are routinely truncated in
 * practice. This ablation measures how far the truncation can go
 * before (a) the Listing 3 adder unit test and its classical
 * assertion catch the degradation, and (b) the QFT round-trip
 * fidelity drops — showing the assertions double as regression tests
 * for approximation levels.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_abl_aqft");
    using namespace qsa;

    std::cout << "=== Ablation A3: approximate QFT ===\n\n";

    const unsigned width = 6;
    const std::uint64_t b_val = 12, a_val = 13;
    const std::uint64_t want = (b_val + a_val) & lowMask(width);

    std::cout << "adder unit test (b = " << b_val << ", a = " << a_val
              << ", assert " << want << ") with truncated QFT:\n";
    AsciiTable t;
    t.setHeader({"max order", "dropped rotations", "P(correct)",
                 "assert p-value", "verdict"});

    for (unsigned max_order = width; max_order >= 1; --max_order) {
        circuit::Circuit circ;
        const auto b = circ.addRegister("b", width);
        circ.prepRegister(b, b_val);

        // Count rotations an exact QFT would have used.
        circuit::Circuit exact(width), approx(width);
        algo::qft(exact, b);
        algo::approximateQft(approx, b, max_order);
        const std::size_t dropped = exact.size() - approx.size();

        algo::approximateQft(circ, b, max_order);
        algo::phiAdd(circ, b, a_val);
        // Read-out with the matching truncated inverse.
        circuit::Circuit fwd(circ.numQubits());
        algo::approximateQft(fwd, b, max_order);
        circ.appendCircuit(fwd.inverse());
        circ.breakpoint("done");

        const auto probs =
            assertions::exactMarginal(circ, "done", b);

        assertions::CheckConfig cfg;
        cfg.ensembleSize = 128;
        assertions::AssertionChecker checker(circ, cfg);
        checker.assertClassical("done", b, want);
        const auto o = checker.check(checker.assertions()[0]);

        t.addRow({std::to_string(max_order), std::to_string(dropped),
                  AsciiTable::fmt(probs[want], 4),
                  AsciiTable::fmtP(o.pValue),
                  o.passed ? "PASS" : "FAIL"});
    }
    std::cout << t.render() << "\n";

    std::cout << "QFT round-trip fidelity vs truncation (width "
              << width << ", value 19):\n";
    AsciiTable f;
    f.setHeader({"max order", "fidelity vs exact QFT state"});
    for (unsigned max_order = width; max_order >= 1; --max_order) {
        circuit::Circuit exact_c, approx_c;
        const auto r1 = exact_c.addRegister("r", width);
        const auto r2 = approx_c.addRegister("r", width);
        exact_c.prepRegister(r1, 19);
        approx_c.prepRegister(r2, 19);
        algo::qft(exact_c, r1);
        algo::approximateQft(approx_c, r2, max_order);

        Rng rng1(1), rng2(1);
        const auto s1 = circuit::runCircuit(exact_c, rng1).state;
        const auto s2 = circuit::runCircuit(approx_c, rng2).state;
        f.addRow({std::to_string(max_order),
                  AsciiTable::fmt(s1.fidelity(s2), 6)});
    }
    std::cout << f.render();
    std::cout << "\nshape check: the assertion stays green while the "
                 "truncation is benign and fires once the adder "
                 "actually breaks.\n";
    return 0;
}
