/**
 * @file
 * Throughput scaling of the qsa::runtime ensemble engine: shots/sec
 * versus worker-thread count, in both ensemble modes, plus the
 * BatchRunner fan-out. The Resimulate numbers are the ones that mirror
 * the paper's cluster workload (one simulation per ensemble member);
 * on an N-core machine they should scale near-linearly until the
 * memory bandwidth saturates, with bit-identical histograms at every
 * thread count (the determinism contract of runtime/ensemble.hh).
 *
 * Run with --benchmark_counters_tabular=true for a shots/sec table,
 * and with --json <path> for the machine-readable BENCH_*.json record.
 */

#include <benchmark/benchmark.h>

#include "benchjson_main.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

/** Grover search program: deep enough that a trial has real cost. */
const algo::GroverProgram &
groverProgram()
{
    static const auto prog = algo::buildGroverProgram(algo::GroverConfig());
    return prog;
}

void
BM_ResimulateScaling(benchmark::State &state)
{
    const auto &prog = groverProgram();
    const std::size_t shots = 64;

    runtime::EnsembleEngine engine(prog.circuit,
                                   (unsigned)state.range(0));
    runtime::EnsembleSpec spec;
    spec.breakpoint = prog.circuit.breakpointLabels().back();
    spec.qubits = prog.circuit.registers().front().qubits();
    spec.shots = shots;
    spec.mode = runtime::SampleMode::Resimulate;
    spec.seed = 0x51c0ffee;

    for (auto _ : state) {
        auto hist = engine.gatherHistogram(spec);
        benchmark::DoNotOptimize(hist);
    }
    state.SetItemsProcessed(state.iterations() * shots);
    state.counters["threads"] = (double)state.range(0);
    state.counters["shots/s"] = benchmark::Counter(
        (double)(state.iterations() * shots),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ResimulateScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_SampleFinalStateScaling(benchmark::State &state)
{
    const auto &prog = groverProgram();
    const std::size_t shots = 1 << 20;

    runtime::EnsembleEngine engine(prog.circuit,
                                   (unsigned)state.range(0));
    runtime::EnsembleSpec spec;
    spec.breakpoint = prog.circuit.breakpointLabels().back();
    spec.qubits = prog.circuit.registers().front().qubits();
    spec.shots = shots;
    spec.mode = runtime::SampleMode::SampleFinalState;
    spec.seed = 0x51c0ffee;

    // Warm the prefix-state cache so the loop times pure sampling.
    benchmark::DoNotOptimize(engine.gatherHistogram(spec));

    for (auto _ : state) {
        auto hist = engine.gatherHistogram(spec);
        benchmark::DoNotOptimize(hist);
    }
    state.SetItemsProcessed(state.iterations() * shots);
    state.counters["threads"] = (double)state.range(0);
    state.counters["shots/s"] = benchmark::Counter(
        (double)(state.iterations() * shots),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampleFinalStateScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_BatchFanout(benchmark::State &state)
{
    // Many assertion units across one pool: the production shape of a
    // debugging sweep (several program variants, several assertions).
    const auto &prog = groverProgram();
    // Scheduling is the runner's: with several units, ensembles run
    // inline on the batch workers (numThreads here would be ignored).
    assertions::CheckConfig cfg;
    cfg.ensembleSize = 128;

    std::vector<assertions::AssertionSpec> specs;
    {
        assertions::AssertionChecker proto(prog.circuit, cfg);
        for (const auto &label : prog.circuit.breakpointLabels())
            proto.assertSuperposition(
                label, prog.circuit.registers().front());
        specs = proto.assertions();
    }
    std::vector<const circuit::Circuit *> programs(4, &prog.circuit);

    runtime::BatchRunner runner((unsigned)state.range(0));
    for (auto _ : state) {
        auto outcomes = runner.checkAll(programs, specs, cfg);
        benchmark::DoNotOptimize(outcomes);
    }
    state.SetItemsProcessed(state.iterations() * programs.size() *
                            specs.size());
    state.counters["threads"] = (double)state.range(0);
}
BENCHMARK(BM_BatchFanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

QSA_BENCHJSON_MAIN("bench_runtime_scaling");
