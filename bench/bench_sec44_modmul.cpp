/**
 * @file
 * Sections 4.4 / 4.5: the Listing 4 test harness for the controlled
 * modular multiplier, regenerating the paper's quoted p-values:
 *
 *  - correct routing, ensemble 16: entangled assertion p ~ 0.0005;
 *  - misrouted controls:           p not significant (paper: 0.121);
 *  - correct inverse (a^-1 = 13):  product assertion p = 1.0;
 *  - wrong inverse (a^-1 = 12):    product assertion p ~ 0.0005.
 */

#include <iostream>

#include "benchjson_table.hh"
#include "qsa/qsa.hh"

namespace
{

using namespace qsa;

struct Harness
{
    circuit::Circuit circ;
    circuit::QubitRegister ctrl, x, b;
};

/** Listing 4's preparation: ctrl in superposition, x = 6, b = 7. */
Harness
makeHarness()
{
    Harness h;
    h.ctrl = h.circ.addRegister("ctrl", 1);
    h.x = h.circ.addRegister("x", 4);
    h.b = h.circ.addRegister("b", 5);
    h.circ.addRegister("anc", 1);

    h.circ.prepRegister(h.ctrl, 1);
    h.circ.h(h.ctrl[0]);
    h.circ.prepRegister(h.x, 6);
    h.circ.prepRegister(h.b, 7);
    h.circ.prepZ(h.circ.reg("anc")[0], 0);
    return h;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    qsa::benchjson::TableBenchJson bench_json(&argc, argv,
                                              "bench_sec44_modmul");
    using namespace qsa;

    std::cout << "=== Sections 4.4/4.5: Listing 4 harness p-values "
                 "===\n\n";

    AsciiTable t;
    t.setHeader({"scenario", "assertion", "M", "p-value", "verdict",
                 "paper"});

    // --- Entanglement after cMODMUL, correct control routing. -----------
    {
        Harness h = makeHarness();
        algo::cModMul(h.circ, h.ctrl[0], h.x, h.b, 7, 15,
                      h.circ.reg("anc")[0]);
        h.circ.breakpoint("after");
        assertions::CheckConfig cfg;
        cfg.ensembleSize = 16;
        assertions::AssertionChecker checker(h.circ, cfg);
        checker.assertEntangled("after", h.ctrl, h.b);
        const auto o = checker.check(checker.assertions()[0]);
        t.addRow({"correct cMODMUL", "assert_entangled(ctrl, b)", "16",
                  AsciiTable::fmtP(o.pValue),
                  o.passed ? "entangled" : "NOT entangled", "0.0005"});
    }

    // --- Entanglement with the misrouted-control bug. ---------------------
    {
        Harness h = makeHarness();
        bugs::cModMulMisrouted(h.circ, h.ctrl[0], h.x, h.b, 7, 15,
                               h.circ.reg("anc")[0]);
        h.circ.breakpoint("after");
        assertions::CheckConfig cfg;
        cfg.ensembleSize = 16;
        assertions::AssertionChecker checker(h.circ, cfg);
        checker.assertEntangled("after", h.ctrl, h.b);
        const auto o = checker.check(checker.assertions()[0]);
        t.addRow({"misrouted controls (bug 4)",
                  "assert_entangled(ctrl, b)", "16",
                  AsciiTable::fmtP(o.pValue),
                  o.passed ? "entangled" : "NOT entangled",
                  "0.121 (not significant)"});
    }

    // --- Product state after multiply + inverse multiply (Listing 4). -----
    // The listing invokes the "inverse" as a *forward* cMODMUL with
    // a^-1: b += 13 x after b += 7 x accumulates (7 + 13) x = 20 x,
    // and 20 * 6 = 0 mod 15, so for the listing's x = 6 the register
    // returns to 7 on both control branches.
    for (const std::uint64_t a_inv : {13ull, 12ull}) {
        Harness h = makeHarness();
        const unsigned anc = h.circ.reg("anc")[0];
        algo::cModMul(h.circ, h.ctrl[0], h.x, h.b, 7, 15, anc);
        algo::cModMul(h.circ, h.ctrl[0], h.x, h.b, a_inv, 15, anc);
        h.circ.breakpoint("after");
        assertions::CheckConfig cfg;
        cfg.ensembleSize = 16;
        assertions::AssertionChecker checker(h.circ, cfg);
        checker.assertProduct("after", h.ctrl, h.b);
        const auto o = checker.check(checker.assertions()[0]);
        const bool correct = a_inv == 13;
        t.addRow({correct ? "multiply then inverse (a^-1 = 13)"
                          : "multiply then wrong inverse (a^-1 = 12)",
                  "assert_product(ctrl, b)", "16",
                  AsciiTable::fmtP(o.pValue),
                  o.passed ? "product state" : "still entangled",
                  correct ? "1.0" : "0.0005"});
    }

    // --- Extension: the adjoint-based uncompute works for every x. --------
    {
        Harness h = makeHarness();
        const unsigned anc = h.circ.reg("anc")[0];
        algo::cModMul(h.circ, h.ctrl[0], h.x, h.b, 7, 15, anc);
        algo::cModMulInverse(h.circ, h.ctrl[0], h.x, h.b, 7, 15, anc);
        h.circ.breakpoint("after");
        assertions::CheckConfig cfg;
        cfg.ensembleSize = 16;
        assertions::AssertionChecker checker(h.circ, cfg);
        checker.assertProduct("after", h.ctrl, h.b);
        const auto o = checker.check(checker.assertions()[0]);
        t.addRow({"multiply then adjoint (mirror pattern)",
                  "assert_product(ctrl, b)", "16",
                  AsciiTable::fmtP(o.pValue),
                  o.passed ? "product state" : "still entangled",
                  "(ours)"});
    }

    std::cout << t.render() << "\n";

    // Effect of ensemble size on the same four scenarios.
    std::cout << "p-values vs ensemble size (correct cMODMUL, "
                 "entangled assertion):\n";
    AsciiTable sweep;
    sweep.setHeader({"M", "p-value", "Cramer's V"});
    for (std::size_t m : {8u, 16u, 32u, 64u, 128u}) {
        Harness h = makeHarness();
        algo::cModMul(h.circ, h.ctrl[0], h.x, h.b, 7, 15,
                      h.circ.reg("anc")[0]);
        h.circ.breakpoint("after");
        assertions::CheckConfig cfg;
        cfg.ensembleSize = m;
        assertions::AssertionChecker checker(h.circ, cfg);
        checker.assertEntangled("after", h.ctrl, h.b);
        const auto o = checker.check(checker.assertions()[0]);
        sweep.addRow({std::to_string(m), AsciiTable::fmtP(o.pValue),
                      AsciiTable::fmt(o.cramersV, 3)});
    }
    std::cout << sweep.render();
    return 0;
}
