/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * The assertion checker simulates *ensembles* of program executions; the
 * paper ran each ensemble member as an independent QX simulation on a
 * cluster. To keep those ensembles reproducible and independent we use a
 * counter-based seeding scheme: a master seed is expanded with SplitMix64
 * into per-run seeds, each of which initialises an independent
 * xoshiro256** stream.
 */

#ifndef QSA_COMMON_RNG_HH
#define QSA_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace qsa
{

/**
 * SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output and
 * advances the state. Used for seed expansion only.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Small, fast, and of far higher quality than needed for sampling
 * measurement outcomes; chosen so ensembles are identical across
 * platforms (std::mt19937 distributions are not portable).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an (unnormalised) weight vector.
     * Weights must be non-negative with a positive sum.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Derive an independent child generator; the i-th child of a given
     * parent is deterministic. Used to give every ensemble member its
     * own stream, mirroring independent simulator invocations.
     */
    Rng split(std::uint64_t child_index) const;

  private:
    /** xoshiro256** state. */
    std::uint64_t s[4];

    /** Seed material retained for split(). */
    std::uint64_t seedValue;

    static std::uint64_t rotl(std::uint64_t x, int k);
};

} // namespace qsa

#endif // QSA_COMMON_RNG_HH
