/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * The assertion checker simulates *ensembles* of program executions; the
 * paper ran each ensemble member as an independent QX simulation on a
 * cluster. To keep those ensembles reproducible and independent we use a
 * counter-based seeding scheme: a master seed is expanded with SplitMix64
 * into per-run seeds, each of which initialises an independent
 * xoshiro256** stream.
 *
 * Stream-splitting scheme (used by qsa::runtime to shard ensembles):
 *
 *  - split(i) derives the i-th child seed as the i-th output of the
 *    SplitMix64 sequence started at the parent's seed, i.e.
 *    mix(seed + (i + 1) * GAMMA) where mix is SplitMix64's finalizer.
 *    GAMMA is odd, so seed + (i + 1) * GAMMA is injective in i modulo
 *    2^64, and mix is a bijection — distinct child indices of the same
 *    parent are GUARANTEED distinct seeds for any number of children
 *    (in particular across >= 64 shards; the previous xor-of-two-
 *    outputs derivation had no such guarantee).
 *
 *  - jump()/longJump() advance the generator by 2^128 / 2^192 steps in
 *    O(1) (Blackman & Vigna's jump polynomials). Repeatedly jumping a
 *    copy of one master stream yields provably non-overlapping
 *    subsequences of length 2^128 (resp. 2^192) — the belt-and-braces
 *    option when disjointness, not just distinctness, is required.
 */

#ifndef QSA_COMMON_RNG_HH
#define QSA_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace qsa
{

/**
 * SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output and
 * advances the state. Used for seed expansion only.
 */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Small, fast, and of far higher quality than needed for sampling
 * measurement outcomes; chosen so ensembles are identical across
 * platforms (std::mt19937 distributions are not portable).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli draw: true with probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an (unnormalised) weight vector.
     * Weights must be non-negative with a positive sum.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /**
     * Derive an independent child generator; the i-th child of a given
     * parent is deterministic, and distinct child indices are
     * guaranteed distinct seeds (see the file comment for the scheme).
     * Used to give every ensemble member its own stream, mirroring
     * independent simulator invocations.
     */
    Rng split(std::uint64_t child_index) const;

    /**
     * Advance this generator by 2^128 steps of next() in O(1). Jumping
     * a copy k times yields the k-th of 2^128 non-overlapping
     * subsequences, each 2^128 values long. Also re-keys the seed that
     * split() derives children from, so a jumped generator's children
     * differ from its parent's.
     */
    void jump();

    /** As jump(), but 2^192 steps (2^64 subsequences of 2^192). */
    void longJump();

    /**
     * Copy of this generator jumped `count` times — the conventional
     * way to hand shard k its own provably disjoint stream.
     */
    Rng jumped(unsigned count) const;

  private:
    /** xoshiro256** state. */
    std::uint64_t s[4];

    /** Seed material retained for split(). */
    std::uint64_t seedValue;

    static std::uint64_t rotl(std::uint64_t x, int k);
};

} // namespace qsa

#endif // QSA_COMMON_RNG_HH
