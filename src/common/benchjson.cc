/**
 * @file
 * Bench JSON rendering implementation.
 */

#include "common/benchjson.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace qsa::benchjson
{

std::string
extractJsonPath(int *argc, char **argv)
{
    std::string path;
    int out = 0;
    for (int i = 0; i < *argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            fatal_if(i + 1 >= *argc, "--json needs a file path");
            path = argv[++i];
            continue;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
            fatal_if(path.empty(), "--json needs a file path");
            continue;
        }
        argv[out++] = argv[i];
    }
    for (int i = out; i < *argc; ++i)
        argv[i] = nullptr;
    *argc = out;
    return path;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Shortest decimal that round-trips a double (%.17g always does;
    // try shorter forms first so 0.25 stays "0.25").
    char buf[32];
    for (int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
render(const std::string &bench, const std::vector<Record> &records,
       const std::string &metrics_json)
{
    std::ostringstream os;
    os << "{\n  \"bench\": \"" << escape(bench) << "\",\n"
       << "  \"results\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Record &rec = records[i];
        os << (i ? ",\n" : "\n") << "    {\"name\": \""
           << escape(rec.name) << "\"";
        if (!rec.label.empty())
            os << ", \"label\": \"" << escape(rec.label) << "\"";
        os << ", \"iterations\": " << rec.iterations
           << ", \"real_time\": " << number(rec.realTime)
           << ", \"cpu_time\": " << number(rec.cpuTime)
           << ", \"time_unit\": \"" << escape(rec.timeUnit) << "\"";
        if (!rec.counters.empty()) {
            os << ", \"counters\": {";
            for (std::size_t c = 0; c < rec.counters.size(); ++c) {
                os << (c ? ", " : "") << "\""
                   << escape(rec.counters[c].first)
                   << "\": " << number(rec.counters[c].second);
            }
            os << "}";
        }
        os << "}";
    }
    os << (records.empty() ? "]" : "\n  ]");
    if (!metrics_json.empty())
        os << ",\n  \"metrics\": " << metrics_json;
    os << "\n}\n";
    return os.str();
}

void
write(const std::string &path, const std::string &bench,
      const std::vector<Record> &records,
      const std::string &metrics_json)
{
    writeText(path, render(bench, records, metrics_json));
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot open '", path, "' for writing");
    out << text;
    out.flush();
    fatal_if(!out, "failed writing JSON to '", path, "'");
}

} // namespace qsa::benchjson
