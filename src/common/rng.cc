/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman &
 * Vigna) plus SplitMix64 seed expansion.
 */

#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace qsa
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seedValue(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    panic_if(bound == 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound + 1) % bound;
    std::uint64_t x;
    do {
        x = next();
    } while (x > limit);
    return x % bound;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0 || std::isnan(w),
                 "discrete() weights must be non-negative");
        total += w;
    }
    panic_if(total <= 0.0, "discrete() weights must have a positive sum");

    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split(std::uint64_t child_index) const
{
    // Mix the parent seed with the child index through SplitMix64 twice
    // so adjacent children are decorrelated.
    std::uint64_t sm = seedValue ^ (0xd1b54a32d192ed03ull * (child_index + 1));
    std::uint64_t child_seed = splitMix64(sm);
    child_seed ^= splitMix64(sm);
    return Rng(child_seed);
}

} // namespace qsa
