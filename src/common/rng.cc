/**
 * @file
 * xoshiro256** implementation (public-domain algorithm by Blackman &
 * Vigna) plus SplitMix64 seed expansion.
 */

#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace qsa
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seedValue(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    panic_if(bound == 0, "uniformInt bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound + 1) % bound;
    std::uint64_t x;
    do {
        x = next();
    } while (x > limit);
    return x % bound;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0 || std::isnan(w),
                 "discrete() weights must be non-negative");
        total += w;
    }
    panic_if(total <= 0.0, "discrete() weights must have a positive sum");

    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split(std::uint64_t child_index) const
{
    // Child seed = the child_index-th output of the SplitMix64 sequence
    // started at the parent seed: mix(seed + (i + 1) * GAMMA). GAMMA is
    // odd so the pre-mix state is injective in i, and the finalizer is a
    // bijection, so distinct children get distinct seeds (see rng.hh).
    std::uint64_t sm = seedValue + child_index * 0x9e3779b97f4a7c15ull;
    return Rng(splitMix64(sm));
}

namespace
{

/**
 * Shared jump-ahead walker: for each set bit of the polynomial, xor the
 * running state into the accumulator, stepping the generator once per
 * bit. Equivalent to multiplying by the jump polynomial in the
 * generator's F2-linear transition ring.
 */
template <typename Step>
void
jumpWith(const std::uint64_t (&poly)[4], std::uint64_t (&s)[4], Step step)
{
    std::uint64_t acc[4] = {0, 0, 0, 0};
    for (std::uint64_t word : poly) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ull << bit)) {
                for (int i = 0; i < 4; ++i)
                    acc[i] ^= s[i];
            }
            step();
        }
    }
    for (int i = 0; i < 4; ++i)
        s[i] = acc[i];
}

} // anonymous namespace

void
Rng::jump()
{
    // Blackman & Vigna's 2^128 jump polynomial for xoshiro256**.
    static const std::uint64_t poly[4] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    jumpWith(poly, s, [this] { next(); });
    // Re-key the split() derivation too: split() is keyed on the seed,
    // not the xoshiro state, so without this a jumped generator would
    // hand out the same children as its parent.
    std::uint64_t sm = seedValue ^ 0x2545f4914f6cdd1dull;
    seedValue = splitMix64(sm);
}

void
Rng::longJump()
{
    // Blackman & Vigna's 2^192 long-jump polynomial for xoshiro256**.
    static const std::uint64_t poly[4] = {
        0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
        0x77710069854ee241ull, 0x39109bb02acbe635ull};
    jumpWith(poly, s, [this] { next(); });
    // As in jump(), with a distinct tag so jump and longJump re-key
    // differently.
    std::uint64_t sm = seedValue ^ 0xda942042e4dd58b5ull;
    seedValue = splitMix64(sm);
}

Rng
Rng::jumped(unsigned count) const
{
    Rng r = *this;
    for (unsigned i = 0; i < count; ++i)
        r.jump();
    return r;
}

} // namespace qsa
