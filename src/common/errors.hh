/**
 * @file
 * Recoverable error types shared across layers.
 *
 * Most invariant violations in this codebase are programmer errors and
 * stay fatal (common/logging.hh). Oracle *derivation* failures are
 * different: they are properties of the analysed program (too many
 * measurement branches, a register too wide for dense predicates), the
 * caller may have a fallback (the sampled oracle), and a long-lived
 * daemon must be able to fail one request without dying. DeriveError
 * is the structured, catchable carrier for exactly that class.
 */

#ifndef QSA_COMMON_ERRORS_HH
#define QSA_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace qsa
{

/**
 * A reference-oracle derivation failed for a reason inherent to the
 * program under analysis (not a bug in the caller). `where()` names
 * the offending instruction or register so diagnostics — and serve's
 * per-request NDJSON errors — can point at the cause.
 */
class DeriveError : public std::runtime_error
{
  public:
    DeriveError(std::string where, const std::string &message)
        : std::runtime_error(message), where_(std::move(where))
    {
    }

    /** The offending instruction/register, e.g. "Measure 'm_3'". */
    const std::string &where() const noexcept { return where_; }

  private:
    std::string where_;
};

} // namespace qsa

#endif // QSA_COMMON_ERRORS_HH
