/**
 * @file
 * Minimal JSON document model: parse, navigate, compose, dump.
 *
 * The repo's machine-readable *writers* (common/benchjson, the
 * session exporter) compose JSON as text; the serving layer
 * (qsa::serve) and the oracle store also need to *read* JSON — wire
 * requests and persisted oracle payloads — so this module adds the
 * missing half as one small value type. Scope is deliberately narrow:
 *
 *  - strict RFC-8259 subset (no comments, no trailing commas),
 *  - objects preserve insertion order, so dump() is deterministic
 *    for a deterministically composed document,
 *  - numbers keep their source lexeme: a 64-bit integer round-trips
 *    exactly (doubles cannot hold every seed), and re-dumping a
 *    parsed document reproduces the original number text,
 *  - parse errors carry line/column, matching the position-reporting
 *    contract of circuit::tryFromQasm,
 *  - accessor type mismatches throw TypeError (std::runtime_error)
 *    instead of calling fatal(): the serving layer adjudicates
 *    malformed remote input per-request and must outlive it.
 */

#ifndef QSA_COMMON_JSON_HH
#define QSA_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qsa::json
{

/** Thrown by typed accessors when the value has another type. */
class TypeError : public std::runtime_error
{
  public:
    explicit TypeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One JSON value (see file comment for the dialect contract). */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Null value. */
    Value() = default;

    /** @{ @name Composition */

    static Value boolean(bool b);

    /** Number from a double (shortest round-trip lexeme; non-finite
     *  values dump as null, JSON has no representation for them). */
    static Value number(double v);

    /** Number from an unsigned integer (exact decimal lexeme). */
    static Value integer(std::uint64_t v);

    static Value string(std::string s);
    static Value array();
    static Value object();

    /** Append to an array (fatal-free: throws TypeError otherwise). */
    Value &push(Value v);

    /** Insert or replace an object member; returns *this so
     *  document-building chains. */
    Value &set(const std::string &key, Value v);

    /** @} */
    /** @{ @name Inspection */

    Type type() const { return kind; }
    bool isNull() const { return kind == Type::Null; }
    bool isBool() const { return kind == Type::Bool; }
    bool isNumber() const { return kind == Type::Number; }
    bool isString() const { return kind == Type::String; }
    bool isArray() const { return kind == Type::Array; }
    bool isObject() const { return kind == Type::Object; }

    bool asBool() const;

    /** The number as a double (TypeError for non-numbers). */
    double asDouble() const;

    /**
     * The number as an exact unsigned 64-bit integer, parsed from the
     * source lexeme; TypeError when the value is not a number or the
     * lexeme is not a non-negative integer in range.
     */
    std::uint64_t asUint64() const;

    const std::string &asString() const;

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** Array element (TypeError / out-of-range checked). */
    const Value &at(std::size_t index) const;

    /** Object member lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** @} */
    /** @{ @name Serialisation */

    /** Compact one-line rendering (deterministic, see file comment). */
    std::string dump() const;

    /**
     * Parse one JSON document. Returns false on malformed input with
     * `*error` set to "line L, column C: <what>" (1-based positions);
     * trailing non-whitespace after the document is an error.
     */
    static bool parse(const std::string &text, Value *out,
                      std::string *error = nullptr);

    /** Parse or fatal() with the positioned message (trusted input:
     *  repo-generated documents, test fixtures). */
    static Value parseOrDie(const std::string &text);

    /** @} */

  private:
    void dumpTo(std::string &out) const;

    Type kind = Type::Null;
    bool boolValue = false;
    double numValue = 0.0;

    /** Number lexeme (numbers) or string payload (strings). */
    std::string text;

    std::vector<Value> elements;
    std::vector<std::pair<std::string, Value>> fields;

    friend class Parser;
};

} // namespace qsa::json

#endif // QSA_COMMON_JSON_HH
