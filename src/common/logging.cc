/**
 * @file
 * Logging sinks. panic() throws in unit-test builds would complicate
 * death tests; instead both fatal() and panic() terminate, and gtest
 * death tests assert on the printed prefix.
 */

#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

namespace qsa
{

void
informMessage(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

void
warnMessage(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
fatalMessage(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panicMessage(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace qsa
