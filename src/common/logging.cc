/**
 * @file
 * Logging sinks. panic() throws in unit-test builds would complicate
 * death tests; instead both fatal() and panic() terminate, and gtest
 * death tests assert on the printed prefix.
 */

#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace qsa
{

namespace
{

/**
 * One lock around every sink write: pool workers warn concurrently
 * and interleaved ostream inserts would tear the lines. Leaked so
 * messages from static destructors stay safe.
 */
std::mutex &
sinkMutex()
{
    static std::mutex *mutex = new std::mutex;
    return *mutex;
}

void
emit(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << prefix << msg << std::endl;
}

} // anonymous namespace

void
informMessage(const std::string &msg)
{
    emit("info: ", msg);
}

void
warnMessage(const std::string &msg)
{
    emit("warn: ", msg);
}

void
fatalMessage(const std::string &msg)
{
    emit("fatal: ", msg);
    std::exit(1);
}

void
panicMessage(const std::string &msg)
{
    emit("panic: ", msg);
    std::abort();
}

} // namespace qsa
