/**
 * @file
 * Out-of-line bit helpers.
 */

#include "common/bits.hh"

namespace qsa
{

std::uint64_t
extractBits(std::uint64_t basis, const std::vector<unsigned> &bits)
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
        v |= getBit(basis, bits[i]) << i;
    return v;
}

std::uint64_t
depositBits(std::uint64_t basis, const std::vector<unsigned> &bits,
            std::uint64_t value)
{
    for (std::size_t i = 0; i < bits.size(); ++i)
        basis = setBit(basis, bits[i], getBit(value, i));
    return basis;
}

} // namespace qsa
