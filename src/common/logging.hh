/**
 * @file
 * Minimal status/error reporting in the spirit of gem5's logging.hh.
 *
 * Severity model:
 *  - inform(): normal operating messages.
 *  - warn():   something questionable but survivable.
 *  - fatal():  user error (bad configuration/arguments); exits cleanly.
 *  - panic():  library bug (a condition that should never happen);
 *              aborts so a debugger/core dump sees the state.
 */

#ifndef QSA_COMMON_LOGGING_HH
#define QSA_COMMON_LOGGING_HH

#include <atomic>
#include <sstream>
#include <string>

namespace qsa
{

/** @{ @name Message sinks (printf-free, ostream-based). */
void informMessage(const std::string &msg);
void warnMessage(const std::string &msg);
[[noreturn]] void fatalMessage(const std::string &msg);
[[noreturn]] void panicMessage(const std::string &msg);
/** @} */

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
messageString(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Informative message the user should see but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    informMessage(messageString(std::forward<Args>(args)...));
}

/** Possible-misbehaviour message. */
template <typename... Args>
void
warn(Args &&...args)
{
    warnMessage(messageString(std::forward<Args>(args)...));
}

/** Unrecoverable user error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    fatalMessage(messageString(std::forward<Args>(args)...));
}

/** Library bug: print and abort(). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    panicMessage(messageString(std::forward<Args>(args)...));
}

/** panic() when a should-never-happen condition holds. */
template <typename Cond, typename... Args>
void
panic_if(const Cond &cond, Args &&...args)
{
    if (cond)
        panicMessage(messageString(std::forward<Args>(args)...));
}

/** fatal() when a user-facing precondition is violated. */
template <typename Cond, typename... Args>
void
fatal_if(const Cond &cond, Args &&...args)
{
    if (cond)
        fatalMessage(messageString(std::forward<Args>(args)...));
}

/**
 * warn() only on the first caller to claim `flag` — the guts of
 * QSA_WARN_ONCE for call sites that manage their own flag (e.g. one
 * flag shared across a family of related warnings).
 */
template <typename... Args>
void
warnOnce(std::atomic<bool> &flag, Args &&...args)
{
    if (!flag.exchange(true, std::memory_order_relaxed))
        warnMessage(messageString(std::forward<Args>(args)...));
}

} // namespace qsa

/**
 * warn() at most once per call site, however many threads or trials
 * reach it — the right sink for per-trial / per-probe paths where a
 * repeated warning is pure noise.
 */
#define QSA_WARN_ONCE(...)                                             \
    do {                                                               \
        static std::atomic<bool> qsa_warned_once_{false};              \
        ::qsa::warnOnce(qsa_warned_once_, __VA_ARGS__);                \
    } while (0)

#endif // QSA_COMMON_LOGGING_HH
