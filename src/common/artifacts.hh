/**
 * @file
 * Process-wide artifact-store hook: dependency inversion between the
 * oracle *producers* (qsa::locate predicate/overlap oracles, the
 * qsa::analyze prefix-equivalence certifier) and the persistent cache
 * that stores their results (qsa::serve::OracleStore).
 *
 * The producers sit below the serving layer and must not depend on
 * it, so they talk to this narrow interface instead: before deriving
 * an expensive artifact they ask the installed store for a prior
 * result under a canonical key, and after deriving they offer the
 * serialized payload back. When no store is installed (the default —
 * every pre-existing entry point) both calls are skipped and
 * behaviour is exactly as before.
 *
 * Keys are human-readable canonical strings (producers prefix them
 * with a payload schema version, e.g. "v1:<contentHash>:..."), and
 * payloads are JSON documents whose doubles round-trip bit-exactly
 * (json::Value::number), so a warm store returns artifacts *equal* to
 * what a cold derivation would produce — the serving layer's
 * determinism contract depends on that.
 *
 * Implementations must be safe to call from concurrent requests.
 */

#ifndef QSA_COMMON_ARTIFACTS_HH
#define QSA_COMMON_ARTIFACTS_HH

#include <string>

namespace qsa::common
{

/** Persistent artifact cache interface (see file comment). */
class ArtifactStore
{
  public:
    virtual ~ArtifactStore() = default;

    /**
     * Look up a previously stored payload. `kind` namespaces the key
     * ("predicates", "overlap", "prefix_cert"); returns true and
     * fills `*payload` on a usable hit, false otherwise (missing,
     * unreadable, version-mismatched entries are all just misses).
     */
    virtual bool load(const std::string &kind, const std::string &key,
                      std::string *payload) = 0;

    /** Persist a payload under (kind, key); best-effort, never
     *  fatal — a failed write degrades to re-deriving next time. */
    virtual void store(const std::string &kind, const std::string &key,
                       const std::string &payload) = 0;
};

/**
 * Install (or, with nullptr, remove) the process-wide store. The
 * caller keeps ownership and must keep the store alive until it is
 * removed. Thread-safe against concurrent artifactStore() readers;
 * installation itself is expected at process/server setup, not
 * mid-request.
 */
void setArtifactStore(ArtifactStore *store);

/** Currently installed store, or nullptr. */
ArtifactStore *artifactStore();

} // namespace qsa::common

#endif // QSA_COMMON_ARTIFACTS_HH
