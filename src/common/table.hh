/**
 * @file
 * ASCII table rendering for benchmark output.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * AsciiTable renders them with aligned columns so the output reads like
 * the paper's artifact.
 */

#ifndef QSA_COMMON_TABLE_HH
#define QSA_COMMON_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace qsa
{

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   AsciiTable t;
 *   t.setHeader({"k", "a", "a^-1"});
 *   t.addRow({"0", "7", "13"});
 *   std::cout << t.render();
 * @endcode
 */
class AsciiTable
{
  public:
    /** Set the (single) header row. */
    void setHeader(const std::vector<std::string> &header);

    /** Append one data row; ragged rows are padded with blanks. */
    void addRow(const std::vector<std::string> &row);

    /** Append a horizontal separator at the current position. */
    void addSeparator();

    /** Render the table to a string, one trailing newline included. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows.size(); }

    /** Format a double with fixed precision (helper for callers). */
    static std::string fmt(double v, int precision = 4);

    /** Format a probability/p-value: fixed 4 digits, "0.0000" floor. */
    static std::string fmtP(double v);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::size_t> separators;

    std::vector<std::size_t> columnWidths() const;
};

} // namespace qsa

#endif // QSA_COMMON_TABLE_HH
