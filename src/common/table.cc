/**
 * @file
 * AsciiTable implementation.
 */

#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qsa
{

void
AsciiTable::setHeader(const std::vector<std::string> &h)
{
    header = h;
}

void
AsciiTable::addRow(const std::vector<std::string> &row)
{
    rows.push_back(row);
}

void
AsciiTable::addSeparator()
{
    separators.push_back(rows.size());
}

std::vector<std::size_t>
AsciiTable::columnWidths() const
{
    std::size_t cols = header.size();
    for (const auto &r : rows)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> widths(cols, 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = std::max(widths[c], header[c].size());
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }
    return widths;
}

std::string
AsciiTable::render() const
{
    const auto widths = columnWidths();

    auto render_line = [&widths](const std::vector<std::string> &cells) {
        std::ostringstream os;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string cell = c < cells.size() ? cells[c] : "";
            os << "| " << std::left << std::setw((int)widths[c]) << cell
               << " ";
        }
        os << "|\n";
        return os.str();
    };

    auto render_rule = [&widths]() {
        std::ostringstream os;
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << "+" << std::string(widths[c] + 2, '-');
        os << "+\n";
        return os.str();
    };

    std::ostringstream os;
    os << render_rule();
    if (!header.empty()) {
        os << render_line(header);
        os << render_rule();
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (std::find(separators.begin(), separators.end(), i) !=
            separators.end() && i != 0) {
            os << render_rule();
        }
        os << render_line(rows[i]);
    }
    os << render_rule();
    return os.str();
}

std::string
AsciiTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
AsciiTable::fmtP(double v)
{
    if (v < 0.0)
        v = 0.0;
    if (v > 1.0)
        v = 1.0;
    return fmt(v, 4);
}

} // namespace qsa
