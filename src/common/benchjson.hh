/**
 * @file
 * Machine-readable bench output (the BENCH_*.json trajectory files).
 *
 * The benches print human-oriented tables; tracking a perf trajectory
 * across commits needs a stable machine format instead. This helper
 * is the benchmark-library-agnostic half: a `--json <path>` argv
 * extractor plus a renderer from flat run records to one JSON
 * document. The google-benchmark glue (a reporter that tees each run
 * into a Record) lives header-only in bench/benchjson_main.hh so
 * libqsa itself never depends on the benchmark library.
 *
 * Document shape:
 *   {
 *     "bench": "<binary name>",
 *     "results": [
 *       {"name": "...", "label": "...", "iterations": N,
 *        "real_time": t, "cpu_time": t, "time_unit": "ms",
 *        "counters": {"probes": 15.0, ...}},
 *       ...
 *     ],
 *     "metrics": {"locate.probes": 12, ...}   // optional: one flat
 *   }                                         // qsa::obs snapshot
 */

#ifndef QSA_COMMON_BENCHJSON_HH
#define QSA_COMMON_BENCHJSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qsa::benchjson
{

/** One benchmark run, flattened. */
struct Record
{
    /** Benchmark name (e.g. "BM_LocateAdaptive/0"). */
    std::string name;

    /** Optional label set by the benchmark (e.g. the fixture name). */
    std::string label;

    /** Iterations the timing is averaged over. */
    std::int64_t iterations = 0;

    /** Wall / CPU time per iteration, in `timeUnit`. */
    double realTime = 0.0;
    double cpuTime = 0.0;

    /** Unit string for the two times ("ns", "us", "ms", "s"). */
    std::string timeUnit = "ns";

    /** User counters in insertion order (rates already resolved). */
    std::vector<std::pair<std::string, double>> counters;
};

/**
 * Strip `--json <path>` (or `--json=<path>`) out of argv before the
 * benchmark library parses it; returns the path, or "" when the flag
 * is absent. Fatal when the flag is present without a path.
 */
std::string extractJsonPath(int *argc, char **argv);

/** Escape a string for embedding in a JSON string literal. */
std::string escape(const std::string &s);

/**
 * Format a double as a JSON value: shortest round-trip decimal for
 * finite values, null for NaN/inf (JSON has no non-finite numbers).
 */
std::string number(double v);

/**
 * Render the whole document (see file comment for the shape).
 * `metrics_json` is a pre-rendered JSON object (qsa::obs::
 * metricsJson()) embedded verbatim as the top-level "metrics" key;
 * empty means the key is omitted. Passed as text so this renderer —
 * the bottom of the common layer — never depends on qsa::obs.
 */
std::string render(const std::string &bench,
                   const std::vector<Record> &records,
                   const std::string &metrics_json = "");

/** Render and write to `path`; fatal on I/O failure. */
void write(const std::string &path, const std::string &bench,
           const std::vector<Record> &records,
           const std::string &metrics_json = "");

/**
 * Write an already-rendered JSON document to `path`; fatal on I/O
 * failure. Shared by the bench writer above and other structured
 * exporters (session::Session::exportJson) so every machine-readable
 * artifact goes through one error-checked sink.
 */
void writeText(const std::string &path, const std::string &text);

} // namespace qsa::benchjson

#endif // QSA_COMMON_BENCHJSON_HH
