/**
 * @file
 * Bit-manipulation helpers shared across the simulator, the circuit IR,
 * and the arithmetic benchmark programs.
 *
 * Conventions used throughout the library:
 *  - Qubit index 0 is the least significant bit of a register value
 *    (little endian), matching the Scaffold listings in the paper where
 *    `PrepZ(reg[i], (v >> i) & 1)` loads integer v.
 *  - Basis-state indices are `std::uint64_t`; the library supports up to
 *    QSA's practical simulation limit of ~30 qubits, far beyond the
 *    benchmark circuits (<= 14 qubits).
 */

#ifndef QSA_COMMON_BITS_HH
#define QSA_COMMON_BITS_HH

#include <cstdint>
#include <vector>

namespace qsa
{

/** Return the b-th bit (0 = LSB) of x. */
constexpr std::uint64_t
getBit(std::uint64_t x, unsigned b)
{
    return (x >> b) & 1ull;
}

/** Return x with the b-th bit set to v (v must be 0 or 1). */
constexpr std::uint64_t
setBit(std::uint64_t x, unsigned b, std::uint64_t v)
{
    return (x & ~(1ull << b)) | ((v & 1ull) << b);
}

/** Return x with the b-th bit flipped. */
constexpr std::uint64_t
flipBit(std::uint64_t x, unsigned b)
{
    return x ^ (1ull << b);
}

/** Return 2^n as an unsigned 64-bit value. */
constexpr std::uint64_t
pow2(unsigned n)
{
    return 1ull << n;
}

/** Return a mask with the low n bits set. */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ull : (1ull << n) - 1ull;
}

/** Population count. */
constexpr unsigned
popcount64(std::uint64_t x)
{
    unsigned c = 0;
    while (x) {
        x &= x - 1;
        ++c;
    }
    return c;
}

/** Number of bits needed to represent x (0 needs 1 bit). */
constexpr unsigned
bitWidth(std::uint64_t x)
{
    unsigned w = 1;
    while (x >>= 1)
        ++w;
    return w;
}

/**
 * Extract the value encoded on a list of (qubit) bit positions of a
 * basis-state index. Position i of `bits` contributes bit i of the
 * result, i.e. `bits[0]` is the LSB of the extracted value.
 *
 * @param basis full basis-state index
 * @param bits bit positions, LSB first
 * @return packed value
 */
std::uint64_t extractBits(std::uint64_t basis,
                          const std::vector<unsigned> &bits);

/**
 * Inverse of extractBits: scatter the low bits of `value` into the given
 * bit positions of `basis` (other bits unchanged).
 */
std::uint64_t depositBits(std::uint64_t basis,
                          const std::vector<unsigned> &bits,
                          std::uint64_t value);

/** Reverse the low n bits of x (bit 0 <-> bit n-1, ...). */
constexpr std::uint64_t
reverseBits(std::uint64_t x, unsigned n)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < n; ++i)
        r = (r << 1) | ((x >> i) & 1ull);
    return r;
}

} // namespace qsa

#endif // QSA_COMMON_BITS_HH
