#include "artifacts.hh"

#include <atomic>

namespace qsa::common
{

namespace
{

std::atomic<ArtifactStore *> installed{nullptr};

} // namespace

void setArtifactStore(ArtifactStore *store)
{
    installed.store(store, std::memory_order_release);
}

ArtifactStore *artifactStore()
{
    return installed.load(std::memory_order_acquire);
}

} // namespace qsa::common
