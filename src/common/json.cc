#include "json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "benchjson.hh"
#include "logging.hh"

namespace qsa::json
{

namespace
{

const char *typeName(Value::Type t)
{
    switch (t)
    {
    case Value::Type::Null:
        return "null";
    case Value::Type::Bool:
        return "bool";
    case Value::Type::Number:
        return "number";
    case Value::Type::String:
        return "string";
    case Value::Type::Array:
        return "array";
    case Value::Type::Object:
        return "object";
    }
    return "?";
}

[[noreturn]] void typeFail(const char *want, Value::Type got)
{
    std::ostringstream os;
    os << "JSON type mismatch: wanted " << want << ", value is "
       << typeName(got);
    throw TypeError(os.str());
}

} // namespace

Value Value::boolean(bool b)
{
    Value v;
    v.kind = Type::Bool;
    v.boolValue = b;
    return v;
}

Value Value::number(double d)
{
    Value v;
    v.kind = Type::Number;
    v.numValue = d;
    // benchjson::number emits the shortest lexeme strtod maps back to
    // the same bits — the store's bit-exact round-trip depends on it.
    v.text = benchjson::number(d);
    if (!std::isfinite(d))
        v.kind = Type::Null;
    return v;
}

Value Value::integer(std::uint64_t u)
{
    Value v;
    v.kind = Type::Number;
    v.numValue = static_cast<double>(u);
    v.text = std::to_string(u);
    return v;
}

Value Value::string(std::string s)
{
    Value v;
    v.kind = Type::String;
    v.text = std::move(s);
    return v;
}

Value Value::array()
{
    Value v;
    v.kind = Type::Array;
    return v;
}

Value Value::object()
{
    Value v;
    v.kind = Type::Object;
    return v;
}

Value &Value::push(Value v)
{
    if (kind != Type::Array)
        typeFail("array", kind);
    elements.push_back(std::move(v));
    return *this;
}

Value &Value::set(const std::string &key, Value v)
{
    if (kind != Type::Object)
        typeFail("object", kind);
    for (auto &member : fields)
        if (member.first == key)
        {
            member.second = std::move(v);
            return *this;
        }
    fields.emplace_back(key, std::move(v));
    return *this;
}

bool Value::asBool() const
{
    if (kind != Type::Bool)
        typeFail("bool", kind);
    return boolValue;
}

double Value::asDouble() const
{
    if (kind != Type::Number)
        typeFail("number", kind);
    return numValue;
}

std::uint64_t Value::asUint64() const
{
    if (kind != Type::Number)
        typeFail("number", kind);
    for (char c : text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            throw TypeError("JSON number '" + text +
                            "' is not a non-negative integer");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t u = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() ||
        text.empty())
        throw TypeError("JSON number '" + text +
                        "' does not fit in 64 bits");
    return u;
}

const std::string &Value::asString() const
{
    if (kind != Type::String)
        typeFail("string", kind);
    return text;
}

std::size_t Value::size() const
{
    if (kind == Type::Array)
        return elements.size();
    if (kind == Type::Object)
        return fields.size();
    return 0;
}

const Value &Value::at(std::size_t index) const
{
    if (kind != Type::Array)
        typeFail("array", kind);
    if (index >= elements.size())
        throw TypeError("JSON array index out of range");
    return elements[index];
}

const Value *Value::find(const std::string &key) const
{
    if (kind != Type::Object)
        return nullptr;
    for (const auto &member : fields)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Value>> &Value::members() const
{
    if (kind != Type::Object)
        typeFail("object", kind);
    return fields;
}

namespace
{

void dumpString(const std::string &s, std::string &out)
{
    out += '"';
    out += benchjson::escape(s);
    out += '"';
}

} // namespace

void Value::dumpTo(std::string &out) const
{
    switch (kind)
    {
    case Type::Null:
        out += "null";
        return;
    case Type::Bool:
        out += boolValue ? "true" : "false";
        return;
    case Type::Number:
        // Re-emit the preserved lexeme.
        out += text;
        return;
    case Type::String:
        dumpString(text, out);
        return;
    case Type::Array:
        out += '[';
        for (std::size_t i = 0; i < elements.size(); ++i)
        {
            if (i)
                out += ',';
            elements[i].dumpTo(out);
        }
        out += ']';
        return;
    case Type::Object:
        out += '{';
        for (std::size_t i = 0; i < fields.size(); ++i)
        {
            if (i)
                out += ',';
            dumpString(fields[i].first, out);
            out += ':';
            fields[i].second.dumpTo(out);
        }
        out += '}';
        return;
    }
}

std::string Value::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

/** Recursive-descent parser with 1-based line/column tracking. */
class Parser
{
  public:
    Parser(const std::string &source, std::string *err)
        : src(source), error(err)
    {
    }

    bool run(Value *out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos != src.size())
            return fail("trailing characters after JSON document");
        return true;
    }

  private:
    const std::string &src;
    std::string *error;
    std::size_t pos = 0;
    std::size_t line = 1;
    std::size_t col = 1;

    bool fail(const std::string &message)
    {
        if (error)
        {
            std::ostringstream os;
            os << "line " << line << ", column " << col << ": "
               << message;
            *error = os.str();
        }
        return false;
    }

    bool atEnd() const { return pos >= src.size(); }
    char peek() const { return src[pos]; }

    char take()
    {
        const char c = src[pos++];
        if (c == '\n')
        {
            ++line;
            col = 1;
        }
        else
        {
            ++col;
        }
        return c;
    }

    void skipSpace()
    {
        while (!atEnd())
        {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            take();
        }
    }

    bool literal(const char *word, Value *out, Value v)
    {
        for (const char *p = word; *p; ++p)
        {
            if (atEnd() || peek() != *p)
                return fail(std::string("expected '") + word + "'");
            take();
        }
        *out = std::move(v);
        return true;
    }

    bool parseValue(Value *out)
    {
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek())
        {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
        {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Value::string(std::move(s));
            return true;
        }
        case 't':
            return literal("true", out, Value::boolean(true));
        case 'f':
            return literal("false", out, Value::boolean(false));
        case 'n':
            return literal("null", out, Value());
        default:
            return parseNumber(out);
        }
    }

    bool parseObject(Value *out)
    {
        take(); // '{'
        Value obj = Value::object();
        skipSpace();
        if (!atEnd() && peek() == '}')
        {
            take();
            *out = std::move(obj);
            return true;
        }
        while (true)
        {
            skipSpace();
            if (atEnd() || peek() != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after object key");
            take();
            skipSpace();
            Value member;
            if (!parseValue(&member))
                return false;
            obj.set(key, std::move(member));
            skipSpace();
            if (atEnd())
                return fail("unterminated object");
            const char c = take();
            if (c == '}')
                break;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
        *out = std::move(obj);
        return true;
    }

    bool parseArray(Value *out)
    {
        take(); // '['
        Value arr = Value::array();
        skipSpace();
        if (!atEnd() && peek() == ']')
        {
            take();
            *out = std::move(arr);
            return true;
        }
        while (true)
        {
            skipSpace();
            Value element;
            if (!parseValue(&element))
                return false;
            arr.push(std::move(element));
            skipSpace();
            if (atEnd())
                return fail("unterminated array");
            const char c = take();
            if (c == ']')
                break;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
        *out = std::move(arr);
        return true;
    }

    bool hexDigit(char c, unsigned *out)
    {
        if (c >= '0' && c <= '9')
            *out = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            *out = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            *out = static_cast<unsigned>(c - 'A' + 10);
        else
            return false;
        return true;
    }

    void appendUtf8(unsigned cp, std::string *s)
    {
        if (cp < 0x80)
        {
            *s += static_cast<char>(cp);
        }
        else if (cp < 0x800)
        {
            *s += static_cast<char>(0xC0 | (cp >> 6));
            *s += static_cast<char>(0x80 | (cp & 0x3F));
        }
        else
        {
            *s += static_cast<char>(0xE0 | (cp >> 12));
            *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseString(std::string *out)
    {
        take(); // '"'
        std::string s;
        while (true)
        {
            if (atEnd())
                return fail("unterminated string");
            const char c = take();
            if (c == '"')
                break;
            if (c == '\\')
            {
                if (atEnd())
                    return fail("unterminated escape");
                const char e = take();
                switch (e)
                {
                case '"':
                    s += '"';
                    break;
                case '\\':
                    s += '\\';
                    break;
                case '/':
                    s += '/';
                    break;
                case 'b':
                    s += '\b';
                    break;
                case 'f':
                    s += '\f';
                    break;
                case 'n':
                    s += '\n';
                    break;
                case 'r':
                    s += '\r';
                    break;
                case 't':
                    s += '\t';
                    break;
                case 'u':
                {
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i)
                    {
                        unsigned digit = 0;
                        if (atEnd() || !hexDigit(take(), &digit))
                            return fail("bad \\u escape");
                        cp = (cp << 4) | digit;
                    }
                    // Surrogate pairs are out of dialect scope; keep
                    // the code unit as-is (BMP-only \u escapes).
                    appendUtf8(cp, &s);
                    break;
                }
                default:
                    return fail(std::string("bad escape '\\") + e +
                                "'");
                }
                continue;
            }
            s += c;
        }
        *out = std::move(s);
        return true;
    }

    bool parseNumber(Value *out)
    {
        const std::size_t start = pos;
        if (!atEnd() && peek() == '-')
            take();
        bool digits = false;
        while (!atEnd() &&
               std::isdigit(static_cast<unsigned char>(peek())))
        {
            take();
            digits = true;
        }
        if (!atEnd() && peek() == '.')
        {
            take();
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
            {
                take();
                digits = true;
            }
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E'))
        {
            take();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                take();
            bool exp_digits = false;
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
            {
                take();
                exp_digits = true;
            }
            if (!exp_digits)
                return fail("malformed number exponent");
        }
        if (!digits)
            return fail("unexpected character");
        Value v;
        v.kind = Value::Type::Number;
        v.text = src.substr(start, pos - start);
        v.numValue = std::strtod(v.text.c_str(), nullptr);
        *out = std::move(v);
        return true;
    }
};

bool Value::parse(const std::string &text, Value *out,
                  std::string *error)
{
    Parser p(text, error);
    return p.run(out);
}

Value Value::parseOrDie(const std::string &text)
{
    Value v;
    std::string err;
    fatal_if(!parse(text, &v, &err), "JSON parse error: ",
                     err);
    return v;
}

} // namespace qsa::json
