/**
 * @file
 * Umbrella header: include everything with one line.
 *
 * Library layout (see DESIGN.md for the full inventory):
 *  - qsa::...        common utilities (bits, rng, logging, tables)
 *  - qsa::stats      chi-square tests, contingency analysis
 *  - qsa::sim        state-vector simulator, gates, dense matrices
 *  - qsa::circuit    circuit IR, registers, executor, OpenQASM
 *  - qsa::analyze    static linter + Clifford abstract interpretation
 *  - qsa::runtime    parallel ensemble-execution engine (pool, batch)
 *  - qsa::assertions statistical quantum assertions (the paper's core)
 *  - qsa::locate     statistical bug localization over breakpoints
 *  - qsa::session    the fluent debugging front-end over all three
 *  - qsa::obs        metrics registry and trace spans (QSA_OBS)
 *  - qsa::gf2        binary Galois fields for the Grover oracle
 *  - qsa::chem       Gaussian integrals .. Jordan-Wigner .. Trotter
 *  - qsa::algo       QFT, arithmetic, Shor, Grover, IPEA, Bell
 *  - qsa::bugs       the bug taxonomy and injectable variants
 */

#ifndef QSA_QSA_HH
#define QSA_QSA_HH

#include "algo/arith.hh"
#include "algo/bell.hh"
#include "algo/grover.hh"
#include "algo/ipea.hh"
#include "algo/numtheory.hh"
#include "algo/oracles.hh"
#include "algo/qft.hh"
#include "algo/qpe.hh"
#include "algo/shor.hh"
#include "algo/teleport.hh"
#include "analyze/clifford.hh"
#include "analyze/diagnostic.hh"
#include "analyze/lint.hh"
#include "assertions/checker.hh"
#include "assertions/exact.hh"
#include "assertions/report.hh"
#include "bugs/bugs.hh"
#include "bugs/injectors.hh"
#include "chem/eigen.hh"
#include "chem/fermion.hh"
#include "chem/gaussian.hh"
#include "chem/h2.hh"
#include "chem/pauli.hh"
#include "chem/trotter.hh"
#include "circuit/circuit.hh"
#include "circuit/executor.hh"
#include "circuit/fusion.hh"
#include "circuit/qasm.hh"
#include "circuit/scopes.hh"
#include "common/bits.hh"
#include "common/errors.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "gf2/gf2.hh"
#include "locate/locate.hh"
#include "locate/predicates.hh"
#include "obs/obs.hh"
#include "runtime/batch.hh"
#include "runtime/ensemble.hh"
#include "runtime/pool.hh"
#include "session/session.hh"
#include "sim/gates.hh"
#include "sim/matrix.hh"
#include "sim/statevector.hh"
#include "stats/chi2.hh"
#include "stats/contingency.hh"
#include "stats/histogram.hh"
#include "stats/specfun.hh"

#endif // QSA_QSA_HH
