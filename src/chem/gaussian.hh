/**
 * @file
 * s-type Gaussian orbital integrals and the STO-3G hydrogen basis.
 *
 * The paper obtained its H2 model from published data files; here the
 * same numbers are computed from first principles. For 1s Gaussians
 * the four integral classes (overlap, kinetic, nuclear attraction,
 * electron repulsion) have closed forms involving only the Boys
 * function F0 (Szabo & Ostlund, appendix A).
 *
 * All quantities in atomic units (bohr, hartree).
 */

#ifndef QSA_CHEM_GAUSSIAN_HH
#define QSA_CHEM_GAUSSIAN_HH

#include <array>
#include <vector>

namespace qsa::chem
{

/** A point in 3-space (bohr). */
using Vec3 = std::array<double, 3>;

/** Squared distance between two points. */
double distanceSquared(const Vec3 &a, const Vec3 &b);

/** Boys function F0(t) = (1/2) sqrt(pi/t) erf(sqrt(t)); F0(0) = 1. */
double boysF0(double t);

/**
 * A normalised contracted s-type Gaussian basis function
 * chi(r) = sum_i d_i (2 a_i / pi)^{3/4} exp(-a_i |r - C|^2).
 */
struct ContractedGaussian
{
    /** Center (bohr). */
    Vec3 center{0.0, 0.0, 0.0};

    /** Primitive exponents. */
    std::vector<double> exponents;

    /** Contraction coefficients (for unit-normalised primitives). */
    std::vector<double> coefficients;
};

/**
 * The STO-3G hydrogen basis function at `center` (standard exponents
 * for the zeta = 1.24 scaled Slater orbital), renormalised so the
 * self-overlap is exactly 1.
 */
ContractedGaussian sto3gHydrogen(const Vec3 &center);

/** Overlap integral <a|b>. */
double overlap(const ContractedGaussian &a, const ContractedGaussian &b);

/** Kinetic energy integral <a| -nabla^2/2 |b>. */
double kinetic(const ContractedGaussian &a, const ContractedGaussian &b);

/**
 * Nuclear attraction integral <a| -Z / |r - C| |b> for a nucleus of
 * charge `z` at `nucleus`.
 */
double nuclearAttraction(const ContractedGaussian &a,
                         const ContractedGaussian &b, const Vec3 &nucleus,
                         double z);

/** Two-electron repulsion integral (ab|cd) in chemist notation. */
double electronRepulsion(const ContractedGaussian &a,
                         const ContractedGaussian &b,
                         const ContractedGaussian &c,
                         const ContractedGaussian &d);

/** Bohr radius in picometres (CODATA), for bond-length conversion. */
constexpr double bohr_in_pm = 52.9177210903;

} // namespace qsa::chem

#endif // QSA_CHEM_GAUSSIAN_HH
