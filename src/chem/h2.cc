/**
 * @file
 * H2/STO-3G model construction.
 */

#include "chem/h2.hh"

#include <cmath>

#include "chem/gaussian.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::chem
{

H2Model
buildH2Model(double bond_length_pm)
{
    fatal_if(bond_length_pm <= 0.0, "bond length must be positive");

    H2Model model;
    model.bondLength = bond_length_pm / bohr_in_pm;
    const double r = model.bondLength;

    const Vec3 nucleus_a{0.0, 0.0, 0.0};
    const Vec3 nucleus_b{0.0, 0.0, r};
    const ContractedGaussian chi1 = sto3gHydrogen(nucleus_a);
    const ContractedGaussian chi2 = sto3gHydrogen(nucleus_b);

    // --- AO integrals ----------------------------------------------------
    const double s12 = overlap(chi1, chi2);
    const double t11 = kinetic(chi1, chi1);
    const double t12 = kinetic(chi1, chi2);
    const double v11 = nuclearAttraction(chi1, chi1, nucleus_a, 1.0) +
                       nuclearAttraction(chi1, chi1, nucleus_b, 1.0);
    const double v12 = nuclearAttraction(chi1, chi2, nucleus_a, 1.0) +
                       nuclearAttraction(chi1, chi2, nucleus_b, 1.0);
    const double h11_ao = t11 + v11; // == h22 by symmetry
    const double h12_ao = t12 + v12;

    // --- Symmetry-adapted RHF orbitals -----------------------------------
    // The D_inf_h symmetry fixes the MOs: sigma_g = (1+2)/norm,
    // sigma_u = (1-2)/norm; SCF is already converged in this basis.
    const double norm_g = 1.0 / std::sqrt(2.0 * (1.0 + s12));
    const double norm_u = 1.0 / std::sqrt(2.0 * (1.0 - s12));
    // MO coefficient matrix c[ao][mo].
    const double c[2][2] = {{norm_g, norm_u}, {norm_g, -norm_u}};

    // One-electron MO integrals (diagonal by symmetry).
    const double h_g = (h11_ao + h12_ao) / (1.0 + s12);
    const double h_u = (h11_ao - h12_ao) / (1.0 - s12);

    // --- Two-electron integrals: AO then 4-index transform ----------------
    const ContractedGaussian *ao[2] = {&chi1, &chi2};
    double eri_ao[2][2][2][2];
    for (int p = 0; p < 2; ++p)
    for (int q = 0; q < 2; ++q)
    for (int rr = 0; rr < 2; ++rr)
    for (int ss = 0; ss < 2; ++ss)
        eri_ao[p][q][rr][ss] =
            electronRepulsion(*ao[p], *ao[q], *ao[rr], *ao[ss]);

    model.integrals.numSpatial = 2;
    model.integrals.core = {{h_g, 0.0}, {0.0, h_u}};
    model.integrals.eri.assign(
        2, std::vector<std::vector<std::vector<double>>>(
               2, std::vector<std::vector<double>>(
                      2, std::vector<double>(2, 0.0))));
    for (int p = 0; p < 2; ++p)
    for (int q = 0; q < 2; ++q)
    for (int rr = 0; rr < 2; ++rr)
    for (int ss = 0; ss < 2; ++ss) {
        double acc = 0.0;
        for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b)
        for (int cc = 0; cc < 2; ++cc)
        for (int d = 0; d < 2; ++d)
            acc += c[a][p] * c[b][q] * c[cc][rr] * c[d][ss] *
                   eri_ao[a][b][cc][d];
        model.integrals.eri[p][q][rr][ss] = acc;
    }

    model.integrals.nuclearRepulsion = 1.0 / r;

    // --- Qubit Hamiltonian and reference energies ------------------------
    model.hamiltonian = buildQubitHamiltonian(model.integrals);
    model.hartreeFockEnergy = 2.0 * h_g +
                              model.integrals.eri[0][0][0][0] +
                              model.integrals.nuclearRepulsion;
    return model;
}

double
determinantEnergy(const H2Model &model, std::uint32_t occupation)
{
    const auto &ints = model.integrals;
    double e = ints.nuclearRepulsion;

    // Slater-Condon rules for a diagonal element: sum of occupied core
    // integrals plus Coulomb minus (same-spin) exchange pairs.
    for (unsigned p = 0; p < 4; ++p) {
        if (!getBit(occupation, p))
            continue;
        e += ints.core[p / 2][p / 2];
        for (unsigned q = p + 1; q < 4; ++q) {
            if (!getBit(occupation, q))
                continue;
            const unsigned sp = p / 2, sq = q / 2;
            e += ints.eri[sp][sp][sq][sq]; // Coulomb J
            if (p % 2 == q % 2)
                e -= ints.eri[sp][sq][sq][sp]; // exchange K
        }
    }
    return e;
}

std::vector<std::uint32_t>
table5Assignments()
{
    // Table 5 rows, top to bottom. Bit p set = spin orbital p
    // occupied (0 = bonding-up, 1 = bonding-down, 2 = antibonding-up,
    // 3 = antibonding-down).
    return {
        0b1100, // E3: both electrons antibonding
        0b0110, // E2: bonding-down + antibonding-up (opposite spins)
        0b1001, // E2: bonding-up + antibonding-down (opposite spins)
        0b0101, // E1: bonding-up + antibonding-up (same spin)
        0b1010, // E1: bonding-down + antibonding-down (same spin)
        0b0011, // G:  both electrons bonding
    };
}

} // namespace qsa::chem
