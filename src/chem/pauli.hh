/**
 * @file
 * Pauli-string algebra for qubit Hamiltonians.
 *
 * Terms are stored in the symplectic form X^x Z^z (bit masks x, z per
 * qubit) with complex coefficients; Y appears implicitly as
 * Y = i X Z. This makes products a pair of XORs plus a sign, which is
 * all the Jordan-Wigner transformation needs.
 */

#ifndef QSA_CHEM_PAULI_HH
#define QSA_CHEM_PAULI_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/matrix.hh"
#include "sim/types.hh"

namespace qsa::chem
{

/** One Pauli word in mask form, coefficient excluded. */
struct PauliMask
{
    /** X-part bit mask. */
    std::uint32_t x = 0;

    /** Z-part bit mask. */
    std::uint32_t z = 0;

    bool operator<(const PauliMask &o) const
    {
        return x != o.x ? x < o.x : z < o.z;
    }
    bool operator==(const PauliMask &o) const
    {
        return x == o.x && z == o.z;
    }
};

/**
 * A Pauli word in conventional I/X/Y/Z letters with a real
 * coefficient — the form Trotterisation consumes.
 */
struct PauliWord
{
    /** Per-qubit letters, index 0 first; 'I', 'X', 'Y', or 'Z'. */
    std::string letters;

    /** Real coefficient (Hermitian operators only). */
    double coefficient = 0.0;
};

/** A complex linear combination of Pauli strings. */
class PauliOperator
{
  public:
    /** Zero operator on num_qubits qubits. */
    explicit PauliOperator(unsigned num_qubits = 0);

    /** The identity scaled by `c`. */
    static PauliOperator identity(unsigned num_qubits,
                                  sim::Complex c = 1.0);

    /** A single X^x Z^z term. */
    static PauliOperator term(unsigned num_qubits, std::uint32_t x,
                              std::uint32_t z, sim::Complex c);

    /** Number of qubits. */
    unsigned numQubits() const { return nQubits; }

    /** Term map (mask -> coefficient); zero terms pruned. */
    const std::map<PauliMask, sim::Complex> &terms() const
    {
        return termMap;
    }

    /** this + rhs. */
    PauliOperator add(const PauliOperator &rhs) const;

    /** this * rhs (operator product, phases tracked). */
    PauliOperator mul(const PauliOperator &rhs) const;

    /** this scaled by c. */
    PauliOperator scale(sim::Complex c) const;

    /** Hermitian conjugate. */
    PauliOperator adjoint() const;

    /** Remove terms with |coefficient| below tol. */
    PauliOperator pruned(double tol = 1e-12) const;

    /** Number of non-zero terms. */
    std::size_t size() const { return termMap.size(); }

    /** Dense matrix representation (dimension 2^n). */
    sim::CMatrix toMatrix() const;

    /**
     * Decompose into conventional Pauli words with real coefficients;
     * fails (panics) if any coefficient has an imaginary part above
     * tol, i.e. if the operator is not Hermitian.
     */
    std::vector<PauliWord> toWords(double tol = 1e-9) const;

    /** Human-readable dump ("(-0.2428) Z0 + ..."). */
    std::string str() const;

  private:
    unsigned nQubits;
    std::map<PauliMask, sim::Complex> termMap;

    void addTerm(const PauliMask &mask, sim::Complex c);
};

} // namespace qsa::chem

#endif // QSA_CHEM_PAULI_HH
