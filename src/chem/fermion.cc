/**
 * @file
 * Jordan-Wigner transformation implementation.
 */

#include "chem/fermion.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::chem
{

namespace
{

/** Z string on qubits below p. */
std::uint32_t
zString(unsigned p)
{
    return static_cast<std::uint32_t>(lowMask(p));
}

} // anonymous namespace

PauliOperator
jwAnnihilation(unsigned num_qubits, unsigned p)
{
    panic_if(p >= num_qubits, "orbital index out of range");
    const std::uint32_t s = zString(p);
    const std::uint32_t xp = 1u << p;
    // a_p = Z_{<p} (X_p + i Y_p)/2 = Z_{<p} (X - X Z)_p / 2.
    PauliOperator a =
        PauliOperator::term(num_qubits, xp, s, 0.5)
            .add(PauliOperator::term(num_qubits, xp, s | xp, -0.5));
    return a;
}

PauliOperator
jwCreation(unsigned num_qubits, unsigned p)
{
    panic_if(p >= num_qubits, "orbital index out of range");
    const std::uint32_t s = zString(p);
    const std::uint32_t xp = 1u << p;
    // a+_p = Z_{<p} (X_p - i Y_p)/2 = Z_{<p} (X + X Z)_p / 2.
    PauliOperator a =
        PauliOperator::term(num_qubits, xp, s, 0.5)
            .add(PauliOperator::term(num_qubits, xp, s | xp, 0.5));
    return a;
}

PauliOperator
jwNumber(unsigned num_qubits, unsigned p)
{
    return jwCreation(num_qubits, p).mul(jwAnnihilation(num_qubits, p));
}

PauliOperator
buildQubitHamiltonian(const MolecularIntegrals &ints)
{
    const unsigned n_spatial = ints.numSpatial;
    const unsigned n_so = 2 * n_spatial;
    fatal_if(n_spatial == 0, "no orbitals");
    fatal_if(ints.core.size() != n_spatial, "core integral shape");
    fatal_if(ints.eri.size() != n_spatial, "eri shape");

    // Cache the ladder operators.
    std::vector<PauliOperator> create, destroy;
    for (unsigned p = 0; p < n_so; ++p) {
        create.push_back(jwCreation(n_so, p));
        destroy.push_back(jwAnnihilation(n_so, p));
    }

    PauliOperator h =
        PauliOperator::identity(n_so, ints.nuclearRepulsion);

    // One-electron part: h_pq a+_p a_q with spin conservation.
    for (unsigned p = 0; p < n_so; ++p) {
        for (unsigned q = 0; q < n_so; ++q) {
            if (p % 2 != q % 2)
                continue;
            const double hval = ints.core[p / 2][q / 2];
            if (hval == 0.0)
                continue;
            h = h.add(create[p].mul(destroy[q]).scale(hval));
        }
    }

    // Two-electron part:
    // 1/2 sum_pqrs <pq|rs> a+_p a+_q a_s a_r, with
    // <pq|rs> = (pr|qs)_chemist * delta(sp, sr) * delta(sq, ss).
    for (unsigned p = 0; p < n_so; ++p) {
        for (unsigned q = 0; q < n_so; ++q) {
            for (unsigned r = 0; r < n_so; ++r) {
                if (p % 2 != r % 2)
                    continue;
                for (unsigned s = 0; s < n_so; ++s) {
                    if (q % 2 != s % 2)
                        continue;
                    const double v =
                        ints.eri[p / 2][r / 2][q / 2][s / 2];
                    if (v == 0.0)
                        continue;
                    PauliOperator term = create[p]
                                             .mul(create[q])
                                             .mul(destroy[s])
                                             .mul(destroy[r])
                                             .scale(0.5 * v);
                    h = h.add(term);
                }
            }
        }
    }
    return h.pruned();
}

} // namespace qsa::chem
