/**
 * @file
 * Pauli-operator implementation.
 */

#include "chem/pauli.hh"

#include <cmath>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::chem
{

PauliOperator::PauliOperator(unsigned num_qubits) : nQubits(num_qubits)
{
    panic_if(num_qubits > 24, "PauliOperator limited to 24 qubits");
}

PauliOperator
PauliOperator::identity(unsigned num_qubits, sim::Complex c)
{
    return term(num_qubits, 0, 0, c);
}

PauliOperator
PauliOperator::term(unsigned num_qubits, std::uint32_t x,
                    std::uint32_t z, sim::Complex c)
{
    PauliOperator op(num_qubits);
    panic_if((x | z) >> num_qubits, "mask exceeds qubit count");
    op.addTerm({x, z}, c);
    return op;
}

void
PauliOperator::addTerm(const PauliMask &mask, sim::Complex c)
{
    auto [it, inserted] = termMap.emplace(mask, c);
    if (!inserted)
        it->second += c;
    if (std::abs(it->second) == 0.0)
        termMap.erase(it);
}

PauliOperator
PauliOperator::add(const PauliOperator &rhs) const
{
    panic_if(nQubits != rhs.nQubits, "qubit count mismatch in add");
    PauliOperator out = *this;
    for (const auto &[mask, c] : rhs.termMap)
        out.addTerm(mask, c);
    return out;
}

PauliOperator
PauliOperator::mul(const PauliOperator &rhs) const
{
    panic_if(nQubits != rhs.nQubits, "qubit count mismatch in mul");
    PauliOperator out(nQubits);
    for (const auto &[m1, c1] : termMap) {
        for (const auto &[m2, c2] : rhs.termMap) {
            // (X^x1 Z^z1)(X^x2 Z^z2): commuting Z^z1 through X^x2
            // picks up (-1)^{|z1 & x2|}.
            const int sign =
                popcount64(m1.z & m2.x) % 2 == 0 ? 1 : -1;
            const PauliMask mask{m1.x ^ m2.x, m1.z ^ m2.z};
            out.addTerm(mask, c1 * c2 * static_cast<double>(sign));
        }
    }
    return out;
}

PauliOperator
PauliOperator::scale(sim::Complex c) const
{
    PauliOperator out(nQubits);
    if (std::abs(c) == 0.0)
        return out;
    for (const auto &[mask, coeff] : termMap)
        out.termMap.emplace(mask, coeff * c);
    return out;
}

PauliOperator
PauliOperator::adjoint() const
{
    // (X^x Z^z)^dag = Z^z X^x = (-1)^{|x & z|} X^x Z^z.
    PauliOperator out(nQubits);
    for (const auto &[mask, coeff] : termMap) {
        const int sign =
            popcount64(mask.x & mask.z) % 2 == 0 ? 1 : -1;
        out.addTerm(mask,
                    std::conj(coeff) * static_cast<double>(sign));
    }
    return out;
}

PauliOperator
PauliOperator::pruned(double tol) const
{
    PauliOperator out(nQubits);
    for (const auto &[mask, coeff] : termMap) {
        if (std::abs(coeff) > tol)
            out.termMap.emplace(mask, coeff);
    }
    return out;
}

sim::CMatrix
PauliOperator::toMatrix() const
{
    const std::uint64_t dim = pow2(nQubits);
    sim::CMatrix m(dim);
    for (const auto &[mask, coeff] : termMap) {
        for (std::uint64_t col = 0; col < dim; ++col) {
            // X^x Z^z |col> = (-1)^{|z & col|} |col ^ x>.
            const int sign =
                popcount64(mask.z & col) % 2 == 0 ? 1 : -1;
            m.at(col ^ mask.x, col) +=
                coeff * static_cast<double>(sign);
        }
    }
    return m;
}

std::vector<PauliWord>
PauliOperator::toWords(double tol) const
{
    std::vector<PauliWord> words;
    words.reserve(termMap.size());
    for (const auto &[mask, coeff] : termMap) {
        PauliWord w;
        w.letters.assign(nQubits, 'I');
        unsigned num_y = 0;
        for (unsigned q = 0; q < nQubits; ++q) {
            const bool x = getBit(mask.x, q);
            const bool z = getBit(mask.z, q);
            if (x && z) {
                w.letters[q] = 'Y';
                ++num_y;
            } else if (x) {
                w.letters[q] = 'X';
            } else if (z) {
                w.letters[q] = 'Z';
            }
        }
        // X Z = -i Y per Y letter: the conventional-word coefficient
        // is coeff * i^{num_y}... derive: term = coeff * prod(XZ)
        //   = coeff * (-i)^{num_y} * prod(Y) -> word coefficient is
        // coeff * (-i)^{num_y}.
        sim::Complex wc = coeff;
        static const sim::Complex minus_i(0.0, -1.0);
        for (unsigned k = 0; k < num_y % 4; ++k)
            wc *= minus_i;
        panic_if(std::abs(wc.imag()) > tol,
                 "non-Hermitian operator cannot convert to real Pauli "
                 "words (imag = ", wc.imag(), ")");
        w.coefficient = wc.real();
        words.push_back(std::move(w));
    }
    return words;
}

std::string
PauliOperator::str() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &w : toWords(1e30)) { // tolerate complex for dump
        if (!first)
            os << " + ";
        first = false;
        os << "(" << w.coefficient << ")";
        for (unsigned q = 0; q < nQubits; ++q) {
            if (w.letters[q] != 'I')
                os << " " << w.letters[q] << q;
        }
    }
    if (first)
        os << "0";
    return os.str();
}

} // namespace qsa::chem
