/**
 * @file
 * Trotter circuit construction.
 */

#include "chem/trotter.hh"

#include "common/logging.hh"

namespace qsa::chem
{

void
appendPauliExponential(circuit::Circuit &circ, const std::string &word,
                       double theta,
                       const std::vector<unsigned> &qubits,
                       const std::vector<unsigned> &controls)
{
    panic_if(word.size() > qubits.size(),
             "word longer than qubit mapping");

    // Qubits the word acts on non-trivially.
    std::vector<unsigned> active;
    for (std::size_t i = 0; i < word.size(); ++i) {
        if (word[i] != 'I')
            active.push_back(qubits[i]);
    }

    if (active.empty()) {
        // exp(-i theta I): a global phase, but a *relative* phase once
        // controlled. diag(1, e^{-i theta}) on each control chain.
        if (!controls.empty()) {
            std::vector<unsigned> rest(controls.begin() + 1,
                                       controls.end());
            circ.controlledGate(circuit::GateKind::Phase, rest,
                                controls[0], -theta);
        }
        return;
    }

    // Basis changes into the Z eigenbasis.
    auto enter_basis = [&](bool forward) {
        for (std::size_t i = 0; i < word.size(); ++i) {
            const unsigned q = qubits[i];
            switch (word[i]) {
              case 'X':
                circ.h(q);
                break;
              case 'Y':
                // Y = (S H) Z (S H)^dag: entering applies H S^dag,
                // leaving applies S H.
                if (forward) {
                    circ.sdg(q);
                    circ.h(q);
                } else {
                    circ.h(q);
                    circ.s(q);
                }
                break;
              default:
                break;
            }
        }
    };

    enter_basis(true);

    // Parity ladder onto the last active qubit.
    for (std::size_t i = 0; i + 1 < active.size(); ++i)
        circ.cnot(active[i], active[i + 1]);

    // exp(-i theta Z...Z) == Rz(2 theta) on the parity qubit.
    circ.controlledGate(circuit::GateKind::Rz, controls, active.back(),
                        2.0 * theta);

    for (std::size_t i = active.size() - 1; i-- > 0;)
        circ.cnot(active[i], active[i + 1]);

    enter_basis(false);
}

void
appendTrotterStep(circuit::Circuit &circ,
                  const PauliOperator &hamiltonian, double dt,
                  const std::vector<unsigned> &qubits,
                  const std::vector<unsigned> &controls, double e_ref)
{
    panic_if(qubits.size() < hamiltonian.numQubits(),
             "qubit mapping too small for operator");

    bool identity_seen = false;
    for (const auto &word : hamiltonian.toWords()) {
        double coeff = word.coefficient;
        const bool is_identity =
            word.letters.find_first_not_of('I') == std::string::npos;
        if (is_identity) {
            coeff -= e_ref;
            identity_seen = true;
        }
        appendPauliExponential(circ, word.letters, coeff * dt, qubits,
                               controls);
    }
    if (!identity_seen && e_ref != 0.0) {
        appendPauliExponential(circ,
                               std::string(hamiltonian.numQubits(), 'I'),
                               -e_ref * dt, qubits, controls);
    }
}

void
appendTrotterEvolution(circuit::Circuit &circ,
                       const PauliOperator &hamiltonian, double time,
                       unsigned steps,
                       const std::vector<unsigned> &qubits,
                       const std::vector<unsigned> &controls,
                       double e_ref)
{
    fatal_if(steps == 0, "need at least one Trotter step");
    const double dt = time / steps;
    for (unsigned s = 0; s < steps; ++s)
        appendTrotterStep(circ, hamiltonian, dt, qubits, controls,
                          e_ref);
}

} // namespace qsa::chem
