/**
 * @file
 * Trotterised time evolution circuits.
 *
 * exp(-i H t) is approximated by r repetitions of the first-order
 * product formula prod_k exp(-i c_k P_k t / r) over the Hamiltonian's
 * Pauli words. Each factor compiles to the textbook basis-change +
 * CNOT-ladder + Rz pattern; controlled variants promote only the Rz
 * (and the identity term's global phase, which becomes a physical
 * controlled phase — forgetting it is a classic chemistry-program
 * bug).
 */

#ifndef QSA_CHEM_TROTTER_HH
#define QSA_CHEM_TROTTER_HH

#include <vector>

#include "chem/pauli.hh"
#include "circuit/circuit.hh"

namespace qsa::chem
{

/**
 * Append exp(-i theta P) for one Pauli word to the circuit.
 *
 * @param circ target circuit
 * @param word Pauli letters for the low qubits of `qubits`
 * @param theta rotation angle
 * @param qubits qubit indices word letter i refers to
 * @param controls optional control qubits
 */
void appendPauliExponential(circuit::Circuit &circ,
                            const std::string &word, double theta,
                            const std::vector<unsigned> &qubits,
                            const std::vector<unsigned> &controls = {});

/**
 * Append one first-order Trotter step exp(-i H dt) (approximately).
 *
 * @param circ target circuit
 * @param hamiltonian operator whose words drive the factors
 * @param dt step length
 * @param qubits mapping from operator qubit i to circuit qubit
 * @param controls optional control qubits (identity term included as
 *        a controlled phase)
 * @param e_ref energy shift: evolves under (H - e_ref)
 */
void appendTrotterStep(circuit::Circuit &circ,
                       const PauliOperator &hamiltonian, double dt,
                       const std::vector<unsigned> &qubits,
                       const std::vector<unsigned> &controls = {},
                       double e_ref = 0.0);

/**
 * Append exp(-i (H - e_ref) t) via `steps` first-order Trotter steps.
 */
void appendTrotterEvolution(circuit::Circuit &circ,
                            const PauliOperator &hamiltonian,
                            double time, unsigned steps,
                            const std::vector<unsigned> &qubits,
                            const std::vector<unsigned> &controls = {},
                            double e_ref = 0.0);

} // namespace qsa::chem

#endif // QSA_CHEM_TROTTER_HH
