/**
 * @file
 * The H2 / STO-3G model used by the paper's chemistry case study
 * (Section 5.2, Table 5).
 *
 * Pipeline: STO-3G AO integrals -> symmetry-determined RHF molecular
 * orbitals (sigma_g bonding, sigma_u antibonding) -> MO-basis spin-
 * orbital integrals -> Jordan-Wigner qubit Hamiltonian on 4 qubits.
 * Qubit order matches Table 5's columns:
 *   qubit 0 = bonding up, 1 = bonding down,
 *   qubit 2 = antibonding up, 3 = antibonding down.
 */

#ifndef QSA_CHEM_H2_HH
#define QSA_CHEM_H2_HH

#include <cstdint>
#include <vector>

#include "chem/fermion.hh"
#include "chem/pauli.hh"

namespace qsa::chem
{

/** Everything the chemistry benchmarks need about the H2 model. */
struct H2Model
{
    /** Bond length used (bohr). */
    double bondLength = 0.0;

    /** Molecular integrals (spatial orbital 0 = sigma_g, 1 = sigma_u). */
    MolecularIntegrals integrals;

    /** Jordan-Wigner Hamiltonian on 4 qubits (includes E_nuc). */
    PauliOperator hamiltonian{4};

    /** Restricted Hartree-Fock total energy (hartree). */
    double hartreeFockEnergy = 0.0;
};

/**
 * Build the H2 model at the given bond length.
 *
 * @param bond_length_pm internuclear distance in picometres; the
 *        paper's Table 5 uses 73.48 pm
 */
H2Model buildH2Model(double bond_length_pm = 73.48);

/**
 * Expectation value <det| H |det> of a Slater determinant given as an
 * occupation bit mask over the 4 spin orbitals (bit order as above) —
 * the classical energies whose degeneracy pattern Table 5 reports.
 */
double determinantEnergy(const H2Model &model, std::uint32_t occupation);

/** The six 2-electron occupation masks in Table 5's row order. */
std::vector<std::uint32_t> table5Assignments();

} // namespace qsa::chem

#endif // QSA_CHEM_H2_HH
