/**
 * @file
 * Second quantization and the Jordan-Wigner transformation.
 *
 * This replaces the data-file route the paper took (LIQUi|>'s
 * h2_sto3g_4.dat): given molecular spin-orbital integrals we build the
 * fermionic Hamiltonian
 *   H = sum_pq h_pq a+_p a_q
 *     + 1/2 sum_pqrs <pq|rs> a+_p a+_q a_s a_r
 * and map it onto qubits with the Jordan-Wigner encoding, following
 * the procedure of Whitfield et al. [54].
 */

#ifndef QSA_CHEM_FERMION_HH
#define QSA_CHEM_FERMION_HH

#include <vector>

#include "chem/pauli.hh"

namespace qsa::chem
{

/** Jordan-Wigner annihilation operator a_p on num_qubits qubits. */
PauliOperator jwAnnihilation(unsigned num_qubits, unsigned p);

/** Jordan-Wigner creation operator a+_p. */
PauliOperator jwCreation(unsigned num_qubits, unsigned p);

/** Jordan-Wigner number operator n_p = a+_p a_p. */
PauliOperator jwNumber(unsigned num_qubits, unsigned p);

/**
 * Spin-orbital integrals for a molecule with `numSpatial` spatial
 * orbitals. Spin orbital p has spatial index p / 2 and spin p % 2
 * (even = up, odd = down), matching Table 5's column order
 * (bonding-up, bonding-down, antibonding-up, antibonding-down) for
 * H2.
 */
struct MolecularIntegrals
{
    /** Number of spatial orbitals. */
    unsigned numSpatial = 0;

    /** Core (one-electron) integrals h[p][q], spatial indices. */
    std::vector<std::vector<double>> core;

    /**
     * Two-electron repulsion integrals in *chemist* notation
     * (pq|rs) = integral of p(1) q(1) 1/r12 r(2) s(2), spatial
     * indices eri[p][q][r][s].
     */
    std::vector<std::vector<std::vector<std::vector<double>>>> eri;

    /** Nuclear repulsion energy (added to the identity term). */
    double nuclearRepulsion = 0.0;
};

/**
 * Build the qubit Hamiltonian for the given integrals via
 * Jordan-Wigner, on 2 * numSpatial qubits (one per spin orbital).
 */
PauliOperator buildQubitHamiltonian(const MolecularIntegrals &ints);

} // namespace qsa::chem

#endif // QSA_CHEM_FERMION_HH
