/**
 * @file
 * Jacobi eigensolver and evolution-operator construction.
 */

#include "chem/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace qsa::chem
{

EigenSystem
jacobiEigenSolve(const std::vector<double> &matrix, std::size_t n,
                 double tol)
{
    panic_if(matrix.size() != n * n, "matrix size mismatch");
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = r + 1; c < n; ++c)
            panic_if(std::fabs(matrix[r * n + c] - matrix[c * n + r]) >
                         1e-9,
                     "matrix is not symmetric");

    std::vector<double> a = matrix;             // working copy
    std::vector<double> v(n * n, 0.0);          // accumulated rotations
    for (std::size_t i = 0; i < n; ++i)
        v[i * n + i] = 1.0;

    auto off_diagonal_norm = [&]() {
        double s = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = r + 1; c < n; ++c)
                s += a[r * n + c] * a[r * n + c];
        return std::sqrt(s);
    };

    const int max_sweeps = 100;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (off_diagonal_norm() < tol)
            break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a[p * n + q];
                if (std::fabs(apq) < tol * 1e-3)
                    continue;

                const double app = a[p * n + p];
                const double aqq = a[q * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // A <- J^T A J applied to rows/cols p and q.
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a[k * n + p];
                    const double akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a[p * n + k];
                    const double aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors (columns of V).
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v[k * n + p];
                    const double vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Collect and sort.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) {
                  return a[i * n + i] < a[j * n + j];
              });

    EigenSystem sys;
    sys.values.reserve(n);
    sys.vectors.reserve(n);
    for (std::size_t k : order) {
        sys.values.push_back(a[k * n + k]);
        std::vector<double> vec(n);
        for (std::size_t i = 0; i < n; ++i)
            vec[i] = v[i * n + k];
        sys.vectors.push_back(std::move(vec));
    }
    return sys;
}

std::vector<double>
toRealSymmetric(const PauliOperator &op, double tol)
{
    const sim::CMatrix m = op.toMatrix();
    const std::size_t n = m.dim();
    std::vector<double> real(n * n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            panic_if(std::fabs(m.at(r, c).imag()) > tol,
                     "operator matrix is not real");
            real[r * n + c] = m.at(r, c).real();
        }
    }
    return real;
}

EigenSystem
diagonalize(const PauliOperator &op)
{
    const std::size_t n = std::size_t(1) << op.numQubits();
    return jacobiEigenSolve(toRealSymmetric(op), n);
}

sim::CMatrix
evolutionOperator(const PauliOperator &hamiltonian, double time,
                  double e_ref)
{
    const EigenSystem sys = diagonalize(hamiltonian);
    const std::size_t n = sys.values.size();

    sim::CMatrix u(n);
    for (std::size_t k = 0; k < n; ++k) {
        const sim::Complex phase =
            std::exp(sim::Complex(0.0,
                                  -(sys.values[k] - e_ref) * time));
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                u.at(r, c) += phase * sys.vectors[k][r] *
                              sys.vectors[k][c];
    }
    return u;
}

double
groundStateEnergy(const PauliOperator &hamiltonian)
{
    return diagonalize(hamiltonian).values.front();
}

} // namespace qsa::chem
