/**
 * @file
 * Dense real-symmetric eigensolver (cyclic Jacobi) and the exact
 * time-evolution unitaries built from it.
 *
 * Used as the FCI ground truth for the chemistry case study and to
 * construct exact controlled-U gates for iterative phase estimation,
 * against which the Trotterised circuits are validated (the paper's
 * Section 5.2.3 convergence checks).
 */

#ifndef QSA_CHEM_EIGEN_HH
#define QSA_CHEM_EIGEN_HH

#include <vector>

#include "chem/pauli.hh"
#include "sim/matrix.hh"

namespace qsa::chem
{

/** Eigendecomposition of a real symmetric matrix. */
struct EigenSystem
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;

    /**
     * Eigenvectors: vectors[k] is the (normalised) eigenvector for
     * values[k].
     */
    std::vector<std::vector<double>> vectors;
};

/**
 * Diagonalise a real symmetric matrix (row-major, dimension n) with
 * the cyclic Jacobi method.
 */
EigenSystem jacobiEigenSolve(const std::vector<double> &matrix,
                             std::size_t n, double tol = 1e-13);

/**
 * Convert a Hermitian Pauli operator with a real matrix representation
 * into a real symmetric matrix; panics if any entry has an imaginary
 * part above tol (molecular Hamiltonians from real orbitals are real).
 */
std::vector<double> toRealSymmetric(const PauliOperator &op,
                                    double tol = 1e-9);

/** Eigendecomposition of a (real-representable) Pauli operator. */
EigenSystem diagonalize(const PauliOperator &op);

/**
 * Exact evolution operator exp(-i (H - e_ref) t) as a dense unitary,
 * via the eigendecomposition.
 */
sim::CMatrix evolutionOperator(const PauliOperator &hamiltonian,
                               double time, double e_ref = 0.0);

/** Ground-state (lowest) eigenvalue convenience wrapper. */
double groundStateEnergy(const PauliOperator &hamiltonian);

} // namespace qsa::chem

#endif // QSA_CHEM_EIGEN_HH
