/**
 * @file
 * Closed-form s-Gaussian integrals (Szabo & Ostlund A.9-A.41).
 */

#include "chem/gaussian.hh"

#include <cmath>

#include "common/logging.hh"
#include "stats/specfun.hh"

namespace qsa::chem
{

double
distanceSquared(const Vec3 &a, const Vec3 &b)
{
    double d2 = 0.0;
    for (int i = 0; i < 3; ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return d2;
}

double
boysF0(double t)
{
    if (t < 1e-12) {
        // Series: F0(t) = 1 - t/3 + t^2/10 - ...
        return 1.0 - t / 3.0;
    }
    return 0.5 * std::sqrt(M_PI / t) *
           stats::errorFunction(std::sqrt(t));
}

ContractedGaussian
sto3gHydrogen(const Vec3 &center)
{
    ContractedGaussian g;
    g.center = center;
    // Standard STO-3G hydrogen (zeta = 1.24 scaling folded in).
    g.exponents = {3.425250914, 0.6239137298, 0.1688554040};
    g.coefficients = {0.1543289673, 0.5353281423, 0.4446345422};

    // Renormalise the contraction so <g|g> = 1 exactly.
    const double s = overlap(g, g);
    const double scale = 1.0 / std::sqrt(s);
    for (double &c : g.coefficients)
        c *= scale;
    return g;
}

namespace
{

/** Normalisation constant of an s primitive with exponent a. */
double
primNorm(double a)
{
    return std::pow(2.0 * a / M_PI, 0.75);
}

/** Gaussian product prefactor exp(-ab/(a+b) |A-B|^2). */
double
productPrefactor(double a, double b, const Vec3 &pa, const Vec3 &pb)
{
    return std::exp(-a * b / (a + b) * distanceSquared(pa, pb));
}

/** Gaussian product center (a A + b B) / (a + b). */
Vec3
productCenter(double a, double b, const Vec3 &pa, const Vec3 &pb)
{
    Vec3 p;
    for (int i = 0; i < 3; ++i)
        p[i] = (a * pa[i] + b * pb[i]) / (a + b);
    return p;
}

/**
 * Accumulate a two-index primitive integral over both contractions.
 */
template <typename Prim>
double
contract2(const ContractedGaussian &a, const ContractedGaussian &b,
          Prim prim)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.exponents.size(); ++i) {
        for (std::size_t j = 0; j < b.exponents.size(); ++j) {
            const double na = primNorm(a.exponents[i]);
            const double nb = primNorm(b.exponents[j]);
            total += a.coefficients[i] * b.coefficients[j] * na * nb *
                     prim(a.exponents[i], b.exponents[j]);
        }
    }
    return total;
}

} // anonymous namespace

double
overlap(const ContractedGaussian &a, const ContractedGaussian &b)
{
    return contract2(a, b, [&](double ea, double eb) {
        return std::pow(M_PI / (ea + eb), 1.5) *
               productPrefactor(ea, eb, a.center, b.center);
    });
}

double
kinetic(const ContractedGaussian &a, const ContractedGaussian &b)
{
    return contract2(a, b, [&](double ea, double eb) {
        const double mu = ea * eb / (ea + eb);
        const double r2 = distanceSquared(a.center, b.center);
        return mu * (3.0 - 2.0 * mu * r2) *
               std::pow(M_PI / (ea + eb), 1.5) *
               productPrefactor(ea, eb, a.center, b.center);
    });
}

double
nuclearAttraction(const ContractedGaussian &a,
                  const ContractedGaussian &b, const Vec3 &nucleus,
                  double z)
{
    return contract2(a, b, [&](double ea, double eb) {
        const Vec3 p = productCenter(ea, eb, a.center, b.center);
        const double t = (ea + eb) * distanceSquared(p, nucleus);
        return -2.0 * M_PI * z / (ea + eb) *
               productPrefactor(ea, eb, a.center, b.center) * boysF0(t);
    });
}

double
electronRepulsion(const ContractedGaussian &a,
                  const ContractedGaussian &b,
                  const ContractedGaussian &c,
                  const ContractedGaussian &d)
{
    double total = 0.0;
    for (std::size_t i = 0; i < a.exponents.size(); ++i)
    for (std::size_t j = 0; j < b.exponents.size(); ++j)
    for (std::size_t k = 0; k < c.exponents.size(); ++k)
    for (std::size_t l = 0; l < d.exponents.size(); ++l) {
        const double ea = a.exponents[i], eb = b.exponents[j];
        const double ec = c.exponents[k], ed = d.exponents[l];
        const double p = ea + eb, q = ec + ed;

        const Vec3 cp = productCenter(ea, eb, a.center, b.center);
        const Vec3 cq = productCenter(ec, ed, c.center, d.center);
        const double t =
            p * q / (p + q) * distanceSquared(cp, cq);

        const double prim =
            2.0 * std::pow(M_PI, 2.5) /
            (p * q * std::sqrt(p + q)) *
            productPrefactor(ea, eb, a.center, b.center) *
            productPrefactor(ec, ed, c.center, d.center) * boysF0(t);

        total += a.coefficients[i] * b.coefficients[j] *
                 c.coefficients[k] * d.coefficients[l] *
                 primNorm(ea) * primNorm(eb) * primNorm(ec) *
                 primNorm(ed) * prim;
    }
    return total;
}

} // namespace qsa::chem
