/**
 * @file
 * Bell/GHZ builders.
 */

#include "algo/bell.hh"

#include <cmath>

namespace qsa::algo
{

circuit::Circuit
buildBellProgram()
{
    circuit::Circuit circ;
    const auto q = circ.addRegister("q", 2);

    circ.prepZ(q[0], 0);
    circ.prepZ(q[1], 0);
    circ.breakpoint("classical");

    circ.h(q[0]);
    circ.breakpoint("superposition");

    circ.cnot(q[0], q[1]);
    circ.breakpoint("entangled");

    circ.measure(q, "m");
    return circ;
}

void
appendGhz(circuit::Circuit &circ, const circuit::QubitRegister &q)
{
    circ.h(q[0]);
    for (unsigned i = 1; i < q.width(); ++i)
        circ.cnot(q[i - 1], q[i]);
}

void
appendWState(circuit::Circuit &circ, const circuit::QubitRegister &q)
{
    const unsigned n = q.width();
    // Standard cascade: starting from |10...0>, each stage moves the
    // excitation one qubit down with the right amplitude split:
    // controlled-Ry leaks amplitude, CNOT re-normalises the source.
    circ.x(q[0]);
    for (unsigned i = 0; i + 1 < n; ++i) {
        const double theta =
            2.0 * std::acos(std::sqrt(1.0 / (n - i)));
        circ.controlledGate(circuit::GateKind::Ry, {q[i]}, q[i + 1],
                            theta);
        circ.cnot(q[i + 1], q[i]);
    }
}

} // namespace qsa::algo
