/**
 * @file
 * QPE implementation.
 */

#include "algo/qpe.hh"

#include "algo/qft.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::algo
{

QpeProgram
buildQpeProgram(const sim::CMatrix &u, unsigned system_qubits,
                unsigned counting_qubits, std::uint64_t initial_state)
{
    fatal_if(u.dim() != pow2(system_qubits),
             "unitary dimension does not match the system register");
    fatal_if(counting_qubits == 0, "counting register needs qubits");

    QpeProgram prog;
    auto &circ = prog.circuit;
    prog.counting = circ.addRegister("counting", counting_qubits);
    prog.system = circ.addRegister("system", system_qubits);

    circ.prepRegister(prog.counting, 0);
    circ.prepRegister(prog.system, initial_state);
    circ.breakpoint("prepared");

    for (unsigned k = 0; k < counting_qubits; ++k)
        circ.h(prog.counting[k]);
    circ.breakpoint("superposed");

    // Controlled powers by repeated squaring.
    sim::CMatrix power = u;
    for (unsigned k = 0; k < counting_qubits; ++k) {
        circ.unitary(power, prog.system.qubits(), {prog.counting[k]});
        if (k + 1 < counting_qubits)
            power = power.mul(power);
    }
    circ.breakpoint("kicked");

    iqft(circ, prog.counting, /*bit_reversal=*/true);
    circ.breakpoint("final");

    circ.measure(prog.counting, "phase");
    return prog;
}

double
qpeMeasurementToPhase(std::uint64_t measurement,
                      unsigned counting_qubits)
{
    return static_cast<double>(measurement) /
           static_cast<double>(pow2(counting_qubits));
}

} // namespace qsa::algo
