/**
 * @file
 * Teleportation program builder.
 */

#include "algo/teleport.hh"

#include "common/logging.hh"

namespace qsa::algo
{

TeleportProgram
buildTeleportProgram(double theta, double phi)
{
    TeleportProgram prog;
    auto &circ = prog.circuit;
    prog.message = circ.addRegister("msg", 1);
    prog.senderHalf = circ.addRegister("alice", 1);
    prog.receiver = circ.addRegister("bob", 1);

    const unsigned m = prog.message[0];
    const unsigned a = prog.senderHalf[0];
    const unsigned b = prog.receiver[0];

    // Payload preparation on the message qubit.
    circ.prepZ(m, 0);
    circ.ry(m, theta);
    circ.rz(m, phi);

    // Shared Bell pair between sender and receiver — the entangled
    // *initial condition* the protocol requires (Section 4.1).
    circ.prepZ(a, 0);
    circ.prepZ(b, 0);
    circ.h(a);
    circ.cnot(a, b);
    circ.breakpoint("pair_ready");

    // Sender's Bell-basis rotation.
    circ.cnot(m, a);
    circ.h(m);
    circ.breakpoint("bell_measured");

    // Deferred-measurement corrections: X^a then Z^m on the receiver.
    circ.cnot(a, b);
    circ.cz(m, b);
    circ.breakpoint("corrected");

    // Verification: undo the payload preparation on the receiver; a
    // successful teleport returns it to |0>.
    circ.rz(b, -phi);
    circ.ry(b, -theta);
    circ.breakpoint("verified");

    circ.measure(prog.receiver, "received");
    return prog;
}

SuperdenseProgram
buildSuperdenseProgram(unsigned message)
{
    fatal_if(message > 3, "superdense coding carries two bits");

    SuperdenseProgram prog;
    prog.message = message;
    auto &circ = prog.circuit;
    prog.sender = circ.addRegister("alice", 1);
    prog.receiver = circ.addRegister("bob", 1);

    const unsigned a = prog.sender[0];
    const unsigned b = prog.receiver[0];

    // Pre-shared Bell pair (the entangled precondition).
    circ.prepZ(a, 0);
    circ.prepZ(b, 0);
    circ.h(a);
    circ.cnot(a, b);
    circ.breakpoint("pair_ready");

    // Alice encodes two bits with a local Pauli on her half.
    if (message & 1)
        circ.x(a);
    if (message & 2)
        circ.z(a);
    circ.breakpoint("encoded");

    // Bob decodes with a Bell-basis measurement.
    circ.cnot(a, b);
    circ.h(a);
    circ.breakpoint("decoded");

    // Bit order: the X-encoded bit lands on Bob's qubit, the Z bit
    // on Alice's; measure both under one label, LSB = X bit.
    circ.measureQubits({b, a}, "received");
    return prog;
}

} // namespace qsa::algo
