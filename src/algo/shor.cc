/**
 * @file
 * Shor program builder and driver.
 */

#include "algo/shor.hh"

#include "algo/arith.hh"
#include "algo/numtheory.hh"
#include "algo/qft.hh"
#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::algo
{

ShorProgram
buildShorProgram(const ShorConfig &config)
{
    fatal_if(config.n < 3, "nothing to factor");
    fatal_if(gcd(config.a, config.n) != 1,
             "trial base shares a factor with N; no quantum part "
             "needed");
    fatal_if(config.upperBits == 0, "upper register needs qubits");

    const unsigned n_bits = bitWidth(config.n);

    ShorProgram prog;
    prog.config = config;
    prog.upper = prog.circuit.addRegister("upper", config.upperBits);
    prog.lower = prog.circuit.addRegister("lower", n_bits);
    prog.helper = prog.circuit.addRegister("helper", n_bits + 1);
    prog.flag = prog.circuit.addRegister("flag", 1);

    auto &circ = prog.circuit;

    // --- Inputs (Section 4.1): classical preconditions. ---
    circ.prepRegister(prog.upper, 0);
    circ.prepRegister(prog.lower, config.lowerInit);
    circ.prepRegister(prog.helper, 0);
    circ.prepRegister(prog.flag, 0);
    circ.breakpoint("init");

    // Uniform superposition on the control register.
    for (unsigned k = 0; k < prog.upper.width(); ++k)
        circ.h(prog.upper[k]);
    circ.breakpoint("superposed");

    // --- Controlled modular exponentiation (Sections 4.3-4.5). ---
    auto pairs = config.pairs;
    if (pairs.empty())
        pairs = shorClassicalInputs(config.a, config.n,
                                    config.upperBits);
    cModExp(circ, prog.upper, prog.lower, prog.helper, pairs, config.n,
            prog.flag[0]);
    circ.breakpoint("entangled");

    // --- Phase read-out. ---
    iqft(circ, prog.upper, /*bit_reversal=*/true);
    circ.breakpoint("final");

    circ.measure(prog.upper, "output");
    circ.measure(prog.lower, "lower");
    circ.measure(prog.helper, "helper");
    circ.measure(prog.flag, "flag");
    return prog;
}

SemiclassicalShorProgram
buildSemiclassicalShorProgram(const ShorConfig &config)
{
    fatal_if(config.n < 3, "nothing to factor");
    fatal_if(gcd(config.a, config.n) != 1,
             "trial base shares a factor with N");
    fatal_if(config.upperBits == 0, "need at least one phase bit");

    const unsigned n_bits = bitWidth(config.n);
    const unsigned t = config.upperBits;

    SemiclassicalShorProgram prog;
    prog.config = config;
    prog.upperBits = t;
    prog.control = prog.circuit.addRegister("control", 1);
    prog.lower = prog.circuit.addRegister("lower", n_bits);
    prog.helper = prog.circuit.addRegister("helper", n_bits + 1);
    prog.flag = prog.circuit.addRegister("flag", 1);

    auto &circ = prog.circuit;
    const unsigned c = prog.control[0];

    circ.prepRegister(prog.control, 0);
    circ.prepRegister(prog.lower, config.lowerInit);
    circ.prepRegister(prog.helper, 0);
    circ.prepRegister(prog.flag, 0);
    circ.breakpoint("init");

    auto pairs = config.pairs;
    if (pairs.empty())
        pairs = shorClassicalInputs(config.a, config.n, t);

    // Semiclassical phase estimation: round l measures fractional
    // phase bit phi_l (l = t first, least significant), recycling the
    // single control qubit; feedback rotations are conditioned on the
    // recorded bits (same recurrence as the IPEA driver).
    for (unsigned l = t; l >= 1; --l) {
        if (l < t)
            circ.prepZ(c, 0); // recycle the control qubit
        circ.h(c);

        cUa(circ, c, prog.lower, prog.helper, pairs[l - 1].first,
            pairs[l - 1].second, config.n, prog.flag[0]);

        for (unsigned j = l + 1; j <= t; ++j) {
            circ.phase(c, -2.0 * M_PI /
                              static_cast<double>(pow2(j - l + 1)));
            circ.conditionLast("m_" + std::to_string(j), 1);
        }
        circ.h(c);
        circ.measureQubits({c}, "m_" + std::to_string(l));
    }

    circ.breakpoint("final");
    circ.measure(prog.lower, "lower");
    circ.measure(prog.helper, "helper");
    circ.measure(prog.flag, "flag");
    return prog;
}

std::uint64_t
semiclassicalShorOutput(
    const std::map<std::string, std::uint64_t> &measurements,
    unsigned upper_bits)
{
    std::uint64_t output = 0;
    for (unsigned l = 1; l <= upper_bits; ++l) {
        const auto it = measurements.find("m_" + std::to_string(l));
        fatal_if(it == measurements.end(), "missing phase bit m_", l);
        output |= (it->second & 1) << (upper_bits - l);
    }
    return output;
}

ShorRunResult
runShorFactoring(const ShorConfig &config, Rng &rng,
                 unsigned max_attempts)
{
    ShorRunResult result;
    const ShorProgram prog = buildShorProgram(config);

    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        ++result.attempts;
        auto record = circuit::runCircuit(prog.circuit, rng);
        const std::uint64_t m = record.measurements.at("output");
        result.measurements.push_back(m);

        const auto factors = shorPostprocess(m, config.upperBits,
                                             config.a, config.n);
        if (factors.has_value()) {
            result.factors = factors;
            return result;
        }
    }
    return result;
}

} // namespace qsa::algo
