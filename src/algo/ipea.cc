/**
 * @file
 * Iterative phase estimation implementation.
 */

#include "algo/ipea.hh"

#include <cmath>

#include "circuit/executor.hh"
#include "common/logging.hh"
#include "sim/gates.hh"
#include "sim/statevector.hh"

namespace qsa::algo
{

IpeaResult
runIpea(unsigned system_qubits, std::uint64_t initial_state,
        const ControlledPowerFn &controlled_power,
        const IpeaConfig &config)
{
    fatal_if(config.bits == 0, "IPEA needs at least one phase bit");
    fatal_if(system_qubits == 0, "IPEA needs a system register");

    const unsigned anc = system_qubits;
    sim::StateVector state(system_qubits + 1);
    state.setBasisState(initial_state);

    Rng rng(config.seed);
    const unsigned m = config.bits;

    // bits_lsb_first[j] is phase bit b_{m-j} (least significant
    // measured first).
    std::vector<unsigned> bits_lsb_first;
    bits_lsb_first.reserve(m);

    for (unsigned round = 0; round < m; ++round) {
        const unsigned l = m - round; // measuring bit b_l
        // Feedback angle: -2 pi 0.0 b_{l+1} ... b_m.
        double tail = 0.0;
        for (unsigned j = 0; j < bits_lsb_first.size(); ++j) {
            // bit b_{m-j} contributes at position (m - j) - l + 1.
            tail += bits_lsb_first[j] *
                    std::pow(2.0, -(double)((m - j) - l + 1));
        }
        const double feedback = -2.0 * M_PI * tail;

        circuit::Circuit circ(system_qubits + 1);
        circ.h(anc);
        controlled_power(circ, anc, l - 1);
        if (feedback != 0.0)
            circ.phase(anc, feedback);
        circ.h(anc);

        std::map<std::string, std::uint64_t> meas;
        circuit::runCircuitOn(circ, state, meas, rng);

        const unsigned bit = state.measureQubit(anc, rng);
        bits_lsb_first.push_back(bit);
        if (bit)
            state.applyGate(sim::gates::x(), anc); // reset ancilla
    }

    IpeaResult result;
    result.bits.assign(bits_lsb_first.rbegin(), bits_lsb_first.rend());
    for (unsigned j = 0; j < m; ++j)
        result.phase += result.bits[j] * std::pow(2.0, -(double)(j + 1));
    return result;
}

double
phaseToEnergy(double phase, double time, double e_ref)
{
    fatal_if(time <= 0.0, "evolution time must be positive");
    return e_ref - 2.0 * M_PI * phase / time;
}

} // namespace qsa::algo
