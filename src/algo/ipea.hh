/**
 * @file
 * Iterative phase estimation (IPEA).
 *
 * The chemistry case study (Section 5.2) reads out molecular energies
 * with iterative phase estimation: one ancilla qubit measures one
 * phase bit per round, from least to most significant, with a
 * feedback rotation conditioned on the bits already known. The system
 * register stays coherent across rounds; the ancilla is measured and
 * reset.
 */

#ifndef QSA_ALGO_IPEA_HH
#define QSA_ALGO_IPEA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "circuit/circuit.hh"
#include "common/rng.hh"

namespace qsa::algo
{

/**
 * Callback appending controlled-U^(2^k) to a circuit.
 *
 * @param circ circuit to append to (system register on qubits
 *        [0, system_qubits), ancilla at index system_qubits)
 * @param ctrl ancilla/control qubit index
 * @param k power exponent: apply U 2^k times
 */
using ControlledPowerFn =
    std::function<void(circuit::Circuit &circ, unsigned ctrl,
                       unsigned k)>;

/** IPEA configuration. */
struct IpeaConfig
{
    /** Number of phase bits m. */
    unsigned bits = 10;

    /** Random seed for the per-round ancilla measurements. */
    std::uint64_t seed = 0x17ea;
};

/** IPEA result. */
struct IpeaResult
{
    /** Phase estimate in [0, 1): sum of bits[j] 2^-(j+1). */
    double phase = 0.0;

    /** Measured bits, most significant (b1) first. */
    std::vector<unsigned> bits;
};

/**
 * Run iterative phase estimation.
 *
 * @param system_qubits width of the system register
 * @param initial_state computational basis state to start from (an
 *        eigenstate or a superposition that collapses during round 1)
 * @param controlled_power appends controlled-U^(2^k)
 * @param config bits and seed
 */
IpeaResult runIpea(unsigned system_qubits, std::uint64_t initial_state,
                   const ControlledPowerFn &controlled_power,
                   const IpeaConfig &config = IpeaConfig());

/**
 * Map an IPEA phase back to an energy, for U = exp(-i (H - e_ref) t)
 * with e_ref above the spectrum: E = e_ref - 2 pi phase / t.
 */
double phaseToEnergy(double phase, double time, double e_ref);

} // namespace qsa::algo

#endif // QSA_ALGO_IPEA_HH
