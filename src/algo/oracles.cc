/**
 * @file
 * Deutsch-Jozsa / Bernstein-Vazirani builders.
 */

#include "algo/oracles.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::algo
{

namespace
{

/**
 * Shared skeleton: prepare |0..0>|1>, Hadamard everything, apply the
 * phase oracle, Hadamard the query register, measure.
 */
QueryProgram
buildQuerySkeleton(unsigned n,
                   const std::function<void(circuit::Circuit &,
                                            const circuit::QubitRegister &,
                                            unsigned)> &oracle)
{
    fatal_if(n == 0, "query register needs qubits");

    QueryProgram prog;
    auto &circ = prog.circuit;
    prog.q = circ.addRegister("q", n);
    prog.ancilla = circ.addRegister("anc", 1);

    circ.prepRegister(prog.q, 0);
    circ.prepZ(prog.ancilla[0], 1); // |1> -> |-> after H
    circ.breakpoint("init");

    for (unsigned i = 0; i < n; ++i)
        circ.h(prog.q[i]);
    circ.h(prog.ancilla[0]);
    circ.breakpoint("superposed");

    oracle(circ, prog.q, prog.ancilla[0]);
    circ.breakpoint("queried");

    for (unsigned i = 0; i < n; ++i)
        circ.h(prog.q[i]);
    circ.breakpoint("final");

    circ.measure(prog.q, "result");
    return prog;
}

} // anonymous namespace

QueryProgram
buildBernsteinVazirani(unsigned n, std::uint64_t secret)
{
    fatal_if(secret >= pow2(n), "secret wider than the register");

    QueryProgram prog = buildQuerySkeleton(
        n,
        [secret](circuit::Circuit &circ,
                 const circuit::QubitRegister &q, unsigned anc) {
            // f(x) = s.x implemented as CNOTs into the |-> ancilla.
            for (unsigned i = 0; i < q.width(); ++i) {
                if (getBit(secret, i))
                    circ.cnot(q[i], anc);
            }
        });
    prog.expectedOutput = secret;
    return prog;
}

QueryProgram
buildDeutschJozsaConstant(unsigned n, unsigned bit)
{
    QueryProgram prog = buildQuerySkeleton(
        n,
        [bit](circuit::Circuit &circ, const circuit::QubitRegister &,
              unsigned anc) {
            if (bit & 1)
                circ.x(anc); // f(x) = 1: global flip of the ancilla
        });
    prog.expectedOutput = 0;
    return prog;
}

QueryProgram
buildDeutschJozsaBalanced(unsigned n, std::uint64_t s)
{
    fatal_if(s == 0, "balanced oracle needs a non-zero mask");
    QueryProgram prog = buildBernsteinVazirani(n, s);
    prog.expectedOutput = s; // anything but 0 flags "balanced"
    return prog;
}

} // namespace qsa::algo
