/**
 * @file
 * Classical number theory used by Shor's algorithm: modular
 * arithmetic, the extended Euclidean algorithm, continued fractions
 * for phase read-out, and brute-force order finding for test oracles.
 *
 * Bug type 6 in the paper (Section 4.6) is a mistake in exactly these
 * classical inputs — supplying 12 instead of 13 as 7^-1 mod 15 — so
 * this module is part of the reproduction surface, not just glue.
 */

#ifndef QSA_ALGO_NUMTHEORY_HH
#define QSA_ALGO_NUMTHEORY_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace qsa::algo
{

/** Greatest common divisor. */
std::uint64_t gcd(std::uint64_t a, std::uint64_t b);

/** (a * b) mod m without overflow for m < 2^32. */
std::uint64_t mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/** a^e mod m. */
std::uint64_t powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m);

/** Modular inverse of a mod m, if gcd(a, m) == 1. */
std::optional<std::uint64_t> modInverse(std::uint64_t a,
                                        std::uint64_t m);

/** Multiplicative order of a mod m (brute force; test oracle). */
std::uint64_t multiplicativeOrder(std::uint64_t a, std::uint64_t m);

/**
 * Continued-fraction convergents p/q of the rational `numer/denom`,
 * in order of increasing accuracy.
 */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
continuedFractionConvergents(std::uint64_t numer, std::uint64_t denom);

/**
 * Table 2 of the paper: the per-iteration classical inputs to Shor's
 * algorithm. Entry k is (a^(2^k) mod N, inverse of that mod N).
 */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
shorClassicalInputs(std::uint64_t a, std::uint64_t n,
                    unsigned iterations);

/**
 * Classical post-processing of one Shor measurement: interpret
 * `measurement / 2^t` as a phase, recover a candidate order r via
 * continued fractions, and derive non-trivial factors when r is even
 * and a^(r/2) != -1 mod N.
 *
 * @return the two factors, or nullopt when this measurement is one of
 *         the unlucky ones (e.g. 0) the algorithm retries on
 */
std::optional<std::pair<std::uint64_t, std::uint64_t>>
shorPostprocess(std::uint64_t measurement, unsigned t, std::uint64_t a,
                std::uint64_t n);

} // namespace qsa::algo

#endif // QSA_ALGO_NUMTHEORY_HH
