/**
 * @file
 * Fourier-space arithmetic implementation.
 */

#include "algo/arith.hh"

#include <cmath>

#include "algo/qft.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::algo
{

void
phiAdd(circuit::Circuit &circ, const circuit::QubitRegister &b,
       std::uint64_t a, const std::vector<unsigned> &controls, int sign)
{
    fatal_if(sign != 1 && sign != -1, "phiAdd sign must be +1 or -1");

    const unsigned width = b.width();
    // Listing 2's double iteration, kept verbatim: bits of `a` at or
    // below the target index contribute pi / 2^(distance).
    for (int b_indx = width - 1; b_indx >= 0; --b_indx) {
        for (int a_indx = b_indx; a_indx >= 0; --a_indx) {
            if ((a >> a_indx) & 1) {
                const double angle =
                    sign * M_PI / std::pow(2.0, b_indx - a_indx);
                circ.controlledGate(circuit::GateKind::Phase, controls,
                                    b[b_indx], angle);
            }
        }
    }
}

void
phiAddModN(circuit::Circuit &circ, const circuit::QubitRegister &b,
           std::uint64_t a, std::uint64_t n_mod, unsigned zero_anc,
           const std::vector<unsigned> &controls)
{
    const unsigned width = b.width();
    fatal_if(width < 2, "modular adder needs an overflow qubit");
    fatal_if(n_mod >= pow2(width - 1), "modulus too wide for register");
    fatal_if(a >= n_mod, "addend must be reduced mod N");

    const unsigned msb = b[width - 1];

    // 1. Conditionally add a, then unconditionally subtract N; the
    //    overflow MSB now flags b + a < N.
    phiAdd(circ, b, a, controls, +1);
    phiAdd(circ, b, n_mod, {}, -1);

    // 2. Copy the sign bit onto the ancilla (requires leaving Fourier
    //    space around the CNOT).
    iqft(circ, b);
    circ.cnot(msb, zero_anc);
    qft(circ, b);

    // 3. Add N back only when the subtraction underflowed.
    phiAdd(circ, b, n_mod, {zero_anc}, +1);

    // 4. Restore the ancilla to |0>: subtract a again, compare, and
    //    CNOT through the *complemented* sign bit.
    phiAdd(circ, b, a, controls, -1);
    iqft(circ, b);
    circ.x(msb);
    circ.cnot(msb, zero_anc);
    circ.x(msb);
    qft(circ, b);
    phiAdd(circ, b, a, controls, +1);
}

void
cModMul(circuit::Circuit &circ, unsigned ctrl,
        const circuit::QubitRegister &x,
        const circuit::QubitRegister &b, std::uint64_t a,
        std::uint64_t n_mod, unsigned zero_anc)
{
    fatal_if(b.width() != x.width() + 1,
             "helper register must have one more qubit than x");

    qft(circ, b);
    for (unsigned i = 0; i < x.width(); ++i) {
        const std::uint64_t addend = (a << i) % n_mod;
        std::vector<unsigned> controls{ctrl, x[i]};
        phiAddModN(circ, b, addend, n_mod, zero_anc, controls);
    }
    iqft(circ, b);
}

void
cModMulInverse(circuit::Circuit &circ, unsigned ctrl,
               const circuit::QubitRegister &x,
               const circuit::QubitRegister &b, std::uint64_t a,
               std::uint64_t n_mod, unsigned zero_anc)
{
    // Mirroring pattern (Section 4.5): build the forward multiplier on
    // a scratch circuit and append its adjoint.
    circuit::Circuit forward(circ.numQubits());
    cModMul(forward, ctrl, x, b, a, n_mod, zero_anc);
    circ.appendCircuit(forward.inverse());
}

void
cUa(circuit::Circuit &circ, unsigned ctrl,
    const circuit::QubitRegister &x, const circuit::QubitRegister &b,
    std::uint64_t a, std::uint64_t a_inv, std::uint64_t n_mod,
    unsigned zero_anc)
{
    // b (|0>) <- a * x mod N, controlled.
    cModMul(circ, ctrl, x, b, a, n_mod, zero_anc);

    // Controlled swap of x with the low n bits of b.
    for (unsigned i = 0; i < x.width(); ++i)
        circ.cswap(ctrl, x[i], b[i]);

    // Clear b: with the true inverse this computes
    // b <- b - a^-1 * (a x) = 0; with a wrong "inverse" the helper
    // register stays entangled — bug type 6 in the paper.
    cModMulInverse(circ, ctrl, x, b, a_inv, n_mod, zero_anc);
}

void
cModExp(circuit::Circuit &circ, const circuit::QubitRegister &ctrl_reg,
        const circuit::QubitRegister &x, const circuit::QubitRegister &b,
        const std::vector<std::pair<std::uint64_t,
                                    std::uint64_t>> &pairs,
        std::uint64_t n_mod, unsigned zero_anc)
{
    fatal_if(pairs.size() < ctrl_reg.width(),
             "need one (a, a^-1) pair per control qubit");
    for (unsigned k = 0; k < ctrl_reg.width(); ++k) {
        cUa(circ, ctrl_reg[k], x, b, pairs[k].first, pairs[k].second,
            n_mod, zero_anc);
    }
}

} // namespace qsa::algo
