/**
 * @file
 * Grover database search (Section 5.1 of the paper).
 *
 * Two oracles are provided:
 *  - the paper's case study: find the square root of a constant in a
 *    binary Galois field GF(2^k). Squaring there is GF(2)-linear, so
 *    the reversible oracle is a CNOT network plus a comparison;
 *  - a plain marked-value oracle for tests and sweeps.
 *
 * The amplitude-amplification (diffusion) subroutine follows Table 4's
 * Scaffold column literally: Hadamards, X conjugation, a CCNOT chain
 * accumulating the AND of the search register into ancillas, a
 * controlled-Z, and the mirrored uncompute — the compute / controlled
 * / uncompute structure that guides assertion placement.
 */

#ifndef QSA_ALGO_GROVER_HH
#define QSA_ALGO_GROVER_HH

#include <cstdint>

#include "circuit/circuit.hh"
#include "circuit/register.hh"
#include "gf2/gf2.hh"

namespace qsa::algo
{

/** Configuration for the GF(2^k) square-root Grover search. */
struct GroverConfig
{
    /** Field degree k (search space 2^k). */
    unsigned degree = 4;

    /** The constant c whose square root is sought. */
    std::uint32_t target = 0b1011;

    /** Grover iterations; 0 selects the optimal count. */
    unsigned iterations = 0;

    /** Place per-iteration breakpoints (costs nothing to execute). */
    bool withBreakpoints = true;
};

/** A built Grover program plus variable handles. */
struct GroverProgram
{
    circuit::Circuit circuit;

    /** Search register (holds x). */
    circuit::QubitRegister q;

    /** Oracle work register (holds x^2 xor c, complemented). */
    circuit::QubitRegister work;

    /** CCNOT-chain ancillas (Table 4's scratch register). */
    circuit::QubitRegister chain;

    /** Number of iterations built. */
    unsigned iterations = 0;

    /** The unique answer sqrt(c) the search should return. */
    std::uint32_t expectedAnswer = 0;

    GroverConfig config;
};

/** Optimal iteration count round(pi/4 sqrt(N / marked)). */
unsigned optimalGroverIterations(std::uint64_t num_items,
                                 std::uint64_t num_marked = 1);

/**
 * Build the square-root-in-GF(2^k) Grover program with breakpoints
 *  - "init", "superposed" before the loop,
 *  - "oracle_computed" / "oracle_uncomputed" inside iteration 1
 *    (entanglement and product assertions, Section 5.1.3),
 *  - "iter_<i>" after each iteration's diffusion,
 * and a final measurement labelled "result".
 */
GroverProgram buildGroverProgram(const GroverConfig &config);

/**
 * Plain Grover search for one marked basis value on n qubits (no work
 * register; the phase oracle flips the marked value directly). Used
 * by tests and the amplitude-amplification sweep bench.
 */
GroverProgram buildMarkedValueGrover(unsigned n,
                                     std::uint64_t marked_value,
                                     unsigned iterations = 0);

/**
 * Grover search with multiple marked values (phase oracle applied per
 * value); the optimal iteration count scales as
 * sqrt(N / |marked|). expectedAnswer holds the first marked value;
 * the final distribution concentrates on the whole set.
 */
GroverProgram
buildMarkedSetGrover(unsigned n,
                     const std::vector<std::uint64_t> &marked_values,
                     unsigned iterations = 0);

/**
 * Append Table 4's diffusion (inversion about the mean) for register
 * q using chain ancillas; exposed for unit testing and reuse.
 */
void appendDiffusion(circuit::Circuit &circ,
                     const circuit::QubitRegister &q,
                     const circuit::QubitRegister &chain);

} // namespace qsa::algo

#endif // QSA_ALGO_GROVER_HH
