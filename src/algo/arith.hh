/**
 * @file
 * Quantum arithmetic in Fourier space, following Beauregard's
 * minimal-qubit construction [2] that the paper's Shor implementation
 * is based on (Listings 2-4).
 *
 * All adders operate on a register already mapped to Fourier space by
 * qsa::algo::qft (no bit reversal). Angles use the Phase-gate
 * semantics; the listings write `Rz`, but the controlled arithmetic is
 * only correct with diag(1, e^{i theta}) rotations — precisely the
 * species of sign/convention subtlety Section 4.2 of the paper warns
 * about.
 */

#ifndef QSA_ALGO_ARITH_HH
#define QSA_ALGO_ARITH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::algo
{

/**
 * Listing 2's cADD: add the classical constant `a` to Fourier-space
 * register `b`, under any number of controls.
 *
 * @param circ circuit to append to
 * @param b target register in Fourier space
 * @param a classical addend
 * @param controls control qubits (0, 1, or 2 in the listings; any
 *        number here — the recursion pattern of Figure 4)
 * @param sign +1 to add, -1 to subtract (mirrored angles)
 */
void phiAdd(circuit::Circuit &circ, const circuit::QubitRegister &b,
            std::uint64_t a, const std::vector<unsigned> &controls = {},
            int sign = +1);

/**
 * Beauregard's doubly-controlled modular adder: b <- b + a mod N in
 * Fourier space, where b has n + 1 qubits (one overflow MSB) and
 * 0 <= value(b) < N, 0 <= a < N.
 *
 * @param circ circuit to append to
 * @param b Fourier-space target (n + 1 qubits)
 * @param a classical addend, a < N
 * @param n_mod modulus N < 2^n
 * @param zero_anc ancilla qubit in |0> used for the comparison trick;
 *        returned to |0>
 * @param controls control qubits gating the addition of `a`
 */
void phiAddModN(circuit::Circuit &circ, const circuit::QubitRegister &b,
                std::uint64_t a, std::uint64_t n_mod, unsigned zero_anc,
                const std::vector<unsigned> &controls = {});

/**
 * Listing 4's cMODMUL: b <- b + a * x mod N, controlled on `ctrl`.
 * b must hold n + 1 qubits (value < N), x holds n qubits.
 */
void cModMul(circuit::Circuit &circ, unsigned ctrl,
             const circuit::QubitRegister &x,
             const circuit::QubitRegister &b, std::uint64_t a,
             std::uint64_t n_mod, unsigned zero_anc);

/** Exact mirror of cModMul (b <- b - a * x mod N, controlled). */
void cModMulInverse(circuit::Circuit &circ, unsigned ctrl,
                    const circuit::QubitRegister &x,
                    const circuit::QubitRegister &b, std::uint64_t a,
                    std::uint64_t n_mod, unsigned zero_anc);

/**
 * Controlled in-place modular multiplication U_a: x <- a * x mod N
 * when ctrl reads |1>, using helper register b (n + 1 qubits, |0> in
 * and out) via multiply, controlled swap, and inverse multiply.
 *
 * The inverse multiplier constant is an explicit parameter so the
 * paper's bug type 6 (wrong modular inverse, Table 3) can be injected;
 * pass the true a^-1 mod N for correct behaviour.
 */
void cUa(circuit::Circuit &circ, unsigned ctrl,
         const circuit::QubitRegister &x,
         const circuit::QubitRegister &b, std::uint64_t a,
         std::uint64_t a_inv, std::uint64_t n_mod, unsigned zero_anc);

/**
 * Controlled modular exponentiation: for each control qubit k of
 * `ctrl_reg`, apply U_{a_k} with (a_k, a_k^-1) = pairs[k]. With
 * pairs[k] = (a^(2^k) mod N, inverse), this computes
 * x <- x * a^value(ctrl_reg) mod N — the workhorse of Shor's
 * algorithm (Figure 2's "controlled modular exponentiation").
 */
void cModExp(circuit::Circuit &circ,
             const circuit::QubitRegister &ctrl_reg,
             const circuit::QubitRegister &x,
             const circuit::QubitRegister &b,
             const std::vector<std::pair<std::uint64_t,
                                         std::uint64_t>> &pairs,
             std::uint64_t n_mod, unsigned zero_anc);

} // namespace qsa::algo

#endif // QSA_ALGO_ARITH_HH
