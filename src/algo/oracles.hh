/**
 * @file
 * Oracle-based query algorithms: Deutsch-Jozsa and Bernstein-Vazirani.
 *
 * Both are single-query algorithms whose outputs are *classical*
 * values, making them ideal substrates for the paper's classical and
 * superposition assertions: the query register must be in uniform
 * superposition before the oracle (precondition) and collapse to a
 * deterministic answer after interference (postcondition).
 */

#ifndef QSA_ALGO_ORACLES_HH
#define QSA_ALGO_ORACLES_HH

#include <cstdint>
#include <functional>

#include "circuit/circuit.hh"

namespace qsa::algo
{

/** Handles for a built query-algorithm program. */
struct QueryProgram
{
    circuit::Circuit circuit;

    /** Query register. */
    circuit::QubitRegister q;

    /** Phase ancilla (|-> during the query). */
    circuit::QubitRegister ancilla;

    /** The classical value the final measurement should produce. */
    std::uint64_t expectedOutput = 0;
};

/**
 * Bernstein-Vazirani: recover the secret string s of the inner-
 * product oracle f(x) = s.x (mod 2) with a single query. Breakpoints
 * "init", "superposed", "queried", "final"; measurement "result"
 * (which reads exactly s — a classical assertion target).
 */
QueryProgram buildBernsteinVazirani(unsigned n, std::uint64_t secret);

/**
 * Deutsch-Jozsa for two function families:
 *  - constant f(x) = bit (0 or 1): output register reads 0;
 *  - balanced f(x) = s.x with s != 0: output reads s (never 0).
 * The classical assertion "result == 0" therefore *passes* for
 * constant oracles and *fails* (p = 0) for balanced ones — a
 * one-assertion classifier.
 */
QueryProgram buildDeutschJozsaConstant(unsigned n, unsigned bit);

/** Balanced Deutsch-Jozsa instance with mask `s` (non-zero). */
QueryProgram buildDeutschJozsaBalanced(unsigned n, std::uint64_t s);

} // namespace qsa::algo

#endif // QSA_ALGO_ORACLES_HH
