/**
 * @file
 * Textbook quantum phase estimation (QPE) with a full counting
 * register — the primitive behind Shor's algorithm's structure
 * (Figure 2) and an alternative to the single-ancilla IPEA driver for
 * the chemistry case study.
 */

#ifndef QSA_ALGO_QPE_HH
#define QSA_ALGO_QPE_HH

#include <cstdint>
#include <functional>

#include "circuit/circuit.hh"
#include "sim/matrix.hh"

namespace qsa::algo
{

/** Handles for a built QPE program. */
struct QpeProgram
{
    circuit::Circuit circuit;

    /** Counting (phase read-out) register, t qubits. */
    circuit::QubitRegister counting;

    /** System register. */
    circuit::QubitRegister system;
};

/**
 * Build a QPE program for a dense unitary.
 *
 * Structure: prepare the system basis state, Hadamard the counting
 * register, apply controlled-U^(2^k) from counting qubit k, inverse
 * QFT, measure (label "phase"). Breakpoints: "prepared",
 * "superposed", "kicked", "final".
 *
 * @param u the unitary (dimension 2^system_qubits)
 * @param system_qubits system register width
 * @param counting_qubits read-out precision t
 * @param initial_state computational basis state for the system
 */
QpeProgram buildQpeProgram(const sim::CMatrix &u, unsigned system_qubits,
                           unsigned counting_qubits,
                           std::uint64_t initial_state);

/** Convert a QPE measurement to a phase in [0, 1). */
double qpeMeasurementToPhase(std::uint64_t measurement,
                             unsigned counting_qubits);

} // namespace qsa::algo

#endif // QSA_ALGO_QPE_HH
