/**
 * @file
 * QFT implementation.
 */

#include "algo/qft.hh"

#include <cmath>

#include "common/logging.hh"

namespace qsa::algo
{

void
approximateQft(circuit::Circuit &circ, const circuit::QubitRegister &r,
               unsigned max_order, bool bit_reversal)
{
    const unsigned n = r.width();
    for (unsigned j = n; j-- > 0;) {
        circ.h(r[j]);
        for (unsigned m = j; m-- > 0;) {
            const unsigned order = j - m;
            if (order > max_order)
                continue;
            circ.cphase(r[m], r[j], M_PI / std::pow(2.0, order));
        }
    }
    if (bit_reversal) {
        for (unsigned i = 0; i < n / 2; ++i)
            circ.swap(r[i], r[n - 1 - i]);
    }
}

void
qft(circuit::Circuit &circ, const circuit::QubitRegister &r,
    bool bit_reversal)
{
    approximateQft(circ, r, r.width(), bit_reversal);
}

void
iqft(circuit::Circuit &circ, const circuit::QubitRegister &r,
     bool bit_reversal)
{
    // Mirroring pattern: build the forward transform on a scratch
    // circuit of the same width and append its adjoint.
    circuit::Circuit forward(circ.numQubits());
    qft(forward, r, bit_reversal);
    circ.appendCircuit(forward.inverse());
}

} // namespace qsa::algo
