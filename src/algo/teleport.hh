/**
 * @file
 * Quantum teleportation — the "quantum communications protocols often
 * need entangled states as initial conditions" use case of
 * Section 4.1: the entanglement assertion serves as a *precondition*
 * check on the shared Bell pair before the protocol consumes it.
 *
 * The protocol is built in its coherent (deferred-measurement) form:
 * the Pauli corrections are applied as controlled gates from the
 * sender's qubits instead of classically-controlled gates after a
 * measurement. By the deferred measurement principle the final state
 * of the receiver qubit is identical.
 */

#ifndef QSA_ALGO_TELEPORT_HH
#define QSA_ALGO_TELEPORT_HH

#include "circuit/circuit.hh"

namespace qsa::algo
{

/** Handles for the teleportation program. */
struct TeleportProgram
{
    circuit::Circuit circuit;

    /** Message qubit (sender's payload). */
    circuit::QubitRegister message;

    /** Sender's half of the Bell pair. */
    circuit::QubitRegister senderHalf;

    /** Receiver's qubit. */
    circuit::QubitRegister receiver;
};

/**
 * Build the teleportation program.
 *
 * The payload is prepared as Ry(theta) Rz(phi) |0>. Breakpoints:
 *  - "pair_ready"    after Bell-pair creation (the entangled-state
 *    *precondition* — assert_entangled(senderHalf, receiver)),
 *  - "bell_measured" after the sender's Bell-basis rotation,
 *  - "corrected"     after the controlled corrections,
 *  - "verified"      after appending the inverse payload preparation
 *    on the receiver qubit, which returns it to |0> exactly when
 *    teleportation worked (assert_classical(receiver, 0)).
 *
 * @param theta payload Ry angle
 * @param phi payload Rz angle
 */
TeleportProgram buildTeleportProgram(double theta, double phi);

/** Handles for the superdense-coding program. */
struct SuperdenseProgram
{
    circuit::Circuit circuit;

    /** Sender's half of the Bell pair. */
    circuit::QubitRegister sender;

    /** Receiver's half. */
    circuit::QubitRegister receiver;

    /** The two classical bits being transmitted. */
    unsigned message = 0;
};

/**
 * Superdense coding: two classical bits ride on one qubit of a
 * pre-shared Bell pair. Breakpoints "pair_ready" (entangled
 * precondition) and "decoded"; measurement "received" must equal the
 * message — a classical postcondition assertion.
 *
 * @param message two-bit value to transmit (0..3)
 */
SuperdenseProgram buildSuperdenseProgram(unsigned message);

} // namespace qsa::algo

#endif // QSA_ALGO_TELEPORT_HH
