/**
 * @file
 * Bell/GHZ state preparation (Figure 1 of the paper).
 *
 * The Bell program is the paper's introductory example: a classical
 * two-qubit state (A) is put in superposition (B), entangled by a
 * CNOT (C/D), and measured (E), producing maximally correlated
 * outcomes (F) that the entanglement assertion detects.
 */

#ifndef QSA_ALGO_BELL_HH
#define QSA_ALGO_BELL_HH

#include "circuit/circuit.hh"

namespace qsa::algo
{

/**
 * Build the Figure 1 program on a fresh circuit:
 * register "q" of two qubits with breakpoints
 *  - "classical"    after preparation (state A),
 *  - "superposition" after the Hadamard (state B),
 *  - "entangled"    after the CNOT (state D/Q),
 * and a final measurement labelled "m".
 */
circuit::Circuit buildBellProgram();

/**
 * Append a GHZ-state preparation over `width` qubits of register q to
 * an existing circuit (generalisation used by property tests).
 */
void appendGhz(circuit::Circuit &circ, const circuit::QubitRegister &q);

/**
 * Append a W-state preparation: |W_n> = (|10..0> + |010..0> + ... +
 * |0..01>) / sqrt(n). The outcome distribution is uniform over the
 * one-hot values — the natural target for the library's
 * assert_uniform_subset extension, and (unlike GHZ) every qubit stays
 * entangled after any other is measured.
 */
void appendWState(circuit::Circuit &circ,
                  const circuit::QubitRegister &q);

} // namespace qsa::algo

#endif // QSA_ALGO_BELL_HH
