/**
 * @file
 * Quantum Fourier transform (Listing 1's QFT/iQFT subroutines).
 *
 * Convention: for a little-endian register |b>, the *Fourier-basis*
 * QFT (no terminal swaps) leaves qubit j in
 *   (|0> + exp(2 pi i b / 2^{j+1}) |1>) / sqrt(2),
 * which is exactly the encoding the Draper/Beauregard adders of
 * Listings 2-4 operate on. Passing `bit_reversal = true` appends the
 * swap network, yielding the textbook DFT-on-amplitudes semantics used
 * for phase estimation read-out.
 */

#ifndef QSA_ALGO_QFT_HH
#define QSA_ALGO_QFT_HH

#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::algo
{

/** Append the QFT on register `r`. */
void qft(circuit::Circuit &circ, const circuit::QubitRegister &r,
         bool bit_reversal = false);

/** Append the inverse QFT on register `r` (exact mirror of qft). */
void iqft(circuit::Circuit &circ, const circuit::QubitRegister &r,
          bool bit_reversal = false);

/**
 * Approximate QFT: controlled phases with denominator beyond
 * 2^max_order are dropped (a standard optimisation; exercised by the
 * ablation benches to show assertion robustness to approximation).
 */
void approximateQft(circuit::Circuit &circ,
                    const circuit::QubitRegister &r, unsigned max_order,
                    bool bit_reversal = false);

} // namespace qsa::algo

#endif // QSA_ALGO_QFT_HH
