/**
 * @file
 * Shor's factoring algorithm (Section 4 of the paper, Figure 2).
 *
 * The circuit follows the structure the paper debugs: an upper control
 * register driving phase estimation, a lower target register holding
 * the modular-exponentiation value, a Fourier-space helper register,
 * and a comparison ancilla (Beauregard's construction [2]). Breakpoints
 * are placed at the roadmap's assertion sites.
 */

#ifndef QSA_ALGO_SHOR_HH
#define QSA_ALGO_SHOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/register.hh"
#include "common/rng.hh"

namespace qsa::algo
{

/** Configuration for the Shor circuit builder. */
struct ShorConfig
{
    /** Number to factor. */
    std::uint64_t n = 15;

    /** Trial base (coprime to n). */
    std::uint64_t a = 7;

    /** Upper (phase estimation) register width t. */
    unsigned upperBits = 3;

    /**
     * Initial value of the lower target register. The algorithm needs
     * 1; the paper's bug type 1 is loading something else.
     */
    std::uint64_t lowerInit = 1;

    /**
     * Per-iteration (a^(2^k) mod N, modular inverse) pairs. Leave
     * empty to compute the correct Table 2 values; override to inject
     * the paper's bug type 6 (e.g. (7, 12) instead of (7, 13)).
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
};

/** A built Shor program plus handles to its quantum variables. */
struct ShorProgram
{
    circuit::Circuit circuit;

    /** Phase-estimation control register (the algorithm output). */
    circuit::QubitRegister upper;

    /** Modular exponentiation target register. */
    circuit::QubitRegister lower;

    /** Fourier-space helper register (must end in |0>). */
    circuit::QubitRegister helper;

    /** Comparison ancilla register (one qubit, must end in |0>). */
    circuit::QubitRegister flag;

    /** Configuration used to build the program. */
    ShorConfig config;
};

/**
 * Build the Shor program with breakpoints
 *  - "init"       after register preparation (classical preconditions),
 *  - "superposed" after the Hadamard wall on the upper register,
 *  - "entangled"  after controlled modular exponentiation,
 *  - "final"      after the inverse QFT,
 * and measurements labelled "output" (upper), "lower", "helper",
 * "flag".
 */
ShorProgram buildShorProgram(const ShorConfig &config = ShorConfig());

/** Result of a full factoring run. */
struct ShorRunResult
{
    /** Factors, when a run succeeded. */
    std::optional<std::pair<std::uint64_t, std::uint64_t>> factors;

    /** Raw upper-register measurements per attempt. */
    std::vector<std::uint64_t> measurements;

    /** Number of circuit executions performed. */
    unsigned attempts = 0;
};

/**
 * Execute the quantum+classical factoring loop: run the circuit, post-
 * process the measurement, retry on the known-unlucky outcomes.
 */
ShorRunResult runShorFactoring(const ShorConfig &config, Rng &rng,
                               unsigned max_attempts = 16);

/**
 * The one-control-qubit (semiclassical) Shor program — Beauregard's
 * actual 2n+3-qubit construction [2] that the paper's implementation
 * follows "to minimize the qubit cost". The upper register is
 * replaced by a single recycled qubit: each phase bit is measured,
 * the qubit is reset, and the next round's feedback rotations are
 * classically conditioned on the recorded bits.
 */
struct SemiclassicalShorProgram
{
    circuit::Circuit circuit;

    /** The single recycled control qubit. */
    circuit::QubitRegister control;

    /** Modular exponentiation target register. */
    circuit::QubitRegister lower;

    /** Fourier-space helper register. */
    circuit::QubitRegister helper;

    /** Comparison ancilla. */
    circuit::QubitRegister flag;

    /** Number of phase bits t (one measurement label "m_<l>" each). */
    unsigned upperBits = 0;

    ShorConfig config;
};

/** Build the semiclassical program (measurement labels "m_1".."m_t"). */
SemiclassicalShorProgram
buildSemiclassicalShorProgram(const ShorConfig &config = ShorConfig());

/**
 * Assemble the phase-estimation integer from a semiclassical run's
 * measurement record (equivalent to the full-register "output").
 */
std::uint64_t semiclassicalShorOutput(
    const std::map<std::string, std::uint64_t> &measurements,
    unsigned upper_bits);

} // namespace qsa::algo

#endif // QSA_ALGO_SHOR_HH
