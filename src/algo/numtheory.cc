/**
 * @file
 * Classical number theory implementation.
 */

#include "algo/numtheory.hh"

#include "common/logging.hh"

namespace qsa::algo
{

std::uint64_t
gcd(std::uint64_t a, std::uint64_t b)
{
    while (b) {
        a %= b;
        std::swap(a, b);
    }
    return a;
}

std::uint64_t
mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    panic_if(m == 0, "modulus must be positive");
    panic_if(m > (1ull << 32), "mulMod supports moduli below 2^32");
    return (a % m) * (b % m) % m;
}

std::uint64_t
powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m)
{
    panic_if(m == 0, "modulus must be positive");
    std::uint64_t result = 1 % m;
    std::uint64_t base = a % m;
    while (e) {
        if (e & 1)
            result = mulMod(result, base, m);
        base = mulMod(base, base, m);
        e >>= 1;
    }
    return result;
}

std::optional<std::uint64_t>
modInverse(std::uint64_t a, std::uint64_t m)
{
    // Extended Euclid on (a mod m, m).
    std::int64_t old_r = static_cast<std::int64_t>(a % m);
    std::int64_t r = static_cast<std::int64_t>(m);
    std::int64_t old_s = 1, s = 0;
    while (r != 0) {
        const std::int64_t q = old_r / r;
        old_r -= q * r;
        std::swap(old_r, r);
        old_s -= q * s;
        std::swap(old_s, s);
    }
    if (old_r != 1)
        return std::nullopt; // not coprime
    std::int64_t inv = old_s % static_cast<std::int64_t>(m);
    if (inv < 0)
        inv += static_cast<std::int64_t>(m);
    return static_cast<std::uint64_t>(inv);
}

std::uint64_t
multiplicativeOrder(std::uint64_t a, std::uint64_t m)
{
    fatal_if(gcd(a, m) != 1, "order undefined: gcd(", a, ", ", m,
             ") != 1");
    std::uint64_t value = a % m;
    std::uint64_t order = 1;
    while (value != 1) {
        value = mulMod(value, a, m);
        ++order;
        panic_if(order > m, "order search exceeded the modulus");
    }
    return order;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
continuedFractionConvergents(std::uint64_t numer, std::uint64_t denom)
{
    panic_if(denom == 0, "denominator must be positive");

    std::vector<std::pair<std::uint64_t, std::uint64_t>> convergents;
    // Standard seeds: p_{-2}/q_{-2} = 0/1, p_{-1}/q_{-1} = 1/0, and
    // p_k = a_k p_{k-1} + p_{k-2}.
    std::uint64_t p_prev2 = 0, q_prev2 = 1;
    std::uint64_t p_prev1 = 1, q_prev1 = 0;

    std::uint64_t num = numer, den = denom;
    while (den != 0) {
        const std::uint64_t a = num / den;
        const std::uint64_t rem = num % den;

        const std::uint64_t p = a * p_prev1 + p_prev2;
        const std::uint64_t q = a * q_prev1 + q_prev2;
        convergents.emplace_back(p, q);

        p_prev2 = p_prev1;
        q_prev2 = q_prev1;
        p_prev1 = p;
        q_prev1 = q;
        num = den;
        den = rem;
    }
    return convergents;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
shorClassicalInputs(std::uint64_t a, std::uint64_t n,
                    unsigned iterations)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    pairs.reserve(iterations);
    for (unsigned k = 0; k < iterations; ++k) {
        const std::uint64_t ak = powMod(a, 1ull << k, n);
        const auto inv = modInverse(ak, n);
        fatal_if(!inv.has_value(), "a^(2^k) not invertible mod N");
        pairs.emplace_back(ak, *inv);
    }
    return pairs;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
shorPostprocess(std::uint64_t measurement, unsigned t, std::uint64_t a,
                std::uint64_t n)
{
    if (measurement == 0)
        return std::nullopt;

    const std::uint64_t denom = 1ull << t;
    for (const auto &[p, q] : continuedFractionConvergents(measurement,
                                                           denom)) {
        if (q == 0 || q >= n)
            continue;

        // The convergent denominator is r / gcd(k, r); small
        // multiples recover the true order (standard refinement).
        for (std::uint64_t multiple = 1; multiple <= 6; ++multiple) {
            const std::uint64_t r = q * multiple;
            if (r >= n || powMod(a, r, n) != 1)
                continue;

            if (r % 2 != 0)
                return std::nullopt; // odd order: retry
            const std::uint64_t half = powMod(a, r / 2, n);
            if (half == n - 1)
                return std::nullopt; // trivial root: retry

            const std::uint64_t f1 = gcd(half + 1, n);
            const std::uint64_t f2 = gcd(half + n - 1, n);
            if (f1 != 1 && f1 != n)
                return std::make_pair(f1, n / f1);
            if (f2 != 1 && f2 != n)
                return std::make_pair(f2, n / f2);
            return std::nullopt;
        }
    }
    return std::nullopt;
}

} // namespace qsa::algo
