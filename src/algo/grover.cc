/**
 * @file
 * Grover search implementation.
 */

#include "algo/grover.hh"

#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"

namespace qsa::algo
{

unsigned
optimalGroverIterations(std::uint64_t num_items,
                        std::uint64_t num_marked)
{
    fatal_if(num_marked == 0 || num_marked > num_items,
             "invalid marked count");
    const double angle =
        std::asin(std::sqrt((double)num_marked / (double)num_items));
    const int iters = (int)std::floor(M_PI / (4.0 * angle));
    return std::max(1, iters);
}

namespace
{

/**
 * Phase flip on |11...1> of `reg` using the Table 4 CCNOT chain:
 * accumulate the AND into the chain ancillas, controlled-Z, mirror.
 */
void
phaseFlipAllOnes(circuit::Circuit &circ,
                 const circuit::QubitRegister &reg,
                 const circuit::QubitRegister &chain)
{
    const unsigned n = reg.width();
    if (n == 1) {
        circ.z(reg[0]);
        return;
    }
    if (n == 2) {
        circ.cz(reg[0], reg[1]);
        return;
    }
    panic_if(chain.width() < n - 1, "chain register too small");

    // Compute the running AND (Table 4, row 3).
    circ.ccnot(reg[1], reg[0], chain[0]);
    for (unsigned j = 1; j + 1 < n; ++j)
        circ.ccnot(chain[j - 1], reg[j + 1], chain[j]);

    // Phase flip (row 4): the last chain bit is the AND of all of
    // reg, so conditioning on it (and any reg qubit) flips exactly
    // the all-ones component.
    circ.cz(chain[n - 2], reg[n - 1]);

    // Uncompute (row 5).
    for (unsigned j = n - 1; j-- > 1;)
        circ.ccnot(chain[j - 1], reg[j + 1], chain[j]);
    circ.ccnot(reg[1], reg[0], chain[0]);
}

/** X on every qubit where the target bit is 0 (match -> all ones). */
void
complementToOnes(circuit::Circuit &circ,
                 const circuit::QubitRegister &reg, std::uint64_t value)
{
    for (unsigned i = 0; i < reg.width(); ++i) {
        if (!getBit(value, i))
            circ.x(reg[i]);
    }
}

} // anonymous namespace

void
appendDiffusion(circuit::Circuit &circ, const circuit::QubitRegister &q,
                const circuit::QubitRegister &chain)
{
    // Table 4 rows 2 and 6 around the phase flip: reflect across the
    // uniform superposition.
    for (unsigned j = 0; j < q.width(); ++j)
        circ.h(q[j]);
    for (unsigned j = 0; j < q.width(); ++j)
        circ.x(q[j]);
    phaseFlipAllOnes(circ, q, chain);
    for (unsigned j = 0; j < q.width(); ++j)
        circ.x(q[j]);
    for (unsigned j = 0; j < q.width(); ++j)
        circ.h(q[j]);
}

GroverProgram
buildGroverProgram(const GroverConfig &config)
{
    const unsigned n = config.degree;
    const gf2::Field field(n);
    fatal_if(config.target >= field.order(),
             "target outside the field");

    GroverProgram prog;
    prog.config = config;
    prog.expectedAnswer = field.sqrt(config.target);
    prog.iterations = config.iterations == 0
                          ? optimalGroverIterations(field.order())
                          : config.iterations;

    auto &circ = prog.circuit;
    prog.q = circ.addRegister("q", n);
    prog.work = circ.addRegister("work", n);
    prog.chain = circ.addRegister("chain", n > 1 ? n - 1 : 1);

    circ.prepRegister(prog.q, 0);
    circ.prepRegister(prog.work, 0);
    circ.prepRegister(prog.chain, 0);
    if (config.withBreakpoints)
        circ.breakpoint("init");

    // Query all field elements at once.
    for (unsigned j = 0; j < n; ++j)
        circ.h(prog.q[j]);
    if (config.withBreakpoints)
        circ.breakpoint("superposed");

    // The squaring map as CNOT fan-ins: work_i = parity of q bits in
    // row i of the squaring matrix.
    const auto rows = field.squaringMatrixRows();

    for (unsigned iter = 1; iter <= prog.iterations; ++iter) {
        // --- Oracle compute: work = (x^2 == c) ? all-ones : other ---
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned j = 0; j < n; ++j) {
                if (getBit(rows[i], j))
                    circ.cnot(prog.q[j], prog.work[i]);
            }
        }
        complementToOnes(circ, prog.work, config.target);
        if (iter == 1 && config.withBreakpoints)
            circ.breakpoint("oracle_computed");

        // --- Phase flip on the matching element ---
        phaseFlipAllOnes(circ, prog.work, prog.chain);

        // --- Oracle uncompute (mirror) ---
        complementToOnes(circ, prog.work, config.target);
        for (unsigned i = n; i-- > 0;) {
            for (unsigned j = n; j-- > 0;) {
                if (getBit(rows[i], j))
                    circ.cnot(prog.q[j], prog.work[i]);
            }
        }
        if (iter == 1 && config.withBreakpoints)
            circ.breakpoint("oracle_uncomputed");

        // --- Diffusion ---
        appendDiffusion(circ, prog.q, prog.chain);
        if (config.withBreakpoints)
            circ.breakpoint("iter_" + std::to_string(iter));
    }

    circ.measure(prog.q, "result");
    return prog;
}

GroverProgram
buildMarkedValueGrover(unsigned n, std::uint64_t marked_value,
                       unsigned iterations)
{
    return buildMarkedSetGrover(n, {marked_value}, iterations);
}

GroverProgram
buildMarkedSetGrover(unsigned n,
                     const std::vector<std::uint64_t> &marked_values,
                     unsigned iterations)
{
    fatal_if(n == 0, "empty search register");
    fatal_if(marked_values.empty(), "need at least one marked value");
    for (std::uint64_t v : marked_values)
        fatal_if(v >= pow2(n), "marked value out of range");

    GroverProgram prog;
    prog.expectedAnswer =
        static_cast<std::uint32_t>(marked_values.front());
    prog.iterations =
        iterations == 0
            ? optimalGroverIterations(pow2(n), marked_values.size())
            : iterations;

    auto &circ = prog.circuit;
    prog.q = circ.addRegister("q", n);
    prog.chain = circ.addRegister("chain", n > 1 ? n - 1 : 1);

    circ.prepRegister(prog.q, 0);
    circ.prepRegister(prog.chain, 0);
    circ.breakpoint("init");
    for (unsigned j = 0; j < n; ++j)
        circ.h(prog.q[j]);
    circ.breakpoint("superposed");

    for (unsigned iter = 1; iter <= prog.iterations; ++iter) {
        // Phase oracle: flip each marked value's phase.
        for (std::uint64_t v : marked_values) {
            complementToOnes(circ, prog.q, v);
            phaseFlipAllOnes(circ, prog.q, prog.chain);
            complementToOnes(circ, prog.q, v);
        }

        appendDiffusion(circ, prog.q, prog.chain);
        circ.breakpoint("iter_" + std::to_string(iter));
    }
    circ.measure(prog.q, "result");
    return prog;
}

} // namespace qsa::algo
