#include "serve/store.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/obs.hh"

namespace qsa::serve
{

namespace
{

/** FNV-1a over the canonical key — the on-disk file name. */
std::string keyDigest(const std::string &key)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : key)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    std::ostringstream os;
    os << std::hex;
    os.width(16);
    os.fill('0');
    os << h;
    return os.str();
}

/** Distinct temp names for writers racing on one entry. */
std::atomic<std::uint64_t> tempCounter{0};

} // namespace

OracleStore::OracleStore(std::string root, std::size_t max_entries,
                         std::size_t max_bytes)
    : rootDir(std::move(root)), maxEntriesBound(max_entries),
      maxBytesBound(max_bytes)
{
    fatal_if(rootDir.empty(), "oracle store needs a root directory");
}

OracleStore::~OracleStore()
{
    uninstall();
}

std::string OracleStore::pathFor(const std::string &kind,
                                 const std::string &key) const
{
    return rootDir + "/" + kind + "/" + keyDigest(key) + ".json";
}

bool OracleStore::load(const std::string &kind,
                       const std::string &key, std::string *payload)
{
    const std::string path = pathFor(kind, key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
    {
        QSA_OBS_COUNTER("serve.oracle_cache.misses", 1);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();

    json::Value doc;
    bool usable = json::Value::parse(text.str(), &doc);
    const json::Value *inner = nullptr;
    if (usable)
    {
        try
        {
            const json::Value *version = doc.find("qsa_oracle_store");
            const json::Value *stored_kind = doc.find("kind");
            const json::Value *stored_key = doc.find("key");
            inner = doc.find("payload");
            usable = version != nullptr &&
                     version->asUint64() == kFormatVersion &&
                     stored_kind != nullptr &&
                     stored_kind->asString() == kind &&
                     stored_key != nullptr &&
                     stored_key->asString() == key &&
                     inner != nullptr;
        }
        catch (const json::TypeError &)
        {
            usable = false;
        }
    }
    if (!usable)
    {
        QSA_OBS_COUNTER("serve.oracle_cache.misses", 1);
        return false;
    }

    *payload = inner->dump();
    QSA_OBS_COUNTER("serve.oracle_cache.hits", 1);
    return true;
}

void OracleStore::store(const std::string &kind,
                        const std::string &key,
                        const std::string &payload)
{
    json::Value inner;
    if (!json::Value::parse(payload, &inner))
    {
        QSA_WARN_ONCE("oracle store: producer payload is not valid "
                      "JSON, not persisting");
        return;
    }

    json::Value doc = json::Value::object();
    doc.set("qsa_oracle_store", json::Value::integer(kFormatVersion));
    doc.set("kind", json::Value::string(kind));
    doc.set("key", json::Value::string(key));
    doc.set("payload", std::move(inner));

    const std::string path = pathFor(kind, key);
    std::error_code ec;
    std::filesystem::create_directories(rootDir + "/" + kind, ec);
    if (ec)
        return; // best-effort: next lookup re-derives

    const std::string temp =
        path + ".tmp." +
        std::to_string(
            tempCounter.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << doc.dump() << "\n";
        if (!out)
        {
            out.close();
            std::remove(temp.c_str());
            return;
        }
    }
    // rename(2) is atomic within a filesystem: readers see either the
    // old entry or the complete new one.
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        std::remove(temp.c_str());
    QSA_OBS_COUNTER("serve.oracle_cache.writes", 1);
    enforceBounds();
}

void OracleStore::enforceBounds()
{
    if (maxEntriesBound == 0 && maxBytesBound == 0)
        return;

    // One sweep at a time: concurrent writers would double-count
    // evictions (and race each other's removals) otherwise.
    std::lock_guard<std::mutex> guard(evictionMutex);

    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uintmax_t size = 0;
    };
    std::vector<Entry> entries;
    std::uintmax_t total_bytes = 0;

    std::error_code ec;
    fs::recursive_directory_iterator it(rootDir, ec);
    const fs::recursive_directory_iterator end;
    for (; !ec && it != end; it.increment(ec))
    {
        std::error_code entry_ec;
        if (!it->is_regular_file(entry_ec) || entry_ec)
            continue;
        const fs::path &path = it->path();
        // Only complete entries (.json); in-flight .tmp.* files
        // belong to a racing writer.
        if (path.extension() != ".json")
            continue;
        Entry entry;
        entry.path = path;
        entry.size = fs::file_size(path, entry_ec);
        if (entry_ec)
            continue;
        entry.mtime = fs::last_write_time(path, entry_ec);
        if (entry_ec)
            continue;
        total_bytes += entry.size;
        entries.push_back(std::move(entry));
    }

    // Oldest first; path as a deterministic tie-break for entries
    // written within one mtime granule.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });

    std::size_t count = entries.size();
    std::uint64_t evicted = 0;
    for (const Entry &entry : entries)
    {
        const bool over_entries =
            maxEntriesBound != 0 && count > maxEntriesBound;
        const bool over_bytes =
            maxBytesBound != 0 && total_bytes > maxBytesBound;
        if (!over_entries && !over_bytes)
            break;
        std::error_code remove_ec;
        if (!fs::remove(entry.path, remove_ec) || remove_ec)
            continue; // best-effort: a reader may hold it elsewhere
        --count;
        total_bytes -= entry.size;
        ++evicted;
    }
    if (evicted != 0)
        QSA_OBS_COUNTER("serve.oracle_cache.evictions", evicted);
}

void OracleStore::install()
{
    common::setArtifactStore(this);
}

void OracleStore::uninstall()
{
    if (common::artifactStore() == this)
        common::setArtifactStore(nullptr);
}

} // namespace qsa::serve
