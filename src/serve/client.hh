/**
 * @file
 * Minimal blocking client for the qsa::serve daemon: connect to the
 * Unix-domain socket, send one NDJSON request line, read one NDJSON
 * response line. Request/response pairing is positional per client
 * (one outstanding request at a time); concurrent load uses one
 * Client per thread — the server handles each connection
 * independently.
 *
 * Non-fatal by design (the same rule as the rest of the serve stack):
 * connection and I/O failures come back as false + error string, so
 * test harnesses and the qsa_client tool can report them.
 */

#ifndef QSA_SERVE_CLIENT_HH
#define QSA_SERVE_CLIENT_HH

#include <string>

namespace qsa::serve
{

/** See file comment. */
class Client
{
  public:
    Client() = default;

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon's socket. */
    bool connect(const std::string &socket_path, std::string *error);

    /**
     * Send `request` (one JSON object, no newline) and block for the
     * matching response line. False on I/O failure or server-side
     * EOF.
     */
    bool request(const std::string &request_line,
                 std::string *response, std::string *error);

    /** Close the connection (idempotent; also run by the dtor). */
    void close();

    /** True between a successful connect() and close(). */
    bool connected() const { return fd >= 0; }

  private:
    int fd = -1;

    /** Bytes received past the last returned response line. */
    std::string pending;
};

} // namespace qsa::serve

#endif // QSA_SERVE_CLIENT_HH
