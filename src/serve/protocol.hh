/**
 * @file
 * qsa::serve wire protocol: newline-delimited JSON requests and
 * responses (one JSON object per line, no embedded newlines).
 *
 * Request schema
 * --------------
 *
 *     {"id": <any JSON value, echoed back>,
 *      "command": "ping" | "lint" | "analyze" | "check" | "locate",
 *      "circuit": "<OpenQASM dialect text, see circuit/qasm.hh>",
 *      // check / analyze: the assertion plan (session/plan.hh schema)
 *      "plan": [{"at": "final", "expect": "classical", ...}, ...],
 *      // locate only:
 *      "reference": "<OpenQASM text of the trusted program>",
 *      "register": "name",          // optional: marginal localization
 *      "register_b": "name",        // optional: scope-inherited pairs
 *      "strategy": "adaptive" | "linear",
 *      "family": "segment_mirror" | "mixture_marginal" |
 *                "rotated_marginal" | "swap_test" | "auto",
 *      "oracle_mode": "exact" | "sampled" | "auto",
 *      "oracle_trials": 4096,       // sampled-oracle trajectory budget
 *      // ensemble configuration (all optional):
 *      "seed": 81985529216486895,
 *      "ensemble_size": 256,
 *      "mode": "sample_final_state" | "resimulate",
 *      "threads": 0,
 *      "g_test": false,
 *      "holm_bonferroni": false}
 *
 * Response schema
 * ---------------
 *
 *     {"id": <echoed>, "ok": true, "command": "check",
 *      "result": {...}, "obs": {...}}
 *     {"id": <echoed>, "ok": false,
 *      "error": {"message": "...",
 *                "line": 3, "column": 7, "token": "zz"}}  // QASM only
 *
 * Determinism contract: the "result" member is a pure function of the
 * request — identical bytes for identical requests, regardless of
 * thread count, request interleaving, or whether the request ran
 * in-process or through the daemon (CI byte-compares the two). All
 * timing and environment-dependent observability lives in the
 * separable top-level "obs" member, which carries the request's
 * wall-clock duration and trace-span identity and is excluded from
 * the contract.
 *
 * Robustness: parseRequest/handleRequestLine never fatal on request
 * content. Malformed JSON, bad QASM (positioned via
 * circuit::tryFromQasm), unknown commands, invalid plans
 * (session::validatePlan), and over-limit circuits all produce
 * "ok": false responses. executeRequest assumes a request that passed
 * parseRequest — by then the fatal paths in the session/locate layers
 * have been pre-validated away, with one deliberate exception:
 * program-inherent oracle derivation failures (qsa::DeriveError —
 * e.g. a wide-measurement reference past the exact oracle's branch
 * cap) depend on measurement *structure*, not any statically checkable
 * count, so they surface at execute time. handleRequestLine catches
 * them into "ok": false responses whose error object carries the
 * offending "instruction" — the daemon answers the request and keeps
 * serving.
 */

#ifndef QSA_SERVE_PROTOCOL_HH
#define QSA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "circuit/qasm.hh"
#include "common/json.hh"
#include "locate/locate.hh"
#include "session/plan.hh"

namespace qsa::serve
{

/**
 * Resource ceilings a request must respect — the daemon's protection
 * against well-formed but absurd work (a 30-qubit statevector, a
 * billion-trial ensemble). Limits violations are rejected at parse
 * time with an explanatory error response.
 */
struct Limits
{
    /** Statevector qubits (swap-test locate simulates 2n+1). */
    unsigned maxQubits = 12;

    /** Per-assertion / per-probe ensemble ceiling. */
    std::size_t maxEnsembleSize = 1 << 16;

    /** Plan entries per request. */
    std::size_t maxPlanItems = 64;

    /** Instructions per circuit. */
    std::size_t maxInstructions = 4096;
};

/** A parsed, validated request — executeRequest cannot fail on it. */
struct Request
{
    /** Echoed verbatim into the response ("id" member; Null when
     *  absent). */
    json::Value id;

    std::string command;

    circuit::Circuit circuit;

    /** locate: the trusted program. */
    std::optional<circuit::Circuit> reference;

    /** check / analyze: the assertion plan. */
    std::vector<session::PlanAssertion> plan;

    /** locate: marginal register names ("" = full-space probes). */
    std::string registerA;
    std::string registerB;

    locate::Strategy strategy = locate::Strategy::AdaptiveBinarySearch;
    locate::ProbeFamily family = locate::ProbeFamily::SegmentMirror;

    /** locate: reference-oracle mode and sampled trajectory budget
     *  (0 = the locate layer's default). */
    locate::OracleMode oracleMode = locate::OracleMode::Auto;
    std::size_t oracleTrials = 0;

    std::uint64_t seed = 0x51c0ffee;
    std::size_t ensembleSize = 256;
    assertions::EnsembleMode mode =
        assertions::EnsembleMode::SampleFinalState;
    unsigned threads = 0;
    bool gTest = false;
    bool holmBonferroni = false;
};

/**
 * Parse and validate one request object. Returns false with a
 * human-readable `*error` on any schema, QASM, plan, or limits
 * violation; `*qasm` (when non-null) additionally carries the
 * positioned parse failure when the error came from a circuit field.
 */
bool parseRequest(const json::Value &doc, Request *request,
                  std::string *error,
                  circuit::QasmError *qasm = nullptr,
                  const Limits &limits = Limits());

/**
 * Execute a validated request and return its deterministic "result"
 * payload (see the file comment's contract). Runs the full
 * session/locate machinery — this is the call the dispatcher fans
 * out over the worker pool.
 */
json::Value executeRequest(const Request &request);

/**
 * The complete per-line entry point: parse `line`, execute, and
 * render the full NDJSON response (without trailing newline). Never
 * throws, never fatals on request content — the daemon's inner loop.
 */
std::string handleRequestLine(const std::string &line,
                              const Limits &limits = Limits());

} // namespace qsa::serve

#endif // QSA_SERVE_PROTOCOL_HH
