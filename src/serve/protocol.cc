#include "serve/protocol.hh"

#include <chrono>
#include <exception>

#include "analyze/lint.hh"
#include "circuit/qasm.hh"
#include "common/errors.hh"
#include "obs/obs.hh"
#include "session/session.hh"

namespace qsa::serve
{

namespace
{

/** Wire name -> ensemble mode. */
bool
modeFromName(const std::string &name, assertions::EnsembleMode *mode)
{
    if (name == "sample_final_state") {
        *mode = assertions::EnsembleMode::SampleFinalState;
        return true;
    }
    if (name == "resimulate") {
        *mode = assertions::EnsembleMode::Resimulate;
        return true;
    }
    return false;
}

/** Wire name -> search strategy. */
bool
strategyFromName(const std::string &name, locate::Strategy *strategy)
{
    if (name == "adaptive") {
        *strategy = locate::Strategy::AdaptiveBinarySearch;
        return true;
    }
    if (name == "linear") {
        *strategy = locate::Strategy::LinearScan;
        return true;
    }
    return false;
}

/** Wire name -> probe family. */
bool
familyFromName(const std::string &name, locate::ProbeFamily *family)
{
    if (name == "segment_mirror") {
        *family = locate::ProbeFamily::SegmentMirror;
        return true;
    }
    if (name == "mixture_marginal") {
        *family = locate::ProbeFamily::MixtureMarginal;
        return true;
    }
    if (name == "rotated_marginal") {
        *family = locate::ProbeFamily::RotatedMarginal;
        return true;
    }
    if (name == "swap_test") {
        *family = locate::ProbeFamily::SwapTest;
        return true;
    }
    if (name == "auto") {
        *family = locate::ProbeFamily::Auto;
        return true;
    }
    return false;
}

/** Wire name -> reference-oracle mode. */
bool
oracleModeFromName(const std::string &name, locate::OracleMode *mode)
{
    if (name == "exact") {
        *mode = locate::OracleMode::Exact;
        return true;
    }
    if (name == "sampled") {
        *mode = locate::OracleMode::Sampled;
        return true;
    }
    if (name == "auto") {
        *mode = locate::OracleMode::Auto;
        return true;
    }
    return false;
}

/** Non-fatal register-name lookup. */
bool
hasRegister(const circuit::Circuit &circ, const std::string &name)
{
    for (const auto &reg : circ.registers())
        if (reg.name() == name)
            return true;
    return false;
}

/**
 * Parse one circuit field into `*out`, enforcing the limits. On
 * failure fills `*error` (and `*qasm` for positioned QASM failures).
 */
bool
parseCircuitField(const json::Value &doc, const char *field,
                  const Limits &limits, circuit::Circuit *out,
                  std::string *error, circuit::QasmError *qasm)
{
    const json::Value *text = doc.find(field);
    if (text == nullptr || !text->isString()) {
        *error = std::string("'") + field +
                 "' (an OpenQASM string) is required";
        return false;
    }
    circuit::QasmError parse_error;
    auto circ = circuit::tryFromQasm(text->asString(), &parse_error);
    if (!circ) {
        *error = std::string("'") + field + "': " +
                 parse_error.render();
        if (qasm != nullptr)
            *qasm = parse_error;
        return false;
    }
    if (circ->numQubits() == 0 || circ->size() == 0) {
        *error = std::string("'") + field +
                 "' declares no qubits or no instructions";
        return false;
    }
    if (circ->numQubits() > limits.maxQubits) {
        *error = std::string("'") + field + "' uses " +
                 std::to_string(circ->numQubits()) +
                 " qubits; this server accepts at most " +
                 std::to_string(limits.maxQubits);
        return false;
    }
    if (circ->size() > limits.maxInstructions) {
        *error = std::string("'") + field + "' has " +
                 std::to_string(circ->size()) +
                 " instructions; this server accepts at most " +
                 std::to_string(limits.maxInstructions);
        return false;
    }
    *out = std::move(*circ);
    return true;
}

/**
 * Pre-guard the locate-layer fatal preconditions that depend on the
 * pair of programs (see the validate notes in protocol.hh): the
 * daemon must reject these as error responses, not die on fatal().
 */
std::string
validateLocate(const Request &request, const Limits &limits)
{
    const circuit::Circuit &suspect = request.circuit;
    const circuit::Circuit &reference = *request.reference;

    if (suspect.numQubits() != reference.numQubits())
        return "'circuit' and 'reference' use different qubit "
               "spaces (" +
               std::to_string(suspect.numQubits()) + " vs " +
               std::to_string(reference.numQubits()) + " qubits)";

    // The probe range clamps at boundary 0 (a locator fatal) when the
    // programs' heads are not comparable: reject measurement-leading
    // or structurally mismatched first instructions up front.
    const circuit::GateKind head_s = suspect.instructions()[0].kind;
    const circuit::GateKind head_r = reference.instructions()[0].kind;
    if (head_s != head_r)
        return "'circuit' and 'reference' start with different "
               "instruction kinds; no probeable boundary exists";
    if (head_s == circuit::GateKind::Measure)
        return "programs starting with a measurement have no "
               "probeable boundary";

    // No static pre-guard on measurement count: the exact oracle's
    // branch-cap overflow depends on measurement *structure* (each
    // measured qubit at most doubles the branch count, but branches
    // on zero-probability outcomes never open), so a count bound
    // would reject programs the oracle handles fine. The oracle
    // throws qsa::DeriveError past the cap — Auto mode falls back to
    // the sampled oracle, and handleRequestLine turns an Exact-mode
    // overflow into a per-request error response naming the
    // offending instruction.

    const bool marginal = !request.registerA.empty();
    if (marginal) {
        if (!hasRegister(suspect, request.registerA))
            return "'register': unknown register '" +
                   request.registerA + "'";
        if (suspect.reg(request.registerA).width() > 10)
            return "'register': register '" + request.registerA +
                   "' is too wide for marginal probes (max 10 "
                   "qubits)";
        if (!request.registerB.empty()) {
            if (!hasRegister(suspect, request.registerB))
                return "'register_b': unknown register '" +
                       request.registerB + "'";
            if (request.family !=
                    locate::ProbeFamily::SegmentMirror &&
                request.family !=
                    locate::ProbeFamily::MixtureMarginal)
                return "two-register locate supports only the "
                       "mixture_marginal family";
        }
    } else {
        if (!request.registerB.empty())
            return "'register_b' requires 'register'";
        if (request.family == locate::ProbeFamily::MixtureMarginal ||
            request.family == locate::ProbeFamily::RotatedMarginal)
            return "marginal probe families require 'register'";
    }

    // Swap-test probes simulate 2n+1 qubits; the locator fatals past
    // n = 10 (and Auto escalation skips itself gracefully).
    if (request.family == locate::ProbeFamily::SwapTest &&
        suspect.numQubits() > 10)
        return "swap_test probes support at most 10 qubits (" +
               std::to_string(suspect.numQubits()) + " requested)";

    (void)limits;
    return "";
}

/** Render one lint report as the "lint" result payload. */
json::Value
lintPayload(const analyze::LintReport &report)
{
    json::Value out = json::Value::object();
    out.set("clean", json::Value::boolean(report.clean()));
    out.set("errors", json::Value::integer(
                          report.count(analyze::Severity::Error)));
    out.set("warnings", json::Value::integer(
                            report.count(analyze::Severity::Warning)));
    out.set("infos", json::Value::integer(
                         report.count(analyze::Severity::Info)));
    json::Value diags = json::Value::array();
    for (const auto &d : report.diagnostics) {
        json::Value item = json::Value::object();
        item.set("rule", json::Value::string(d.rule));
        item.set("severity",
                 json::Value::string(analyze::severityName(d.severity)));
        item.set("instruction", json::Value::integer(d.instruction));
        json::Value qubits = json::Value::array();
        for (unsigned q : d.qubits)
            qubits.push(json::Value::integer(q));
        item.set("qubits", std::move(qubits));
        item.set("label", json::Value::string(d.label));
        item.set("message", json::Value::string(d.message));
        item.set("hint", json::Value::string(d.hint));
        diags.push(std::move(item));
    }
    out.set("diagnostics", std::move(diags));
    return out;
}

/** Render outcome counts ({"<value>": n} in ascending value order). */
json::Value
countsPayload(
    const std::map<std::uint64_t, std::uint64_t> &counts)
{
    json::Value out = json::Value::object();
    for (const auto &[value, count] : counts)
        out.set(std::to_string(value), json::Value::integer(count));
    return out;
}

/** Build a session configured exactly as the request specifies. */
assertions::CheckConfig
configFor(const Request &request)
{
    assertions::CheckConfig cfg;
    cfg.ensembleSize = request.ensembleSize;
    cfg.mode = request.mode;
    cfg.seed = request.seed;
    cfg.numThreads = request.threads;
    cfg.useGTest = request.gTest;
    return cfg;
}

json::Value
executeCheck(const Request &request)
{
    session::Session s(request.circuit, configFor(request));
    if (request.holmBonferroni)
        s.use(session::HolmBonferroni{});
    for (const auto &item : request.plan)
        s.expect(item);

    const auto &outcomes = s.run();
    json::Value out = json::Value::object();
    bool all_passed = true;
    json::Value items = json::Value::array();
    for (const auto &outcome : outcomes) {
        all_passed = all_passed && outcome.passed;
        json::Value item = json::Value::object();
        item.set("name", json::Value::string(outcome.spec.name));
        item.set("kind",
                 json::Value::string(
                     assertions::assertionKindName(outcome.spec.kind)));
        item.set("breakpoint",
                 json::Value::string(outcome.spec.breakpoint));
        item.set("passed", json::Value::boolean(outcome.passed));
        item.set("p_value", json::Value::number(outcome.pValue));
        item.set("statistic",
                 json::Value::number(outcome.statistic));
        item.set("df", json::Value::number(outcome.df));
        item.set("ensemble_size",
                 json::Value::integer(outcome.ensembleSize));
        item.set("effective_alpha",
                 json::Value::number(outcome.effectiveAlpha));
        item.set("counts", countsPayload(outcome.countsA));
        items.push(std::move(item));
    }
    out.set("all_passed", json::Value::boolean(all_passed));
    out.set("assertions", std::move(items));
    return out;
}

json::Value
executeAnalyze(const Request &request)
{
    session::Session s(request.circuit, configFor(request));
    for (const auto &item : request.plan)
        s.expect(item);

    const session::AnalysisReport report = s.analyze();
    json::Value out = json::Value::object();
    out.set("clean", json::Value::boolean(report.clean()));
    out.set("lint", lintPayload(report.lint));
    json::Value checks = json::Value::array();
    for (const auto &check : report.checks) {
        json::Value item = json::Value::object();
        item.set("spec_index", json::Value::integer(check.specIndex));
        item.set("name", json::Value::string(check.name));
        item.set("breakpoint",
                 json::Value::string(check.breakpoint));
        item.set("verdict",
                 json::Value::string(
                     session::staticVerdictName(check.verdict)));
        item.set("detail", json::Value::string(check.detail));
        checks.push(std::move(item));
    }
    out.set("checks", std::move(checks));
    return out;
}

json::Value
executeLocate(const Request &request)
{
    session::Session s(request.circuit, configFor(request));
    s.probes(request.family);
    s.oracle(request.oracleMode, request.oracleTrials);

    locate::LocalizationReport report =
        request.registerA.empty()
            ? s.locate(*request.reference, request.strategy)
        : request.registerB.empty()
            ? s.locate(*request.reference,
                       request.circuit.reg(request.registerA),
                       request.strategy)
            : s.locate(*request.reference,
                       request.circuit.reg(request.registerA),
                       request.circuit.reg(request.registerB),
                       request.strategy);

    json::Value out = json::Value::object();
    out.set("bug_found", json::Value::boolean(report.bugFound));
    out.set("last_passing", json::Value::integer(report.lastPassing));
    out.set("first_failing",
            json::Value::integer(report.firstFailing));
    out.set("suspect_gates", json::Value::string(report.suspectGates));
    out.set("pruned_boundaries",
            json::Value::integer(report.prunedBoundaries));
    out.set("total_measurements",
            json::Value::integer(report.totalMeasurements));
    out.set("decided_by",
            json::Value::string(
                locate::probeFamilyName(report.decidedBy)));
    out.set("escalated_to_swap_test",
            json::Value::boolean(report.escalatedToSwapTest));
    json::Value probes = json::Value::array();
    for (const auto &probe : report.probes) {
        json::Value item = json::Value::object();
        item.set("boundary", json::Value::integer(probe.boundary));
        item.set("kind",
                 json::Value::string(
                     assertions::assertionKindName(probe.kind)));
        item.set("ensemble_size",
                 json::Value::integer(probe.ensembleSize));
        item.set("p_value", json::Value::number(probe.pValue));
        item.set("failed", json::Value::boolean(probe.failed));
        item.set("family",
                 json::Value::string(
                     locate::probeFamilyName(probe.family)));
        probes.push(std::move(item));
    }
    out.set("probes", std::move(probes));
    return out;
}

/**
 * Compose one "ok": false response. `where`, when non-empty, names
 * the instruction/register an oracle derivation failed at (the
 * DeriveError path).
 */
std::string
errorResponse(const json::Value &id, const std::string &message,
              const circuit::QasmError *qasm,
              const std::string &where = "")
{
    json::Value resp = json::Value::object();
    resp.set("id", id);
    resp.set("ok", json::Value::boolean(false));
    json::Value error = json::Value::object();
    error.set("message", json::Value::string(message));
    if (qasm != nullptr && qasm->line != 0) {
        error.set("line", json::Value::integer(qasm->line));
        error.set("column", json::Value::integer(qasm->column));
        error.set("token", json::Value::string(qasm->token));
    }
    if (!where.empty())
        error.set("instruction", json::Value::string(where));
    resp.set("error", std::move(error));
    QSA_OBS_COUNTER("serve.requests.rejected", 1);
    return resp.dump();
}

} // anonymous namespace

bool
parseRequest(const json::Value &doc, Request *request,
             std::string *error, circuit::QasmError *qasm,
             const Limits &limits)
{
    try {
        if (!doc.isObject()) {
            *error = "request must be a JSON object";
            return false;
        }

        static const char *const kKnown[] = {
            "id",       "command",       "circuit",
            "reference", "plan",         "register",
            "register_b", "strategy",    "family",
            "oracle_mode", "oracle_trials",
            "seed",     "ensemble_size", "mode",
            "threads",  "g_test",        "holm_bonferroni"};
        for (const auto &member : doc.members()) {
            bool known = false;
            for (const char *k : kKnown)
                known = known || member.first == k;
            if (!known) {
                *error = "unknown field '" + member.first + "'";
                return false;
            }
        }

        if (const json::Value *id = doc.find("id"))
            request->id = *id;

        const json::Value *command = doc.find("command");
        if (command == nullptr || !command->isString()) {
            *error = "'command' (a string) is required";
            return false;
        }
        request->command = command->asString();
        const bool is_check = request->command == "check";
        const bool is_locate = request->command == "locate";
        const bool is_analyze = request->command == "analyze";
        const bool is_lint = request->command == "lint";
        if (!is_check && !is_locate && !is_analyze && !is_lint &&
            request->command != "ping") {
            *error = "unknown command '" + request->command +
                     "' (expected ping / lint / analyze / check / "
                     "locate)";
            return false;
        }

        // Ensemble configuration (optional, defaulted).
        if (const json::Value *seed = doc.find("seed"))
            request->seed = seed->asUint64();
        if (const json::Value *size = doc.find("ensemble_size")) {
            request->ensembleSize = size->asUint64();
            if (request->ensembleSize == 0 ||
                request->ensembleSize > limits.maxEnsembleSize) {
                *error = "'ensemble_size' must lie in [1, " +
                         std::to_string(limits.maxEnsembleSize) + "]";
                return false;
            }
        }
        if (const json::Value *mode = doc.find("mode")) {
            if (!modeFromName(mode->asString(), &request->mode)) {
                *error = "'mode' must be sample_final_state or "
                         "resimulate";
                return false;
            }
        }
        if (const json::Value *threads = doc.find("threads")) {
            const std::uint64_t n = threads->asUint64();
            if (n > 64) {
                *error = "'threads' must lie in [0, 64]";
                return false;
            }
            request->threads = static_cast<unsigned>(n);
        }
        if (const json::Value *g = doc.find("g_test"))
            request->gTest = g->asBool();
        if (const json::Value *hb = doc.find("holm_bonferroni"))
            request->holmBonferroni = hb->asBool();

        if (request->command == "ping")
            return true;

        if (!parseCircuitField(doc, "circuit", limits,
                               &request->circuit, error, qasm))
            return false;

        // The assertion plan (check: required; analyze: optional).
        const json::Value *plan = doc.find("plan");
        if (plan != nullptr && !is_check && !is_analyze) {
            *error = "'plan' is only valid for check / analyze";
            return false;
        }
        if (is_check && plan == nullptr) {
            *error = "'plan' (an assertion array) is required for "
                     "check";
            return false;
        }
        if (plan != nullptr) {
            if (!session::tryPlanFromValue(*plan, &request->plan,
                                           error))
                return false;
            if (request->plan.size() > limits.maxPlanItems) {
                *error = "plan has " +
                         std::to_string(request->plan.size()) +
                         " items; this server accepts at most " +
                         std::to_string(limits.maxPlanItems);
                return false;
            }
            if (is_check && request->plan.empty()) {
                *error = "'plan' must contain at least one assertion";
                return false;
            }
            for (const auto &item : request->plan) {
                if (item.ensembleSize > limits.maxEnsembleSize) {
                    *error = "plan ensemble_size exceeds the server "
                             "limit of " +
                             std::to_string(limits.maxEnsembleSize);
                    return false;
                }
            }
            const std::string plan_error =
                session::validatePlan(request->circuit,
                                      request->plan);
            if (!plan_error.empty()) {
                *error = plan_error;
                return false;
            }
        }

        // Locate-only fields.
        const json::Value *reference = doc.find("reference");
        const json::Value *reg = doc.find("register");
        const json::Value *reg_b = doc.find("register_b");
        const json::Value *strategy = doc.find("strategy");
        const json::Value *family = doc.find("family");
        const json::Value *oracle_mode = doc.find("oracle_mode");
        const json::Value *oracle_trials = doc.find("oracle_trials");
        if (!is_locate && (reference != nullptr || reg != nullptr ||
                           reg_b != nullptr || strategy != nullptr ||
                           family != nullptr ||
                           oracle_mode != nullptr ||
                           oracle_trials != nullptr)) {
            *error = "'reference' / 'register' / 'strategy' / "
                     "'family' / 'oracle_mode' / 'oracle_trials' are "
                     "only valid for locate";
            return false;
        }
        if (is_locate) {
            circuit::Circuit ref;
            if (!parseCircuitField(doc, "reference", limits, &ref,
                                   error, qasm))
                return false;
            request->reference = std::move(ref);
            if (reg != nullptr)
                request->registerA = reg->asString();
            if (reg_b != nullptr)
                request->registerB = reg_b->asString();
            if (strategy != nullptr &&
                !strategyFromName(strategy->asString(),
                                  &request->strategy)) {
                *error = "'strategy' must be adaptive or linear";
                return false;
            }
            if (family != nullptr &&
                !familyFromName(family->asString(),
                                &request->family)) {
                *error = "'family' must be segment_mirror / "
                         "mixture_marginal / rotated_marginal / "
                         "swap_test / auto";
                return false;
            }
            if (oracle_mode != nullptr &&
                !oracleModeFromName(oracle_mode->asString(),
                                    &request->oracleMode)) {
                *error = "'oracle_mode' must be exact / sampled / "
                         "auto";
                return false;
            }
            if (oracle_trials != nullptr) {
                request->oracleTrials = oracle_trials->asUint64();
                if (request->oracleTrials == 0 ||
                    request->oracleTrials > limits.maxEnsembleSize) {
                    *error = "'oracle_trials' must lie in [1, " +
                             std::to_string(limits.maxEnsembleSize) +
                             "]";
                    return false;
                }
            }
            const std::string locate_error =
                validateLocate(*request, limits);
            if (!locate_error.empty()) {
                *error = locate_error;
                return false;
            }
        }
        return true;
    } catch (const json::TypeError &e) {
        *error = e.what();
        return false;
    }
}

json::Value
executeRequest(const Request &request)
{
    QSA_OBS_SPAN(span, "serve.request");
    QSA_OBS_COUNTER("serve.requests", 1);

    if (request.command == "ping") {
        json::Value out = json::Value::object();
        out.set("pong", json::Value::boolean(true));
        return out;
    }
    if (request.command == "lint")
        return lintPayload(analyze::lintCircuit(request.circuit));
    if (request.command == "analyze")
        return executeAnalyze(request);
    if (request.command == "check")
        return executeCheck(request);
    if (request.command == "locate")
        return executeLocate(request);
    panic("executeRequest: unvalidated command");
}

std::string
handleRequestLine(const std::string &line, const Limits &limits)
{
    json::Value doc;
    std::string parse_error;
    if (!json::Value::parse(line, &doc, &parse_error))
        return errorResponse(json::Value(),
                             "request is not valid JSON: " +
                                 parse_error,
                             nullptr);

    Request request;
    std::string error;
    circuit::QasmError qasm;
    if (!parseRequest(doc, &request, &error, &qasm, limits))
        return errorResponse(request.id, error,
                             qasm.line != 0 ? &qasm : nullptr);

    const auto start = std::chrono::steady_clock::now();
    json::Value result;
    try {
        result = executeRequest(request);
    } catch (const DeriveError &e) {
        // Program-inherent oracle failures (a wide-measurement
        // reference past the exact branch cap, an over-wide
        // register): fail the request with the offending instruction
        // named, keep the daemon alive. An "oracle_mode": "sampled"
        // (or the default auto) request sidesteps the branch cap.
        QSA_OBS_COUNTER("serve.requests.derive_errors", 1);
        return errorResponse(request.id, e.what(), nullptr,
                             e.where());
    } catch (const std::exception &e) {
        // Belt and braces: no execute path should throw on a
        // validated request, but a daemon never dies on one either.
        return errorResponse(request.id,
                             std::string("internal error: ") +
                                 e.what(),
                             nullptr);
    }
    const auto duration =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start);

    json::Value resp = json::Value::object();
    resp.set("id", request.id);
    resp.set("ok", json::Value::boolean(true));
    resp.set("command", json::Value::string(request.command));
    resp.set("result", std::move(result));

    // Everything timing- or environment-dependent lives here, outside
    // the deterministic "result" contract.
    json::Value obs = json::Value::object();
    obs.set("duration_ns",
            json::Value::integer(
                static_cast<std::uint64_t>(duration.count())));
    resp.set("obs", std::move(obs));
    return resp.dump();
}

} // namespace qsa::serve
