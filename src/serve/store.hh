/**
 * @file
 * qsa::serve::OracleStore — the versioned JSON-on-disk artifact cache
 * behind the debugging service.
 *
 * Layout: one file per artifact at
 *
 *     <root>/<kind>/<fnv64(key) as 16 hex digits>.json
 *
 * where `kind` is the producer namespace ("predicates", "overlap",
 * "prefix_cert") and `key` is the producer's canonical key — a
 * human-readable string that starts with the producer's payload
 * schema version and embeds the relevant Circuit::contentHash(), so
 * the key *is* the invalidation rule: edit the circuit, change the
 * probed register/boundaries/frames, or bump the payload version and
 * the lookup simply misses.
 *
 * Each file wraps the payload in an envelope
 *
 *     {"qsa_oracle_store": 1, "kind": "...", "key": "...",
 *      "payload": {...}}
 *
 * checked on load: wrong envelope version, wrong kind, or a key that
 * does not match byte-for-byte (a hash collision or a truncated
 * write) all degrade to a miss — never to a wrong artifact. Writes
 * are temp-file + rename, so concurrent requests racing on the same
 * derivation each publish a complete file and readers never observe
 * a partial one.
 *
 * Counters `serve.oracle_cache.hits` / `serve.oracle_cache.misses`
 * account every lookup; the CI bench gate requires hits > 0 on the
 * warm half of the serve benchmark.
 *
 * Retention: an unbounded store grows forever under a long-lived
 * daemon (every distinct circuit/register/trial-budget combination
 * adds an entry). The optional maxEntries/maxBytes bounds cap it:
 * after each write the store evicts complete entries oldest-first
 * (by file modification time) until both bounds hold again, counting
 * `serve.oracle_cache.evictions`. Eviction is LRU-by-write, not by
 * read — a hit does not refresh an entry — which keeps the policy a
 * pure function of the write sequence.
 */

#ifndef QSA_SERVE_STORE_HH
#define QSA_SERVE_STORE_HH

#include <cstddef>
#include <mutex>
#include <string>

#include "common/artifacts.hh"

namespace qsa::serve
{

/** See file comment. */
class OracleStore : public common::ArtifactStore
{
  public:
    /** Envelope format version (bump = every entry invalidated). */
    static constexpr std::uint64_t kFormatVersion = 1;

    /**
     * Open (and lazily create) a store rooted at `root`. The
     * directory is created on first write, not here, so pointing at
     * a read-only location only disables persistence.
     *
     * @param max_entries entry-count bound enforced after each write
     *        (0 = unbounded)
     * @param max_bytes total-payload-bytes bound enforced after each
     *        write (0 = unbounded)
     */
    explicit OracleStore(std::string root,
                         std::size_t max_entries = 0,
                         std::size_t max_bytes = 0);

    /** Uninstalls itself if still installed. */
    ~OracleStore() override;

    OracleStore(const OracleStore &) = delete;
    OracleStore &operator=(const OracleStore &) = delete;

    bool load(const std::string &kind, const std::string &key,
              std::string *payload) override;

    void store(const std::string &kind, const std::string &key,
               const std::string &payload) override;

    /** Install as the process-wide store consulted by the oracle
     *  producers (common::setArtifactStore). */
    void install();

    /** Remove the process-wide installation if it points here. */
    void uninstall();

    const std::string &root() const { return rootDir; }

    /** The configured retention bounds (0 = unbounded). */
    std::size_t maxEntries() const { return maxEntriesBound; }
    std::size_t maxBytes() const { return maxBytesBound; }

  private:
    std::string rootDir;
    std::size_t maxEntriesBound = 0;
    std::size_t maxBytesBound = 0;

    /** Serialises eviction sweeps across worker threads. */
    std::mutex evictionMutex;

    std::string pathFor(const std::string &kind,
                        const std::string &key) const;

    /** Evict oldest entries until both bounds hold (see file
     *  comment); no-op when unbounded. */
    void enforceBounds();
};

} // namespace qsa::serve

#endif // QSA_SERVE_STORE_HH
