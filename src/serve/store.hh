/**
 * @file
 * qsa::serve::OracleStore — the versioned JSON-on-disk artifact cache
 * behind the debugging service.
 *
 * Layout: one file per artifact at
 *
 *     <root>/<kind>/<fnv64(key) as 16 hex digits>.json
 *
 * where `kind` is the producer namespace ("predicates", "overlap",
 * "prefix_cert") and `key` is the producer's canonical key — a
 * human-readable string that starts with the producer's payload
 * schema version and embeds the relevant Circuit::contentHash(), so
 * the key *is* the invalidation rule: edit the circuit, change the
 * probed register/boundaries/frames, or bump the payload version and
 * the lookup simply misses.
 *
 * Each file wraps the payload in an envelope
 *
 *     {"qsa_oracle_store": 1, "kind": "...", "key": "...",
 *      "payload": {...}}
 *
 * checked on load: wrong envelope version, wrong kind, or a key that
 * does not match byte-for-byte (a hash collision or a truncated
 * write) all degrade to a miss — never to a wrong artifact. Writes
 * are temp-file + rename, so concurrent requests racing on the same
 * derivation each publish a complete file and readers never observe
 * a partial one.
 *
 * Counters `serve.oracle_cache.hits` / `serve.oracle_cache.misses`
 * account every lookup; the CI bench gate requires hits > 0 on the
 * warm half of the serve benchmark.
 */

#ifndef QSA_SERVE_STORE_HH
#define QSA_SERVE_STORE_HH

#include <string>

#include "common/artifacts.hh"

namespace qsa::serve
{

/** See file comment. */
class OracleStore : public common::ArtifactStore
{
  public:
    /** Envelope format version (bump = every entry invalidated). */
    static constexpr std::uint64_t kFormatVersion = 1;

    /**
     * Open (and lazily create) a store rooted at `root`. The
     * directory is created on first write, not here, so pointing at
     * a read-only location only disables persistence.
     */
    explicit OracleStore(std::string root);

    /** Uninstalls itself if still installed. */
    ~OracleStore() override;

    OracleStore(const OracleStore &) = delete;
    OracleStore &operator=(const OracleStore &) = delete;

    bool load(const std::string &kind, const std::string &key,
              std::string *payload) override;

    void store(const std::string &kind, const std::string &key,
               const std::string &payload) override;

    /** Install as the process-wide store consulted by the oracle
     *  producers (common::setArtifactStore). */
    void install();

    /** Remove the process-wide installation if it points here. */
    void uninstall();

    const std::string &root() const { return rootDir; }

  private:
    std::string rootDir;

    std::string pathFor(const std::string &kind,
                        const std::string &key) const;
};

} // namespace qsa::serve

#endif // QSA_SERVE_STORE_HH
