#include "serve/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/json.hh"
#include "obs/obs.hh"

namespace qsa::serve
{

namespace
{

/** Reject lines longer than this without a newline (memory bound). */
constexpr std::size_t kMaxLineBytes = 1 << 20;

/**
 * Compose the rejection response for a request that never reached
 * the dispatcher (overload / shutdown / oversize). Best-effort id
 * echo: the line is parsed only to recover "id".
 */
std::string
rejectionResponse(const std::string &line, const std::string &why)
{
    json::Value id;
    json::Value doc;
    if (json::Value::parse(line, &doc))
        if (const json::Value *found = doc.find("id"))
            id = *found;

    json::Value resp = json::Value::object();
    resp.set("id", id);
    resp.set("ok", json::Value::boolean(false));
    json::Value error = json::Value::object();
    error.set("message", json::Value::string(why));
    resp.set("error", std::move(error));
    return resp.dump();
}

/** Write all of `data` to `fd`, ignoring a peer that went away. */
void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // Peer closed; nothing useful left to do.
        }
        sent += static_cast<std::size_t>(n);
    }
}

} // anonymous namespace

/** One accepted client: its socket and a write lock serialising the
 *  responses of its pipelined requests. */
struct Server::Connection
{
    explicit Connection(int fd) : fd(fd) {}

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd;
    std::mutex writeMutex;
};

Server::Server(ServerConfig config_in) : config(std::move(config_in))
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.socketPath.empty() ||
        config.socketPath.size() >= sizeof(addr.sun_path)) {
        *error = "socket path must be 1.." +
                 std::to_string(sizeof(addr.sun_path) - 1) +
                 " bytes: '" + config.socketPath + "'";
        return false;
    }
    std::memcpy(addr.sun_path, config.socketPath.c_str(),
                config.socketPath.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(config.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 16) != 0) {
        *error = std::string("bind/listen on '") + config.socketPath +
                 "': " + std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    unsigned workers = config.workers;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 2;
        if (workers > 8)
            workers = 8;
    }
    started = true;
    dispatchers.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        dispatchers.emplace_back([this] { dispatchLoop(); });
    acceptThread = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    while (true) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // Listener shut down (stop()) or failed.
        }
        QSA_OBS_COUNTER("serve.connections", 1);
        auto conn = std::make_shared<Connection>(fd);
        {
            std::lock_guard<std::mutex> lock(stateMutex);
            if (stopping) {
                // Raced with stop(): the connection object closes
                // the socket; the client sees EOF.
                continue;
            }
            connections.push_back(conn);
            ++activeReaders;
        }
        std::thread([this, conn] { readerLoop(conn); }).detach();
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string pending;
    char buf[4096];
    bool drop = false;
    while (!drop) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF, error, or stop()'s SHUT_RD.
        pending.append(buf, static_cast<std::size_t>(n));

        std::size_t start = 0;
        while (true) {
            const auto newline = pending.find('\n', start);
            if (newline == std::string::npos)
                break;
            std::string line =
                pending.substr(start, newline - start);
            start = newline + 1;
            if (line.empty())
                continue;

            bool queued = false;
            std::string why;
            {
                std::lock_guard<std::mutex> lock(stateMutex);
                if (stopping) {
                    why = "server is shutting down";
                } else if (queue.size() >= config.maxQueue) {
                    why = "server overloaded (request queue is "
                          "full); retry later";
                } else {
                    queue.push_back(
                        Task{conn, std::move(line)});
                    queued = true;
                }
            }
            if (queued) {
                QSA_OBS_COUNTER("serve.queue.enqueued", 1);
                queueReady.notify_one();
            } else {
                QSA_OBS_COUNTER("serve.queue.rejected", 1);
                respond(*conn, rejectionResponse(line, why));
            }
        }
        pending.erase(0, start);
        if (pending.size() > kMaxLineBytes) {
            respond(*conn,
                    rejectionResponse(
                        "", "request line exceeds the server's " +
                                std::to_string(kMaxLineBytes) +
                                "-byte limit"));
            drop = true;
        }
    }
    {
        // Notify under the lock: stop()'s queueDrained wait cannot
        // return (and ~Server cannot free the condition variable)
        // before this region releases stateMutex, and this detached
        // thread touches nothing of the server after that.
        std::lock_guard<std::mutex> lock(stateMutex);
        --activeReaders;
        queueDrained.notify_all();
    }
}

void
Server::dispatchLoop()
{
    while (true) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(stateMutex);
            queueReady.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping, fully drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        const std::string response =
            handleRequestLine(task.line, config.limits);
        respond(*task.conn, response);
        task.conn.reset();
    }
}

void
Server::respond(Connection &conn, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    sendAll(conn.fd, payload + "\n");
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        if (!started || stopping)
            return;
        stopping = true;
    }
    queueReady.notify_all();

    // Unblock accept() and join the acceptor first: no new
    // connections arrive past this point.
    ::shutdown(listenFd, SHUT_RDWR);
    if (acceptThread.joinable())
        acceptThread.join();
    ::close(listenFd);
    listenFd = -1;

    // Stop the readers: no new requests enqueue (bytes still in
    // kernel buffers are dropped; accepted *requests* are not).
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        conns = connections;
    }
    for (const auto &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
    {
        std::unique_lock<std::mutex> lock(stateMutex);
        queueDrained.wait(lock, [this] { return activeReaders == 0; });
    }

    // Drain: dispatchers pop every queued request, write its
    // response, and only then observe the stop.
    for (auto &worker : dispatchers)
        worker.join();
    dispatchers.clear();

    {
        std::lock_guard<std::mutex> lock(stateMutex);
        connections.clear(); // Last refs close the client sockets.
    }
    ::unlink(config.socketPath.c_str());
}

} // namespace qsa::serve
