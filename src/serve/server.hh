/**
 * @file
 * qsa::serve request server: a Unix-domain-socket daemon speaking the
 * newline-delimited JSON protocol of serve/protocol.hh.
 *
 * Architecture
 * ------------
 *
 *               accept thread ──► one reader thread per connection
 *                                        │  (parses nothing; splits
 *                                        ▼   the byte stream on '\n')
 *                               bounded request queue
 *                                        │
 *                 dispatcher workers ◄───┘
 *                 (each runs protocol::handleRequestLine; the heavy
 *                  ensemble work inside fans out over the ONE
 *                  process-wide runtime::ThreadPool via the session
 *                  layer's BatchRunner — dispatcher threads are I/O
 *                  and orchestration only, so `workers` can exceed
 *                  the core count without oversubscribing simulation)
 *
 * Responses are written back on the request's connection under a
 * per-connection write mutex (responses from one connection's
 * pipelined requests may interleave in completion order; the echoed
 * "id" is the correlator).
 *
 * Overload: when the queue is at `maxQueue`, the request is rejected
 * *immediately* on the reader thread with an `"ok": false` response
 * whose error message is "server overloaded..." — explicit load
 * shedding rather than unbounded buffering; the client can retry.
 * Counted by serve.queue.rejected.
 *
 * Shutdown (`stop()`, the SIGTERM path in tools/qsa_serve): stop
 * accepting, shut the listener, let every *queued* request finish and
 * its response flush, then close connections and join. stop() is a
 * graceful drain — in-flight work is never abandoned, so a client
 * that got its bytes in before the signal still gets its response.
 *
 * Determinism: the server adds nothing to the response payloads —
 * protocol.hh's contract (identical request bytes => identical
 * "result" bytes, any interleaving, any thread count) holds end to
 * end because every request executes with its own seed-keyed RNG
 * streams and shares no mutable state with its neighbours beyond the
 * pool and the (idempotent, content-addressed) oracle store.
 */

#ifndef QSA_SERVE_SERVER_HH
#define QSA_SERVE_SERVER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hh"

namespace qsa::serve
{

/** Server configuration. */
struct ServerConfig
{
    /** Filesystem path of the Unix-domain listening socket (an
     *  existing socket file at the path is replaced). */
    std::string socketPath;

    /** Dispatcher threads (0 = hardware concurrency, capped at 8).
     *  See the file comment: these orchestrate; simulation fans out
     *  over the process-wide runtime pool. */
    unsigned workers = 0;

    /** Bounded request-queue depth; beyond it requests are rejected
     *  with an overload error response. */
    std::size_t maxQueue = 64;

    /** Per-request resource ceilings (protocol.hh). */
    Limits limits;
};

/** See file comment. */
class Server
{
  public:
    explicit Server(ServerConfig config);

    /** Equivalent to stop(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the accept/dispatcher threads. Returns
     * false with `*error` set when the socket cannot be set up (path
     * too long for sockaddr_un, bind/listen failure).
     */
    bool start(std::string *error);

    /** Graceful drain; idempotent (see file comment). */
    void stop();

    /** The bound socket path. */
    const std::string &socketPath() const { return config.socketPath; }

  private:
    struct Connection;

    ServerConfig config;

    int listenFd = -1;
    std::thread acceptThread;
    std::vector<std::thread> dispatchers;

    std::mutex stateMutex;
    std::condition_variable queueReady;

    /** Signalled as reader threads exit (stop() waits for zero). */
    std::condition_variable queueDrained;
    bool stopping = false;
    bool started = false;

    /** One queued request: its line and its originating connection. */
    struct Task
    {
        std::shared_ptr<Connection> conn;
        std::string line;
    };
    std::deque<Task> queue;

    /** Live (detached) reader threads. */
    std::size_t activeReaders = 0;

    std::vector<std::shared_ptr<Connection>> connections;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void dispatchLoop();

    /** Write one response line to a connection (thread-safe). */
    static void respond(Connection &conn, const std::string &payload);
};

} // namespace qsa::serve

#endif // QSA_SERVE_SERVER_HH
