#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qsa::serve
{

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    pending.clear();
}

bool
Client::connect(const std::string &socket_path, std::string *error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path)) {
        *error = "socket path too long: '" + socket_path + "'";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        *error = std::string("connect to '") + socket_path +
                 "': " + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::request(const std::string &request_line,
                std::string *response, std::string *error)
{
    if (fd < 0) {
        *error = "not connected";
        return false;
    }

    const std::string payload = request_line + "\n";
    std::size_t sent = 0;
    while (sent < payload.size()) {
        const ssize_t n =
            ::send(fd, payload.data() + sent, payload.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            *error = std::string("send: ") +
                     (n < 0 ? std::strerror(errno)
                            : "connection closed");
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    while (true) {
        const auto newline = pending.find('\n');
        if (newline != std::string::npos) {
            *response = pending.substr(0, newline);
            pending.erase(0, newline + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            *error = n < 0 ? std::string("recv: ") +
                                 std::strerror(errno)
                           : "server closed the connection";
            return false;
        }
        pending.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace qsa::serve
