/**
 * @file
 * Assertion specifications and results.
 *
 * Section 3.1 of the paper defines three assertion types on quantum
 * state — classical, superposition, and entangled — plus the product-
 * state counterpart of the entanglement assertion (Section 4.5). An
 * AssertionSpec names a breakpoint, the quantum variable(s) under test,
 * and the hypothesis parameters.
 */

#ifndef QSA_ASSERTIONS_SPEC_HH
#define QSA_ASSERTIONS_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "circuit/register.hh"
#include "stats/chi2.hh"
#include "stats/contingency.hh"

namespace qsa::assertions
{

/**
 * Default significance level for assertion verdicts — the paper's
 * working alpha. Centralised so every registration helper, policy
 * object, and the session facade agree on one value instead of
 * hard-coding 0.05 per signature.
 */
inline constexpr double kDefaultAlpha = 0.05;

/** The statistical assertion types. */
enum class AssertionKind
{
    /** Variable reads a single classical integer value. */
    Classical,

    /** Variable reads a uniform superposition over its domain. */
    Superposition,

    /** Two variables read correlated values (reject independence). */
    Entangled,

    /** Two variables read independent values (no entanglement). */
    Product,

    /**
     * Variable reads a caller-specified outcome distribution
     * (extension: generalises Superposition to non-uniform or
     * subset-supported states, e.g. Shor's lower register being
     * uniform over the order cycle {1, 7, 4, 13}).
     */
    Distribution,
};

/** Human-readable assertion kind name. */
std::string assertionKindName(AssertionKind kind);

/** One assertion: where to check, what to check, and against what. */
struct AssertionSpec
{
    /** Assertion type. */
    AssertionKind kind = AssertionKind::Classical;

    /** Breakpoint label the program is truncated at. */
    std::string breakpoint;

    /** Primary quantum variable. */
    circuit::QubitRegister regA;

    /** Second variable for Entangled/Product assertions. */
    circuit::QubitRegister regB;

    /** Expected integer value for Classical assertions. */
    std::uint64_t expectedValue = 0;

    /**
     * Expected outcome probabilities for Distribution assertions
     * (length 2^regA.width(), summing to ~1).
     */
    std::vector<double> expectedProbs;

    /**
     * Optional Monte-Carlo reference counts backing expectedProbs
     * (length 2^regA.width(), positive total) — set when the
     * expectation itself is a finite sample (the locate layer's
     * sampled oracle). When present, Distribution checks run the
     * two-sample chi-square against these counts instead of the
     * one-sample goodness-of-fit, so sampling noise on the reference
     * side is priced into the verdict rather than treated as ground
     * truth.
     */
    std::vector<double> referenceCounts;

    /** Significance level for the verdict. */
    double alpha = kDefaultAlpha;

    /** Optional display name for reports. */
    std::string name;
};

/** How ensemble members are produced. */
enum class EnsembleMode
{
    /**
     * Re-run the truncated program once per ensemble member with an
     * independent random stream — the paper's methodology (one QX
     * simulation per measurement, Section 3.3). Exact for every
     * program, including ones with mid-circuit measurement.
     */
    Resimulate,

    /**
     * Run the truncated program once and sample measurement outcomes
     * from the exact final distribution. Equivalent to Resimulate for
     * programs whose only nondeterminism is the final measurement
     * (true of all the paper's benchmarks) and orders of magnitude
     * faster.
     */
    SampleFinalState,
};

/** Checker configuration. */
struct CheckConfig
{
    /** Number of measurements per breakpoint. */
    std::size_t ensembleSize = 256;

    /** Ensemble generation mode. */
    EnsembleMode mode = EnsembleMode::SampleFinalState;

    /** Master seed; every ensemble member gets a split stream. */
    std::uint64_t seed = 0x51c0ffee;

    /**
     * Worker threads for ensemble generation: 0 = the process-wide
     * shared pool (hardware concurrency), 1 = serial, n = a dedicated
     * pool of n threads. Outcomes are bit-identical for any value
     * (qsa::runtime keys every trial's RNG stream by trial index).
     */
    unsigned numThreads = 0;

    /** Yates continuity correction on 2x2 contingency tables. */
    bool yatesFor2x2 = true;

    /** Use the G-test instead of Pearson chi-square (ablation). */
    bool useGTest = false;

    /**
     * Opt-in Holm-Bonferroni family-wise error control across the
     * assertions adjudicated together by checkAll(): per-assertion
     * alpha alone lets false alarms accumulate over large auto-placed
     * assertion sets (and over a bug locator's probe sequences).
     * Off by default to preserve per-assertion semantics.
     */
    bool holmBonferroni = false;

    /**
     * Run the gate-fusion pass on every truncated prefix before
     * ensemble fan-out (runtime::EngineOptions::fuseGates). Verdicts
     * are unchanged; per-trial simulation cost drops by the fused
     * gate count. Off only for A/B tests against the naive kernels.
     */
    bool fuseGates = true;

    /**
     * Tensor-split hint for the engine
     * (runtime::EngineOptions::tensorSplit): 0 = monolithic. Set by
     * the swap-test prober to the suspect's qubit count so probe
     * trials simulate the suspect and embedded-reference halves
     * separately and combine only at the comparator.
     */
    unsigned tensorSplit = 0;
};

/**
 * Sequential-testing ensemble-size escalation policy: a check starts
 * at initialSize measurements and doubles while the p-value is
 * *inconclusive* — the hypothesis was not rejected (p > alpha) but the
 * evidence for it is weak (p < passThreshold) — until the verdict is
 * decisive or maxSize is reached. Because every trial m draws from the
 * stream keyed by m (see runtime/ensemble.hh), an escalated ensemble
 * extends the previous one rather than resampling it: the procedure
 * is a genuine sequential test, deterministic for a given seed.
 */
struct EscalationPolicy
{
    /** Measurements for the first round. */
    std::size_t initialSize = 64;

    /** Ensemble-size cap; the last round's verdict is final. */
    std::size_t maxSize = 2048;

    /**
     * Smallest p-value treated as decisively consistent with the
     * hypothesis; p in (alpha, passThreshold) escalates.
     */
    double passThreshold = 0.30;
};

/**
 * The escalation trigger, shared by every sequential-testing caller
 * (AssertionChecker::checkEscalated and qsa::locate's batch-driven
 * mirror probes). For most kinds a verdict is inconclusive when the
 * hypothesis was not rejected but the evidence for it is weak
 * (alpha < p < passThreshold). Entangled assertions invert the pass
 * semantics — rejecting independence is the *passing* verdict and an
 * underpowered ensemble yields a high p — so for them any
 * not-yet-rejected p escalates: more measurements can still expose
 * the correlation, and only the cap makes the failure final.
 */
inline bool
escalationInconclusive(const EscalationPolicy &policy,
                       AssertionKind kind, double alpha,
                       double p_value)
{
    if (kind == AssertionKind::Entangled)
        return p_value > alpha;
    return p_value > alpha && p_value < policy.passThreshold;
}

/** Result of checking one assertion. */
struct AssertionOutcome
{
    /** The spec that was checked. */
    AssertionSpec spec;

    /** p-value of the statistical test. */
    double pValue = 1.0;

    /** Test statistic. */
    double statistic = 0.0;

    /** Degrees of freedom. */
    double df = 0.0;

    /** Ensemble size actually used. */
    std::size_t ensembleSize = 0;

    /**
     * Significance threshold the verdict was adjudicated against:
     * spec.alpha for a standalone check, the Holm-Bonferroni step-down
     * threshold when family-wise control was applied.
     */
    double effectiveAlpha = 0.0;

    /**
     * Verdict: true when the observation is consistent with the
     * asserted state class. Classical/Superposition/Product pass when
     * p > alpha (independence or the hypothesised distribution cannot
     * be rejected); Entangled passes when p <= alpha (independence is
     * rejected, i.e. correlation was detected).
     */
    bool passed = false;

    /** Observed counts of regA values. */
    std::map<std::uint64_t, std::uint64_t> countsA;

    /** Joint counts for Entangled/Product assertions. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        jointCounts;

    /** Effect sizes for contingency assertions. */
    double cramersV = 0.0;
    double contingencyC = 0.0;

    /** True when a zero-probability outcome was observed (p = 0). */
    bool impossibleOutcome = false;
};

} // namespace qsa::assertions

#endif // QSA_ASSERTIONS_SPEC_HH
