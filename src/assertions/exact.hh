/**
 * @file
 * Exact (infinite-ensemble) state inspection at breakpoints.
 *
 * The statistical assertions sample finite ensembles; these helpers
 * compute the exact quantities the samples converge to. They serve as
 * ground truth in tests, and benches print them next to the sampled
 * statistics (e.g. Table 3's exact joint distribution).
 */

#ifndef QSA_ASSERTIONS_EXACT_HH
#define QSA_ASSERTIONS_EXACT_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::assertions
{

/**
 * Exact outcome distribution of a register at a breakpoint.
 * Entry v is the probability the register reads value v.
 */
std::vector<double> exactMarginal(const circuit::Circuit &program,
                                  const std::string &breakpoint,
                                  const circuit::QubitRegister &reg,
                                  std::uint64_t seed = 0x51c0ffee);

/**
 * Exact joint outcome distribution of two registers at a breakpoint:
 * result[a][b] = P(regA = a, regB = b).
 */
std::vector<std::vector<double>>
exactJoint(const circuit::Circuit &program, const std::string &breakpoint,
           const circuit::QubitRegister &reg_a,
           const circuit::QubitRegister &reg_b,
           std::uint64_t seed = 0x51c0ffee);

/**
 * Exact purity of a register's reduced density matrix at a breakpoint:
 * 1 for a product state with the rest of the system, < 1 when
 * entangled. Ground truth for Entangled/Product assertions.
 */
double exactPurity(const circuit::Circuit &program,
                   const std::string &breakpoint,
                   const circuit::QubitRegister &reg,
                   std::uint64_t seed = 0x51c0ffee);

/**
 * Classical mutual information (bits) between the measurement
 * distributions of two registers at a breakpoint; 0 iff the outcome
 * distributions are independent.
 */
double exactMutualInformation(const circuit::Circuit &program,
                              const std::string &breakpoint,
                              const circuit::QubitRegister &reg_a,
                              const circuit::QubitRegister &reg_b,
                              std::uint64_t seed = 0x51c0ffee);

} // namespace qsa::assertions

#endif // QSA_ASSERTIONS_EXACT_HH
