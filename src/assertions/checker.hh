/**
 * @file
 * The assertion checker: quantum breakpoints + ensemble simulation +
 * statistical tests.
 *
 * Mirrors the paper's toolflow (Section 3.3): for each assertion the
 * program is truncated at its breakpoint ("compiled into multiple
 * versions"), an ensemble of executions is simulated, the truncating
 * measurement is applied, and the outcome counts feed a chi-square
 * test whose p-value decides the verdict.
 */

#ifndef QSA_ASSERTIONS_CHECKER_HH
#define QSA_ASSERTIONS_CHECKER_HH

#include <memory>
#include <mutex>
#include <vector>

#include "assertions/spec.hh"
#include "circuit/circuit.hh"

namespace qsa::runtime
{
class BatchRunner;
class EnsembleEngine;
} // namespace qsa::runtime

namespace qsa::assertions
{

/** See file comment. */
class AssertionChecker
{
  public:
    /**
     * @param program the full instrumented program (with breakpoints)
     * @param config ensemble/test configuration
     */
    AssertionChecker(const circuit::Circuit &program,
                     const CheckConfig &config = CheckConfig());

    ~AssertionChecker();

    /**
     * Non-copyable: the embedded runtime::EnsembleEngine is bound to
     * this checker's program copy (and owns the prefix caches).
     */
    AssertionChecker(const AssertionChecker &) = delete;
    AssertionChecker &operator=(const AssertionChecker &) = delete;

    /** @{ @name Assertion registration (Scaffold-style helpers) */

    /** assert_classical(reg, width, value) at a breakpoint. */
    void assertClassical(const std::string &breakpoint,
                         const circuit::QubitRegister &reg,
                         std::uint64_t value, double alpha = kDefaultAlpha);

    /** assert_superposition(reg, width) at a breakpoint. */
    void assertSuperposition(const std::string &breakpoint,
                             const circuit::QubitRegister &reg,
                             double alpha = kDefaultAlpha);

    /**
     * Extension: assert the register's outcomes follow an explicit
     * probability vector (length 2^width, summing to ~1).
     */
    void assertDistribution(const std::string &breakpoint,
                            const circuit::QubitRegister &reg,
                            const std::vector<double> &probs,
                            double alpha = kDefaultAlpha);

    /**
     * Extension: assert the register reads a uniform superposition
     * over exactly the given support values.
     */
    void assertUniformSubset(const std::string &breakpoint,
                             const circuit::QubitRegister &reg,
                             const std::vector<std::uint64_t> &support,
                             double alpha = kDefaultAlpha);

    /** assert_entangled(regA, regB) at a breakpoint. */
    void assertEntangled(const std::string &breakpoint,
                         const circuit::QubitRegister &reg_a,
                         const circuit::QubitRegister &reg_b,
                         double alpha = kDefaultAlpha);

    /** assert_product(regA, regB) at a breakpoint. */
    void assertProduct(const std::string &breakpoint,
                       const circuit::QubitRegister &reg_a,
                       const circuit::QubitRegister &reg_b,
                       double alpha = kDefaultAlpha);

    /** Register a fully specified assertion. */
    void addAssertion(const AssertionSpec &spec);

    /** @} */

    /** Registered assertions in registration order. */
    const std::vector<AssertionSpec> &assertions() const { return specs; }

    /**
     * Check a single assertion spec against the program. Ensemble
     * generation runs on the qsa::runtime pool selected by
     * CheckConfig::numThreads; safe to call concurrently from several
     * threads (BatchRunner does).
     */
    AssertionOutcome check(const AssertionSpec &spec) const;

    /**
     * As check(), with an explicit ensemble size overriding
     * CheckConfig::ensembleSize for this one check — the primitive
     * behind per-expectation ensemble-size overrides on the session
     * facade. Identical seed derivation: the outcome is bit-identical
     * to check() under a config whose ensembleSize equals
     * `ensemble_size`.
     */
    AssertionOutcome check(const AssertionSpec &spec,
                           std::size_t ensemble_size) const;

    /**
     * Sequential-testing variant of check(): starts at
     * policy.initialSize measurements and doubles the ensemble while
     * the verdict is inconclusive (p in (alpha, passThreshold)), up
     * to policy.maxSize. Escalated rounds *extend* the earlier
     * ensemble (trial streams are keyed by trial index), so this is a
     * true sequential test — qsa::locate uses it so probes near the
     * suspect boundary run on larger ensembles than exploratory ones.
     */
    AssertionOutcome checkEscalated(const AssertionSpec &spec,
                                    const EscalationPolicy &policy) const;

    /**
     * Check every registered assertion. The (truncation, assertion)
     * pairs fan across the runtime pool through
     * runtime::BatchRunner (the same fan-out session::Session::run
     * uses) instead of a serial per-spec loop; outcomes are
     * bit-identical to checking each spec serially because every
     * check depends only on (spec, config, seed). With
     * CheckConfig::holmBonferroni the verdicts are then
     * re-adjudicated under Holm-Bonferroni family-wise error control
     * (applyHolmBonferroni below).
     */
    std::vector<AssertionOutcome> checkAll() const;

    /** Toggle Holm-Bonferroni control for checkAll() after the fact. */
    void setHolmBonferroni(bool enabled) { config.holmBonferroni = enabled; }

    /**
     * Drop the runtime's cached truncated circuits and prefix states
     * (a full statevector per checked breakpoint in SampleFinalState
     * mode) — the relief valve for long-lived sessions sweeping many
     * breakpoints. Results are unaffected; only recomputed.
     */
    void clearRuntimeCache();

    /**
     * Gather the measurement ensemble for one assertion without
     * running the statistical test: returns (valueA, valueB) pairs
     * (valueB is 0 for single-variable assertions). Exposed for the
     * statistical-power ablation bench.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    gatherEnsemble(const AssertionSpec &spec) const;

  private:
    circuit::Circuit program;
    CheckConfig config;
    std::vector<AssertionSpec> specs;

    /**
     * Ensemble-execution backend: shards trials across a thread pool
     * and caches truncated-circuit prefixes (internally locked, so
     * const check() calls may run concurrently).
     */
    std::unique_ptr<runtime::EnsembleEngine> engine;

    /** checkAll's plan fan-out runner, built on first use. */
    mutable std::once_flag runnerOnce;
    mutable std::unique_ptr<runtime::BatchRunner> runner;

    void validateSpec(const AssertionSpec &spec) const;

    /** check() with an explicit ensemble size (escalation rounds). */
    AssertionOutcome checkWithSize(const AssertionSpec &spec,
                                   std::size_t ensemble_size) const;

    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    gatherEnsemble(const AssertionSpec &spec,
                   std::size_t ensemble_size) const;
};

/**
 * Uniform probability vector over exactly `support` within a
 * width-qubit register's domain (fatal on empty support or
 * out-of-domain values) — the expansion behind both
 * AssertionChecker::assertUniformSubset and the session facade's
 * expectUniformSubset.
 */
std::vector<double>
uniformSubsetProbs(unsigned width,
                   const std::vector<std::uint64_t> &support);

/**
 * The default display name for a spec with none set:
 * "<kind>@<breakpoint>". One definition so checker- and
 * session-registered assertions render identically.
 */
std::string defaultSpecName(const AssertionSpec &spec);

/**
 * Program-independent assertion-spec validation: register widths,
 * alpha range, the Classical expected value lying inside the register
 * domain, and Distribution probability vectors having exactly
 * 2^width entries that sum to ~1. Rejecting malformed specs at
 * registration (the facade and the checker both call this) beats
 * panicking later inside the statistics mid-check.
 */
void validateSpecShape(const AssertionSpec &spec);

/**
 * Full spec validation against a concrete program: everything
 * validateSpecShape checks, plus the breakpoint label existing in
 * `program`.
 */
void validateSpec(const circuit::Circuit &program,
                  const AssertionSpec &spec);

/**
 * Holm-Bonferroni step-down family-wise error control over a set of
 * outcomes checked together: the i-th smallest p-value (0-based rank
 * i of m) must clear alpha / (m - i) to reject its null hypothesis,
 * and the step-down stops at the first failure. `passed` is
 * re-adjudicated in place per assertion kind (Entangled passes on
 * rejection, everything else on non-rejection) and `effectiveAlpha`
 * records each outcome's step-down threshold.
 *
 * Each rank is tested against its *own* spec's alpha. That is exact
 * Holm when the family shares one alpha (the expected usage: an
 * auto-placed set, a locator's probe batch); with heterogeneous
 * alphas the early stop makes the procedure conservative — it only
 * ever withholds rejections relative to running Holm per alpha
 * group.
 *
 * @return number of null hypotheses rejected
 */
std::size_t
applyHolmBonferroni(std::vector<AssertionOutcome> &outcomes);

/**
 * Mechanical assertion placement from ComputeScope structure (the
 * paper's Section 5.1.1 claim that language syntax for reversible
 * computation makes entanglement-assertion placement automatic): for
 * every breakpoint pair "<label>_computed" / "<label>_uncomputed" in
 * the checker's program, register
 *  - assert_entangled(reg_a, reg_b) at "<label>_computed",
 *  - assert_product(reg_a, reg_b) at "<label>_uncomputed".
 *
 * Because the placement is mechanical, the set can get large and
 * accumulate false alarms under per-assertion alpha; when
 * `family_wise` is set (the default) and at least one pair is placed,
 * the checker's Holm-Bonferroni control is switched on so checkAll()
 * adjudicates the whole placed family together. Note the flag is
 * checker-wide: assertions registered manually on the same checker
 * join the corrected family (and Entangled assertions then need
 * p <= alpha/rank to pass) — pass family_wise = false to keep
 * per-assertion semantics.
 *
 * @return number of assertions registered
 */
std::size_t
autoPlaceScopeAssertions(AssertionChecker &checker,
                         const circuit::Circuit &circ,
                         const circuit::QubitRegister &reg_a,
                         const circuit::QubitRegister &reg_b,
                         double alpha = kDefaultAlpha, bool family_wise = true);

} // namespace qsa::assertions

#endif // QSA_ASSERTIONS_CHECKER_HH
