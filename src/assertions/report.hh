/**
 * @file
 * Human-readable assertion reports.
 */

#ifndef QSA_ASSERTIONS_REPORT_HH
#define QSA_ASSERTIONS_REPORT_HH

#include <string>
#include <vector>

#include "assertions/spec.hh"

namespace qsa::assertions
{

/**
 * Render a table of assertion outcomes: name, kind, breakpoint,
 * ensemble size, statistic, df, p-value, verdict.
 */
std::string renderReport(const std::vector<AssertionOutcome> &outcomes);

/** One-line summary of a single outcome. */
std::string renderOutcomeLine(const AssertionOutcome &outcome);

/** True when every assertion passed. */
bool allPassed(const std::vector<AssertionOutcome> &outcomes);

} // namespace qsa::assertions

#endif // QSA_ASSERTIONS_REPORT_HH
