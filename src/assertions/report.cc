/**
 * @file
 * Assertion report rendering.
 */

#include "assertions/report.hh"

#include <cmath>
#include <sstream>

#include "common/table.hh"

namespace qsa::assertions
{

std::string
renderReport(const std::vector<AssertionOutcome> &outcomes)
{
    AsciiTable t;
    t.setHeader({"assertion", "kind", "breakpoint", "M", "stat", "df",
                 "p-value", "verdict"});
    for (const auto &o : outcomes) {
        t.addRow({
            o.spec.name,
            assertionKindName(o.spec.kind),
            o.spec.breakpoint,
            std::to_string(o.ensembleSize),
            std::isinf(o.statistic) ? "inf"
                                    : AsciiTable::fmt(o.statistic, 3),
            AsciiTable::fmt(o.df, 0),
            AsciiTable::fmtP(o.pValue),
            o.passed ? "PASS" : "FAIL",
        });
    }
    return t.render();
}

std::string
renderOutcomeLine(const AssertionOutcome &o)
{
    std::ostringstream os;
    os << (o.passed ? "PASS " : "FAIL ") << o.spec.name << " ["
       << assertionKindName(o.spec.kind) << " @ " << o.spec.breakpoint
       << "] p=" << AsciiTable::fmtP(o.pValue) << " (M="
       << o.ensembleSize << ")";
    return os.str();
}

bool
allPassed(const std::vector<AssertionOutcome> &outcomes)
{
    for (const auto &o : outcomes) {
        if (!o.passed)
            return false;
    }
    return true;
}

} // namespace qsa::assertions
