/**
 * @file
 * AssertionChecker implementation.
 */

#include "assertions/checker.hh"

#include <algorithm>
#include <cmath>

#include "circuit/scopes.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/obs.hh"
#include "runtime/batch.hh"
#include "runtime/ensemble.hh"
#include "stats/histogram.hh"

namespace qsa::assertions
{

std::string
assertionKindName(AssertionKind kind)
{
    switch (kind) {
      case AssertionKind::Classical: return "classical";
      case AssertionKind::Superposition: return "superposition";
      case AssertionKind::Entangled: return "entangled";
      case AssertionKind::Product: return "product";
      case AssertionKind::Distribution: return "distribution";
    }
    panic("unknown assertion kind");
}

AssertionChecker::AssertionChecker(const circuit::Circuit &prog,
                                   const CheckConfig &cfg)
    : program(prog), config(cfg)
{
    fatal_if(config.ensembleSize == 0,
             "ensemble size must be positive");
    // Created eagerly so concurrent check() calls (BatchRunner fans
    // them across a pool) never race on lazy initialisation.
    engine = std::make_unique<runtime::EnsembleEngine>(
        program, config.numThreads,
        runtime::EngineOptions{config.fuseGates, config.tensorSplit});
}

AssertionChecker::~AssertionChecker() = default;

void
AssertionChecker::clearRuntimeCache()
{
    engine->clearCache();
}

void
validateSpecShape(const AssertionSpec &spec)
{
    fatal_if(spec.regA.width() == 0, "assertion on an empty register");
    if (spec.kind == AssertionKind::Entangled ||
        spec.kind == AssertionKind::Product) {
        fatal_if(spec.regB.width() == 0,
                 "two-variable assertion needs a second register");
    }
    fatal_if(spec.alpha <= 0.0 || spec.alpha >= 1.0,
             "alpha must lie strictly between 0 and 1");
    if (spec.kind == AssertionKind::Classical ||
        spec.kind == AssertionKind::Superposition ||
        spec.kind == AssertionKind::Distribution) {
        fatal_if(spec.regA.width() > 24,
                 "register too wide for a dense goodness-of-fit test");
    }
    if (spec.kind == AssertionKind::Classical) {
        // Rejecting here (instead of panicking later inside
        // stats::pointMassExpected mid-check) matches the
        // assertUniformSubset error path.
        fatal_if(spec.expectedValue >= pow2(spec.regA.width()),
                 "classical expected value ", spec.expectedValue,
                 " outside the register domain of ",
                 pow2(spec.regA.width()), " values");
    }
    if (spec.kind == AssertionKind::Distribution) {
        fatal_if(spec.expectedProbs.size() != pow2(spec.regA.width()),
                 "expected distribution must have 2^width entries");
        double total = 0.0;
        for (double p : spec.expectedProbs) {
            fatal_if(!std::isfinite(p),
                     "non-finite probability in distribution");
            fatal_if(p < 0.0, "negative probability in distribution");
            total += p;
        }
        fatal_if(std::abs(total - 1.0) > 1e-6,
                 "expected distribution must sum to 1, got ", total);
        if (!spec.referenceCounts.empty()) {
            fatal_if(spec.referenceCounts.size() !=
                         pow2(spec.regA.width()),
                     "reference counts must have 2^width entries");
            double count_total = 0.0;
            for (double c : spec.referenceCounts) {
                fatal_if(!std::isfinite(c),
                         "non-finite reference count");
                fatal_if(c < 0.0, "negative reference count");
                count_total += c;
            }
            fatal_if(count_total <= 0.0,
                     "reference counts must have a positive total");
        }
    }
}

void
validateSpec(const circuit::Circuit &program, const AssertionSpec &spec)
{
    fatal_if(!program.hasBreakpoint(spec.breakpoint),
             "program has no breakpoint labelled '", spec.breakpoint,
             "'");
    validateSpecShape(spec);
}

void
AssertionChecker::validateSpec(const AssertionSpec &spec) const
{
    assertions::validateSpec(program, spec);
}

std::vector<double>
uniformSubsetProbs(unsigned width,
                   const std::vector<std::uint64_t> &support)
{
    fatal_if(support.empty(), "support set must be non-empty");
    std::vector<double> probs(pow2(width), 0.0);
    for (std::uint64_t v : support) {
        fatal_if(v >= probs.size(), "support value ", v,
                 " outside the register domain");
        probs[v] = 1.0 / support.size();
    }
    return probs;
}

std::string
defaultSpecName(const AssertionSpec &spec)
{
    return assertionKindName(spec.kind) + "@" + spec.breakpoint;
}

void
AssertionChecker::addAssertion(const AssertionSpec &spec)
{
    validateSpec(spec);
    specs.push_back(spec);
    if (specs.back().name.empty())
        specs.back().name = defaultSpecName(spec);
}

void
AssertionChecker::assertClassical(const std::string &breakpoint,
                                  const circuit::QubitRegister &reg,
                                  std::uint64_t value, double alpha)
{
    AssertionSpec spec;
    spec.kind = AssertionKind::Classical;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedValue = value;
    spec.alpha = alpha;
    addAssertion(spec);
}

void
AssertionChecker::assertSuperposition(const std::string &breakpoint,
                                      const circuit::QubitRegister &reg,
                                      double alpha)
{
    AssertionSpec spec;
    spec.kind = AssertionKind::Superposition;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.alpha = alpha;
    addAssertion(spec);
}

void
AssertionChecker::assertDistribution(const std::string &breakpoint,
                                     const circuit::QubitRegister &reg,
                                     const std::vector<double> &probs,
                                     double alpha)
{
    AssertionSpec spec;
    spec.kind = AssertionKind::Distribution;
    spec.breakpoint = breakpoint;
    spec.regA = reg;
    spec.expectedProbs = probs;
    spec.alpha = alpha;
    addAssertion(spec);
}

void
AssertionChecker::assertUniformSubset(
    const std::string &breakpoint, const circuit::QubitRegister &reg,
    const std::vector<std::uint64_t> &support, double alpha)
{
    assertDistribution(breakpoint, reg,
                       uniformSubsetProbs(reg.width(), support),
                       alpha);
}

void
AssertionChecker::assertEntangled(const std::string &breakpoint,
                                  const circuit::QubitRegister &reg_a,
                                  const circuit::QubitRegister &reg_b,
                                  double alpha)
{
    AssertionSpec spec;
    spec.kind = AssertionKind::Entangled;
    spec.breakpoint = breakpoint;
    spec.regA = reg_a;
    spec.regB = reg_b;
    spec.alpha = alpha;
    addAssertion(spec);
}

void
AssertionChecker::assertProduct(const std::string &breakpoint,
                                const circuit::QubitRegister &reg_a,
                                const circuit::QubitRegister &reg_b,
                                double alpha)
{
    AssertionSpec spec;
    spec.kind = AssertionKind::Product;
    spec.breakpoint = breakpoint;
    spec.regA = reg_a;
    spec.regB = reg_b;
    spec.alpha = alpha;
    addAssertion(spec);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
AssertionChecker::gatherEnsemble(const AssertionSpec &spec) const
{
    return gatherEnsemble(spec, config.ensembleSize);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
AssertionChecker::gatherEnsemble(const AssertionSpec &spec,
                                 std::size_t ensemble_size) const
{
    const bool two_vars = spec.kind == AssertionKind::Entangled ||
                          spec.kind == AssertionKind::Product;

    // Joint measurement qubit list: regA bits first, then regB.
    runtime::EnsembleSpec request;
    request.breakpoint = spec.breakpoint;
    request.qubits = spec.regA.qubits();
    if (two_vars) {
        request.qubits.insert(request.qubits.end(),
                              spec.regB.qubits().begin(),
                              spec.regB.qubits().end());
    }
    request.shots = ensemble_size;
    request.mode = config.mode == EnsembleMode::Resimulate
                       ? runtime::SampleMode::Resimulate
                       : runtime::SampleMode::SampleFinalState;
    request.seed = config.seed;

    const auto joint_values = engine->gather(request);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
    pairs.reserve(joint_values.size());
    for (std::uint64_t joint : joint_values) {
        const std::uint64_t a = joint & lowMask(spec.regA.width());
        const std::uint64_t b = two_vars
                                    ? (joint >> spec.regA.width()) &
                                          lowMask(spec.regB.width())
                                    : 0;
        pairs.emplace_back(a, b);
    }
    return pairs;
}

AssertionOutcome
AssertionChecker::check(const AssertionSpec &spec) const
{
    return checkWithSize(spec, config.ensembleSize);
}

AssertionOutcome
AssertionChecker::check(const AssertionSpec &spec,
                        std::size_t ensemble_size) const
{
    return checkWithSize(spec, ensemble_size);
}

AssertionOutcome
AssertionChecker::checkEscalated(const AssertionSpec &spec,
                                 const EscalationPolicy &policy) const
{
    fatal_if(policy.initialSize == 0,
             "escalation needs a positive initial ensemble size");
    fatal_if(policy.maxSize < policy.initialSize,
             "escalation cap below the initial ensemble size");

    std::size_t size = policy.initialSize;
    while (true) {
        AssertionOutcome out = checkWithSize(spec, size);
        if (!escalationInconclusive(policy, spec.kind, spec.alpha,
                                    out.pValue) ||
            size >= policy.maxSize)
            return out;
        QSA_OBS_COUNTER("assertions.escalations", 1);
        size = std::min(policy.maxSize, size * 2);
    }
}

AssertionOutcome
AssertionChecker::checkWithSize(const AssertionSpec &spec,
                                std::size_t ensemble_size) const
{
    validateSpec(spec);
    fatal_if(ensemble_size == 0, "ensemble size must be positive");

    QSA_OBS_COUNTER("assertions.checks", 1);
    AssertionOutcome out;
    out.spec = spec;
    out.ensembleSize = ensemble_size;
    out.effectiveAlpha = spec.alpha;

    const auto pairs = gatherEnsemble(spec, ensemble_size);

    std::vector<std::uint64_t> values_a;
    values_a.reserve(pairs.size());
    for (const auto &[a, b] : pairs) {
        values_a.push_back(a);
        ++out.countsA[a];
        if (spec.kind == AssertionKind::Entangled ||
            spec.kind == AssertionKind::Product)
            ++out.jointCounts[{a, b}];
    }

    switch (spec.kind) {
      case AssertionKind::Classical:
      case AssertionKind::Superposition:
      case AssertionKind::Distribution: {
        const std::uint64_t domain = pow2(spec.regA.width());
        const auto observed = stats::denseCounts(values_a, domain);

        // Sampled-reference distributions get the two-sample test:
        // the reference side is itself a finite sample (see
        // AssertionSpec::referenceCounts), so both samples' noise
        // must enter the statistic. The totals were sized
        // independently, hence constraints = 0. (The G-test ablation
        // covers only one-sample fits; two-sample always uses the
        // chi-square form.)
        if (spec.kind == AssertionKind::Distribution &&
            !spec.referenceCounts.empty()) {
            const auto res = stats::chiSquareTwoSample(
                observed, spec.referenceCounts, 0);
            out.pValue = res.pValue;
            out.statistic = res.statistic;
            out.df = res.df;
            out.impossibleOutcome = res.impossibleOutcome;
            out.passed = res.pValue > spec.alpha;
            break;
        }

        std::vector<double> expected;
        if (spec.kind == AssertionKind::Classical) {
            expected = stats::pointMassExpected(
                domain, spec.expectedValue, (double)pairs.size());
        } else if (spec.kind == AssertionKind::Superposition) {
            expected =
                stats::uniformExpected(domain, (double)pairs.size());
        } else {
            expected.resize(domain);
            for (std::uint64_t v = 0; v < domain; ++v)
                expected[v] = spec.expectedProbs[v] * pairs.size();
        }
        const auto res = config.useGTest
                             ? stats::gTestGof(observed, expected)
                             : stats::chiSquareGof(observed, expected);
        out.pValue = res.pValue;
        out.statistic = res.statistic;
        out.df = res.df;
        out.impossibleOutcome = res.impossibleOutcome;
        out.passed = res.pValue > spec.alpha;
        break;
      }
      case AssertionKind::Entangled:
      case AssertionKind::Product: {
        const auto table = stats::ContingencyTable::fromPairs(pairs);
        const auto res =
            config.useGTest
                ? stats::independenceGTest(table)
                : stats::independenceTest(table, config.yatesFor2x2);
        out.pValue = res.pValue;
        out.statistic = res.statistic;
        out.df = res.df;
        out.cramersV = res.cramersV;
        out.contingencyC = res.contingencyC;
        // Entangled: expect to *reject* independence. Product: expect
        // to fail to reject.
        if (spec.kind == AssertionKind::Entangled)
            out.passed = res.pValue <= spec.alpha;
        else
            out.passed = res.pValue > spec.alpha;
        break;
      }
    }
    return out;
}

std::vector<AssertionOutcome>
AssertionChecker::checkAll() const
{
    // Fan the registered (truncation, assertion) pairs across the
    // runtime pool — the shared plan-execution path of BatchRunner
    // and session::Session::run. Every check depends only on (spec,
    // config, seed), so the outcomes are bit-identical to a serial
    // per-spec loop (tested in test_runtime.cc). The runner is built
    // once (call_once: checkAll is const and may race) so dedicated
    // pools are not respawned per call.
    std::call_once(runnerOnce, [&] {
        runner = std::make_unique<runtime::BatchRunner>(
            config.numThreads);
    });
    auto outcomes = runner->checkAll(*this, specs);
    if (config.holmBonferroni)
        applyHolmBonferroni(outcomes);
    return outcomes;
}

std::size_t
applyHolmBonferroni(std::vector<AssertionOutcome> &outcomes)
{
    const std::size_t m = outcomes.size();
    if (m == 0)
        return 0;

    std::vector<std::size_t> order(m);
    for (std::size_t i = 0; i < m; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (outcomes[a].pValue != outcomes[b].pValue)
                      return outcomes[a].pValue < outcomes[b].pValue;
                  return a < b; // stable adjudication on ties
              });

    // Step down: rank i (0-based, smallest p first) tests against
    // alpha / (m - i); the first non-rejection retains every later
    // hypothesis as well.
    std::size_t rejections = 0;
    bool stopped = false;
    for (std::size_t i = 0; i < m; ++i) {
        AssertionOutcome &out = outcomes[order[i]];
        const double threshold = out.spec.alpha / (m - i);
        out.effectiveAlpha = threshold;
        const bool rejected = !stopped && out.pValue <= threshold;
        if (rejected)
            ++rejections;
        else
            stopped = true;
        if (out.spec.kind == AssertionKind::Entangled)
            out.passed = rejected;
        else
            out.passed = !rejected;
    }
    return rejections;
}

std::size_t
autoPlaceScopeAssertions(AssertionChecker &checker,
                         const circuit::Circuit &circ,
                         const circuit::QubitRegister &reg_a,
                         const circuit::QubitRegister &reg_b,
                         double alpha, bool family_wise)
{
    std::size_t placed = 0;
    for (const auto &pair : circuit::scopeBreakpointPairs(circ)) {
        checker.assertEntangled(pair.computed, reg_a, reg_b, alpha);
        checker.assertProduct(pair.uncomputed, reg_a, reg_b, alpha);
        placed += 2;
    }
    if (family_wise && placed > 0)
        checker.setHolmBonferroni(true);
    return placed;
}

} // namespace qsa::assertions
