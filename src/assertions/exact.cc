/**
 * @file
 * Exact breakpoint inspection implementation.
 */

#include "assertions/exact.hh"

#include <cmath>

#include "circuit/executor.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace qsa::assertions
{

namespace
{

/** Run the truncated program once and hand back the final state. */
sim::StateVector
stateAtBreakpoint(const circuit::Circuit &program,
                  const std::string &breakpoint, std::uint64_t seed)
{
    const circuit::Circuit sliced = program.prefixUpTo(breakpoint);
    Rng rng(seed);
    return circuit::runCircuit(sliced, rng).state;
}

} // anonymous namespace

std::vector<double>
exactMarginal(const circuit::Circuit &program,
              const std::string &breakpoint,
              const circuit::QubitRegister &reg, std::uint64_t seed)
{
    const auto state = stateAtBreakpoint(program, breakpoint, seed);
    return state.marginalProbs(reg.qubits());
}

std::vector<std::vector<double>>
exactJoint(const circuit::Circuit &program, const std::string &breakpoint,
           const circuit::QubitRegister &reg_a,
           const circuit::QubitRegister &reg_b, std::uint64_t seed)
{
    const auto state = stateAtBreakpoint(program, breakpoint, seed);

    std::vector<unsigned> qubits = reg_a.qubits();
    qubits.insert(qubits.end(), reg_b.qubits().begin(),
                  reg_b.qubits().end());
    const auto joint_flat = state.marginalProbs(qubits);

    const std::uint64_t dim_a = pow2(reg_a.width());
    const std::uint64_t dim_b = pow2(reg_b.width());
    std::vector<std::vector<double>> joint(
        dim_a, std::vector<double>(dim_b, 0.0));
    for (std::uint64_t a = 0; a < dim_a; ++a)
        for (std::uint64_t b = 0; b < dim_b; ++b)
            joint[a][b] = joint_flat[(b << reg_a.width()) | a];
    return joint;
}

double
exactPurity(const circuit::Circuit &program, const std::string &breakpoint,
            const circuit::QubitRegister &reg, std::uint64_t seed)
{
    const auto state = stateAtBreakpoint(program, breakpoint, seed);
    return state.subsystemPurity(reg.qubits());
}

double
exactMutualInformation(const circuit::Circuit &program,
                       const std::string &breakpoint,
                       const circuit::QubitRegister &reg_a,
                       const circuit::QubitRegister &reg_b,
                       std::uint64_t seed)
{
    const auto joint = exactJoint(program, breakpoint, reg_a, reg_b,
                                  seed);

    const std::uint64_t dim_a = joint.size();
    const std::uint64_t dim_b = joint.empty() ? 0 : joint[0].size();
    std::vector<double> pa(dim_a, 0.0), pb(dim_b, 0.0);
    for (std::uint64_t a = 0; a < dim_a; ++a) {
        for (std::uint64_t b = 0; b < dim_b; ++b) {
            pa[a] += joint[a][b];
            pb[b] += joint[a][b];
        }
    }

    double mi = 0.0;
    for (std::uint64_t a = 0; a < dim_a; ++a) {
        for (std::uint64_t b = 0; b < dim_b; ++b) {
            const double p = joint[a][b];
            if (p <= 0.0)
                continue;
            mi += p * std::log2(p / (pa[a] * pb[b]));
        }
    }
    return std::max(0.0, mi);
}

} // namespace qsa::assertions
