/**
 * @file
 * Process-wide observability: a hierarchical metrics registry plus
 * scoped trace spans.
 *
 * The paper's whole economy is counted in probes, trials, and
 * simulated gates (Table 3); this subsystem makes those quantities
 * first-class so benches, CI gates, and the roadmap's perf work can
 * read them instead of re-deriving them by hand.
 *
 * Two halves:
 *
 *  - **Metrics registry** (Registry / Counter / Gauge / Timer).
 *    Counters and timers write into per-thread sharded slots — the
 *    hot path is one relaxed atomic load/store into a thread-local
 *    slab — and are aggregated deterministically at scrape time
 *    (retired slabs fold into a global accumulator on thread exit,
 *    so totals are invariant to which threads did the work).
 *    Names are dot-paths, `<layer>.<component>.<metric>`
 *    (e.g. "runtime.prefix_cache.misses", "sim.gate_applies").
 *
 *  - **Trace spans** (Span / instant / writeTrace). Scoped regions
 *    recorded as Chrome trace-event JSON, loadable in Perfetto or
 *    chrome://tracing. Off by default; toggled at runtime with
 *    setTracing() or the QSA_TRACE=<path> environment variable
 *    (which also writes the trace at process exit).
 *
 * Determinism contract: instrumentation never perturbs simulation
 * results — it draws no randomness and takes no locks on hot paths.
 * Counter *totals* for work-proportional metrics (sim.*, locate.*,
 * assertions.*, runtime.*_cache.*, runtime.ensemble.trials) are
 * bit-identical across numThreads and across same-seed runs; pool
 * scheduling metrics (runtime.pool.*) and all timer ".ns" values are
 * explicitly thread-count and wall-clock dependent. Cache hit/miss
 * counters stay deterministic under racy builds because a miss is
 * counted only on successful insertion (misses == distinct keys) and
 * a racer that loses the insert counts as a hit.
 *
 * Compile-out: configure with -DQSA_OBS=OFF and every class here
 * becomes an empty inline stub — call sites compile to nothing, and
 * the API (snapshot(), metricsJson(), writeTrace()) stays linkable
 * but returns empty documents.
 */

#ifndef QSA_OBS_OBS_HH
#define QSA_OBS_OBS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

#ifndef QSA_OBS_ENABLED
/** Default ON so non-CMake consumers get the instrumented build. */
#define QSA_OBS_ENABLED 1
#endif

#if QSA_OBS_ENABLED
#include <array>
#include <atomic>
#endif

namespace qsa::obs
{

/** Scrape result: (metric name, value), sorted by name. */
using Snapshot = std::vector<std::pair<std::string, std::int64_t>>;

#if QSA_OBS_ENABLED

namespace detail
{

/** Fixed slot budget per thread slab (4 KiB of counters). */
constexpr std::size_t max_metrics = 512;

/**
 * One thread's counter slots. Only the owning thread writes (relaxed
 * load+store, no RMW); the scraper reads concurrently, and the
 * destructor folds the final values into the registry's retired
 * accumulator so totals survive thread exit.
 */
struct Slab
{
    std::array<std::atomic<std::uint64_t>, max_metrics> counts;

    Slab();
    ~Slab();
};

/** The calling thread's slab (created on first use). */
Slab &localSlab();

/** Master runtime switch for metric recording (see setEnabled). */
extern std::atomic<bool> metrics_on;

inline bool
metricsOn()
{
    return metrics_on.load(std::memory_order_relaxed);
}

/** Runtime switch for trace recording (see setTracing). */
extern std::atomic<bool> trace_on;

inline bool
traceOn()
{
    return trace_on.load(std::memory_order_relaxed);
}

/** Monotonic nanoseconds since the process's trace epoch. */
std::uint64_t nowNs();

} // namespace detail

class Registry;

/**
 * Monotonic event count. Handles are stable for the process lifetime;
 * cache the reference (the QSA_OBS_COUNTER macro does) so the hot
 * path never touches the registry map.
 */
class Counter
{
  public:
    /** Add `delta` to the calling thread's slot (relaxed, no RMW). */
    void
    add(std::uint64_t delta = 1) const
    {
        if (!detail::metricsOn())
            return;
        auto &slot = detail::localSlab().counts[slotIndex];
        slot.store(slot.load(std::memory_order_relaxed) + delta,
                   std::memory_order_relaxed);
    }

    /** Two adds sharing one enabled-check and one slab lookup. */
    static void
    addTwo(const Counter &a, std::uint64_t da, const Counter &b,
           std::uint64_t db)
    {
        if (!detail::metricsOn())
            return;
        auto &slab = detail::localSlab();
        auto &sa = slab.counts[a.slotIndex];
        sa.store(sa.load(std::memory_order_relaxed) + da,
                 std::memory_order_relaxed);
        auto &sb = slab.counts[b.slotIndex];
        sb.store(sb.load(std::memory_order_relaxed) + db,
                 std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit Counter(std::uint32_t slot) : slotIndex(slot) {}

    std::uint32_t slotIndex;
};

/**
 * Last-writer-wins instantaneous value (e.g. pool queue depth).
 * Unlike counters, gauges are a single process-wide atomic: they are
 * read-modify-write and intended for coarse call sites only.
 */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (detail::metricsOn())
            value.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        if (detail::metricsOn())
            value.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    get() const
    {
        return value.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry; // reset() zeroes even when disabled
    std::atomic<std::int64_t> value{0};
};

/**
 * Accumulated duration, stored as two counters: "<name>.ns" (total
 * nanoseconds) and "<name>.count" (number of recorded intervals).
 * The ".ns" half is wall-clock and therefore never part of the
 * determinism contract; ".count" is, for call-proportional sites.
 */
class Timer
{
  public:
    void
    record(std::uint64_t ns) const
    {
        Counter::addTwo(nsSlot, ns, countSlot, 1);
    }

    /** RAII interval: reads the clock only while metrics are on. */
    class Scope
    {
      public:
        explicit Scope(const Timer &t)
            : timer(&t), live(detail::metricsOn()),
              start(live ? detail::nowNs() : 0)
        {
        }

        ~Scope()
        {
            if (live)
                timer->record(detail::nowNs() - start);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        const Timer *timer;
        bool live;
        std::uint64_t start;
    };

  private:
    friend class Registry;
    Timer(Counter ns, Counter count) : nsSlot(ns), countSlot(count) {}

    Counter nsSlot;
    Counter countSlot;
};

/**
 * Process-wide metric namespace. All accessors intern by name and
 * return a handle with process lifetime; scraping is deterministic
 * (name-sorted, retired + live slabs summed under one lock).
 */
class Registry
{
  public:
    /** Intern (or look up) a counter by dot-path name. */
    static Counter &counter(const std::string &name);

    /** Intern (or look up) a gauge by dot-path name. */
    static Gauge &gauge(const std::string &name);

    /** Intern (or look up) a timer ("<name>.ns" / "<name>.count"). */
    static Timer &timer(const std::string &name);

    /**
     * Aggregate every metric across retired and live slabs plus all
     * gauges, sorted by name. Exact once the threads that did the
     * work have finished their parallelFor bodies (the pool's
     * completion handshake publishes their relaxed stores).
     */
    static Snapshot snapshot();

    /**
     * Zero every counter slot, gauge, and the trace buffer. Metric
     * *identities* survive (cached handles stay valid). Call only
     * while no instrumented work is in flight.
     */
    static void reset();
};

/** @{ @name Runtime switches */

/** Whether metric recording is currently on (default: on). */
bool enabled();

/** Toggle metric recording at runtime (QSA_OBS=off env also works). */
void setEnabled(bool on);

/** Whether trace-span recording is currently on (default: off). */
bool tracing();

/** Toggle trace-span recording at runtime. */
void setTracing(bool on);

/** @} */

/**
 * Scoped trace region. Records a Chrome trace-event "X" (complete)
 * event on destruction when tracing is on; otherwise costs one
 * relaxed load. Attach key/value annotations with arg() — they land
 * in the event's "args" object and show in the Perfetto side panel.
 */
class Span
{
  public:
    explicit Span(const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Annotate the span; stringifies like the logging helpers. */
    template <typename T>
    Span &
    arg(const char *key, const T &value)
    {
        if (live)
            argPairs.emplace_back(key, messageString(value));
        return *this;
    }

  private:
    const char *spanName;
    bool live;
    std::uint64_t start;
    std::vector<std::pair<std::string, std::string>> argPairs;
};

/** Record an instantaneous ("i") trace event when tracing is on. */
void instant(const char *name);

/** Render the metrics snapshot as one flat JSON object. */
std::string metricsJson();

/** Render the trace buffer as a Chrome trace-event JSON document. */
std::string traceJson();

/** Render and write the trace to `path`; fatal on I/O failure. */
void writeTrace(const std::string &path);

/** Drop all buffered trace events. */
void clearTrace();

#else // !QSA_OBS_ENABLED

/*
 * Compiled-out stubs: identical API, empty inline bodies. Call sites
 * (and the macros below) optimise to nothing; scrape APIs return
 * empty documents so benches and exporters stay link-compatible.
 */

class Counter
{
  public:
    void add(std::uint64_t = 1) const {}
    static void addTwo(const Counter &, std::uint64_t, const Counter &,
                       std::uint64_t)
    {
    }
};

class Gauge
{
  public:
    void set(std::int64_t) {}
    void add(std::int64_t) {}
    std::int64_t get() const { return 0; }
};

class Timer
{
  public:
    void record(std::uint64_t) const {}

    class Scope
    {
      public:
        explicit Scope(const Timer &) {}
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;
    };
};

class Registry
{
  public:
    static Counter &
    counter(const std::string &)
    {
        static Counter c;
        return c;
    }

    static Gauge &
    gauge(const std::string &)
    {
        static Gauge g;
        return g;
    }

    static Timer &
    timer(const std::string &)
    {
        static Timer t;
        return t;
    }

    static Snapshot snapshot() { return {}; }
    static void reset() {}
};

inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline bool tracing() { return false; }
inline void setTracing(bool) {}

class Span
{
  public:
    explicit Span(const char *) {}
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    template <typename T>
    Span &
    arg(const char *, const T &)
    {
        return *this;
    }
};

inline void instant(const char *) {}
inline std::string metricsJson() { return "{}"; }

inline std::string
traceJson()
{
    return "{\"traceEvents\":[]}";
}

inline void writeTrace(const std::string &) {}
inline void clearTrace() {}

#endif // QSA_OBS_ENABLED

} // namespace qsa::obs

/** @{ @name Call-site macros
 * The counter/gauge/timer macros intern the metric once (function-
 * local static reference) so steady state is one relaxed add; under
 * QSA_OBS=OFF they expand to nothing. QSA_OBS_SPAN expands either
 * way — the stub Span inlines away — so `span.arg(...)` chains stay
 * valid in both configurations.
 */

#if QSA_OBS_ENABLED

#define QSA_OBS_COUNTER(name, delta)                                   \
    do {                                                               \
        static const ::qsa::obs::Counter &qsa_obs_counter_ =           \
            ::qsa::obs::Registry::counter(name);                       \
        qsa_obs_counter_.add(delta);                                   \
    } while (0)

#define QSA_OBS_GAUGE_ADD(name, delta)                                 \
    do {                                                               \
        static ::qsa::obs::Gauge &qsa_obs_gauge_ =                     \
            ::qsa::obs::Registry::gauge(name);                         \
        qsa_obs_gauge_.add(delta);                                     \
    } while (0)

#define QSA_OBS_TIMER(var, name)                                       \
    static const ::qsa::obs::Timer &var##_timer_ =                     \
        ::qsa::obs::Registry::timer(name);                             \
    ::qsa::obs::Timer::Scope var(var##_timer_)

#else

#define QSA_OBS_COUNTER(name, delta)                                   \
    do {                                                               \
    } while (0)
#define QSA_OBS_GAUGE_ADD(name, delta)                                 \
    do {                                                               \
    } while (0)
#define QSA_OBS_TIMER(var, name)                                       \
    do {                                                               \
    } while (0)

#endif // QSA_OBS_ENABLED

#define QSA_OBS_SPAN(var, name) ::qsa::obs::Span var(name)

/** @} */

#endif // QSA_OBS_OBS_HH
