/**
 * @file
 * Metrics registry and trace-span implementation.
 *
 * Everything here is behind QSA_OBS_ENABLED; with -DQSA_OBS=OFF this
 * translation unit compiles to nothing and the inline stubs in
 * obs.hh satisfy the API.
 *
 * Lifetime notes: the registry and trace state are intentionally
 * leaked singletons. Thread-local slabs retire (fold their totals
 * into the registry) from thread destructors, which can run at any
 * point during process teardown — a destructed registry would be a
 * use-after-free, a leaked one is always valid.
 */

#include "obs/obs.hh"

#if QSA_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/benchjson.hh"

namespace qsa::obs
{

namespace detail
{

std::atomic<bool> metrics_on{true};
std::atomic<bool> trace_on{false};

namespace
{

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // anonymous namespace

std::uint64_t
nowNs()
{
    const auto dt = std::chrono::steady_clock::now() - epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
        .count();
}

} // namespace detail

namespace
{

/** Registry storage; leaked (see file comment). */
struct RegistryState
{
    std::mutex mutex;

    /** Slot interning for counters (timers are two counter slots). */
    std::unordered_map<std::string, std::uint32_t> slotIndex;
    std::vector<std::string> slotNames;
    std::deque<Counter> counterHandles;
    std::unordered_map<std::uint32_t, std::size_t> handleBySlot;

    /** Totals folded in from destroyed thread slabs. */
    std::array<std::uint64_t, detail::max_metrics> retired{};

    /** Live per-thread slabs. */
    std::vector<detail::Slab *> slabs;

    std::unordered_map<std::string, std::size_t> gaugeIndex;
    std::vector<std::string> gaugeNames;
    std::deque<Gauge> gauges;

    std::unordered_map<std::string, std::size_t> timerIndex;
    std::deque<Timer> timers;
};

RegistryState &
registryState()
{
    static RegistryState *state = new RegistryState;
    return *state;
}

/** Intern a counter slot; caller holds the registry mutex. */
std::uint32_t
internSlot(RegistryState &state, const std::string &name)
{
    const auto it = state.slotIndex.find(name);
    if (it != state.slotIndex.end())
        return it->second;
    fatal_if(state.slotNames.size() >= detail::max_metrics,
             "metric slot budget (", detail::max_metrics,
             ") exhausted interning '", name, "'");
    const auto slot =
        static_cast<std::uint32_t>(state.slotNames.size());
    state.slotNames.push_back(name);
    state.slotIndex.emplace(name, slot);
    return slot;
}

/** One recorded trace event (Chrome trace-event model). */
struct TraceEvent
{
    std::string name;
    char phase; // 'X' complete, 'i' instant
    std::uint64_t tsNs;
    std::uint64_t durNs;
    int tid;
    std::vector<std::pair<std::string, std::string>> args;
};

/** Keep runaway traces bounded (~a few hundred MB of JSON). */
constexpr std::size_t max_trace_events = 1u << 20;

/** Trace storage; leaked like the registry. */
struct TraceState
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::atomic<int> nextTid{1};
    bool warnedOverflow = false;
};

TraceState &
traceState()
{
    static TraceState *state = new TraceState;
    return *state;
}

/** Small stable id for the calling thread (Perfetto lane). */
int
traceTid()
{
    thread_local const int tid =
        traceState().nextTid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
pushEvent(TraceEvent &&event)
{
    auto &state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.events.size() >= max_trace_events) {
        if (!state.warnedOverflow) {
            state.warnedOverflow = true;
            warn("trace buffer full (", max_trace_events,
                 " events); dropping further spans");
        }
        return;
    }
    state.events.push_back(std::move(event));
}

} // anonymous namespace

namespace detail
{

Slab::Slab()
{
    for (auto &count : counts)
        count.store(0, std::memory_order_relaxed);
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.slabs.push_back(this);
}

Slab::~Slab()
{
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (std::size_t i = 0; i < max_metrics; ++i)
        state.retired[i] += counts[i].load(std::memory_order_relaxed);
    state.slabs.erase(
        std::find(state.slabs.begin(), state.slabs.end(), this));
}

Slab &
localSlab()
{
    thread_local Slab slab;
    return slab;
}

} // namespace detail

Counter &
Registry::counter(const std::string &name)
{
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    const std::uint32_t slot = internSlot(state, name);
    const auto it = state.handleBySlot.find(slot);
    if (it != state.handleBySlot.end())
        return state.counterHandles[it->second];
    state.handleBySlot.emplace(slot, state.counterHandles.size());
    state.counterHandles.push_back(Counter(slot));
    return state.counterHandles.back();
}

Gauge &
Registry::gauge(const std::string &name)
{
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.gaugeIndex.find(name);
    if (it != state.gaugeIndex.end())
        return state.gauges[it->second];
    state.gaugeIndex.emplace(name, state.gauges.size());
    state.gaugeNames.push_back(name);
    state.gauges.emplace_back();
    return state.gauges.back();
}

Timer &
Registry::timer(const std::string &name)
{
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    const auto it = state.timerIndex.find(name);
    if (it != state.timerIndex.end())
        return state.timers[it->second];
    const Counter ns(internSlot(state, name + ".ns"));
    const Counter count(internSlot(state, name + ".count"));
    state.timerIndex.emplace(name, state.timers.size());
    state.timers.push_back(Timer(ns, count));
    return state.timers.back();
}

Snapshot
Registry::snapshot()
{
    auto &state = registryState();
    std::lock_guard<std::mutex> lock(state.mutex);
    Snapshot snap;
    snap.reserve(state.slotNames.size() + state.gaugeNames.size());
    for (std::size_t i = 0; i < state.slotNames.size(); ++i) {
        std::uint64_t total = state.retired[i];
        for (const auto *slab : state.slabs)
            total += slab->counts[i].load(std::memory_order_relaxed);
        snap.emplace_back(state.slotNames[i],
                          static_cast<std::int64_t>(total));
    }
    for (std::size_t i = 0; i < state.gaugeNames.size(); ++i)
        snap.emplace_back(state.gaugeNames[i], state.gauges[i].get());
    std::sort(snap.begin(), snap.end());
    return snap;
}

void
Registry::reset()
{
    auto &state = registryState();
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.retired.fill(0);
        for (auto *slab : state.slabs)
            for (auto &count : slab->counts)
                count.store(0, std::memory_order_relaxed);
        for (auto &gauge : state.gauges)
            gauge.value.store(0, std::memory_order_relaxed);
    }
    clearTrace();
}

bool
enabled()
{
    return detail::metricsOn();
}

void
setEnabled(bool on)
{
    detail::metrics_on.store(on, std::memory_order_relaxed);
}

bool
tracing()
{
    return detail::traceOn();
}

void
setTracing(bool on)
{
    detail::trace_on.store(on, std::memory_order_relaxed);
}

Span::Span(const char *name)
    : spanName(name), live(detail::traceOn()),
      start(live ? detail::nowNs() : 0)
{
}

Span::~Span()
{
    if (!live)
        return;
    pushEvent({spanName, 'X', start, detail::nowNs() - start,
               traceTid(), std::move(argPairs)});
}

void
instant(const char *name)
{
    if (!detail::traceOn())
        return;
    pushEvent({name, 'i', detail::nowNs(), 0, traceTid(), {}});
}

std::string
metricsJson()
{
    const Snapshot snap = Registry::snapshot();
    std::string out = "{";
    bool first = true;
    for (const auto &[name, value] : snap) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + benchjson::escape(name) +
               "\": " + std::to_string(value);
    }
    out += "}";
    return out;
}

std::string
traceJson()
{
    auto &state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (const auto &event : state.events) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"name\": \"" + benchjson::escape(event.name) +
               "\", \"cat\": \"qsa\", \"ph\": \"";
        out += event.phase;
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(event.tid);
        // Trace-event timestamps are microseconds.
        out += ", \"ts\": " +
               benchjson::number(event.tsNs / 1000.0);
        if (event.phase == 'X')
            out += ", \"dur\": " +
                   benchjson::number(event.durNs / 1000.0);
        else
            out += ", \"s\": \"p\"";
        if (!event.args.empty()) {
            out += ", \"args\": {";
            bool firstArg = true;
            for (const auto &[key, value] : event.args) {
                if (!firstArg)
                    out += ", ";
                firstArg = false;
                out += "\"" + benchjson::escape(key) + "\": \"" +
                       benchjson::escape(value) + "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

void
writeTrace(const std::string &path)
{
    benchjson::writeText(path, traceJson());
}

void
clearTrace()
{
    auto &state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.events.clear();
    state.warnedOverflow = false;
}

namespace
{

/** Path QSA_TRACE asked us to write at exit. */
std::string &
envTracePath()
{
    static std::string *path = new std::string;
    return *path;
}

void
writeEnvTrace()
{
    writeTrace(envTracePath());
    inform("trace written to ", envTracePath());
}

/**
 * Environment hooks: QSA_OBS=0/off/false disables metric recording;
 * QSA_TRACE=<path> turns tracing on and writes the trace at exit.
 */
struct EnvInit
{
    EnvInit()
    {
        detail::nowNs(); // pin the trace epoch early
        if (const char *v = std::getenv("QSA_OBS")) {
            const std::string s(v);
            if (s == "0" || s == "off" || s == "OFF" || s == "false")
                setEnabled(false);
        }
        if (const char *p = std::getenv("QSA_TRACE"); p && *p) {
            envTracePath() = p;
            setTracing(true);
            std::atexit(writeEnvTrace);
        }
    }
};

const EnvInit env_init;

} // anonymous namespace

} // namespace qsa::obs

#endif // QSA_OBS_ENABLED
