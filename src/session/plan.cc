#include "session/plan.hh"

#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "session/session.hh"

namespace qsa::session
{

namespace
{

/** "plan[i]: <what>" error rendering. */
std::string itemError(std::size_t index, const std::string &what)
{
    std::ostringstream os;
    os << "plan[" << index << "]: " << what;
    return os.str();
}

bool kindFromName(const std::string &name, PlanKind *kind)
{
    if (name == "classical")
        *kind = PlanKind::Classical;
    else if (name == "superposition")
        *kind = PlanKind::Superposition;
    else if (name == "distribution")
        *kind = PlanKind::Distribution;
    else if (name == "uniform_subset")
        *kind = PlanKind::UniformSubset;
    else if (name == "entangled")
        *kind = PlanKind::Entangled;
    else if (name == "product")
        *kind = PlanKind::Product;
    else
        return false;
    return true;
}

bool needsRegB(PlanKind kind)
{
    return kind == PlanKind::Entangled || kind == PlanKind::Product;
}

/** Schema-parse one plan object (no program knowledge yet). */
bool parseItem(const json::Value &obj, std::size_t index,
               PlanAssertion *item, std::string *error)
{
    if (!obj.isObject())
    {
        *error = itemError(index, "expected an object");
        return false;
    }

    static const char *const kKnown[] = {
        "at",    "after", "expect",  "register",      "register_b",
        "value", "probs", "support", "alpha",         "name",
        "ensemble_size"};
    for (const auto &member : obj.members())
    {
        bool known = false;
        for (const char *k : kKnown)
            known = known || member.first == k;
        if (!known)
        {
            *error = itemError(index, "unknown field '" +
                                          member.first + "'");
            return false;
        }
    }

    const json::Value *at = obj.find("at");
    const json::Value *after = obj.find("after");
    if ((at != nullptr) == (after != nullptr))
    {
        *error = itemError(
            index, "exactly one of 'at' / 'after' is required");
        return false;
    }
    if (at != nullptr)
    {
        item->atBoundary = false;
        item->breakpoint = at->asString();
    }
    else
    {
        item->atBoundary = true;
        item->boundary = after->asUint64();
    }

    const json::Value *expect = obj.find("expect");
    if (expect == nullptr ||
        !kindFromName(expect->asString(), &item->kind))
    {
        *error = itemError(
            index,
            "'expect' must be one of classical / superposition / "
            "distribution / uniform_subset / entangled / product");
        return false;
    }

    const json::Value *reg = obj.find("register");
    if (reg == nullptr)
    {
        *error = itemError(index, "'register' is required");
        return false;
    }
    item->regA = reg->asString();

    const json::Value *reg_b = obj.find("register_b");
    if (needsRegB(item->kind) != (reg_b != nullptr))
    {
        *error = itemError(
            index, needsRegB(item->kind)
                       ? "'register_b' is required for " +
                             planKindName(item->kind)
                       : "'register_b' is only valid for entangled "
                         "/ product");
        return false;
    }
    if (reg_b != nullptr)
        item->regB = reg_b->asString();

    const json::Value *value = obj.find("value");
    if ((item->kind == PlanKind::Classical) != (value != nullptr))
    {
        *error = itemError(index,
                           "'value' is required for (and only for) "
                           "classical");
        return false;
    }
    if (value != nullptr)
        item->expectedValue = value->asUint64();

    const json::Value *probs = obj.find("probs");
    if ((item->kind == PlanKind::Distribution) != (probs != nullptr))
    {
        *error = itemError(index,
                           "'probs' is required for (and only for) "
                           "distribution");
        return false;
    }
    if (probs != nullptr)
    {
        if (!probs->isArray())
        {
            *error = itemError(index, "'probs' must be an array");
            return false;
        }
        for (std::size_t p = 0; p < probs->size(); ++p)
            item->probs.push_back(probs->at(p).asDouble());
    }

    const json::Value *support = obj.find("support");
    if ((item->kind == PlanKind::UniformSubset) !=
        (support != nullptr))
    {
        *error = itemError(index,
                           "'support' is required for (and only "
                           "for) uniform_subset");
        return false;
    }
    if (support != nullptr)
    {
        if (!support->isArray())
        {
            *error = itemError(index, "'support' must be an array");
            return false;
        }
        for (std::size_t v = 0; v < support->size(); ++v)
            item->support.push_back(support->at(v).asUint64());
    }

    if (const json::Value *alpha = obj.find("alpha"))
        item->alpha = alpha->asDouble();
    if (const json::Value *name = obj.find("name"))
        item->name = name->asString();
    if (const json::Value *size = obj.find("ensemble_size"))
        item->ensembleSize = size->asUint64();
    return true;
}

/** Non-fatal register lookup by name. */
const circuit::QubitRegister *
findRegister(const circuit::Circuit &program, const std::string &name)
{
    for (const auto &reg : program.registers())
        if (reg.name() == name)
            return &reg;
    return nullptr;
}

} // namespace

std::string planKindName(PlanKind kind)
{
    switch (kind)
    {
    case PlanKind::Classical:
        return "classical";
    case PlanKind::Superposition:
        return "superposition";
    case PlanKind::Distribution:
        return "distribution";
    case PlanKind::UniformSubset:
        return "uniform_subset";
    case PlanKind::Entangled:
        return "entangled";
    case PlanKind::Product:
        return "product";
    }
    panic("unknown plan kind");
}

bool tryPlanFromValue(const json::Value &array,
                      std::vector<PlanAssertion> *plan,
                      std::string *error)
{
    if (!array.isArray())
    {
        *error = "plan must be a JSON array";
        return false;
    }
    std::vector<PlanAssertion> parsed;
    for (std::size_t i = 0; i < array.size(); ++i)
    {
        PlanAssertion item;
        try
        {
            if (!parseItem(array.at(i), i, &item, error))
                return false;
        }
        catch (const json::TypeError &e)
        {
            *error = itemError(i, e.what());
            return false;
        }
        parsed.push_back(std::move(item));
    }
    *plan = std::move(parsed);
    return true;
}

bool tryPlanFromJson(const std::string &text,
                     std::vector<PlanAssertion> *plan,
                     std::string *error)
{
    json::Value doc;
    if (!json::Value::parse(text, &doc, error))
        return false;
    return tryPlanFromValue(doc, plan, error);
}

std::vector<PlanAssertion> planFromJson(const std::string &text)
{
    std::vector<PlanAssertion> plan;
    std::string error;
    fatal_if(!tryPlanFromJson(text, &plan, &error),
             "assertion plan: ", error);
    return plan;
}

std::string validatePlan(const circuit::Circuit &program,
                         const std::vector<PlanAssertion> &plan)
{
    for (std::size_t i = 0; i < plan.size(); ++i)
    {
        const PlanAssertion &item = plan[i];

        if (item.atBoundary)
        {
            if (item.boundary > program.size())
                return itemError(
                    i, "boundary " + std::to_string(item.boundary) +
                           " beyond the program (" +
                           std::to_string(program.size()) +
                           " instructions)");
        }
        else if (!program.hasBreakpoint(item.breakpoint))
        {
            return itemError(i, "unknown breakpoint '" +
                                    item.breakpoint + "'");
        }

        const circuit::QubitRegister *reg_a =
            findRegister(program, item.regA);
        if (reg_a == nullptr)
            return itemError(i,
                             "unknown register '" + item.regA + "'");
        if (reg_a->width() > 24)
            return itemError(i, "register '" + item.regA +
                                    "' too wide for marginal "
                                    "assertions");
        const std::uint64_t domain = 1ULL << reg_a->width();

        if (needsRegB(item.kind))
        {
            const circuit::QubitRegister *reg_b =
                findRegister(program, item.regB);
            if (reg_b == nullptr)
                return itemError(i, "unknown register '" +
                                        item.regB + "'");
        }

        switch (item.kind)
        {
        case PlanKind::Classical:
            if (item.expectedValue >= domain)
                return itemError(
                    i, "value " + std::to_string(item.expectedValue) +
                           " does not fit register '" + item.regA +
                           "'");
            break;
        case PlanKind::Distribution:
        {
            if (item.probs.size() != domain)
                return itemError(
                    i, "probs needs exactly " +
                           std::to_string(domain) +
                           " entries for register '" + item.regA +
                           "'");
            double total = 0.0;
            for (double p : item.probs)
            {
                if (!std::isfinite(p) || p < 0.0)
                    return itemError(i, "probs entries must be "
                                        "finite and non-negative");
                total += p;
            }
            if (std::abs(total - 1.0) > 1e-6)
                return itemError(i, "probs must sum to 1");
            break;
        }
        case PlanKind::UniformSubset:
            if (item.support.empty())
                return itemError(i, "support must be non-empty");
            for (std::uint64_t v : item.support)
                if (v >= domain)
                    return itemError(
                        i, "support value " + std::to_string(v) +
                               " does not fit register '" +
                               item.regA + "'");
            break;
        default:
            break;
        }

        if (item.alpha != 0.0 &&
            (item.alpha <= 0.0 || item.alpha >= 1.0))
            return itemError(i, "alpha must lie in (0, 1)");
    }
    return "";
}

Expectation &Session::expect(const PlanAssertion &item)
{
    Site site = item.atBoundary ? after(item.boundary)
                                : at(item.breakpoint);
    const circuit::QubitRegister reg_a = original.reg(item.regA);

    Expectation *handle = nullptr;
    switch (item.kind)
    {
    case PlanKind::Classical:
        handle = &site.expectClassical(reg_a, item.expectedValue);
        break;
    case PlanKind::Superposition:
        handle = &site.expectSuperposition(reg_a);
        break;
    case PlanKind::Distribution:
        handle = &site.expectDistribution(reg_a, item.probs);
        break;
    case PlanKind::UniformSubset:
        handle = &site.expectUniformSubset(reg_a, item.support);
        break;
    case PlanKind::Entangled:
        handle = &site.expectEntangled(reg_a,
                                       original.reg(item.regB));
        break;
    case PlanKind::Product:
        handle = &site.expectProduct(reg_a,
                                     original.reg(item.regB));
        break;
    }

    if (item.alpha != 0.0)
        handle->alpha(item.alpha);
    if (!item.name.empty())
        handle->named(item.name);
    if (item.ensembleSize != 0)
        handle->ensembleSize(item.ensembleSize);
    return *handle;
}

} // namespace qsa::session
