/**
 * @file
 * Serialized assertion plans: the JSON form of a Session's expect*
 * calls, and the machinery turning one into registered assertions.
 *
 * A wire client (qsa::serve) cannot call the fluent builders — it
 * sends data. A plan is a JSON array of assertion objects,
 *
 *     [{"at": "final", "expect": "classical",
 *       "register": "sum", "value": 3, "alpha": 0.01},
 *      {"after": 2, "expect": "entangled",
 *       "register": "a", "register_b": "b"}]
 *
 * where each object carries
 *
 *  - exactly one site: `"at": <breakpoint label>` or
 *    `"after": <instruction boundary>`,
 *  - `"expect"`: one of "classical" (+ `"value"`), "superposition",
 *    "distribution" (+ `"probs"`), "uniform_subset" (+ `"support"`),
 *    "entangled" / "product" (+ `"register_b"`),
 *  - `"register"` (and `"register_b"`): register *names*, resolved
 *    against the session's program,
 *  - optional `"alpha"`, `"name"`, `"ensemble_size"` — the same
 *    refinements the Expectation handle offers.
 *
 * Session::expect(PlanAssertion) registers one parsed item and
 * returns the usual Expectation handle, so a deserialized plan is
 * indistinguishable from the equivalent fluent calls — the substrate
 * of the serve determinism contract (wire request ≡ in-process
 * session).
 *
 * Parsing (tryPlanFromJson) and program-level validation
 * (validatePlan) are non-fatal: the serving layer adjudicates bad
 * requests per-connection and must outlive them.
 */

#ifndef QSA_SESSION_PLAN_HH
#define QSA_SESSION_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qsa::json
{
class Value;
} // namespace qsa::json

namespace qsa::session
{

/** Assertion kind addressable from a serialized plan. */
enum class PlanKind
{
    Classical,
    Superposition,
    Distribution,
    UniformSubset,
    Entangled,
    Product,
};

/** Wire name of a plan kind ("classical", "uniform_subset", ...). */
std::string planKindName(PlanKind kind);

/** One deserialized plan item (see file comment for the schema). */
struct PlanAssertion
{
    /** Site: breakpoint label when false, raw boundary when true. */
    bool atBoundary = false;
    std::string breakpoint;
    std::size_t boundary = 0;

    PlanKind kind = PlanKind::Classical;

    /** Register names, resolved against the program at expect(). */
    std::string regA;
    std::string regB;

    /** Classical expected value. */
    std::uint64_t expectedValue = 0;

    /** Distribution probabilities. */
    std::vector<double> probs;

    /** UniformSubset support values. */
    std::vector<std::uint64_t> support;

    /** 0 = the per-spec default (assertions::kDefaultAlpha). */
    double alpha = 0.0;

    /** Empty = run()-time default name. */
    std::string name;

    /** 0 = the session-wide ensemble size. */
    std::size_t ensembleSize = 0;
};

/**
 * Parse a plan from an already-parsed JSON array (the serve request
 * path — requests are parsed once). Returns false with a positioned
 * human-readable `*error` ("plan[2]: ...") on any schema violation.
 */
bool tryPlanFromValue(const json::Value &array,
                      std::vector<PlanAssertion> *plan,
                      std::string *error);

/** As tryPlanFromValue, from JSON text. */
bool tryPlanFromJson(const std::string &text,
                     std::vector<PlanAssertion> *plan,
                     std::string *error);

/** Parse or fatal() — the trusted-input convenience form. */
std::vector<PlanAssertion> planFromJson(const std::string &text);

/**
 * Validate a parsed plan against a concrete program without
 * registering anything: register names exist, breakpoint labels /
 * boundaries exist, values fit the register, probability vectors have
 * the right arity and normalisation, alphas are in (0, 1). Returns ""
 * when valid, else the first violation ("plan[0]: unknown register
 * 'qq'"). A plan that validates cleanly cannot make
 * Session::expect() or run() fatal on shape grounds.
 */
std::string validatePlan(const circuit::Circuit &program,
                         const std::vector<PlanAssertion> &plan);

} // namespace qsa::session

#endif // QSA_SESSION_PLAN_HH
