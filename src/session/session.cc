/**
 * @file
 * Session facade implementation.
 */

#include "session/session.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analyze/clifford.hh"
#include "assertions/report.hh"
#include "common/benchjson.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/obs.hh"
#include "runtime/batch.hh"

namespace qsa::session
{

namespace
{

/** Label prefix for on-demand boundary instrumentation. */
const std::string kBoundaryPrefix = "qsa_session_b";

} // anonymous namespace

// --- Expectation -----------------------------------------------------------

Expectation &
Expectation::alpha(double a)
{
    fatal_if(a <= 0.0 || a >= 1.0,
             "alpha must lie strictly between 0 and 1");
    owner->specs[index].alpha = a;
    owner->stale = true;
    return *this;
}

Expectation &
Expectation::ensembleSize(std::size_t size)
{
    owner->sizeOverrides[index] = size;
    owner->stale = true;
    return *this;
}

Expectation &
Expectation::named(const std::string &name)
{
    // A display name cannot change a verdict, so existing results are
    // patched in place instead of invalidating the plan (renaming
    // after an expensive run must not recompute every ensemble).
    owner->specs[index].name = name;
    if (index < owner->results.size())
        owner->results[index].spec.name = name;
    return *this;
}

const assertions::AssertionSpec &
Expectation::spec() const
{
    return owner->specs[index];
}

const assertions::AssertionOutcome &
Expectation::outcome()
{
    owner->ensureRun();
    return owner->results[index];
}

// --- Site ------------------------------------------------------------------

Expectation &
Site::expectClassical(const circuit::QubitRegister &reg,
                      std::uint64_t value)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Classical;
    spec.breakpoint = label;
    spec.regA = reg;
    spec.expectedValue = value;
    return owner->addExpectation(std::move(spec));
}

Expectation &
Site::expectSuperposition(const circuit::QubitRegister &reg)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Superposition;
    spec.breakpoint = label;
    spec.regA = reg;
    return owner->addExpectation(std::move(spec));
}

Expectation &
Site::expectDistribution(const circuit::QubitRegister &reg,
                         const std::vector<double> &probs)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Distribution;
    spec.breakpoint = label;
    spec.regA = reg;
    spec.expectedProbs = probs;
    return owner->addExpectation(std::move(spec));
}

Expectation &
Site::expectUniformSubset(const circuit::QubitRegister &reg,
                          const std::vector<std::uint64_t> &support)
{
    return expectDistribution(
        reg, assertions::uniformSubsetProbs(reg.width(), support));
}

Expectation &
Site::expectEntangled(const circuit::QubitRegister &reg_a,
                      const circuit::QubitRegister &reg_b)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Entangled;
    spec.breakpoint = label;
    spec.regA = reg_a;
    spec.regB = reg_b;
    return owner->addExpectation(std::move(spec));
}

Expectation &
Site::expectProduct(const circuit::QubitRegister &reg_a,
                    const circuit::QubitRegister &reg_b)
{
    assertions::AssertionSpec spec;
    spec.kind = assertions::AssertionKind::Product;
    spec.breakpoint = label;
    spec.regA = reg_a;
    spec.regB = reg_b;
    return owner->addExpectation(std::move(spec));
}

// --- Session ---------------------------------------------------------------

Session::Session(const circuit::Circuit &program,
                 const assertions::CheckConfig &config)
    : original(program), cfg(config)
{
    fatal_if(cfg.ensembleSize == 0, "ensemble size must be positive");
}

Session::~Session() = default;

Session &
Session::ensembleSize(std::size_t size)
{
    fatal_if(size == 0, "ensemble size must be positive");
    cfg.ensembleSize = size;
    return invalidate();
}

Session &
Session::mode(assertions::EnsembleMode m)
{
    cfg.mode = m;
    return invalidate();
}

Session &
Session::seed(std::uint64_t s)
{
    cfg.seed = s;
    return invalidate();
}

Session &
Session::threads(unsigned num_threads)
{
    cfg.numThreads = num_threads;
    return invalidate();
}

Session &
Session::gTest(bool enabled)
{
    cfg.useGTest = enabled;
    return invalidate();
}

Session &
Session::probes(locate::ProbeFamily family)
{
    probeFamily = family;
    // Localization state is rebuilt per locate() call; the assertion
    // plan is untouched, so no invalidation is needed.
    return *this;
}

Session &
Session::oracle(locate::OracleMode mode, std::size_t trials)
{
    oracleMode = mode;
    oracleTrials = trials;
    // As with probes(): locate() state is rebuilt per call, so the
    // assertion plan stays valid.
    return *this;
}

Session &
Session::use(const assertions::EscalationPolicy &policy)
{
    fatal_if(policy.initialSize == 0,
             "escalation needs a positive initial ensemble size");
    fatal_if(policy.maxSize < policy.initialSize,
             "escalation cap below the initial ensemble size");
    fatal_if(policy.passThreshold <= 0.0 || policy.passThreshold > 1.0,
             "escalation pass threshold must lie in (0, 1]");
    escalation = policy;
    stale = true;
    return *this;
}

Session &
Session::use(const HolmBonferroni &policy)
{
    familyWise = policy.enabled;
    stale = true;
    return *this;
}

Session &
Session::invalidate()
{
    checker.reset();
    runner.reset();
    stale = true;
    return *this;
}

Site
Session::at(const std::string &breakpoint)
{
    fatal_if(!original.hasBreakpoint(breakpoint),
             "program has no breakpoint labelled '", breakpoint, "'");
    return Site(*this, breakpoint);
}

Site
Session::after(std::size_t instructions)
{
    fatal_if(instructions > original.size(),
             "boundary ", instructions, " beyond the program's ",
             original.size(), " instructions");
    if (!wantBoundaries) {
        wantBoundaries = true;
        invalidate(); // resolved program changes shape
    }
    return Site(*this, boundaryLabel(instructions));
}

std::string
Session::boundaryLabel(std::size_t boundary)
{
    return kBoundaryPrefix + std::to_string(boundary);
}

Expectation &
Session::addExpectation(assertions::AssertionSpec spec)
{
    assertions::validateSpecShape(spec);
    specs.push_back(std::move(spec));
    sizeOverrides.push_back(0);
    handles.push_back(Expectation(*this, specs.size() - 1));
    stale = true;
    return handles.back();
}

void
Session::resolve()
{
    if (checker && resolvedWithBoundaries == wantBoundaries)
        return;
    resolved = wantBoundaries
                   ? original.withBoundaryBreakpoints(kBoundaryPrefix)
                   : original;
    resolvedWithBoundaries = wantBoundaries;
    checker =
        std::make_unique<assertions::AssertionChecker>(resolved, cfg);
    runner = std::make_unique<runtime::BatchRunner>(cfg.numThreads);
}

const circuit::Circuit &
Session::program()
{
    resolve();
    return resolved;
}

const std::vector<assertions::AssertionOutcome> &
Session::run()
{
    QSA_OBS_COUNTER("session.runs", 1);
    QSA_OBS_SPAN(span, "session.run");
    span.arg("assertions", specs.size());
    resolve();

    // The checker did not see the registrations, so default the
    // display names through the shared convention (keeping reports
    // identical between the two paths) and validate breakpoints
    // against the resolved program.
    std::vector<assertions::AssertionSpec> plan = specs;
    for (auto &spec : plan) {
        assertions::validateSpec(resolved, spec);
        if (spec.name.empty())
            spec.name = assertions::defaultSpecName(spec);
    }

    const bool any_override =
        std::any_of(sizeOverrides.begin(), sizeOverrides.end(),
                    [](std::size_t s) { return s != 0; });
    results = runner->checkAll(*checker, plan,
                               escalation ? &*escalation : nullptr,
                               any_override ? &sizeOverrides : nullptr);
    if (familyWise)
        assertions::applyHolmBonferroni(results);
    stale = false;
    return results;
}

void
Session::ensureRun()
{
    if (stale)
        run();
}

const std::vector<assertions::AssertionOutcome> &
Session::outcomes()
{
    ensureRun();
    return results;
}

std::string
Session::report()
{
    ensureRun();
    return assertions::renderReport(results);
}

std::string
Session::exportJson()
{
    ensureRun();
    namespace bj = benchjson;
    std::ostringstream os;
    os << "{\n  \"session\": {"
       << "\"program_size\": " << original.size()
       << ", \"num_qubits\": " << original.numQubits()
       << ", \"ensemble_size\": " << cfg.ensembleSize
       << ", \"mode\": \""
       << (cfg.mode == assertions::EnsembleMode::Resimulate
               ? "resimulate"
               : "sample_final_state")
       << "\", \"seed\": " << cfg.seed
       << ", \"holm_bonferroni\": "
       << (familyWise ? "true" : "false");
    if (escalation) {
        os << ", \"escalation\": {\"initial_size\": "
           << escalation->initialSize
           << ", \"max_size\": " << escalation->maxSize
           << ", \"pass_threshold\": "
           << bj::number(escalation->passThreshold) << "}";
    }
    os << "},\n  \"assertions\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const assertions::AssertionOutcome &out = results[i];
        os << (i ? ",\n" : "\n") << "    {\"name\": \""
           << bj::escape(out.spec.name) << "\", \"kind\": \""
           << bj::escape(assertions::assertionKindName(out.spec.kind))
           << "\", \"breakpoint\": \""
           << bj::escape(out.spec.breakpoint) << "\""
           << ", \"passed\": " << (out.passed ? "true" : "false")
           << ", \"p_value\": " << bj::number(out.pValue)
           << ", \"statistic\": " << bj::number(out.statistic)
           << ", \"df\": " << bj::number(out.df)
           << ", \"ensemble_size\": " << out.ensembleSize
           << ", \"alpha\": " << bj::number(out.spec.alpha)
           << ", \"effective_alpha\": "
           << bj::number(out.effectiveAlpha)
           << ", \"impossible_outcome\": "
           << (out.impossibleOutcome ? "true" : "false");
        os << ", \"counts\": {";
        bool first = true;
        for (const auto &[value, count] : out.countsA) {
            os << (first ? "" : ", ") << "\"" << value
               << "\": " << count;
            first = false;
        }
        os << "}}";
    }
    os << (results.empty() ? "]" : "\n  ]")
       << ",\n  \"metrics\": " << obs::metricsJson()
       << ",\n  \"all_passed\": "
       << (assertions::allPassed(results) ? "true" : "false")
       << "\n}\n";
    return os.str();
}

std::string
Session::metricsJson() const
{
    return obs::metricsJson();
}

void
Session::traceToFile(const std::string &path) const
{
    obs::writeTrace(path);
}

void
Session::exportJson(const std::string &path)
{
    benchjson::writeText(path, exportJson());
}

bool
Session::allPassed()
{
    ensureRun();
    return assertions::allPassed(results);
}

std::string
staticVerdictName(StaticVerdict verdict)
{
    switch (verdict) {
      case StaticVerdict::Verified: return "verified";
      case StaticVerdict::Refuted: return "refuted";
      case StaticVerdict::Undecidable: return "undecidable";
    }
    panic("unknown static verdict");
}

std::size_t
AnalysisReport::count(StaticVerdict verdict) const
{
    std::size_t total = 0;
    for (const StaticCheck &c : checks) {
        if (c.verdict == verdict)
            ++total;
    }
    return total;
}

bool
AnalysisReport::clean() const
{
    return lint.count(analyze::Severity::Error) == 0 &&
           lint.count(analyze::Severity::Warning) == 0 &&
           count(StaticVerdict::Refuted) == 0;
}

std::string
AnalysisReport::render() const
{
    std::ostringstream os;
    os << lint.render();
    for (const StaticCheck &c : checks) {
        os << staticVerdictName(c.verdict) << " [static] '" << c.name
           << "' at '" << c.breakpoint << "'";
        if (!c.detail.empty())
            os << ": " << c.detail;
        os << "\n";
    }
    if (!checks.empty()) {
        os << checks.size() << " classical spec(s): "
           << count(StaticVerdict::Verified) << " verified, "
           << count(StaticVerdict::Refuted) << " refuted, "
           << count(StaticVerdict::Undecidable) << " undecidable\n";
    }
    return os.str();
}

AnalysisReport
Session::analyze()
{
    QSA_OBS_COUNTER("session.analyses", 1);
    QSA_OBS_SPAN(span, "session.analyze");
    resolve();

    AnalysisReport out;
    // Lint the *original* program: finding indices must address the
    // instructions the user wrote, not the session's boundary
    // markers.
    out.lint = analyze::lintCircuit(original);

    const analyze::CliffordSimulation sim(resolved);
    std::size_t discharged = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const assertions::AssertionSpec &spec = specs[i];
        if (spec.kind != assertions::AssertionKind::Classical)
            continue;

        StaticCheck check;
        check.specIndex = i;
        check.name = spec.name.empty()
                         ? assertions::defaultSpecName(spec)
                         : spec.name;
        check.breakpoint = spec.breakpoint;

        const std::size_t boundary =
            resolved.breakpointPosition(spec.breakpoint);
        if (!sim.decidableAt(boundary)) {
            check.verdict = StaticVerdict::Undecidable;
            check.detail = sim.topReason();
        } else {
            const locate::BoundaryPredicate pred =
                sim.predicateAt(boundary, spec.regA);
            if (pred.kind != assertions::AssertionKind::Classical) {
                check.verdict = StaticVerdict::Refuted;
                check.detail =
                    "register is " +
                    assertions::assertionKindName(pred.kind) +
                    " here, not classical";
                ++discharged;
            } else if (pred.expectedValue == spec.expectedValue) {
                check.verdict = StaticVerdict::Verified;
                check.detail = "register provably reads " +
                               std::to_string(pred.expectedValue);
                ++discharged;
            } else {
                check.verdict = StaticVerdict::Refuted;
                check.detail = "register provably reads " +
                               std::to_string(pred.expectedValue) +
                               ", not " +
                               std::to_string(spec.expectedValue);
                ++discharged;
            }
        }
        out.checks.push_back(std::move(check));
    }

    QSA_OBS_COUNTER("analyze.static_checks", out.checks.size());
    QSA_OBS_COUNTER("analyze.static_discharged", discharged);
    span.arg("diagnostics", out.lint.diagnostics.size())
        .arg("checks", out.checks.size())
        .arg("discharged", discharged);
    return out;
}

locate::LocateConfig
Session::locateConfig(locate::Strategy strategy) const
{
    locate::LocateConfig lc;
    lc.strategy = strategy;
    lc.family = probeFamily;
    lc.mode = cfg.mode; // Resimulate sessions probe past measurements
    lc.seed = cfg.seed;
    lc.numThreads = cfg.numThreads;
    lc.oracleMode = oracleMode;
    lc.oracleTrials = oracleTrials;
    if (escalation) {
        lc.ensembleSize = escalation->initialSize;
        lc.maxEnsembleSize = escalation->maxSize;
        lc.passThreshold = escalation->passThreshold;
    }
    return lc;
}

locate::LocalizationReport
Session::locate(const circuit::Circuit &reference,
                locate::Strategy strategy) const
{
    // Localization probes the *original* program: boundary markers
    // from the session's own instrumentation would only dilute the
    // locator's boundary indexing.
    const locate::BugLocator locator(original, reference,
                                     locateConfig(strategy));
    return locator.locate();
}

locate::LocalizationReport
Session::locate(const circuit::Circuit &reference,
                const circuit::QubitRegister &reg_a,
                locate::Strategy strategy) const
{
    const locate::BugLocator locator(original, reference,
                                     locateConfig(strategy));
    return locator.locateByPredicates(reg_a);
}

locate::LocalizationReport
Session::locate(const circuit::Circuit &reference,
                const circuit::QubitRegister &reg_a,
                const circuit::QubitRegister &reg_b,
                locate::Strategy strategy) const
{
    const locate::BugLocator locator(original, reference,
                                     locateConfig(strategy));
    return locator.locateByPredicates(reg_a, reg_b);
}

} // namespace qsa::session
