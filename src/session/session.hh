/**
 * @file
 * qsa::session — the fluent debugging front-end over checker,
 * runtime, and locator.
 *
 * The paper's workflow is one loop: write the program, place
 * assertions, run ensembles, read verdicts, localize the bug. The
 * lower layers expose that loop as four separately-driven subsystems
 * (instrument breakpoints by hand, push specs into an
 * AssertionChecker, render the report yourself, construct a
 * BugLocator). A Session owns the whole plan instead:
 *
 *   session::Session s(program);            // no pre-instrumentation
 *   s.ensembleSize(256);
 *   s.after(2).expectEntangled(q0, q1).alpha(0.01);
 *   s.at("final").expectClassical(helper, 0);
 *   s.use(assertions::EscalationPolicy{64, 2048, 0.30});
 *   s.use(session::HolmBonferroni{});
 *   std::cout << s.report();                // runs the plan
 *   auto where = s.locate(reference);       // hands off to qsa::locate
 *
 * Sites are addressed by existing breakpoint label (`at("entangled")`)
 * or by raw instruction boundary (`after(3)`); the first boundary
 * site auto-instruments the program via
 * circuit::Circuit::withBoundaryBreakpoints, so callers never
 * pre-instrument. Expect* builders return Expectation handles whose
 * fluent modifiers (.alpha, .named) refine the spec and whose
 * accessors (.outcome, .passed) read the verdict after the run.
 *
 * run() executes the whole plan in one runtime::BatchRunner fan-out —
 * every (truncation, assertion) pair across one pool, sharing one
 * engine's truncated-circuit and prefix-state caches — with verdicts
 * bit-identical to driving an AssertionChecker directly (enforced by
 * tests/test_session.cc across thread counts and ensemble modes).
 * Escalation (sequential ensemble doubling) and Holm-Bonferroni
 * family-wise control are composable policy objects applied with
 * use(), not flags scattered across CheckConfig.
 *
 * The legacy entry points (AssertionChecker, BugLocator, renderReport)
 * remain the supported low-level layer; the session is sugar plus a
 * plan owner, not a replacement engine.
 */

#ifndef QSA_SESSION_SESSION_HH
#define QSA_SESSION_SESSION_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyze/lint.hh"
#include "assertions/checker.hh"
#include "assertions/spec.hh"
#include "circuit/circuit.hh"
#include "locate/locate.hh"

namespace qsa::runtime
{
class BatchRunner;
} // namespace qsa::runtime

namespace qsa::session
{

class Session;
struct PlanAssertion;

/**
 * Family-wise error-control policy: adjudicate the whole plan's
 * verdicts together under Holm-Bonferroni step-down (see
 * assertions::applyHolmBonferroni) instead of per-assertion alpha.
 */
struct HolmBonferroni
{
    bool enabled = true;
};

/** How the static Clifford pass adjudicated one registered spec. */
enum class StaticVerdict
{
    /** The derived predicate proves the assertion passes. */
    Verified,

    /** The derived predicate proves the assertion fails. */
    Refuted,

    /** Outside the decidable Clifford fragment (or the assertion
     *  kind is not statically dischargeable). */
    Undecidable,
};

/** Human-readable verdict name. */
std::string staticVerdictName(StaticVerdict verdict);

/** Static adjudication of one registered assertion. */
struct StaticCheck
{
    /** Index into Session::assertions(). */
    std::size_t specIndex = 0;

    /** Display name (the run()-time default when none was set). */
    std::string name;

    /** Breakpoint label the assertion is anchored to. */
    std::string breakpoint;

    StaticVerdict verdict = StaticVerdict::Undecidable;

    /** Derivation detail: the statically derived predicate, or why
     *  the boundary was undecidable. */
    std::string detail;
};

/**
 * Result of Session::analyze(): the lint findings over the original
 * program plus the static discharge of every registered
 * expectClassical spec whose boundary the Clifford interpreter
 * decides.
 */
struct AnalysisReport
{
    analyze::LintReport lint;
    std::vector<StaticCheck> checks;

    /** Number of checks with the given verdict. */
    std::size_t count(StaticVerdict verdict) const;

    /** True when no defect-class (warning/error) lint finding and no
     *  refuted check exists; info findings are advisory. */
    bool clean() const;

    /** Human-readable rendering of both halves. */
    std::string render() const;
};

/**
 * Handle to one registered assertion: fluent spec refinement before
 * the run, verdict access after it. Copyable; all state lives in the
 * owning Session, which must outlive the handle.
 */
class Expectation
{
  public:
    /** Set the significance level for this assertion's verdict. */
    Expectation &alpha(double a);

    /** Set the display name used in reports. */
    Expectation &named(const std::string &name);

    /**
     * Override the ensemble size for this one assertion (0 restores
     * the session default). The outcome is bit-identical to checking
     * the same spec under a CheckConfig whose ensembleSize equals the
     * override; when an EscalationPolicy is in use the override
     * replaces the policy's initial size for this assertion (and
     * raises its cap to at least the override). The facade follow-up
     * for plans mixing cheap smoke assertions with a few
     * high-resolution ones.
     */
    Expectation &ensembleSize(std::size_t size);

    /** The spec as currently registered. */
    const assertions::AssertionSpec &spec() const;

    /**
     * This assertion's outcome; runs the session's plan first if it
     * has not run (or is stale) — so a one-assertion flow reads
     * `s.at("x").expectClassical(q, 0).passed()`. The reference is
     * into the session's result buffer: any later registration or
     * configuration change re-runs the plan and invalidates it (copy
     * the outcome to keep it across plan changes).
     */
    const assertions::AssertionOutcome &outcome();

    /** Verdict shorthand for outcome().passed. */
    bool passed() { return outcome().passed; }

    /** p-value shorthand for outcome().pValue. */
    double pValue() { return outcome().pValue; }

  private:
    friend class Session;
    Expectation(Session &owner, std::size_t index)
        : owner(&owner), index(index)
    {
    }

    Session *owner;
    std::size_t index;
};

/**
 * One assertion site — a breakpoint label resolved from at() or
 * after(). Value type; registration happens on the owning Session.
 */
class Site
{
  public:
    /** assert_classical: the register reads the integer `value`. */
    Expectation &expectClassical(const circuit::QubitRegister &reg,
                                 std::uint64_t value);

    /** assert_superposition: uniform over the register's domain. */
    Expectation &expectSuperposition(const circuit::QubitRegister &reg);

    /** The register's outcomes follow an explicit distribution. */
    Expectation &expectDistribution(const circuit::QubitRegister &reg,
                                    const std::vector<double> &probs);

    /** Uniform superposition over exactly the given support values. */
    Expectation &
    expectUniformSubset(const circuit::QubitRegister &reg,
                        const std::vector<std::uint64_t> &support);

    /** assert_entangled: the two registers read correlated values. */
    Expectation &expectEntangled(const circuit::QubitRegister &reg_a,
                                 const circuit::QubitRegister &reg_b);

    /** assert_product: the two registers read independent values. */
    Expectation &expectProduct(const circuit::QubitRegister &reg_a,
                               const circuit::QubitRegister &reg_b);

    /** The breakpoint label this site resolves to. */
    const std::string &breakpoint() const { return label; }

  private:
    friend class Session;
    Site(Session &owner, std::string label)
        : owner(&owner), label(std::move(label))
    {
    }

    Session *owner;
    std::string label;
};

/** See file comment. */
class Session
{
  public:
    /**
     * @param program the program under test (copied; breakpoints are
     *        optional — boundary sites instrument on demand)
     * @param config ensemble/test configuration baseline
     */
    explicit Session(const circuit::Circuit &program,
                     const assertions::CheckConfig &config =
                         assertions::CheckConfig());

    ~Session();

    /** Non-copyable: owns the engine bound to its program copy. */
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** @{ @name Fluent configuration */

    /** Measurements per assertion ensemble. */
    Session &ensembleSize(std::size_t size);

    /** Ensemble generation mode. */
    Session &mode(assertions::EnsembleMode m);

    /** Master seed for every ensemble stream. */
    Session &seed(std::uint64_t s);

    /** Worker threads (CheckConfig::numThreads semantics). */
    Session &threads(unsigned num_threads);

    /** Use the G-test instead of Pearson chi-square. */
    Session &gTest(bool enabled = true);

    /**
     * Probe family for locate() (locate::LocateConfig::family
     * semantics). The default keeps the classic families per
     * overload: segment mirrors for the full-space locate(),
     * mixture marginals for the register overloads. Select
     * locate::ProbeFamily::SwapTest for the phase-sound comparator
     * probes, or locate::ProbeFamily::Auto to run the cheap
     * mirror-marginal search first and auto-escalate to swap-test
     * probes when its verdict is phase-ambiguous (a defect whose
     * only trace between its site and the verify step is a relative
     * phase — invisible to every computational-basis probe).
     */
    Session &probes(locate::ProbeFamily family);

    /**
     * Reference-oracle mode for locate()
     * (locate::LocateConfig::oracleMode semantics). The default,
     * locate::OracleMode::Auto, derives exact boundary marginals and
     * falls back to Monte-Carlo sampled estimates when a
     * wide-measurement reference overflows the branch enumeration
     * cap; Exact restores the hard failure, Sampled forces the
     * Monte-Carlo path. `trials` sets the sampled trajectory budget
     * (0 keeps locate::OracleOptions' default).
     */
    Session &oracle(locate::OracleMode mode, std::size_t trials = 0);

    /** Apply an ensemble-escalation policy to every check. */
    Session &use(const assertions::EscalationPolicy &policy);

    /** Apply (or remove) family-wise Holm-Bonferroni control. */
    Session &use(const HolmBonferroni &policy);

    /** The effective checker configuration. */
    const assertions::CheckConfig &config() const { return cfg; }

    /** @} */
    /** @{ @name Assertion sites */

    /**
     * Address an existing breakpoint by label. The label must exist
     * in the program (fatal otherwise — matching the checker's
     * registration-time validation).
     */
    Site at(const std::string &breakpoint);

    /**
     * Address the instruction boundary just after the first
     * `instructions` instructions of the original program (0 = the
     * initial state, size() = after the last instruction). The
     * program is instrumented on demand — no pre-placed breakpoints
     * needed.
     */
    Site after(std::size_t instructions);

    /**
     * The breakpoint label a boundary site resolves to (stable; usable
     * with the exact oracles against program()).
     */
    static std::string boundaryLabel(std::size_t boundary);

    /**
     * Register one deserialized plan item (see session/plan.hh):
     * resolves the site and register names against the program and
     * dispatches to the matching expect* builder, so a JSON plan is
     * indistinguishable from the equivalent fluent calls. Register /
     * site resolution is fatal on unknown names — wire callers
     * pre-validate with session::validatePlan.
     */
    Expectation &expect(const PlanAssertion &item);

    /** @} */
    /** @{ @name Execution, reporting, localization */

    /**
     * Check every registered assertion in one runtime::BatchRunner
     * fan-out (escalating each check first when an EscalationPolicy
     * is in use, re-adjudicating family-wise when HolmBonferroni is).
     * Verdicts are bit-identical to the direct AssertionChecker path.
     * Returns the outcomes in registration order; like the
     * Expectation accessors, the reference is invalidated by any
     * later registration or configuration change (which re-runs the
     * plan on next read).
     */
    const std::vector<assertions::AssertionOutcome> &run();

    /** Outcomes of the last run (runs first if the plan is stale). */
    const std::vector<assertions::AssertionOutcome> &outcomes();

    /** Human-readable outcome table (runs first if stale). */
    std::string report();

    /**
     * Machine-readable export of the outcome tables (runs first if
     * stale): one JSON document with the session configuration and
     * one record per assertion — name, kind, breakpoint, verdict,
     * p-value, statistic, ensemble size, effective alpha, and the
     * observed counts — rendered through common/benchjson's escaping
     * and number formatting (the BENCH_*.json conventions).
     */
    std::string exportJson();

    /** As exportJson(), written to `path` (fatal on I/O failure). */
    void exportJson(const std::string &path);

    /**
     * The process-wide qsa::obs metrics snapshot as one flat JSON
     * object (the same object exportJson embeds under "metrics"):
     * probe/trial/gate counters, cache hit/miss totals, pool and
     * timer readings. "{}" when the library was built with
     * QSA_OBS=OFF. Process-wide, not per-session — a scrape after
     * two sessions ran reflects both.
     */
    std::string metricsJson() const;

    /**
     * Write the process-wide qsa::obs trace buffer (Chrome
     * trace-event JSON, Perfetto-loadable) to `path`; fatal on I/O
     * failure. Spans only accumulate while obs::setTracing(true) (or
     * the QSA_TRACE environment variable) is in effect.
     */
    void traceToFile(const std::string &path) const;

    /** True when every assertion passed (runs first if stale). */
    bool allPassed();

    /**
     * Static analysis of the plan — no simulation, no ensemble:
     * the lint rule registry runs over the original program
     * (analyze::lintCircuit) and the Clifford abstract interpreter
     * statically discharges every registered expectClassical spec
     * whose boundary lies in the decidable fragment (Verified /
     * Refuted; Undecidable past the first non-Clifford instruction
     * or for other assertion kinds). Sound: a Verified check cannot
     * fail statistically except through sampling error, a Refuted
     * check cannot pass. Emits analyze.* counters and trace spans
     * (honouring QSA_TRACE like every obs client).
     */
    AnalysisReport analyze();

    /**
     * Localize the first diverging instruction against a trusted
     * reference program with mirror probes (phase-sensitive; the
     * compared region must be unitary under the default ensemble
     * mode). Seed, threads, ensemble mode, and any escalation policy
     * carry over from the session — in particular, a session running
     * in EnsembleMode::Resimulate (`s.mode(...)`) hands that mode to
     * the locator, whose probes then cross mid-circuit measurements
     * (see locate::LocateConfig::mode).
     */
    locate::LocalizationReport
    locate(const circuit::Circuit &reference,
           locate::Strategy strategy =
               locate::Strategy::AdaptiveBinarySearch) const;

    /**
     * Localize with boundary predicates on one register's outcome
     * marginal (tolerant of mid-program resets).
     */
    locate::LocalizationReport
    locate(const circuit::Circuit &reference,
           const circuit::QubitRegister &reg_a,
           locate::Strategy strategy =
               locate::Strategy::AdaptiveBinarySearch) const;

    /**
     * As the one-register overload, additionally inheriting
     * entangled/product probe kinds on (reg_a, reg_b) at ComputeScope
     * boundaries.
     */
    locate::LocalizationReport
    locate(const circuit::Circuit &reference,
           const circuit::QubitRegister &reg_a,
           const circuit::QubitRegister &reg_b,
           locate::Strategy strategy =
               locate::Strategy::AdaptiveBinarySearch) const;

    /** The localization configuration locate() hands to BugLocator. */
    locate::LocateConfig locateConfig(locate::Strategy strategy) const;

    /** @} */
    /** @{ @name Introspection */

    /**
     * The resolved program the plan checks: the original, or the
     * boundary-instrumented copy once an after() site exists.
     */
    const circuit::Circuit &program();

    /** Registered assertion specs in registration order. */
    const std::vector<assertions::AssertionSpec> &assertions() const
    {
        return specs;
    }

    /** @} */

  private:
    friend class Expectation;
    friend class Site;

    circuit::Circuit original;
    assertions::CheckConfig cfg;

    std::vector<assertions::AssertionSpec> specs;
    std::deque<Expectation> handles; // stable addresses for handles

    /** Per-spec ensemble-size overrides (0 = session default). */
    std::vector<std::size_t> sizeOverrides;

    std::optional<assertions::EscalationPolicy> escalation;
    bool familyWise = false;

    /** Probe family handed to BugLocator by locate(). */
    locate::ProbeFamily probeFamily =
        locate::ProbeFamily::SegmentMirror;

    /** Reference-oracle mode handed to BugLocator by locate(). */
    locate::OracleMode oracleMode = locate::OracleMode::Auto;

    /** Sampled-oracle trajectory budget (0 = OracleOptions default). */
    std::size_t oracleTrials = 0;

    /** True once any after() site forces boundary instrumentation. */
    bool wantBoundaries = false;

    /** Lazily built execution state (engine + pool), see resolve(). */
    circuit::Circuit resolved;
    bool resolvedWithBoundaries = false;
    std::unique_ptr<assertions::AssertionChecker> checker;
    std::unique_ptr<runtime::BatchRunner> runner;

    /**
     * Plan results; `stale` (initially true, cleared only by run())
     * marks them out of date after a registration or config change.
     */
    std::vector<assertions::AssertionOutcome> results;
    bool stale = true;

    /** Invalidate engine + results after a config change. */
    Session &invalidate();

    /** Build `resolved`, the checker, and the runner if needed. */
    void resolve();

    /** Register a spec (shape-validated) and hand back its handle. */
    Expectation &addExpectation(assertions::AssertionSpec spec);

    /** run() when registration or configuration made results stale. */
    void ensureRun();
};

} // namespace qsa::session

#endif // QSA_SESSION_SESSION_HH
