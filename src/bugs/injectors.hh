/**
 * @file
 * Buggy (and reference-correct) program variants.
 *
 * Table 1's three decomposition columns live here together so the
 * Table 1 bench can compare them; the remaining builders are the
 * "what the programmer actually typed" versions of bug types 2-5.
 * Types 1 and 6 are data bugs injected through ShorConfig.
 */

#ifndef QSA_BUGS_INJECTORS_HH
#define QSA_BUGS_INJECTORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bugs/bugs.hh"
#include "circuit/circuit.hh"
#include "circuit/register.hh"

namespace qsa::bugs
{

/** The three code variants of Table 1. */
enum class Table1Variant
{
    /** Column 1: correct, operation A unneeded. */
    CorrectDropA,

    /** Column 2: correct, operation C unneeded. */
    CorrectDropC,

    /** Column 3: incorrect, angles flipped. */
    IncorrectFlipped,
};

/** Display name matching the paper's column headers. */
std::string table1VariantName(Table1Variant variant);

/**
 * Append a controlled-phase(angle) built from single-qubit phases and
 * CNOTs per the chosen Table 1 column (Figure 3's decomposition).
 */
void appendCPhaseDecomposed(circuit::Circuit &circ, unsigned ctrl,
                            unsigned tgt, double angle,
                            Table1Variant variant);

/**
 * Single-controlled Draper adder whose controlled rotations are
 * *decomposed* per the Table 1 variant instead of using the native
 * cphase — the unit-test harness of Listing 3 then catches the
 * flipped variant with a classical output assertion.
 */
void phiAddDecomposed(circuit::Circuit &circ,
                      const circuit::QubitRegister &b, std::uint64_t a,
                      unsigned ctrl, Table1Variant variant);

/** Iteration bugs for the adder (bug type 3). */
enum class IterationBug
{
    /** Inner loop runs a_indx > 0 instead of >= 0 (drops a term). */
    InnerOffByOne,

    /** Angle denominator off by a factor of two. */
    WrongAngleDenominator,

    /** Target register indexed MSB-first (endian confusion). */
    EndianSwapped,
};

/** Display name for an iteration bug. */
std::string iterationBugName(IterationBug bug);

/** Listing 2's adder with the chosen iteration mistake. */
void phiAddIterationBug(circuit::Circuit &circ,
                        const circuit::QubitRegister &b, std::uint64_t a,
                        const std::vector<unsigned> &controls,
                        IterationBug bug);

/**
 * Bug type 4: Listing 4's controlled modular multiplier with the
 * control routing mistake of Section 4.4 — the replicated ccRz call
 * uses ctrl1 twice, so the outer control qubit never gates the
 * addition (semantically the AND of a qubit with itself).
 */
void cModMulMisrouted(circuit::Circuit &circ, unsigned ctrl,
                      const circuit::QubitRegister &x,
                      const circuit::QubitRegister &b, std::uint64_t a,
                      std::uint64_t n_mod, unsigned zero_anc);

/**
 * Bug type 5: an in-place controlled modular multiply whose uncompute
 * half forgets the mirroring — it *re-applies* the forward multiplier
 * with a^-1 instead of appending its adjoint, so the helper register
 * is not returned to |0>.
 */
void cUaBrokenMirror(circuit::Circuit &circ, unsigned ctrl,
                     const circuit::QubitRegister &x,
                     const circuit::QubitRegister &b, std::uint64_t a,
                     std::uint64_t a_inv, std::uint64_t n_mod,
                     unsigned zero_anc);

/**
 * Bug type 5 (small form): an "inverse" adder whose author forgot to
 * negate the rotation angles — adds instead of subtracting.
 */
void phiSubForgotNegate(circuit::Circuit &circ,
                        const circuit::QubitRegister &b, std::uint64_t a,
                        const std::vector<unsigned> &controls);

/**
 * The statically-visible extension bugs (BugType::ConditionLabelTypo
 * / MeasuredQubitReuse / EntangledReset) as self-contained program
 * pairs: the buggy variant must fire exactly its catalogue lint rule
 * at the defect instruction, the clean variant must lint clean
 * (tests/test_analyze_bugs.cc pins both).
 */
struct StaticBugFixture
{
    /** The program with the defect injected. */
    circuit::Circuit buggy;

    /** The corrected program (lint-clean). */
    circuit::Circuit clean;

    /** Instruction index of the defect in `buggy`. */
    std::size_t defectInstruction = 0;

    /** The analyze rule id expected there (BugInfo::lintRule). */
    std::string lintRule;
};

/** Build the fixture for one statically-visible bug type (fatal for
 *  the six dynamic-only paper types). */
StaticBugFixture staticBugFixture(BugType type);

} // namespace qsa::bugs

#endif // QSA_BUGS_INJECTORS_HH
